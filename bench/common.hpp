// Shared helpers for the experiment harnesses (bench/e*_*.cpp).
//
// Every experiment binary:
//   * prints the table(s) it reproduces via io::Table,
//   * accepts --seed=... and --trials=... where it makes sense,
//   * finishes with a PASS/FAIL verdict line against the paper's bound
//     so `for b in build/bench/*; do $b; done` doubles as a check.
#pragma once

#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/preference_matrix.hpp"

namespace tmwia::bench {

inline std::vector<matrix::PlayerId> iota_players(std::size_t n) {
  std::vector<matrix::PlayerId> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

inline std::vector<std::uint32_t> iota_objects(std::size_t m) {
  std::vector<std::uint32_t> o(m);
  std::iota(o.begin(), o.end(), 0u);
  return o;
}

/// Mean per-player output error over the given ids.
inline double mean_error(const std::vector<bits::BitVector>& outputs,
                         const matrix::PreferenceMatrix& truth,
                         const std::vector<matrix::PlayerId>& ids) {
  std::size_t total = 0;
  for (auto p : ids) total += outputs[p].hamming(truth.row(p));
  return static_cast<double>(total) / static_cast<double>(ids.size());
}

/// Emit the final verdict line shared by all harnesses.
inline int verdict(const std::string& experiment, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", experiment.c_str());
  return ok ? 0 : 1;
}

/// If the harness was invoked with --csv=DIR, mirror `table` to
/// DIR/<name>.csv for plotting.
inline void maybe_write_csv(const io::Args& args, const io::Table& table,
                            const std::string& name) {
  const auto dir = args.get("csv");
  if (!dir) return;
  const std::string path = *dir + "/" + name + ".csv";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  table.write_csv(os);
}

}  // namespace tmwia::bench
