// tmwia-lint: allow-file(raw-io) bench harness: best-effort stderr warnings on sink-file open failure.
// tmwia-lint: allow-file(sink-registration) bench harness is a sink owner: it installs the --trace/--record sinks.
// Shared helpers for the experiment harnesses (bench/e*_*.cpp).
//
// Every experiment binary:
//   * prints the table(s) it reproduces via io::Table,
//   * accepts --seed=... and --trials=... where it makes sense,
//   * finishes with a PASS/FAIL verdict line against the paper's bound
//     so `for b in build/bench/*; do $b; done` doubles as a check,
//   * writes a machine-readable BENCH_<name>.json via BenchReport so
//     the perf trajectory accumulates run over run.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/core/session.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/checkpoint.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/preference_matrix.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/trace.hpp"

namespace tmwia::bench {

inline std::vector<matrix::PlayerId> iota_players(std::size_t n) {
  std::vector<matrix::PlayerId> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

inline std::vector<std::uint32_t> iota_objects(std::size_t m) {
  std::vector<std::uint32_t> o(m);
  std::iota(o.begin(), o.end(), 0u);
  return o;
}

/// Mean per-player output error over the given ids.
inline double mean_error(const std::vector<bits::BitVector>& outputs,
                         const matrix::PreferenceMatrix& truth,
                         const std::vector<matrix::PlayerId>& ids) {
  std::size_t total = 0;
  for (auto p : ids) total += outputs[p].hamming(truth.row(p));
  return static_cast<double>(total) / static_cast<double>(ids.size());
}

/// Emit the final verdict line shared by all harnesses.
inline int verdict(const std::string& experiment, bool ok) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", experiment.c_str());
  return ok ? 0 : 1;
}

/// Default BENCH json location for one experiment: --json wins;
/// otherwise $TMWIA_BENCH_DIR/BENCH_<name>.json when the env var is set
/// (tools/bench/bench_history.py points every binary at one directory
/// this way), else ./BENCH_<name>.json.
inline std::string default_json_path(const std::string& name) {
  const char* dir = std::getenv("TMWIA_BENCH_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    return std::string(dir) + "/BENCH_" + name + ".json";
  }
  return "BENCH_" + name + ".json";
}

/// Per-experiment machine-readable reporting plus the shared
/// observability flags. Construct it first thing in main:
///
///   BenchReport report(args, "e8_main_theorem");
///   ...
///   report.metric("rounds", rounds);
///   report.metric("stretch", stretch);
///   return report.finish(ok);
///
/// Handled flags:
///   --json=FILE     where to write the report (default BENCH_<name>.json,
///                   under $TMWIA_BENCH_DIR when that is set)
///   --metrics=FILE  final global-registry snapshot as one-line JSON
///   --trace=FILE    span/event JSONL (deterministic logical clock)
///   --record=FILE   flight-recorder event log (see `tmwia_cli inspect`)
///   --record-format=jsonl|binary   recorder wire format
///   --threads=N     global thread-pool size (0 = hardware)
///   --kernel=B      distance-kernel backend: scalar|avx2|avx512|auto
///
/// finish() prints the usual [PASS]/[FAIL] verdict line and writes
/// {"bench":...,"kernel":...,"ok":...,"wall_ms":...,"metrics":{...}}
/// where "kernel" is the resolved (never "auto") backend the run used.
/// Wall time is only in the BENCH json — the --metrics/--trace/--record
/// artifacts stay byte-identical across --threads and --kernel for a
/// fixed seed.
class BenchReport {
 public:
  BenchReport(const io::Args& args, std::string name)
      : name_(std::move(name)),
        json_path_(args.get("json").value_or(default_json_path(name_))),
        metrics_path_(args.get("metrics").value_or("")),
        start_(std::chrono::steady_clock::now()) {
    engine::set_global_threads(static_cast<std::size_t>(args.get_int("threads", 0)));
    if (const auto k = args.get("kernel"); k.has_value()) {
      const auto backend = bits::kernels::parse_backend(*k);
      if (!backend.has_value()) {
        std::fprintf(stderr, "error: unknown --kernel backend '%s'\n", k->c_str());
        std::exit(2);
      }
      bits::kernels::set_backend(*backend);  // throws if the CPU can't run it
    }
    if (!metrics_path_.empty()) obs::MetricsRegistry::global().set_enabled(true);
    if (const auto trace_path = args.get("trace"); trace_path.has_value()) {
      trace_out_.open(*trace_path);
      if (trace_out_) {
        tracer_ = std::make_unique<obs::Tracer>(trace_out_);
        obs::set_tracer(tracer_.get());
      } else {
        std::fprintf(stderr, "warning: cannot write %s\n", trace_path->c_str());
      }
    }
    if (const auto record_path = args.get("record"); record_path.has_value()) {
      const auto binary = args.get("record-format").value_or("jsonl") == "binary";
      record_out_.open(*record_path,
                       binary ? std::ios::out | std::ios::binary : std::ios::out);
      if (record_out_) {
        recorder_ = std::make_unique<obs::FlightRecorder>(
            record_out_, binary ? obs::RecordFormat::kBinary : obs::RecordFormat::kJsonl);
        obs::set_recorder(recorder_.get());
      } else {
        std::fprintf(stderr, "warning: cannot write %s\n", record_path->c_str());
      }
    }
  }

  ~BenchReport() {
    if (tracer_ != nullptr && obs::tracer() == tracer_.get()) obs::set_tracer(nullptr);
    if (recorder_ != nullptr && obs::recorder() == recorder_.get()) {
      obs::set_recorder(nullptr);
    }
  }

  /// Attach the planted truth so --record phase summaries carry
  /// max/mean discrepancy (harness side only; `truth` must stay alive
  /// for the run).
  void record_truth(const matrix::PreferenceMatrix& truth) {
    if (recorder_ != nullptr) recorder_->set_output_evaluator(make_truth_evaluator(truth));
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void metric(const std::string& key, double v) { metrics_[key] = v; }

  /// The oracle ledgers, under the conventional keys.
  void oracle_totals(const billboard::ProbeOracle& oracle) {
    metric("rounds", static_cast<double>(oracle.max_invocations()));
    metric("total_probes", static_cast<double>(oracle.total_invocations()));
  }

  int finish(bool ok) {
    const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    if (tracer_ != nullptr) {
      if (obs::tracer() == tracer_.get()) obs::set_tracer(nullptr);
      tracer_->flush();
    }
    if (recorder_ != nullptr) {
      if (obs::recorder() == recorder_.get()) obs::set_recorder(nullptr);
      recorder_->flush();
    }
    if (!metrics_path_.empty()) {
      try {
        io::atomic_write_file(metrics_path_,
                              obs::MetricsRegistry::global().snapshot().to_json() + "\n");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: cannot write %s: %s\n", metrics_path_.c_str(),
                     e.what());
      }
    }
    std::ostringstream js;
    js << "{\"bench\":\"" << name_ << "\",\"kernel\":\""
       << bits::kernels::backend_name(bits::kernels::active_backend())
       << "\",\"ok\":" << (ok ? "true" : "false") << ",\"wall_ms\":" << wall_ms
       << ",\"metrics\":{";
    bool first = true;
    for (const auto& [key, v] : metrics_) {
      if (!first) js << ',';
      first = false;
      js << '"' << key << "\":";
      char buf[40];
      if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", v);
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
      }
      js << buf;
    }
    js << "}}\n";
    try {
      // The trajectory tooling may read BENCH_*.json while a bench is
      // re-running; the atomic path means it never sees a torn file.
      io::atomic_write_file(json_path_, js.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: cannot write %s: %s\n", json_path_.c_str(), e.what());
    }
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", name_.c_str());
    return ok ? 0 : 1;
  }

 private:
  std::string name_;
  std::string json_path_;
  std::string metrics_path_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, double> metrics_;
  // tmwia-lint: allow(durable-write) streaming event sink, not a one-shot artifact
  std::ofstream trace_out_;
  std::unique_ptr<obs::Tracer> tracer_;
  // tmwia-lint: allow(durable-write) streaming event sink, not a one-shot artifact
  std::ofstream record_out_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
};

/// If the harness was invoked with --csv=DIR, mirror `table` to
/// DIR/<name>.csv for plotting.
inline void maybe_write_csv(const io::Args& args, const io::Table& table,
                            const std::string& name) {
  const auto dir = args.get("csv");
  if (!dir) return;
  const std::string path = *dir + "/" + name + ".csv";
  std::ostringstream os;
  table.write_csv(os);
  try {
    io::atomic_write_file(path, os.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", path.c_str(), e.what());
  }
}

}  // namespace tmwia::bench
