// tmwia-lint: allow-file(raw-io) bench harness: prints the table + audit diagnostics.
// E17 — serving-layer load harness.
//
// Stands up a RecommendationService with several planted-community
// tenants, runs the background refiner concurrently with a sustained
// mixed recommend/estimate request stream from the foreground thread,
// and then checks the serving contract end to end:
//
//   * every response's (epoch, cache_hash) pair matches the service's
//     publish ledger — a torn or mixed-version read could not,
//   * every tenant's ProtocolAuditor is clean over all refinement
//     traffic,
//   * every tenant published at least --min-epochs refinement epochs,
//   * no response came back degraded (no faults are injected here).
//
// Latency percentiles (p50/p95/p99) and cache staleness come from the
// global MetricsRegistry histograms the service feeds — the same series
// `tmwia_cli serve --metrics=...` exports — so the BENCH json measures
// the production instrumentation path, not a bench-local stopwatch.
//
// Usage:
//   e17_serve [--requests=N] [--tenants=T] [--epochs=E] [--min-epochs=M]
//             [--players=n] [--objects=m] [--seed=S] [--k=K]
//             [--json=FILE] [--kernel=B] [--threads=N]

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/rng.hpp"
#include "tmwia/serve/service.hpp"

namespace {

using namespace tmwia;

struct TenantUnderTest {
  std::string name;
  matrix::PreferenceMatrix truth;  // kept to score final estimate quality
  std::size_t players = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e17_serve");

  const auto requests = static_cast<std::uint64_t>(args.get_int("requests", 100000));
  const auto tenant_count = static_cast<std::size_t>(args.get_int("tenants", 2));
  const auto epochs = static_cast<std::uint64_t>(args.get_int("epochs", 6));
  const auto min_epochs = static_cast<std::uint64_t>(args.get_int("min-epochs", 2));
  const auto n = static_cast<std::size_t>(args.get_int("players", 48));
  const auto m = static_cast<std::size_t>(args.get_int("objects", 96));
  const auto k = static_cast<std::size_t>(args.get_int("k", 8));
  const std::uint64_t seed = args.get_seed("seed", 1);

  // The service reports through the global registry whether or not the
  // caller asked for a --metrics artifact; the percentiles below need it.
  obs::MetricsRegistry::global().set_enabled(true);

  serve::RecommendationService service;
  std::vector<TenantUnderTest> tenants;
  tenants.reserve(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    serve::TenantConfig cfg;
    cfg.name = "t" + std::to_string(t);
    cfg.alpha = 0.5;
    cfg.seed = seed + t;  // distinct hidden matrices per tenant
    cfg.algo = "unknown_d";
    rng::Rng gen = rng::Rng(cfg.seed).split(0x6e57, 0);
    auto inst = matrix::planted_community(n, m, {cfg.alpha, 0}, gen);
    tenants.push_back(TenantUnderTest{cfg.name, inst.matrix, n});
    service.add_tenant(std::move(cfg), std::move(inst));
  }

  service.start_refiner(epochs);

  // Foreground load: round-robin tenants, 3:1 recommend:estimate mix,
  // sweeping players. Runs while the refiner publishes new versions.
  std::uint64_t bad = 0;           // !ok or missing view
  std::uint64_t hash_mismatch = 0; // (epoch, hash) not in the publish ledger
  std::uint64_t degraded = 0;
  std::uint64_t max_staleness = 0;
  for (std::uint64_t i = 0; i < requests; ++i) {
    const auto& t = tenants[i % tenants.size()];
    const auto player = static_cast<std::uint32_t>((i / tenants.size()) % t.players);
    const serve::Response r = (i % 4 == 3) ? service.estimate(t.name, player)
                                           : service.recommend(t.name, player, k);
    if (!r.ok || !r.has_view) {
      ++bad;
      continue;
    }
    if (service.published_hash(t.name, r.epoch) != r.cache_hash || r.cache_hash == 0) {
      ++hash_mismatch;
    }
    if (r.degraded) ++degraded;
    if (r.staleness > max_staleness) max_staleness = r.staleness;
  }

  service.stop_refiner();

  // Top the slower tenants up so the epoch floor is about the contract,
  // not about how far the refiner happened to get during the stream.
  for (const auto& t : tenants) {
    while (service.tenant(t.name)->epochs_published() < min_epochs) service.refine(t.name);
  }

  bool audits_clean = true;
  bool epochs_met = true;
  double mean_err = 0.0;
  std::uint64_t total_probes = 0;
  std::uint64_t rounds = 0;
  for (const auto& t : tenants) {
    serve::Tenant* tenant = service.tenant(t.name);
    if (!tenant->audit().clean()) {
      audits_clean = false;
      std::fprintf(stderr, "e17: tenant %s failed its protocol audit\n", t.name.c_str());
    }
    if (tenant->epochs_published() < min_epochs) epochs_met = false;
    const auto v = tenant->cache().current();
    mean_err += bench::mean_error(v->estimates, t.truth, bench::iota_players(t.players));
    total_probes += tenant->total_probes();
    rounds += tenant->rounds();
  }
  mean_err /= static_cast<double>(tenants.size());

  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto& lat = snap.histograms.at("serve.request_us");
  const auto& stale = snap.histograms.at("serve.staleness_epochs");

  io::Table table("E17: serving layer under mixed load",
                  {{"requests"}, {"tenants"}, {"epochs"}, {"p50_us", 1}, {"p95_us", 1},
                   {"p99_us", 1}, {"stale_p95", 2}, {"mean_err", 3}});
  table.add_row({static_cast<long long>(requests), static_cast<long long>(tenant_count),
                 static_cast<long long>(epochs), lat.percentile(0.50), lat.percentile(0.95),
                 lat.percentile(0.99), stale.percentile(0.95), mean_err});
  table.print(std::cout);
  bench::maybe_write_csv(args, table, "e17_serve");

  report.metric("requests", static_cast<double>(requests));
  report.metric("tenants", static_cast<double>(tenant_count));
  report.metric("bad_responses", static_cast<double>(bad));
  report.metric("hash_mismatches", static_cast<double>(hash_mismatch));
  report.metric("degraded_responses", static_cast<double>(degraded));
  report.metric("p50_us", lat.percentile(0.50));
  report.metric("p95_us", lat.percentile(0.95));
  report.metric("p99_us", lat.percentile(0.99));
  report.metric("staleness_p95", stale.percentile(0.95));
  report.metric("max_staleness", static_cast<double>(max_staleness));
  report.metric("mean_error", mean_err);
  report.metric("total_probes", static_cast<double>(total_probes));
  report.metric("rounds", static_cast<double>(rounds));

  const bool ok = bad == 0 && hash_mismatch == 0 && degraded == 0 && audits_clean &&
                  epochs_met && !service.any_degraded();
  return report.finish(ok);
}
