// tmwia-lint: allow-file(raw-io) bench harness: prints the table + overhead diagnostics.
// E18 — observability overhead gate for the serving path.
//
// Runs the same foreground serve workload twice per trial — telemetry
// OFF (no exporter, profiler disabled) and telemetry ON (profiler +
// TelemetryExporter + SLO watchdog, the full `tmwia_cli serve
// --telemetry --slo` stack) — and gates the relative slowdown:
//
//     overhead = (min_on - min_off) / min_off  <=  --max-overhead (5%)
//
// Arms are interleaved across --trials runs and the gate uses the
// best PAIRED ratio — min over trials of (on - off) / off within the
// same trial — because machine noise is correlated inside a trial and
// can exceed the budget across trials. An untimed warmup arm runs
// first so one-time costs (zone interning, allocator growth) don't
// bill the first measured trial. The MetricsRegistry is enabled in BOTH arms —
// the service always feeds it, and the gate is about the *added* cost
// of the profiler zones, the periodic exporter ticks and the watchdog
// window, not about metrics counters that predate this layer.
//
// Each arm builds its own service (fresh tenants, same seeds) and the
// timer covers the whole session — foreground refinement epochs plus
// the recommend/estimate/stats loop — the same shape as an e17 run.
// Refinement is where the profiler zones fire densest (the unknown-D
// tower), so the gate genuinely measures the deposit overhead, while
// the tick cadence (--every) is sized for the request rate: each tick
// serializes a full snapshot + exposition, so a per-request cadence
// would measure JSON encoding, not instrumentation.
//
// Usage:
//   e18_telemetry [--requests=N] [--tenants=T] [--epochs=E]
//                 [--players=n] [--objects=m] [--seed=S] [--k=K]
//                 [--trials=T] [--every=N] [--max-overhead=F]
//                 [--stream=FILE] [--json=FILE] [--kernel=B] [--threads=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/profile.hpp"
#include "tmwia/obs/slo.hpp"
#include "tmwia/obs/telemetry.hpp"
#include "tmwia/rng/rng.hpp"
#include "tmwia/serve/service.hpp"

namespace {

using namespace tmwia;

struct WorkloadConfig {
  std::uint64_t requests = 0;
  std::size_t tenants = 0;
  std::uint64_t epochs = 0;
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t k = 0;
  std::uint64_t seed = 0;
};

struct ArmResult {
  double wall_ms = 0.0;            // request loop only
  std::uint64_t failed = 0;        // !ok responses (any means FAIL)
  std::uint64_t records = 0;       // telemetry lines written (ON arm)
  std::uint64_t ticks = 0;         // exporter ticks (ON arm)
  std::uint64_t alerts = 0;        // SLO alerts (ON arm; expected 0)
};

// One arm: fresh service + tenants, foreground refinement, then the
// timed request loop. `telemetry` is null for the OFF arm.
ArmResult run_arm(const WorkloadConfig& w, obs::TelemetryExporter* telemetry) {
  const auto start = std::chrono::steady_clock::now();
  serve::RecommendationService service;
  service.set_telemetry(telemetry);
  for (std::size_t t = 0; t < w.tenants; ++t) {
    serve::TenantConfig cfg;
    cfg.name = "t" + std::to_string(t);
    cfg.alpha = 0.5;
    cfg.seed = w.seed + t;
    cfg.algo = "unknown_d";
    rng::Rng gen = rng::Rng(cfg.seed).split(0x6e57, 0);
    auto inst = matrix::planted_community(w.n, w.m, {cfg.alpha, 0}, gen);
    service.add_tenant(std::move(cfg), std::move(inst));
  }
  for (std::size_t t = 0; t < w.tenants; ++t) {
    for (std::uint64_t e = 0; e < w.epochs; ++e) service.refine("t" + std::to_string(t));
  }

  ArmResult res;
  for (std::uint64_t i = 0; i < w.requests; ++i) {
    const std::string tenant = "t" + std::to_string(i % w.tenants);
    const auto player = static_cast<std::uint32_t>((i / w.tenants) % w.n);
    serve::Response r;
    switch (i % 8) {
      case 3: r = service.estimate(tenant, player); break;
      case 7: r = service.stats(tenant); break;
      default: r = service.recommend(tenant, player, w.k); break;
    }
    if (!r.ok) ++res.failed;
  }
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e18_telemetry");

  WorkloadConfig w;
  w.requests = static_cast<std::uint64_t>(args.get_int("requests", 20000));
  w.tenants = static_cast<std::size_t>(args.get_int("tenants", 2));
  w.epochs = static_cast<std::uint64_t>(args.get_int("epochs", 5));
  w.n = static_cast<std::size_t>(args.get_int("players", 48));
  w.m = static_cast<std::size_t>(args.get_int("objects", 96));
  w.k = static_cast<std::size_t>(args.get_int("k", 8));
  w.seed = args.get_seed("seed", 1);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const auto every = static_cast<std::size_t>(args.get_int("every", 2048));
  const double max_overhead = [&] {
    const auto s = args.get("max-overhead");
    return s.has_value() ? std::stod(*s) : 0.05;
  }();
  const std::string stream_path =
      args.get("stream").value_or(bench::default_json_path("e18_stream") + "l");

  // Both arms feed the registry; only the ON arm adds profiler +
  // exporter + watchdog on top.
  obs::MetricsRegistry::global().set_enabled(true);

  // Warmup (untimed): a small ON arm interns every dynamic profile
  // zone and grows the exporter's buffers once, off the clock.
  {
    obs::Profiler::global().set_enabled(true);
    obs::SloWatchdog warm_watchdog(obs::SloSpec::parse("degraded=0,window=256"));
    obs::TelemetryConfig warm_cfg;
    warm_cfg.path = stream_path;
    warm_cfg.every = every;
    obs::TelemetryExporter warm_exporter(warm_cfg, obs::MetricsRegistry::global(),
                                         &obs::Profiler::global(), &warm_watchdog);
    WorkloadConfig warm = w;
    warm.requests = w.requests / 4;
    warm.epochs = 1;
    (void)run_arm(warm, &warm_exporter);
    obs::Profiler::global().set_enabled(false);
  }

  double min_off = 0.0;
  double min_on = 0.0;
  double best_overhead = 0.0;
  std::uint64_t failed = 0;
  std::uint64_t records = 0;
  std::uint64_t ticks = 0;
  std::uint64_t alerts = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    // OFF arm.
    obs::Profiler::global().set_enabled(false);
    const ArmResult off = run_arm(w, nullptr);
    failed += off.failed;

    // ON arm: full serve observability stack, fresh stream each trial.
    obs::Profiler::global().reset();
    obs::Profiler::global().set_enabled(true);
    obs::SloWatchdog watchdog(
        obs::SloSpec::parse("p99_us=60000000,staleness=64,degraded=0,window=256"));
    obs::TelemetryConfig tcfg;
    tcfg.path = stream_path;
    tcfg.every = every;
    ArmResult on;
    {
      obs::TelemetryExporter exporter(tcfg, obs::MetricsRegistry::global(),
                                      &obs::Profiler::global(), &watchdog);
      on = run_arm(w, &exporter);
      exporter.finish();
      on.records = exporter.records_written();
      on.ticks = exporter.ticks();
      on.alerts = exporter.alerts_written();
    }
    obs::Profiler::global().set_enabled(false);
    failed += on.failed;
    records = on.records;  // per-trial stream; keep the last
    ticks = on.ticks;
    alerts += on.alerts;

    const double paired =
        off.wall_ms > 0.0 ? (on.wall_ms - off.wall_ms) / off.wall_ms : 0.0;
    if (trial == 0 || off.wall_ms < min_off) min_off = off.wall_ms;
    if (trial == 0 || on.wall_ms < min_on) min_on = on.wall_ms;
    if (trial == 0 || paired < best_overhead) best_overhead = paired;
    std::fprintf(stderr, "e18: trial %zu: off=%.1fms on=%.1fms paired=%.2f%%\n", trial,
                 off.wall_ms, on.wall_ms, paired * 100.0);
  }

  const double overhead = best_overhead;

  io::Table table("E18: telemetry overhead on the serve hot path",
                  {{"requests"}, {"trials"}, {"off_ms", 1}, {"on_ms", 1},
                   {"overhead_pct", 2}, {"records"}, {"ticks"}});
  table.add_row({static_cast<long long>(w.requests), static_cast<long long>(trials),
                 min_off, min_on, overhead * 100.0, static_cast<long long>(records),
                 static_cast<long long>(ticks)});
  table.print(std::cout);
  bench::maybe_write_csv(args, table, "e18_telemetry");

  report.metric("requests", static_cast<double>(w.requests));
  report.metric("trials", static_cast<double>(trials));
  report.metric("wall_off_ms", min_off);
  report.metric("wall_on_ms", min_on);
  report.metric("overhead_pct", overhead * 100.0);
  report.metric("max_overhead_pct", max_overhead * 100.0);
  report.metric("telemetry_records", static_cast<double>(records));
  report.metric("ticks", static_cast<double>(ticks));
  report.metric("alerts", static_cast<double>(alerts));

  // Gate: responses all served, a stream actually materialized (the ON
  // arm must tick at least once), no spurious SLO alerts, and the
  // telemetry stack cost at most --max-overhead of the OFF hot path.
  const bool ok = failed == 0 && records > 0 && ticks > 0 && alerts == 0 &&
                  overhead <= max_overhead;
  if (overhead > max_overhead) {
    std::fprintf(stderr, "e18: overhead %.2f%% exceeds budget %.2f%%\n", overhead * 100.0,
                 max_overhead * 100.0);
  }
  return report.finish(ok);
}
