// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E12 — the [4] comparator (Awerbuch, Patt-Shamir, Peleg, Tuttle,
// SODA'05), which this paper generalizes: finding ONE commonly liked
// object costs O(m + n log |P|) probes *total* across all players —
// exponentially cheaper per player than reconstructing full preference
// vectors, which is the gap between [4] and Theorem 1.1.
//
// Sweep n (m = 2n): report total probes vs the m + n log n budget and
// vs the naive n*m, plus the spread time (rounds after the first hit).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "tmwia/core/good_object.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e12_good_object");
  const auto seed = args.get_seed("seed", 12);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 5));

  io::Table table("E12: one-good-object cost ([4]'s O(m + n log n) claim), one shared "
                  "liked object",
                  {{"n"}, {"m"}, {"total_probes", 0}, {"budget m+n*log n", 0},
                   {"naive n*m"}, {"rounds", 0}, {"found_rate", 2}});

  bool ok = true;
  for (std::size_t n : {128, 256, 512, 1024}) {
    const std::size_t m = 2 * n;
    stats::Summary probes, rounds;
    std::size_t found = 0, want = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      rng::Rng gen(seed + t * 31 + n);
      // Only one object is liked by everyone; everything else is junk.
      matrix::PreferenceMatrix mat(n, m);
      const auto shared = static_cast<matrix::ObjectId>(gen.uniform(m));
      for (matrix::PlayerId p = 0; p < n; ++p) mat.set_value(p, shared, true);

      billboard::ProbeOracle oracle(mat);
      const auto res = core::good_object(oracle, {}, rng::Rng(seed ^ (t + n)));
      probes.add(static_cast<double>(res.total_probes));
      rounds.add(static_cast<double>(res.rounds));
      want += n;
      for (const auto& f : res.found) {
        if (f.has_value()) ++found;
      }
    }
    const double budget = static_cast<double>(m) + static_cast<double>(n) *
                                                       std::log2(static_cast<double>(n));
    if (probes.mean() > 8.0 * budget) ok = false;
    if (found != want) ok = false;
    table.add_row({static_cast<long long>(n), static_cast<long long>(m), probes.mean(),
                   budget, static_cast<long long>(n * m), rounds.mean(),
                   static_cast<double>(found) / static_cast<double>(want)});
  }
  table.print(std::cout);
  std::cout << "\nPaper context ([4], cited as the closest prior work): a single good "
               "recommendation needs only O(m + n log |P|) probes overall — two to "
               "three orders of magnitude under the naive n*m — while reconstructing "
               "*complete* preference vectors (this paper's problem) needs the full "
               "Zero/Small/Large Radius machinery.\n";
  return report.finish(ok);
}
