// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E10 — Section 6: the anytime algorithm. Without knowing alpha (or D),
// run phases with alpha = 1/2, 1/4, ...; after each phase every player
// keeps the better of its previous and new output via RSelect. At any
// stopping time the quality should be close to the best achievable for
// the rounds spent so far.
//
// To keep the budget axis *below* the solo cost m at laptop scale, the
// phases run the D = 0 algorithm (Zero Radius) — the general unknown-D
// phases have exactly the same doubling structure but their safety
// constants exceed m at these sizes (see E8's scale note).
//
// Workload: one exact-agreement community of fraction alpha* = 1/8.
// Phases with alpha > alpha* cannot resolve it (the vote thresholds are
// too high for a 1/8 minority); the alpha = 1/8 phase locks the
// discrepancy to 0 — and the cumulative rounds are still well under m.
//
// The phases use the paper's alpha/2 vote fraction rather than
// practical()'s 0.25: the blindness claim needs the phase-1 quorum
// (zr_vote_frac * alpha) to sit strictly ABOVE the planted fraction
// 1/8, and 0.25 * 0.5 lands exactly ON it — a coin-flip verdict.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/rselect.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e10_anytime");
  const auto seed = args.get_seed("seed", 10);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 1024));
  auto params = core::Params::practical();
  params.zr_vote_frac = 0.5;  // paper's alpha/2 quorum (see header note)

  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, n, {0.125, 0}, gen);

  io::Table table("E10: anytime quality vs budget (community alpha*=1/8, D=0, n=m=1024)",
                  {{"phase"}, {"alpha", 4}, {"cum_rounds"}, {"community_disc"},
                   {"solo budget m"}});

  billboard::ProbeOracle oracle(inst.matrix);
  const auto players = bench::iota_players(n);
  const auto objects = bench::iota_objects(n);
  const auto before = oracle.snapshot();

  std::vector<bits::BitVector> current(n, bits::BitVector(n));
  std::vector<std::size_t> discs;
  for (std::size_t phase = 1; phase <= 3; ++phase) {
    const double alpha = std::pow(0.5, static_cast<double>(phase));
    auto run = core::zero_radius_bits(oracle, nullptr, players, objects, alpha, params,
                                      rng::Rng(seed ^ (phase * 7919)));
    if (phase == 1) {
      current = std::move(run);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::vector<bits::BitVector> cands{current[i], run[i]};
        rng::Rng prng = rng::Rng(seed).split(phase, i);
        const auto sel = core::rselect_closest(
            cands, n,
            [&](std::uint32_t j) {
              return oracle.probe(static_cast<matrix::PlayerId>(i), j);
            },
            prng, params);
        if (sel.index == 1) current[i] = std::move(run[i]);
      }
    }
    const auto disc = inst.matrix.discrepancy(current, inst.communities[0]);
    discs.push_back(disc);
    table.add_row({static_cast<long long>(phase), alpha,
                   static_cast<long long>(oracle.rounds_since(before)),
                   static_cast<long long>(disc), static_cast<long long>(n)});
  }
  table.print(std::cout);

  const auto total_rounds = oracle.rounds_since(before);
  const bool early_blind = discs.front() > n / 8;   // alpha=1/2 can't see a 1/8 community
  const bool final_exact = discs.back() == 0;       // alpha=1/8 phase resolves it
  const bool under_solo = total_rounds < n / 2;     // entire schedule beats solo probing
  const bool ok = early_blind && final_exact && under_solo;
  report.metric("rounds", static_cast<double>(total_rounds));
  report.metric("final_discrepancy", static_cast<double>(discs.back()));

  std::cout << "\nPaper (Section 6): repeated doubling over alpha yields an anytime "
               "algorithm whose output at time t is close to the best possible for a "
               "t-round budget. Measured: the alpha = 1/2 phase cannot see a 1/8 "
               "community (disc ~ m/2); once alpha reaches the community's scale "
               "(within the 2x the vote-fraction slack allows) the discrepancy drops "
               "to 0, and the whole schedule costs "
            << total_rounds << " rounds — under half the solo budget m = " << n
            << ". RSelect's keep-the-better step makes quality non-regressing.\n";
  return report.finish(ok);
}
