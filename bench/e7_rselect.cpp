// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E7 — Theorem 6.1: Algorithm RSelect solves Choose Closest with no
// distance bound in O(|V|^2 log n) probes, returning a candidate within
// O(D) of the best.
//
// Sweep |V|; the planted best candidate sits at distance D_best, decoys
// at >= 4x that. Report probes against the quadratic budget and the
// worst output-distance factor.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "tmwia/core/rselect.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e7_rselect");
  const auto seed = args.get_seed("seed", 7);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 60));
  const std::size_t m = static_cast<std::size_t>(args.get_int("m", 1024));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 1024));
  const core::Params params = core::Params::practical();

  io::Table table("E7: RSelect probes and output quality (Theorem 6.1), m=n=1024",
                  {{"|V|"}, {"D_best"}, {"probes_mean", 0}, {"budget |V|^2 c log n", 0},
                   {"worst_factor", 2}, {"zero_loss_rate", 2}});

  bool ok = true;
  rng::Rng root(seed);
  const double per_pair = std::ceil(params.rs_c * std::log2(static_cast<double>(n)));
  for (std::size_t k : {2, 4, 8, 16}) {
    for (std::size_t d_best : {4, 16}) {
      stats::Summary probes;
      double worst_factor = 0.0;
      std::size_t zero_loss = 0;
      rng::Rng rng = root.split(k, d_best);
      for (std::size_t t = 0; t < trials; ++t) {
        const auto truth = matrix::random_vector(m, rng);
        std::vector<bits::BitVector> cands;
        cands.push_back(matrix::flip_random(truth, d_best, rng));
        for (std::size_t i = 1; i < k; ++i) {
          cands.push_back(
              matrix::flip_random(truth, 4 * d_best + rng.uniform(m / 2), rng));
        }
        rng::Rng prng = rng.split(t);
        const auto res = core::rselect_closest(
            cands, n, [&](std::uint32_t j) { return truth.get(j); }, prng, params);
        probes.add(static_cast<double>(res.probes));
        worst_factor = std::max(
            worst_factor, static_cast<double>(truth.hamming(cands[res.index])) /
                              static_cast<double>(d_best));
        if (res.losses[res.index] == 0) ++zero_loss;
      }
      const double budget =
          static_cast<double>(k * (k - 1) / 2) * per_pair;
      if (probes.max() > budget) ok = false;
      if (worst_factor > 8.0) ok = false;
      table.add_row({static_cast<long long>(k), static_cast<long long>(d_best),
                     probes.mean(), budget, worst_factor,
                     static_cast<double>(zero_loss) / static_cast<double>(trials)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: O(|V|^2 log n) probes regardless of distances; output within "
               "O(D) of the closest candidate w.h.p.\n";
  return report.finish(ok);
}
