// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E14 — Byzantine vote manipulation ("some eBay users may be
// dishonest", Section 1). A coalition of liars coordinates on a forged
// vector to cross Zero Radius's popularity threshold. Two policies are
// compared for the honest adopters:
//
//  * probe-verified Select (the paper's design): a forged popular
//    candidate is eliminated at its first distinguishing coordinate —
//    correctness survives ANY liar fraction, the attack only costs
//    extra probes;
//  * trust-the-top-vote (a plausible but naive shortcut): adopt the
//    most-voted vector without probing — poisoned as soon as the
//    coalition outvotes the honest community in some recursion node.
//
// Sweep the liar fraction; report honest-community exactness and probe
// overhead under both policies.
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "tmwia/billboard/billboard.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"

using namespace tmwia;

namespace {

/// The naive policy: one global vote over full posted vectors, everyone
/// adopts the top-voted one (no probing). Simulates what happens when a
/// recommendation system trusts raw popularity.
bits::BitVector top_vote(const std::vector<bits::BitVector>& posts) {
  const auto tallied = billboard::tally(posts, 1);
  const billboard::VotedVector* best = nullptr;
  for (const auto& vv : tallied) {
    if (best == nullptr || vv.votes > best->votes) best = &vv;
  }
  return best->vec;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e14_byzantine");
  const auto seed = args.get_seed("seed", 14);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 256));
  const double alpha = 0.4;
  const auto params = core::Params::practical();

  io::Table table("E14: coordinated forged-vote attack (community alpha = 0.4, n = 256)",
                  {{"liar_frac", 2}, {"select_exact_rate", 2}, {"probe_overhead_pct", 1},
                   {"topvote_exact_rate", 2}});

  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, n, {alpha, 0}, gen);
  const auto& community = inst.communities[0];
  const auto outsiders = inst.outsiders();
  const bits::BitVector forged = inst.centers[0] ^ bits::BitVector(n, true);

  const auto players = bench::iota_players(n);
  const auto objects = bench::iota_objects(n);

  // Baseline cost without any liars.
  std::uint64_t clean_probes = 0;
  {
    billboard::ProbeOracle oracle(inst.matrix);
    core::BitSpace space(oracle, nullptr);
    (void)core::zero_radius(space, players, objects, alpha, params, rng::Rng(seed + 1), n);
    clean_probes = oracle.total_invocations();
  }

  bool ok = true;
  bool naive_poisoned_somewhere = false;
  for (double frac : {0.0, 0.1, 0.2, 0.3, 0.5}) {
    const auto liar_count =
        std::min(outsiders.size(), static_cast<std::size_t>(frac * static_cast<double>(n)));
    std::vector<core::PlayerId> liars(outsiders.begin(),
                                      outsiders.begin() +
                                          static_cast<std::ptrdiff_t>(liar_count));

    billboard::ProbeOracle oracle(inst.matrix);
    core::BitSpace space(oracle, nullptr);
    space.set_byzantine(liars, forged);
    const auto outputs =
        core::zero_radius(space, players, objects, alpha, params, rng::Rng(seed + 1), n);

    std::size_t exact = 0;
    for (auto p : community) {
      if (outputs[p] == inst.centers[0]) ++exact;
    }
    const double exact_rate =
        static_cast<double>(exact) / static_cast<double>(community.size());
    const double overhead =
        100.0 * (static_cast<double>(oracle.total_invocations()) /
                     static_cast<double>(clean_probes) -
                 1.0);

    // The naive policy on the same posted data: honest players post
    // their true vectors, liars post the forgery.
    std::vector<bits::BitVector> posts;
    for (auto p : community) posts.push_back(inst.matrix.row(p));
    for (std::size_t i = 0; i < liar_count; ++i) posts.push_back(forged);
    const auto adopted = top_vote(posts);
    const double naive_rate = adopted == inst.centers[0] ? 1.0 : 0.0;
    if (naive_rate == 0.0) naive_poisoned_somewhere = true;

    if (exact_rate < 1.0) ok = false;
    table.add_row({frac, exact_rate, overhead, naive_rate});
  }
  table.print(std::cout);

  ok = ok && naive_poisoned_somewhere;
  std::cout << "\nProbing-based Select is the defense: a forged candidate must match "
               "every honest prober's own hidden bits to survive, so coordinated lying "
               "only adds Select probes (overhead column) and never flips the output. "
               "Raw popularity voting is poisoned as soon as the coalition outvotes the "
               "community.\n";
  return report.finish(ok);
}
