// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E6 — Theorem 5.4: Algorithm Large Radius handles D >> log n with
// output error O(D/alpha) and probing cost polylogarithmic in n
// (for m = Theta(n); a factor m/n more otherwise).
//
// Sweep D at fixed n and n at fixed D/m ratio; report worst typical
// error relative to the O(D/alpha) bound, rounds, and agreement of
// typical players (step 4's zero-diameter virtual instance).
#include <iostream>

#include "common.hpp"
#include "tmwia/core/large_radius.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e6_large_radius");
  const auto seed = args.get_seed("seed", 6);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const double alpha = args.get_double("alpha", 0.5);
  const auto params = core::Params::practical();

  io::Table table("E6: Large Radius error and cost (Theorem 5.4), alpha=1/2",
                  {{"n"}, {"m"}, {"D"}, {"groups L"}, {"worst_err"}, {"err/(D/a)", 2},
                   {"rounds", 0}, {"solo m"}, {"agree_rate", 2}});

  bool ok = true;
  struct Case {
    std::size_t n, m, radius;
  };
  for (const Case& c : {Case{256, 512, 16}, Case{256, 512, 32}, Case{512, 1024, 32},
                        Case{512, 1024, 64}, Case{1024, 2048, 64}}) {
    stats::Summary rounds;
    std::size_t worst_err = 0, D_used = 0, L = 0;
    std::size_t agree = 0, total = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      rng::Rng gen(seed + t * 997 + c.n + c.radius);
      auto inst = matrix::planted_community(c.n, c.m, {alpha, c.radius}, gen);
      const auto D = inst.matrix.subset_diameter(inst.communities[0]);
      D_used = D;
      billboard::ProbeOracle oracle(inst.matrix);
      const auto res = core::large_radius(oracle, nullptr, bench::iota_players(c.n),
                                          bench::iota_objects(c.m), alpha, D, params,
                                          rng::Rng(seed ^ (t * 13 + c.radius)));
      L = res.parts;
      rounds.add(static_cast<double>(oracle.max_invocations()));
      const auto& first = res.outputs[inst.communities[0][0]];
      for (auto p : inst.communities[0]) {
        worst_err = std::max(worst_err, res.outputs[p].hamming(inst.matrix.row(p)));
        ++total;
        if (res.outputs[p] == first) ++agree;
      }
    }
    const double ratio =
        static_cast<double>(worst_err) / (static_cast<double>(D_used) / alpha);
    const double agree_rate = static_cast<double>(agree) / static_cast<double>(total);
    if (ratio > 4.0) ok = false;
    if (agree_rate < 0.95) ok = false;
    table.add_row({static_cast<long long>(c.n), static_cast<long long>(c.m),
                   static_cast<long long>(D_used), static_cast<long long>(L),
                   static_cast<long long>(worst_err), ratio, rounds.mean(),
                   static_cast<long long>(c.m), agree_rate});
  }
  table.print(std::cout);
  std::cout << "\nPaper: error O(D/alpha) [column err/(D/a) bounded by a constant]; "
               "typical players end with identical outputs (step 4 runs a zero-diameter "
               "virtual instance); probes O(log^{7/2} n / alpha^2) for m = Theta(n).\n";
  return report.finish(ok);
}
