// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E13 — robustness to probe noise (the paper's intro: "various
// time-variable factors (such as noise, weather, mood) may create
// diversity as a side effect"). Sticky epsilon-noise turns an
// (alpha, D) community of true vectors into an (alpha, D + ~4*eps*m)
// community of *read* vectors; the claim to check is that feeding the
// noise-inflated D to the machinery restores the distance guarantee —
// i.e. noise is just diversity, exactly the paper's framing.
//
// Sweep eps for Zero Radius (D = 0 assumed, so it must degrade) and for
// Small Radius with inflated D (must stay within 5 * D_eff).
#include <iostream>

#include "common.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/small_radius.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e13_noise");
  const auto seed = args.get_seed("seed", 13);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 256));
  const auto params = core::Params::practical();

  io::Table table(
      "E13: sticky probe-noise robustness (exact community, alpha = 1, n = m = 256)",
      {{"eps", 3}, {"D_eff (=4*eps*m+2)"}, {"zr_worst_err"}, {"sr_worst_err"},
       {"5*D_eff bound"}, {"sr_ok"}});

  bool ok = true;
  for (double eps : {0.0, 0.005, 0.01, 0.02, 0.04}) {
    rng::Rng gen(seed + static_cast<std::uint64_t>(eps * 10000));
    auto inst = matrix::planted_community(n, n, {1.0, 1}, gen);

    const auto d_eff = static_cast<std::size_t>(
        2.0 + 4.0 * eps * static_cast<double>(n));

    // Zero Radius assumes D = 0: it fragments under noise but must not
    // collapse (errors stay O(eps * m), not O(m)).
    std::size_t zr_worst = 0;
    {
      billboard::ProbeOracle oracle(inst.matrix,
                                    billboard::NoiseModel::sticky(eps, seed * 3 + 1));
      const auto out =
          core::zero_radius_bits(oracle, nullptr, bench::iota_players(n),
                                 bench::iota_objects(n), 1.0, params, rng::Rng(seed + 7));
      for (matrix::PlayerId p = 0; p < n; ++p) {
        zr_worst = std::max(zr_worst, out[p].hamming(inst.matrix.row(p)));
      }
    }

    // Small Radius with the noise-inflated distance bound.
    std::size_t sr_worst = 0;
    {
      billboard::ProbeOracle oracle(inst.matrix,
                                    billboard::NoiseModel::sticky(eps, seed * 3 + 1));
      const auto res = core::small_radius(oracle, nullptr, bench::iota_players(n),
                                          bench::iota_objects(n), 1.0, d_eff, params,
                                          rng::Rng(seed + 9), n);
      for (matrix::PlayerId p = 0; p < n; ++p) {
        sr_worst = std::max(sr_worst, res.outputs[p].hamming(inst.matrix.row(p)));
      }
    }

    const bool sr_ok = sr_worst <= 5 * d_eff;
    if (!sr_ok) ok = false;
    if (zr_worst > 20 * d_eff + 8) ok = false;  // graceful, not collapsed
    table.add_row({eps, static_cast<long long>(d_eff), static_cast<long long>(zr_worst),
                   static_cast<long long>(sr_worst), static_cast<long long>(5 * d_eff),
                   static_cast<long long>(sr_ok)});
  }
  table.print(std::cout);
  std::cout << "\nReading noise as extra diversity and feeding the inflated D keeps the "
               "5D guarantee of Theorem 4.4 — no algorithmic change required, which is "
               "the point of parameterizing by community diameter rather than assuming "
               "a noise model.\n";
  return report.finish(ok);
}
