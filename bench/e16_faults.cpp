// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E16 — fault-injection sweep: how much quality do the fault-tolerant
// phases give up as players crash-stop and billboard posts vanish?
//
// The paper's model assumes full lockstep participation; the faults
// subsystem relaxes it. For a planted (alpha=0.5, D=2) community we
// sweep (a) the crash rate with probe failures fixed, (b) the post-drop
// rate with crashes off, and record the stretch of the *surviving*
// typical players plus the fault counters. The gate: survivors keep a
// bounded stretch while up to ~20% of the players die mid-run, and the
// run never throws — graceful degradation, not a cliff.
#include <iostream>

#include "common.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/matrix/generators.hpp"

using namespace tmwia;

namespace {

struct Outcome {
  double survivor_stretch = 0.0;
  std::size_t survivors = 0;
  faults::FaultReport report;
};

Outcome run_faulty(const matrix::Instance& inst, const faults::FaultPlan& plan,
                   std::size_t D, std::uint64_t seed) {
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  faults::FaultInjector injector(plan, inst.matrix.players());
  oracle.set_fault_injector(&injector);

  const auto res = core::find_preferences(oracle, &board, 0.5, D,
                                          core::Params::practical(), rng::Rng(seed));

  Outcome out;
  std::vector<matrix::PlayerId> survivors;
  for (matrix::PlayerId p : inst.communities[0]) {
    if (!injector.is_failed(p)) survivors.push_back(p);
  }
  out.survivors = survivors.size();
  if (!survivors.empty()) {
    out.survivor_stretch = inst.matrix.stretch(res.outputs, survivors);
  }
  out.report = injector.report();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e16_faults");
  const auto seed = args.get_seed("seed", 16);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 256));

  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, n, {0.5, 2}, gen);
  // With --record, phase summaries get real discrepancy-vs-truth.
  report.record_truth(inst.matrix);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);

  bool ok = true;

  io::Table crash_table(
      "E16a: crash-rate sweep (probe=0.02, retry=3; survivors of the planted community)",
      {{"crash_rate", 2}, {"crashed"}, {"degraded"}, {"orphaned"}, {"survivors"},
       {"stretch", 2}, {"ok"}});
  for (double rate : {0.0, 0.05, 0.1, 0.2}) {
    faults::FaultPlan plan;
    plan.seed = seed + 1;
    plan.crash_rate = rate;
    plan.crash_round_lo = 40;
    plan.crash_round_hi = 400;
    plan.probe_fail_rate = 0.02;
    const auto out = run_faulty(inst, plan, D, seed + 2);
    // Gate: survivors stay within a generous constant-stretch envelope
    // (the no-fault practical profile sits well under 4).
    const bool row_ok = out.survivors > 0 && out.survivor_stretch <= 12.0;
    if (!row_ok) ok = false;
    crash_table.add_row({rate, static_cast<long long>(out.report.crashed.size()),
                         static_cast<long long>(out.report.degraded.size()),
                         static_cast<long long>(out.report.orphaned.size()),
                         static_cast<long long>(out.survivors), out.survivor_stretch,
                         static_cast<long long>(row_ok)});
  }
  crash_table.print(std::cout);
  bench::maybe_write_csv(args, crash_table, "e16_crash");

  io::Table drop_table(
      "E16b: post-drop sweep (no crashes; orphan adoption must absorb lost posts)",
      {{"drop_rate", 2}, {"posts_dropped"}, {"orphaned"}, {"stretch", 2}, {"ok"}});
  for (double rate : {0.0, 0.1, 0.25, 0.5}) {
    faults::FaultPlan plan;
    plan.seed = seed + 3;
    plan.post_drop_rate = rate;
    const auto out = run_faulty(inst, plan, D, seed + 2);
    const bool row_ok = out.survivor_stretch <= 12.0;
    if (!row_ok) ok = false;
    drop_table.add_row({rate, static_cast<long long>(out.report.posts_dropped),
                        static_cast<long long>(out.report.orphaned.size()),
                        out.survivor_stretch, static_cast<long long>(row_ok)});
  }
  drop_table.print(std::cout);
  bench::maybe_write_csv(args, drop_table, "e16_drop");

  std::cout << "\nCrash-stop and post loss cost rounds (retries, re-votes) and shrink the "
               "quorum, but the survivor stretch stays in the constant regime: quorum "
               "thresholds scale with the survivors and orphaned players re-adopt from "
               "the surviving posts instead of failing the run.\n";
  return report.finish(ok);
}
