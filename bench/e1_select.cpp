// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E1 — Theorem 3.2: Algorithm Select solves Choose Closest with at most
// k(D+1) probes and returns the (lexicographically first) closest
// candidate.
//
// Workload: random truth vector, one candidate planted within D, the
// remaining k-1 uniform. Reported per (k, D): mean and max probes, the
// theorem bound, and the fraction of trials returning a truly closest
// candidate.
#include <cstdlib>
#include <iostream>

#include "common.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e1_select");
  const auto seed = args.get_seed("seed", 1);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 100));
  const std::size_t m = static_cast<std::size_t>(args.get_int("m", 512));

  io::Table table("E1: Select probe cost vs the k(D+1) bound (Theorem 3.2)",
                  {{"k"}, {"D"}, {"probes_mean", 1}, {"probes_max"}, {"bound k(D+1)"},
                   {"exact_rate", 3}});

  bool ok = true;
  rng::Rng root(seed);
  for (std::size_t k : {2, 4, 8, 16, 32, 64}) {
    for (std::size_t D : {0, 2, 8, 32}) {
      stats::Summary probes;
      std::size_t exact = 0;
      rng::Rng rng = root.split(k, D);
      for (std::size_t t = 0; t < trials; ++t) {
        const auto truth = matrix::random_vector(m, rng);
        std::vector<bits::BitVector> cands;
        cands.push_back(matrix::flip_random(truth, rng.uniform(D + 1), rng));
        for (std::size_t i = 1; i < k; ++i) {
          cands.push_back(matrix::random_vector(m, rng));
        }
        const auto res = core::select_closest(
            cands, D, [&](std::uint32_t j) { return truth.get(j); });
        probes.add(static_cast<double>(res.probes));
        std::size_t best = m;
        for (const auto& c : cands) best = std::min(best, truth.hamming(c));
        if (truth.hamming(cands[res.index]) == best) ++exact;

        if (res.probes > k * (D + 1)) ok = false;
      }
      if (exact != trials) ok = false;
      table.add_row({static_cast<long long>(k), static_cast<long long>(D), probes.mean(),
                     static_cast<long long>(probes.max()),
                     static_cast<long long>(k * (D + 1)),
                     static_cast<double>(exact) / static_cast<double>(trials)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: probes <= k(D+1), output is a closest candidate (deterministic).\n";
  return report.finish(ok);
}
