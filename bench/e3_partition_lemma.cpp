// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E3 — Lemma 4.1: partition a coordinate set into s parts; if the M
// input vectors have pairwise distance <= d, then with probability
// >= 1 - 10^3*5^5*d^3 / (6! * s^2), every part has >= M/5 vectors that
// agree on it exactly. In particular s >= 100 d^{3/2} pushes the
// failure probability under 1/2.
//
// We measure the empirical failure rate as a function of s / d^{3/2}
// and print it against the lemma's analytic bound.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/partition.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

namespace {

/// One experiment: random vectors of pairwise distance <= d, one random
/// partition; success iff every part has >= M/5 exactly-agreeing
/// vectors.
bool partition_successful(std::size_t M, std::size_t m, std::size_t d, std::size_t s,
                          rng::Rng& rng) {
  // Adversarial-ish input: every vector at exactly d/2 flips from the
  // center, so agreeing on a part requires all flips to miss it — the
  // regime where the number of parts actually matters.
  const auto center = matrix::random_vector(m, rng);
  std::vector<bits::BitVector> vs;
  vs.reserve(M);
  for (std::size_t i = 0; i < M; ++i) {
    vs.push_back(matrix::flip_random(center, d / 2, rng));
  }
  const auto parts = rng::random_partition(m, s, rng);
  const std::size_t need = (M + 4) / 5;

  for (const auto& part : parts.parts) {
    // Count the largest group of vectors agreeing exactly on `part`.
    std::vector<bits::BitVector> projections;
    projections.reserve(M);
    for (const auto& v : vs) projections.push_back(v.project(part));
    std::size_t best = 0;
    std::vector<bool> used(M, false);
    for (std::size_t i = 0; i < M && best < need; ++i) {
      if (used[i]) continue;
      std::size_t group = 0;
      for (std::size_t j = i; j < M; ++j) {
        if (!used[j] && projections[j] == projections[i]) {
          used[j] = true;
          ++group;
        }
      }
      best = std::max(best, group);
    }
    if (best < need) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e3_partition_lemma");
  const auto seed = args.get_seed("seed", 3);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 200));
  const std::size_t M = static_cast<std::size_t>(args.get_int("M", 25));
  const std::size_t m = static_cast<std::size_t>(args.get_int("m", 2048));

  io::Table table(
      "E3: Lemma 4.1 — random-partition failure probability vs s/d^{3/2}",
      {{"d"}, {"s"}, {"s/d^1.5", 2}, {"fail_rate", 3}, {"fail_hi95", 3},
       {"lemma_bound", 3}});

  bool ok = true;
  rng::Rng root(seed);
  for (std::size_t d : {4, 9, 16}) {
    const double d15 = std::pow(static_cast<double>(d), 1.5);
    for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const auto s = std::max<std::size_t>(1, static_cast<std::size_t>(ratio * d15));
      std::size_t failures = 0;
      rng::Rng rng = root.split(d, static_cast<std::uint64_t>(ratio * 100));
      for (std::size_t t = 0; t < trials; ++t) {
        if (!partition_successful(M, m, d, s, rng)) ++failures;
      }
      const auto ci = stats::wilson_interval(failures, trials);
      const double bound =
          std::min(1.0, 1000.0 * 3125.0 * std::pow(static_cast<double>(d), 3.0) /
                            (720.0 * static_cast<double>(s) * static_cast<double>(s)));
      // The lemma is an upper bound on the failure probability; the
      // empirical lower confidence bound must not exceed it.
      if (ci.lo > bound) ok = false;
      table.add_row({static_cast<long long>(d), static_cast<long long>(s), ratio,
                     ci.estimate, ci.hi, bound});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: failure probability <= 10^3*5^5*d^3/(6!*s^2); < 1/2 once "
               "s >= 100 d^{3/2}.\nThe bound is loose: the measured failure rate "
               "collapses to ~0 already around s ~ d^{3/2}, which is why the "
               "practical profile uses sr_s_mult = 2.\n";
  return report.finish(ok);
}
