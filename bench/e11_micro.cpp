// E11 — google-benchmark microbenchmarks of the substrates: the
// popcount Hamming kernels, vote tallying, random partitions, Coalesce,
// the truncated SVD and the parallel_for engine. These quantify the
// constant factors behind the experiment harnesses.
#include <benchmark/benchmark.h>

#include <atomic>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/coalesce.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/linalg/dense_matrix.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/partition.hpp"

namespace {

using namespace tmwia;

void BM_HammingPacked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(1);
  const auto a = matrix::random_vector(m, rng);
  const auto b = matrix::random_vector(m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming(b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m / 8));
}
BENCHMARK(BM_HammingPacked)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DtildeMasked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(2);
  auto a = bits::TriVector::from_bits(matrix::random_vector(m, rng));
  auto b = bits::TriVector::from_bits(matrix::random_vector(m, rng));
  for (std::size_t i = 0; i < m; i += 7) a.set(i, bits::Tri::kUnknown);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dtilde(b));
  }
}
BENCHMARK(BM_DtildeMasked)->Arg(4096)->Arg(65536);

void BM_Tally(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(3);
  const auto center = matrix::random_vector(512, rng);
  std::vector<bits::BitVector> posts;
  for (std::size_t i = 0; i < n; ++i) {
    posts.push_back(i % 2 == 0 ? center : matrix::random_vector(512, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(billboard::tally(posts, static_cast<std::uint32_t>(n / 4)));
  }
}
BENCHMARK(BM_Tally)->Arg(64)->Arg(1024);

void BM_RandomPartition(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::random_partition(m, 64, rng));
  }
}
BENCHMARK(BM_RandomPartition)->Arg(1024)->Arg(16384);

void BM_Coalesce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(5);
  const auto center = matrix::random_vector(256, rng);
  std::vector<bits::BitVector> vs;
  for (std::size_t i = 0; i < n / 2; ++i) vs.push_back(matrix::flip_random(center, 3, rng));
  while (vs.size() < n) vs.push_back(matrix::random_vector(256, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::coalesce(vs, 6, n / 4));
  }
}
BENCHMARK(BM_Coalesce)->Arg(64)->Arg(256);

void BM_TruncatedSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::DenseMatrix a(n, n);
  std::uint64_t st = 6;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<double>(rng::splitmix64(st) >> 11) * 0x1.0p-53;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::truncated_svd(a, 4, 20));
  }
}
BENCHMARK(BM_TruncatedSvd)->Arg(64)->Arg(256);

void BM_ParallelFor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    engine::parallel_for(0, n, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ParallelFor)->Arg(1024)->Arg(65536);

void BM_ProbeOracle(benchmark::State& state) {
  rng::Rng rng(7);
  const auto inst = matrix::uniform_random(64, 4096, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  std::uint32_t o = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.probe(0, o));
    o = (o + 1) % 4096;
  }
}
BENCHMARK(BM_ProbeOracle);

}  // namespace

BENCHMARK_MAIN();
