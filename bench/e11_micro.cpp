// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// tmwia-lint: allow-file(sink-registration) e11 prices the recorder itself, so it owns a throwaway sink.
// E11 — google-benchmark microbenchmarks of the substrates: the
// popcount Hamming kernels, vote tallying, random partitions, Coalesce,
// the truncated SVD and the parallel_for engine. These quantify the
// constant factors behind the experiment harnesses.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <vector>

#include "common.hpp"
#include "tmwia/billboard/billboard.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/coalesce.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/linalg/dense_matrix.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/rng/partition.hpp"

namespace {

using namespace tmwia;

void BM_HammingPacked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(1);
  const auto a = matrix::random_vector(m, rng);
  const auto b = matrix::random_vector(m, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hamming(b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m / 8));
}
BENCHMARK(BM_HammingPacked)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DtildeMasked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(2);
  auto a = bits::TriVector::from_bits(matrix::random_vector(m, rng));
  auto b = bits::TriVector::from_bits(matrix::random_vector(m, rng));
  for (std::size_t i = 0; i < m; i += 7) a.set(i, bits::Tri::kUnknown);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dtilde(b));
  }
}
BENCHMARK(BM_DtildeMasked)->Arg(4096)->Arg(65536);

// --------------------------------------------------------------------
// Batched kernel layer (bits/kernels), one registration per backend
// this CPU supports so the scalar/AVX2/AVX-512 constant factors sit
// side by side in the output. Registered from main (RegisterBenchmark)
// because the supported set is a runtime property.

/// One-vs-many distance: out[i] = dist(target, vs[i]) over 256 rows.
void kernel_dist_many_body(benchmark::State& state, bits::KernelBackend backend) {
  const auto saved = bits::kernels::requested_backend();
  bits::kernels::set_backend(backend);
  const std::size_t m = 4096;
  rng::Rng rng(4);
  const auto target = matrix::random_vector(m, rng);
  std::vector<bits::BitVector> vs;
  for (int i = 0; i < 256; ++i) vs.push_back(matrix::random_vector(m, rng));
  std::vector<std::uint32_t> out(vs.size());
  for (auto _ : state) {
    bits::kernels::dist_many(target, vs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vs.size() * m / 8));
  bits::kernels::set_backend(saved);
}

/// Ball counting under d-tilde: |ball(center, D)| over 256 rows with a
/// ~25% '?' mask on the center (the Coalesce 2a shape).
void kernel_ball_size_body(benchmark::State& state, bits::KernelBackend backend) {
  const auto saved = bits::kernels::requested_backend();
  bits::kernels::set_backend(backend);
  const std::size_t m = 4096;
  rng::Rng rng(5);
  auto center = bits::TriVector::from_bits(matrix::random_vector(m, rng));
  for (std::size_t i = 0; i < m; i += 4) center.set(i, bits::Tri::kUnknown);
  std::vector<bits::BitVector> vs;
  for (int i = 0; i < 256; ++i) vs.push_back(matrix::random_vector(m, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits::kernels::ball_size(vs, center, m / 3));
  }
  bits::kernels::set_backend(saved);
}

void register_kernel_benchmarks() {
  for (const auto backend : {bits::KernelBackend::kScalar, bits::KernelBackend::kAvx2,
                             bits::KernelBackend::kAvx512}) {
    if (!bits::kernels::backend_supported(backend)) continue;
    const std::string suffix = std::string(bits::kernels::backend_name(backend));
    benchmark::RegisterBenchmark(
        ("BM_KernelDistMany/" + suffix).c_str(),
        [backend](benchmark::State& st) { kernel_dist_many_body(st, backend); });
    benchmark::RegisterBenchmark(
        ("BM_KernelBallSize/" + suffix).c_str(),
        [backend](benchmark::State& st) { kernel_ball_size_body(st, backend); });
  }
}

/// Succinct poster-index queries on a consolidated channel: one
/// has_posted (rank bit probe) + one posters (rank total) per
/// iteration, the await-polling pattern of the vote paths.
void BM_BillboardRankQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(6);
  billboard::Billboard board;
  for (std::size_t p = 0; p < n; p += 2) {
    board.post("vote", static_cast<matrix::PlayerId>(p), matrix::random_vector(64, rng));
  }
  (void)board.posters("vote");  // consolidate once, outside the loop
  matrix::PlayerId q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(board.has_posted("vote", q));
    benchmark::DoNotOptimize(board.posters("vote"));
    q = static_cast<matrix::PlayerId>((q + 1) % n);
  }
}
BENCHMARK(BM_BillboardRankQuery)->Arg(1024)->Arg(16384);

void BM_Tally(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(3);
  const auto center = matrix::random_vector(512, rng);
  std::vector<bits::BitVector> posts;
  for (std::size_t i = 0; i < n; ++i) {
    posts.push_back(i % 2 == 0 ? center : matrix::random_vector(512, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(billboard::tally(posts, static_cast<std::uint32_t>(n / 4)));
  }
}
BENCHMARK(BM_Tally)->Arg(64)->Arg(1024);

void BM_RandomPartition(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::random_partition(m, 64, rng));
  }
}
BENCHMARK(BM_RandomPartition)->Arg(1024)->Arg(16384);

void BM_Coalesce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(5);
  const auto center = matrix::random_vector(256, rng);
  std::vector<bits::BitVector> vs;
  for (std::size_t i = 0; i < n / 2; ++i) vs.push_back(matrix::flip_random(center, 3, rng));
  while (vs.size() < n) vs.push_back(matrix::random_vector(256, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::coalesce(vs, 6, n / 4));
  }
}
BENCHMARK(BM_Coalesce)->Arg(64)->Arg(256);

void BM_TruncatedSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::DenseMatrix a(n, n);
  std::uint64_t st = 6;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<double>(rng::splitmix64(st) >> 11) * 0x1.0p-53;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::truncated_svd(a, 4, 20));
  }
}
BENCHMARK(BM_TruncatedSvd)->Arg(64)->Arg(256);

void BM_ParallelFor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    engine::parallel_for(0, n, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ParallelFor)->Arg(1024)->Arg(65536);

void BM_ProbeOracle(benchmark::State& state) {
  rng::Rng rng(7);
  const auto inst = matrix::uniform_random(64, 4096, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  std::uint32_t o = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.probe(0, o));
    o = (o + 1) % 4096;
  }
}
BENCHMARK(BM_ProbeOracle);

// The raw cost of one flight-recorder probe record point: Arg 0 is the
// disabled fast path (one relaxed load of the null recorder slot),
// Arg 1 the staged owner-write append while recording. The stage is
// drained (and the sink discarded) off the clock every 64k events so
// the loop measures the append, not an overflowing buffer.
void BM_RecorderProbe(benchmark::State& state) {
  std::ostringstream sink;
  obs::FlightRecorder rec(sink, obs::RecordFormat::kJsonl);
  rec.run_begin("bench", 0.5, 1, 1);
  if (state.range(0) != 0) obs::set_recorder(&rec);
  std::uint64_t inv = 0;
  for (auto _ : state) {
    if (auto* r = obs::recorder()) r->probe(0, 0, true, inv);
    benchmark::DoNotOptimize(inv);
    if ((++inv & 0xFFFF) == 0) {
      state.PauseTiming();
      rec.note("drain", inv, 0);
      sink.str("");
      state.ResumeTiming();
    }
  }
  obs::set_recorder(nullptr);
}
BENCHMARK(BM_RecorderProbe)->Arg(0)->Arg(1);

// The raw cost of one disabled (Arg 0) vs enabled (Arg 1) counter
// increment — the per-event price the instrumentation adds.
void BM_MetricsCounterAdd(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::global();
  const bool was = reg.enabled();
  reg.set_enabled(state.range(0) != 0);
  auto c = reg.counter("bench.counter_add");
  for (auto _ : state) {
    c.add(1);
  }
  reg.set_enabled(was);
}
BENCHMARK(BM_MetricsCounterAdd)->Arg(0)->Arg(1);

/// Wall time of `iters` instrumented select_closest calls, in ms. This
/// is the end-to-end workload used for the metrics overhead budget:
/// each call crosses the core.select.* counter/histogram sites.
double select_workload_ms(std::size_t iters) {
  rng::Rng rng(11);
  const auto truth = matrix::random_vector(512, rng);
  std::vector<bits::BitVector> cands;
  cands.push_back(matrix::flip_random(truth, 3, rng));
  for (std::size_t i = 1; i < 8; ++i) cands.push_back(matrix::random_vector(512, rng));
  std::size_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    const auto res = core::select_closest(
        cands, 3, [&](std::uint32_t j) { return truth.get(j); });
    sink += res.index + res.probes;
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// The same Select workload with the flight-recorder record point spliced
/// into the probe lambda — exactly the hook the ProbeOracle carries.
/// With the recorder slot null this prices the *disabled* path (one
/// relaxed load + untaken branch per probe) against select_workload_ms;
/// with a recorder attached it prices full recording.
double select_workload_hooked_ms(std::size_t iters) {
  rng::Rng rng(11);
  const auto truth = matrix::random_vector(512, rng);
  std::vector<bits::BitVector> cands;
  cands.push_back(matrix::flip_random(truth, 3, rng));
  for (std::size_t i = 1; i < 8; ++i) cands.push_back(matrix::random_vector(512, rng));
  std::size_t sink = 0;
  std::uint64_t inv = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t it = 0; it < iters; ++it) {
    const auto res = core::select_closest(cands, 3, [&](std::uint32_t j) {
      const bool v = truth.get(j);
      if (auto* r = obs::recorder()) r->probe(0, j, v, inv++);
      return v;
    });
    sink += res.index + res.probes;
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  benchmark::DoNotOptimize(inv);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

// Custom main: --benchmark_* flags go to google-benchmark, everything
// else (--json/--metrics/--trace/--threads) to BenchReport. After the
// microbenchmarks we measure the registry's end-to-end overhead
// (metrics on vs. off on the Select workload, best of 5) and gate the
// verdict on the <= 5% budget from DESIGN.md.
int main(int argc, char** argv) {
  using namespace tmwia;
  std::vector<char*> gbench_argv{argv[0]};
  std::vector<char*> our_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    (std::strncmp(argv[i], "--benchmark", 11) == 0 ? gbench_argv : our_argv)
        .push_back(argv[i]);
  }
  const io::Args args(static_cast<int>(our_argv.size()), our_argv.data());
  bench::BenchReport report(args, "e11_micro");

  int gbench_argc = static_cast<int>(gbench_argv.size());
  benchmark::Initialize(&gbench_argc, gbench_argv.data());
  register_kernel_benchmarks();
  benchmark::RunSpecifiedBenchmarks();

  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  const std::size_t iters =
      static_cast<std::size_t>(args.get_int("overhead-iters", 60000));
  // Timer/scheduler jitter on a shared box is additive and positive,
  // so the minimum over reps converges on the true runtime of each
  // side; the ~60ms measurement window keeps millisecond-scale jitter
  // under the 5% budget being measured.
  select_workload_ms(iters / 4);  // warm-up
  double off_ms = 1e300;
  double on_ms = 1e300;
  for (int rep = 0; rep < 7; ++rep) {
    reg.set_enabled(false);
    off_ms = std::min(off_ms, select_workload_ms(iters));
    reg.set_enabled(true);
    on_ms = std::min(on_ms, select_workload_ms(iters));
  }
  reg.set_enabled(was_enabled);
  const double overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
  std::printf("\nselect workload: metrics off %.3f ms, on %.3f ms, overhead %.2f%%\n",
              off_ms, on_ms, overhead_pct);
  report.metric("select_ms_metrics_off", off_ms);
  report.metric("select_ms_metrics_on", on_ms);
  report.metric("metrics_overhead_pct", overhead_pct);

  // Same drill for the flight recorder. The budget from ISSUE/DESIGN is
  // on the *disabled* path: the record point compiled into every probe
  // site (one relaxed load of the null recorder slot + an untaken
  // branch) must cost <= 5% on the Select workload. That is what we
  // gate: plain workload vs. hooked workload with no recorder attached.
  // Full recording of every probe is real work, not a fast path — it is
  // reported (recorder_enabled_pct) but ungated.
  obs::set_recorder(nullptr);
  select_workload_hooked_ms(iters / 4);  // warm-up
  double rec_base_ms = 1e300;
  double rec_null_ms = 1e300;
  for (int rep = 0; rep < 7; ++rep) {
    rec_base_ms = std::min(rec_base_ms, select_workload_ms(iters));
    rec_null_ms = std::min(rec_null_ms, select_workload_hooked_ms(iters));
  }
  const double rec_overhead_pct = (rec_null_ms / rec_base_ms - 1.0) * 100.0;

  std::ostringstream rec_sink;
  obs::FlightRecorder rec(rec_sink, obs::RecordFormat::kJsonl, std::size_t{1} << 22);
  rec.run_begin("bench", 0.5, 1, 512);
  const std::size_t rec_iters = std::max<std::size_t>(1, iters / 4);
  double rec_on_ms = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    obs::set_recorder(&rec);
    rec_on_ms = std::min(rec_on_ms, select_workload_hooked_ms(rec_iters));
    obs::set_recorder(nullptr);
    rec.note("drain", static_cast<std::uint64_t>(rep), 0);
    rec_sink.str("");
  }
  rec.run_end("bench", 0, 0);
  const double rec_enabled_pct =
      (rec_on_ms / (rec_null_ms * static_cast<double>(rec_iters) /
                    static_cast<double>(iters)) -
       1.0) *
      100.0;
  std::printf("select workload: recorder hook disabled %.3f ms vs plain %.3f ms, "
              "overhead %.2f%% (recording: +%.2f%%)\n",
              rec_null_ms, rec_base_ms, rec_overhead_pct, rec_enabled_pct);
  report.metric("select_ms_recorder_base", rec_base_ms);
  report.metric("select_ms_recorder_null", rec_null_ms);
  report.metric("recorder_overhead_pct", rec_overhead_pct);
  report.metric("recorder_enabled_pct", rec_enabled_pct);

  const bool ok = overhead_pct <= 5.0 && rec_overhead_pct <= 5.0;
  benchmark::Shutdown();
  return report.finish(ok);
}
