// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E5 — Theorem 5.3: Algorithm Coalesce reduces n vectors to at most
// 1/alpha candidates; when an (alpha, D) cluster exists there is a
// unique candidate closest to all of it, within 2D under d-tilde, with
// at most 5D/alpha '?' entries.
#include <iostream>

#include "common.hpp"
#include "tmwia/core/coalesce.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e5_coalesce");
  const auto seed = args.get_seed("seed", 5);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 50));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 100));
  const std::size_t m = static_cast<std::size_t>(args.get_int("m", 512));

  io::Table table("E5: Coalesce output guarantees (Theorem 5.3), n=100 vectors",
                  {{"alpha", 2}, {"D"}, {"|B|_max"}, {"1/alpha bound"}, {"unique_rate", 2},
                   {"max_dtilde"}, {"2D bound"}, {"qmarks_max"}, {"5D/a bound"}});

  bool ok = true;
  rng::Rng root(seed);
  for (double alpha : {0.5, 0.3, 0.2}) {
    for (std::size_t D : {4, 8, 16}) {
      std::size_t max_out = 0, unique_hits = 0, max_dt = 0, max_q = 0;
      rng::Rng rng = root.split(static_cast<std::uint64_t>(alpha * 100), D);
      for (std::size_t t = 0; t < trials; ++t) {
        const auto center = matrix::random_vector(m, rng);
        const auto cluster = static_cast<std::size_t>(alpha * static_cast<double>(n));
        std::vector<bits::BitVector> vs;
        std::vector<std::size_t> cluster_idx;
        for (std::size_t i = 0; i < cluster; ++i) {
          cluster_idx.push_back(vs.size());
          vs.push_back(matrix::flip_random(center, rng.uniform(D / 2 + 1), rng));
        }
        while (vs.size() < n) vs.push_back(matrix::random_vector(m, rng));

        const auto res = core::coalesce(vs, D, cluster);
        max_out = std::max(max_out, res.candidates.size());

        std::size_t close = 0, best = 0;
        for (std::size_t c = 0; c < res.candidates.size(); ++c) {
          bool all = true;
          for (auto i : cluster_idx) {
            if (res.candidates[c].dtilde(vs[i]) > 2 * D) {
              all = false;
              break;
            }
          }
          if (all) {
            ++close;
            best = c;
          }
        }
        if (close == 1) {
          ++unique_hits;
          for (auto i : cluster_idx) {
            max_dt = std::max(max_dt, res.candidates[best].dtilde(vs[i]));
          }
          max_q = std::max(max_q, res.candidates[best].unknown_count());
        }
      }
      const double unique_rate =
          static_cast<double>(unique_hits) / static_cast<double>(trials);
      const auto size_bound = static_cast<std::size_t>(1.0 / alpha);
      const auto q_bound = static_cast<std::size_t>(5.0 * static_cast<double>(D) / alpha);
      if (unique_rate < 1.0 || max_out > size_bound || max_dt > 2 * D || max_q > q_bound) {
        ok = false;
      }
      table.add_row({alpha, static_cast<long long>(D), static_cast<long long>(max_out),
                     static_cast<long long>(size_bound), unique_rate,
                     static_cast<long long>(max_dt), static_cast<long long>(2 * D),
                     static_cast<long long>(max_q), static_cast<long long>(q_bound)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: |B| <= 1/alpha; unique representative within 2D of every "
               "cluster member; <= 5D/alpha '?' entries; deterministic and probe-free.\n";
  return report.finish(ok);
}
