// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E2 — Theorem 3.1: Algorithm Zero Radius lets an alpha-fraction
// community with *identical* preferences reconstruct its vector exactly
// w.h.p. in O(log n / alpha) probing rounds.
//
// Sweep n (at m = n) and alpha; report rounds (max probes/player), the
// solo cost m, the speedup, and the community success rate. The final
// fit line checks the growth of rounds with n is logarithmic: the
// log-log slope must be well below the slope-1 of solo probing.
#include <iostream>

#include "common.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e2_zero_radius");
  const auto seed = args.get_seed("seed", 2);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const auto params = core::Params::practical();

  io::Table table(
      "E2: Zero Radius cost and correctness (Theorem 3.1), m = n, practical constants",
      {{"n"}, {"alpha", 3}, {"rounds_mean", 1}, {"solo (m)"}, {"speedup", 1},
       {"success_rate", 2}});

  bool ok = true;
  std::vector<double> ns, rounds_at_half;
  for (std::size_t n : {256, 512, 1024, 2048, 4096}) {
    for (double alpha : {1.0, 0.5, 0.25}) {
      stats::Summary rounds;
      std::size_t successes = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        rng::Rng gen(seed + t * 1000 + n + static_cast<std::size_t>(alpha * 100));
        auto inst = matrix::planted_community(n, n, {alpha, 0}, gen);
        billboard::ProbeOracle oracle(inst.matrix);
        const auto outputs = core::zero_radius_bits(
            oracle, nullptr, bench::iota_players(n), bench::iota_objects(n), alpha, params,
            rng::Rng(seed ^ (t * 77 + n)));
        rounds.add(static_cast<double>(oracle.max_invocations()));
        bool all_exact = true;
        for (auto p : inst.communities[0]) {
          if (outputs[p] != inst.centers[0]) {
            all_exact = false;
            break;
          }
        }
        if (all_exact) ++successes;
      }
      const double rate = static_cast<double>(successes) / static_cast<double>(trials);
      if (rate < 1.0) ok = false;  // w.h.p. at these sizes => expect all-exact
      if (alpha == 0.5) {
        ns.push_back(static_cast<double>(n));
        rounds_at_half.push_back(rounds.mean());
      }
      table.add_row({static_cast<long long>(n), alpha, rounds.mean(),
                     static_cast<long long>(n),
                     static_cast<double>(n) / rounds.mean(), rate});
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(args, table, "e2_zero_radius");

  const auto fit = stats::fit_loglog(ns, rounds_at_half);
  std::cout << "\nGrowth of rounds with n at alpha=1/2: log-log slope = " << fit.slope
            << " (solo probing has slope 1; logarithmic cost gives slope << 1)\n";
  ok = ok && fit.slope < 0.6;
  std::cout << "Paper: O(log n / alpha) rounds, success probability 1 - n^{-Omega(1)}.\n";

  // Ablation: the safety constants. The paper's leaf threshold
  // 8c*ln(n)/alpha exists so that (Chernoff) every recursion node keeps
  // enough typical players; cutting it too far lets a leaf drop below
  // the popularity threshold, and a player's own-half corruption is
  // never revisited. The vote fraction trades the same failure against
  // extra Select candidates.
  {
    io::Table ab("E2a: ablation of leaf constant x vote fraction (n=512, alpha=1/4, "
                 "20 trials): fraction of runs with a wrong community member",
                 {{"zr_leaf_c", 1}, {"vote=0.50", 2}, {"vote=0.25", 2}});
    const std::size_t n = 512;
    const double alpha = 0.25;
    for (double leaf_c : {1.0, 2.0, 4.0, 8.0}) {
      std::vector<double> rates;
      for (double vote : {0.5, 0.25}) {
        auto p = core::Params::practical();
        p.zr_leaf_c = leaf_c;
        p.zr_vote_frac = vote;
        std::size_t bad_runs = 0;
        for (std::size_t t = 0; t < 20; ++t) {
          rng::Rng gen(seed + 31 * t + static_cast<std::uint64_t>(leaf_c * 10));
          auto inst = matrix::planted_community(n, n, {alpha, 0}, gen);
          billboard::ProbeOracle oracle(inst.matrix);
          const auto outputs = core::zero_radius_bits(
              oracle, nullptr, bench::iota_players(n), bench::iota_objects(n), alpha, p,
              rng::Rng(seed ^ (t * 7 + static_cast<std::uint64_t>(vote * 100))));
          for (auto pl : inst.communities[0]) {
            if (outputs[pl] != inst.centers[0]) {
              ++bad_runs;
              break;
            }
          }
        }
        rates.push_back(static_cast<double>(bad_runs) / 20.0);
      }
      ab.add_row({leaf_c, rates[0], rates[1]});
    }
    ab.print(std::cout);
    std::cout << "The practical profile's (leaf_c=4, vote=0.25) corner is the cheapest "
                 "one with a zero failure column here; the paper's 8x constant buys "
                 "the n^{-Omega(1)} tail the proofs need.\n";
  }
  return report.finish(ok);
}
