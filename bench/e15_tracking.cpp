// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E15 — the intro's "tracking dynamic environment by unreliable
// sensors ... fall under this interactive framework". The hidden
// preferences drift between epochs (the community moves as a block plus
// per-player jitter); at each epoch the players re-run the interactive
// algorithm and we compare:
//
//  * re-run tmwia        — fresh reconstruction each epoch;
//  * stale estimate      — keep epoch 0's answer forever (what a
//    non-interactive, train-once recommender does as the world moves).
//
// The claim exercised: the interactive model has no trouble with
// drift because probing always reads the *current* truth — the stale
// baseline's error grows linearly in the accumulated drift while the
// re-run error stays at O(D) every epoch.
#include <iostream>

#include "common.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e15_tracking");
  const auto seed = args.get_seed("seed", 15);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 256));
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 5));
  const std::size_t center_flips = static_cast<std::size_t>(args.get_int("drift", 12));
  const auto params = core::Params::practical();

  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, n, {0.5, 1}, gen);
  const auto& community = inst.communities[0];

  io::Table table("E15: tracking a drifting environment (community alpha=1/2, drift 12 "
                  "coords/epoch)",
                  {{"epoch"}, {"D"}, {"rerun_worst_err"}, {"stale_worst_err"},
                   {"accumulated_drift"}});

  std::vector<bits::BitVector> stale;
  bool ok = true;
  std::size_t max_D = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    if (epoch > 0) {
      matrix::drift(inst, center_flips, 0, gen);
    }
    const auto D = std::max<std::size_t>(1, inst.matrix.subset_diameter(community));
    max_D = std::max(max_D, D);

    billboard::ProbeOracle oracle(inst.matrix);
    const auto run = core::find_preferences_unknown_d(oracle, nullptr, 0.5, params,
                                                      rng::Rng(seed ^ (epoch * 101)));
    if (epoch == 0) stale = run.outputs;

    const auto rerun_err = inst.matrix.discrepancy(run.outputs, community);
    const auto stale_err = inst.matrix.discrepancy(stale, community);
    if (rerun_err > 5 * D) ok = false;
    table.add_row({static_cast<long long>(epoch), static_cast<long long>(D),
                   static_cast<long long>(rerun_err), static_cast<long long>(stale_err),
                   static_cast<long long>(epoch * center_flips)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(args, table, "e15_tracking");
  report.metric("max_D", static_cast<double>(max_D));

  std::cout << "\nThe interactive model reads current truth, so re-running keeps every "
               "epoch's error at O(D); the frozen epoch-0 estimate decays at the drift "
               "rate — the gap a train-once non-interactive system cannot close.\n";
  return report.finish(ok);
}
