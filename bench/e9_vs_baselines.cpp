// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E9 — the paper's positioning claim (Sections 1-2): provable
// collaborative filtering without assumptions on the preference matrix.
//
//  (a) Low-rank control: k clean types, tiny noise — the regime the
//      SVD line of work [5, 6, 14, 15] assumes, where a sampled
//      low-rank reconstruction is accurate.
//  (b) Adversarial diversity: many types, per-user disagreement, noise
//      players — a flat-spectrum matrix. The SVD reconstruction
//      collapses; tmwia still recovers every community to O(D).
//
// The one-shot baselines (budget-capped solo, kNN, SVD, majority) get a
// fixed budget of m/8 probes per player. tmwia's cost is reported as
// measured: at laptop sizes its absolute rounds exceed m (the safety
// constants dominate — see E8's scale note), but it is the only method
// here with a *guarantee* independent of the matrix, and its cost
// grows polylog in n (E2/E8) while every baseline's budget-to-accuracy
// scales linearly with m.
#include <iostream>

#include "common.hpp"
#include "tmwia/baselines/baselines.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/partition.hpp"

using namespace tmwia;

namespace {

struct Row {
  std::string name;
  std::uint64_t rounds;
  double mean_err;
  double worst_community_mean;
};

double worst_community_mean_error(const std::vector<bits::BitVector>& outputs,
                                  const matrix::Instance& inst) {
  double worst = 0.0;
  for (const auto& c : inst.communities) {
    if (c.empty()) continue;
    worst = std::max(worst, tmwia::bench::mean_error(outputs, inst.matrix, c));
  }
  return worst;
}

double overall_mean_error(const std::vector<bits::BitVector>& outputs,
                          const matrix::Instance& inst) {
  std::size_t total = 0;
  for (matrix::PlayerId p = 0; p < inst.matrix.players(); ++p) {
    total += outputs[p].hamming(inst.matrix.row(p));
  }
  return static_cast<double>(total) / static_cast<double>(inst.matrix.players());
}

/// "Go it alone" under a budget: probe `budget` random objects, output
/// 0 for the rest — what an uncooperative player can do in that time.
baselines::BaselineResult capped_solo(billboard::ProbeOracle& oracle, std::size_t budget,
                                      rng::Rng rng) {
  const std::size_t n = oracle.players();
  const std::size_t m = oracle.objects();
  baselines::BaselineResult res;
  res.outputs.assign(n, bits::BitVector(m));
  for (matrix::PlayerId p = 0; p < n; ++p) {
    rng::Rng prng = rng.split(p);
    for (auto o : rng::sample_without_replacement(m, std::min(budget, m), prng)) {
      if (oracle.probe(p, o)) res.outputs[p].set(o, true);
    }
  }
  res.rounds = oracle.max_invocations();
  res.total_probes = oracle.total_invocations();
  return res;
}

std::vector<Row> run_all(const matrix::Instance& inst, double alpha, std::size_t budget,
                         std::uint64_t seed) {
  std::vector<Row> rows;
  const auto params = core::Params::practical();
  const std::size_t m = inst.matrix.objects();

  {
    billboard::ProbeOracle oracle(inst.matrix);
    const auto res =
        core::find_preferences_unknown_d(oracle, nullptr, alpha, params, rng::Rng(seed));
    rows.push_back({"tmwia (unknown D)", res.rounds, overall_mean_error(res.outputs, inst),
                    worst_community_mean_error(res.outputs, inst)});
  }
  {
    billboard::ProbeOracle oracle(inst.matrix);
    const auto res = capped_solo(oracle, budget, rng::Rng(seed + 4));
    rows.push_back({"solo (budget-capped)", res.rounds,
                    overall_mean_error(res.outputs, inst),
                    worst_community_mean_error(res.outputs, inst)});
  }
  {
    billboard::ProbeOracle oracle(inst.matrix);
    baselines::KnnParams kp;
    kp.probes_per_player = budget;
    kp.neighbours = 8;
    const auto res = baselines::sampled_knn(oracle, kp, rng::Rng(seed + 1));
    rows.push_back({"kNN (budget)", res.rounds, overall_mean_error(res.outputs, inst),
                    worst_community_mean_error(res.outputs, inst)});
  }
  {
    billboard::ProbeOracle oracle(inst.matrix);
    baselines::SvdParams sp;
    sp.sample_rate = static_cast<double>(budget) / static_cast<double>(m);
    // Fixed constant rank budget: the related work assumes a constant
    // number of canonical types with a spectral gap. Workload (a) is
    // built to satisfy that (4 types); workload (b) violates it, and
    // nothing in a gapless spectrum tells the practitioner what rank
    // to use instead.
    sp.rank = 4;
    const auto res = baselines::svd_recommender(oracle, sp, rng::Rng(seed + 2));
    rows.push_back({"SVD (budget)", res.rounds, overall_mean_error(res.outputs, inst),
                    worst_community_mean_error(res.outputs, inst)});
  }
  {
    billboard::ProbeOracle oracle(inst.matrix);
    const auto res = baselines::global_majority(oracle, budget, rng::Rng(seed + 3));
    rows.push_back({"global majority (budget)", res.rounds,
                    overall_mean_error(res.outputs, inst),
                    worst_community_mean_error(res.outputs, inst)});
  }
  return rows;
}

void print_rows(const std::string& title, const std::vector<Row>& rows, std::size_t m) {
  io::Table table(title, {{"algorithm"}, {"rounds"}, {"mean_err", 1},
                          {"worst_community_mean_err", 1}, {"err_per_object_pct", 1}});
  for (const auto& r : rows) {
    table.add_row({r.name, static_cast<long long>(r.rounds), r.mean_err,
                   r.worst_community_mean,
                   100.0 * r.worst_community_mean / static_cast<double>(m)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e9_vs_baselines");
  const auto seed = args.get_seed("seed", 9);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 512));
  const std::size_t m = static_cast<std::size_t>(args.get_int("m", 512));
  const std::size_t budget = m / 8;

  // (a) The SVD-friendly control.
  rng::Rng gen_a(seed);
  const auto control = matrix::low_rank_model(n, m, 4, 0.005, gen_a);
  const auto rows_a = run_all(control, 0.2, budget, seed + 100);
  print_rows("E9a: low-rank control (4 clean types, 0.5% noise); one-shot budget m/8",
             rows_a, m);

  // (b) Adversarial diversity: 8 communities with internal
  // disagreement, 25% noise players.
  rng::Rng gen_b(seed + 1);
  const auto adversarial = matrix::adversarial_diversity(n, m, 8, 6, 0.25, gen_b);
  std::size_t d_max = 0;
  for (const auto& c : adversarial.communities) {
    d_max = std::max(d_max, adversarial.matrix.subset_diameter(c));
  }
  const auto rows_b = run_all(adversarial, 0.09, budget, seed + 200);
  print_rows("E9b: adversarial diversity (8 communities, radius 6, 25% noise, D_max=" +
                 std::to_string(d_max) + "); one-shot budget m/8",
             rows_b, m);

  // Shape checks (Section 2's qualitative claims):
  //  1. In its own regime (a) the SVD baseline is accurate...
  const bool svd_fine_on_control = rows_a[3].worst_community_mean < 25.0;
  //  2. ...but collapses under adversarial diversity,
  const bool svd_breaks = rows_b[3].worst_community_mean >
                          10.0 * static_cast<double>(std::max<std::size_t>(d_max, 1));
  //  3. while tmwia stays within O(D) on every community with no
  //     assumption change,
  const bool tmwia_holds = rows_b[0].worst_community_mean <=
                           2.0 * static_cast<double>(std::max<std::size_t>(d_max, 1));
  //  4. and uncooperative probing at the same one-shot budget leaves
  //     ~3/4 of the row unknown.
  const bool solo_capped_bad = rows_b[1].worst_community_mean > 100.0;

  const bool ok = svd_fine_on_control && svd_breaks && tmwia_holds && solo_capped_bad;
  report.metric("tmwia_worst_mean", rows_b[0].worst_community_mean);
  report.metric("svd_worst_mean", rows_b[3].worst_community_mean);
  std::cout << "\nPaper (Sections 1-2): previous provable approaches either restrict the "
               "matrix (SVD gap, near-orthogonal types, tiny noise) or pay polynomial "
               "cost; tmwia achieves constant stretch under unrestricted diversity.\n"
            << "Shape checks: SVD fine on (a): " << svd_fine_on_control
            << ", SVD collapses on (b): " << svd_breaks
            << ", tmwia O(D) on (b): " << tmwia_holds
            << ", capped solo fails: " << solo_capped_bad << ".\n"
            << "kNN is reported for completeness: interactive and assumption-free like "
               "tmwia, it can be accurate here but offers no worst-case guarantee and "
               "its budget-to-accuracy scales linearly with m (polynomial overhead), "
               "which is the gap Theorem 1.1 closes.\n";
  return report.finish(ok);
}
