// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E8 — Theorem 1.1 end to end: with m = Theta(n) and any typical set of
// Omega(n) players, the full algorithm (unknown D, known alpha) gives
// every typical player constant stretch after polylog(n) rounds.
//
// Workload: two planted communities of different radii plus noise
// players — nothing low-rank about it. Sweep n; report worst stretch
// over both communities, rounds, the solo cost m, and close with the
// log-log fit of rounds vs n (polylog => slope well below 1).
#include <iostream>

#include "common.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e8_main_theorem");
  const auto seed = args.get_seed("seed", 8);
  const auto params = core::Params::practical();

  io::Table table(
      "E8: Theorem 1.1 — unknown-D algorithm, two communities (alpha=1/4 each) + noise",
      {{"n (=m)"}, {"D1"}, {"D2"}, {"stretch1", 2}, {"stretch2", 2}, {"rounds"},
       {"solo m"}, {"rounds/m", 3}});

  bool ok = true;
  std::vector<double> ns, rounds_list;
  for (std::size_t n : {128, 256, 512, 1024}) {
    rng::Rng gen(seed + n);
    auto inst = matrix::planted_communities(
        n, n, {{0.25, 1 + n / 256}, {0.25, 4 + n / 128}}, gen);
    const auto d1 = inst.matrix.subset_diameter(inst.communities[0]);
    const auto d2 = inst.matrix.subset_diameter(inst.communities[1]);

    billboard::ProbeOracle oracle(inst.matrix);
    const auto res = core::find_preferences_unknown_d(oracle, nullptr, 0.25, params,
                                                      rng::Rng(seed ^ n));

    const double s1 = inst.matrix.stretch(res.outputs, inst.communities[0]);
    const double s2 = inst.matrix.stretch(res.outputs, inst.communities[1]);
    if (s1 > 8.0 || s2 > 8.0) ok = false;

    ns.push_back(static_cast<double>(n));
    rounds_list.push_back(static_cast<double>(res.rounds));
    table.add_row({static_cast<long long>(n), static_cast<long long>(d1),
                   static_cast<long long>(d2), s1, s2,
                   static_cast<long long>(res.rounds), static_cast<long long>(n),
                   static_cast<double>(res.rounds) / static_cast<double>(n)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(args, table, "e8_main_theorem");

  const auto fit = stats::fit_loglog(ns, rounds_list);
  bool ratio_decreasing = true;
  for (std::size_t i = 1; i < ns.size(); ++i) {
    if (rounds_list[i] / ns[i] >= rounds_list[i - 1] / ns[i - 1]) {
      ratio_decreasing = false;
    }
  }
  std::cout << "\nGrowth of rounds with n: log-log slope = " << fit.slope
            << " (solo probing is slope 1).\n"
            << "Stretch stays O(1) for every community simultaneously — the "
               "algorithm reconstructs all sub-communities in parallel without "
               "knowing D.\n"
            << "Scale note: at n <= 1024 the Zero Radius leaf thresholds (the "
               "8c ln n / alpha safety constants) exceed the Small Radius part "
               "sizes, so each of the O(log m) distance guesses is still "
               "leaf-dominated and the absolute rounds sit above m. The polylog "
               "shape shows as rounds/m decreasing with n (last column) and as "
               "a sub-linear slope; the asymptotic-regime component is measured "
               "directly in E2, where Zero Radius alone has slope ~0.2.\n";
  ok = ok && fit.slope < 0.95 && ratio_decreasing;
  report.metric("n_max", ns.back());
  report.metric("rounds", rounds_list.back());
  report.metric("loglog_slope", fit.slope);
  return report.finish(ok);
}
