// tmwia-lint: allow-file(raw-io) bench main: prints its experiment table to stdout.
// E4 — Theorem 4.4: Algorithm Small Radius gives every typical player
// an output within 5D of its own vector, in
// O(K * D^{3/2} * (D + log n) / alpha) probing rounds.
//
// Sweep D; report the worst community stretch (must be <= 5), the
// rounds, and the theorem's cost shape. An --ablate run additionally
// sweeps the s-multiplier (the Lemma 4.1 constant) to expose the
// cost/robustness trade the paper's 100x constant buys.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "tmwia/core/small_radius.hpp"
#include "tmwia/core/zero_radius.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/stats/summary.hpp"

using namespace tmwia;

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  bench::BenchReport report(args, "e4_small_radius");
  const auto seed = args.get_seed("seed", 4);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 512));
  const std::size_t m = static_cast<std::size_t>(args.get_int("m", 1024));
  const double alpha = args.get_double("alpha", 0.5);
  auto params = core::Params::practical();

  io::Table table("E4: Small Radius error and cost vs D (Theorem 4.4), n=512 m=1024",
                  {{"D"}, {"parts s"}, {"worst_err"}, {"stretch", 2}, {"rounds_mean", 0},
                   {"bound_shape", 0}});

  bool ok = true;
  for (std::size_t radius : {1, 2, 4, 8}) {
    stats::Summary rounds;
    std::size_t worst_err = 0;
    std::size_t D_used = 0;
    std::size_t parts = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      rng::Rng gen(seed + t * 131 + radius);
      auto inst = matrix::planted_community(n, m, {alpha, radius}, gen);
      const auto D = std::max<std::size_t>(
          1, inst.matrix.subset_diameter(inst.communities[0]));
      D_used = D;
      billboard::ProbeOracle oracle(inst.matrix);
      const auto res = core::small_radius(oracle, nullptr, bench::iota_players(n),
                                          bench::iota_objects(m), alpha, D, params,
                                          rng::Rng(seed ^ (t + radius * 31)), n);
      parts = res.parts;
      rounds.add(static_cast<double>(oracle.max_invocations()));
      for (auto p : inst.communities[0]) {
        worst_err = std::max(worst_err, res.outputs[p].hamming(inst.matrix.row(p)));
      }
    }
    const double stretch = static_cast<double>(worst_err) / static_cast<double>(D_used);
    if (stretch > 5.0) ok = false;
    const auto leaf =
        core::zero_radius_leaf_threshold(n, alpha / params.sr_vote_div, params);
    const double shape =
        static_cast<double>(params.sr_K) * static_cast<double>(parts) *
        static_cast<double>(D_used + leaf);
    if (rounds.mean() > 4.0 * shape) ok = false;
    table.add_row({static_cast<long long>(D_used), static_cast<long long>(parts),
                   static_cast<long long>(worst_err), stretch, rounds.mean(), shape});
  }
  table.print(std::cout);
  std::cout << "\nPaper: error <= 5D for every typical player; rounds = "
               "O(K D^{3/2} (D + log n)/alpha) [column bound_shape, measured within 4x].\n";

  // Ablation: the Lemma 4.1 constant. More parts = higher per-iteration
  // success probability but proportionally more probing.
  io::Table ab("E4a: ablation of the s-multiplier (D = 4 planted radius 2)",
               {{"s_mult", 1}, {"parts s"}, {"worst_err"}, {"rounds", 0}});
  for (double s_mult : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    params.sr_s_mult = s_mult;
    rng::Rng gen(seed + 9999);
    auto inst = matrix::planted_community(n, m, {alpha, 2}, gen);
    const auto D =
        std::max<std::size_t>(1, inst.matrix.subset_diameter(inst.communities[0]));
    billboard::ProbeOracle oracle(inst.matrix);
    const auto res =
        core::small_radius(oracle, nullptr, bench::iota_players(n), bench::iota_objects(m),
                           alpha, D, params, rng::Rng(seed ^ 0x5a), n);
    std::size_t worst = 0;
    for (auto p : inst.communities[0]) {
      worst = std::max(worst, res.outputs[p].hamming(inst.matrix.row(p)));
    }
    ab.add_row({s_mult, static_cast<long long>(res.parts), static_cast<long long>(worst),
                static_cast<double>(oracle.max_invocations())});
  }
  ab.print(std::cout);
  return report.finish(ok);
}
