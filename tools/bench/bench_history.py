#!/usr/bin/env python3
"""Accumulate the per-run BENCH_*.json artifacts into a trajectory.

Every experiment binary writes a machine-readable verdict
(``{"bench":...,"ok":...,"wall_ms":...,"metrics":{...}}``) via
bench::BenchReport — pointed at one directory with $TMWIA_BENCH_DIR.
This tool closes the loop those files were designed for:

  ingest   scan --bench-dir for BENCH_<name>.json, stamp them with the
           next run sequence number, and append one JSONL line each to
           the history file (default <bench-dir>/BENCH_HISTORY.jsonl);
  check    (--check) compare the just-ingested run against the *best*
           prior run per metric and fail on regressions:
             - a bench whose verdict flips ok:true -> ok:false,
             - a watched metric worse than the best prior value by more
               than its budget (--max-regress METRIC=PCT; defaults
               rounds=10, total_probes=10, wall_ms=75, p99_us=75).
           A bench name with no baseline entry yet (a freshly added
           experiment, e.g. e17_serve landing on an established
           history) is a warning, not a failure: this run establishes
           its baseline.

Cost metrics (rounds, total_probes) are deterministic for a fixed seed,
so their budgets are tight; wall_ms and the serving-layer latency
percentiles (p50_us/p95_us/p99_us, reported by e17_serve from the
MetricsRegistry histograms) are hardware noise, so p99_us gets a loose
budget and the lower percentiles are recorded but unwatched.  The first
ingest of a bench has no prior and is trivially green — but the history
is then non-empty, so the next run has a baseline.

Exit status: 0 green, 1 regression (--check), 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BUDGETS = {"rounds": 10.0, "total_probes": 10.0, "wall_ms": 75.0, "p99_us": 75.0}


def parse_budgets(specs: list[str]) -> dict[str, float]:
    budgets = dict(DEFAULT_BUDGETS)
    for spec in specs:
        metric, sep, pct = spec.partition("=")
        if not sep or not metric:
            raise SystemExit(f"error: --max-regress expects METRIC=PCT, got {spec!r}")
        try:
            budgets[metric] = float(pct)
        except ValueError:
            raise SystemExit(f"error: bad budget {spec!r}") from None
    return budgets


def load_bench_files(bench_dir: Path) -> list[dict]:
    entries = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_HISTORY.jsonl":
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            raise SystemExit(f"error: cannot parse {path}: {err}")
        for key in ("bench", "ok", "wall_ms"):
            if key not in doc:
                raise SystemExit(f"error: {path} has no {key!r} field")
        entry = {
            "bench": doc["bench"],
            "ok": bool(doc["ok"]),
            "wall_ms": float(doc["wall_ms"]),
            "metrics": dict(doc.get("metrics", {})),
        }
        # Provenance: which distance-kernel backend produced the run.
        # wall_ms comparisons across backends are apples to oranges, so
        # the trajectory keeps the label alongside the numbers.
        if "kernel" in doc:
            entry["kernel"] = str(doc["kernel"])
        entries.append(entry)
    return entries


def load_history(history: Path) -> list[dict]:
    if not history.exists():
        return []
    rows = []
    for lineno, line in enumerate(history.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as err:
            raise SystemExit(f"error: {history}:{lineno}: {err}")
    return rows


def metric_value(row: dict, metric: str) -> float | None:
    if metric == "wall_ms":
        v = row.get("wall_ms")
    else:
        v = row.get("metrics", {}).get(metric)
    return float(v) if isinstance(v, (int, float)) else None


def check_run(
    current: list[dict], prior: list[dict], budgets: dict[str, float]
) -> tuple[list[str], list[str]]:
    """Return (regressions, warnings) for `current` vs the prior runs."""
    regressions = []
    warnings = []
    for row in current:
        bench = row["bench"]
        history = [p for p in prior if p.get("bench") == bench]
        if not history:
            # A new experiment landing on an established history: its
            # baseline starts now. Tolerated loudly, never fatal.
            warnings.append(f"{bench}: no baseline entry yet (this run establishes it)")
            continue
        if not row["ok"] and any(p.get("ok") for p in history):
            regressions.append(f"{bench}: verdict regressed to FAIL")
        for metric, pct in sorted(budgets.items()):
            cur = metric_value(row, metric)
            if cur is None:
                continue
            best = min(
                (v for p in history if (v := metric_value(p, metric)) is not None),
                default=None,
            )
            if best is None:
                continue
            # Budgets are "no worse than best prior by more than pct%";
            # a zero baseline (e.g. 0 violations) must stay exact.
            limit = best * (1.0 + pct / 100.0) if best > 0 else best
            if cur > limit and cur - best > 1e-9:
                regressions.append(
                    f"{bench}: {metric} {cur:g} vs best {best:g} "
                    f"(budget +{pct:g}%)"
                )
    return regressions, warnings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="bench_history.py", description=__doc__.splitlines()[0]
    )
    ap.add_argument(
        "--bench-dir",
        default=os.environ.get("TMWIA_BENCH_DIR") or ".",
        help="directory holding BENCH_*.json (default $TMWIA_BENCH_DIR or .)",
    )
    ap.add_argument(
        "--history",
        default=None,
        help="trajectory file (default <bench-dir>/BENCH_HISTORY.jsonl)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on regressions vs the best prior run",
    )
    ap.add_argument(
        "--max-regress",
        metavar="METRIC=PCT",
        action="append",
        default=[],
        help=f"per-metric regression budget (defaults: "
        f"{', '.join(f'{k}={v:g}' for k, v in DEFAULT_BUDGETS.items())})",
    )
    ap.add_argument("-q", "--quiet", action="store_true", help="only print problems")
    args = ap.parse_args(argv)

    bench_dir = Path(args.bench_dir)
    if not bench_dir.is_dir():
        print(f"error: bench dir {bench_dir} does not exist", file=sys.stderr)
        return 2
    budgets = parse_budgets(args.max_regress)
    history_path = Path(args.history) if args.history else bench_dir / "BENCH_HISTORY.jsonl"

    current = load_bench_files(bench_dir)
    if not current:
        if args.check:
            # An empty trajectory is a state, not a failure: nothing has
            # been ingested yet, so there is nothing to regress against.
            print(f"check: no baseline yet (no BENCH_*.json in {bench_dir})")
            return 0
        print(f"error: no BENCH_*.json in {bench_dir}", file=sys.stderr)
        return 2
    prior = load_history(history_path)
    run = 1 + max(
        (p["run"] for p in prior if isinstance(p.get("run"), (int, float))),
        default=0,
    )

    with history_path.open("a") as fh:
        for row in current:
            fh.write(json.dumps({"run": run, **row}, sort_keys=False) + "\n")

    if not args.quiet:
        print(f"run {run}: ingested {len(current)} bench report(s) "
              f"into {history_path} ({len(prior)} prior entries)")
        for row in current:
            line = (f"  {'ok ' if row['ok'] else 'FAIL'} {row['bench']:<18} "
                    f"wall {row['wall_ms']:g} ms")
            # Serving-layer benches report request-latency percentiles;
            # surface them next to wall time rather than burying them.
            pcts = [f"{k[:-3]}={row['metrics'][k]:g}us"
                    for k in ("p50_us", "p95_us", "p99_us") if k in row["metrics"]]
            if pcts:
                line += "  latency " + " ".join(pcts)
            print(line)

    if args.check:
        if not prior:
            # Missing or empty history file: this run *establishes* the
            # baseline, so the check is explicitly (not vacuously) green.
            print("check: no baseline yet (this run establishes it)")
            return 0
        regressions, warnings = check_run(current, prior, budgets)
        for w in warnings:
            print(f"warning: {w}")
        if regressions:
            for r in regressions:
                print(f"REGRESSION {r}", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"check: green (budgets "
                  f"{', '.join(f'{k}<=+{v:g}%' for k, v in sorted(budgets.items()))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
