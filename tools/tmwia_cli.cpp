// tmwia_cli — command-line driver for the library.
//
//   tmwia_cli gen  --kind=planted --n=256 --m=256 --alpha=0.5 --radius=2 \
//                  --seed=1 --out=world.tmw
//   tmwia_cli info --in=world.tmw
//   tmwia_cli run  --in=world.tmw --algo=unknown_d --alpha=0.5 \
//                  --seed=2 --out=estimates.txt
//   tmwia_cli eval --in=world.tmw --outputs=estimates.txt
//
// `gen` writes an instance file (matrix + planted structure), `run`
// executes an algorithm against it through a fresh ProbeOracle and
// writes per-player estimates, `eval` scores estimates against the
// hidden truth, `info` prints the instance's shape and community
// structure. Every subcommand is deterministic given --seed.
//
// Observability: `run` takes --metrics=FILE (final MetricsRegistry
// snapshot as one-line JSON), --trace=FILE (span/event JSONL on a
// deterministic logical clock) and --threads=N (global pool size; the
// artifacts are byte-identical for any N under the same seed).
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "tmwia/baselines/baselines.hpp"
#include "tmwia/core/tmwia.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/serialize.hpp"
#include "tmwia/io/table.hpp"

using namespace tmwia;

namespace {

// The single source of truth for every flag tmwia_cli accepts: --help
// is rendered from this table and unknown flags are rejected against
// it, per subcommand.
const io::FlagTable& flag_table() {
  static const io::FlagTable table(
      "usage: tmwia_cli <gen|info|run|eval> [--key=value ...]  (or: tmwia_cli --help)",
      {
          {"kind", "K", "instance family: planted|multi|adversarial|markov|lowrank|uniform",
           "gen"},
          {"n", "N", "players (default 256)", "gen"},
          {"m", "M", "objects (default 256)", "gen"},
          {"alpha", "A", "community fraction (default 0.5)", "gen,run"},
          {"radius", "R", "community radius (default 0)", "gen"},
          {"types", "K", "taste types for adversarial/markov/lowrank (default 4)", "gen"},
          {"noise", "F", "per-entry noise rate for generated instances (default 0.1)",
           "gen"},
          {"seed", "S", "deterministic seed (default 1)", "gen,run"},
          {"out", "FILE", "output file (instance or estimates)", "gen,run"},
          {"in", "FILE", "instance file", "info,run,eval"},
          {"algo", "NAME", "zero|small|large|unknown_d|anytime|solo|knn|svd", "run"},
          {"d", "D", "distance bound for --algo=small|large (default 8)", "run"},
          {"profile", "P", "parameter profile: practical|paper (default practical)", "run"},
          {"budget", "B", "round budget (anytime) / probes per player (knn)", "run"},
          {"rate", "F", "sample rate for --algo=svd (default 0.25)", "run"},
          {"rank", "K", "rank for --algo=svd (default 4)", "run"},
          {"faults", "SPEC", "fault plan, e.g. seed=S,crash=R@A-B,probe=R,drop=R", "run"},
          {"metrics", "FILE", "write final metrics snapshot JSON here", "run"},
          {"trace", "FILE", "write span/event trace JSONL here", "run"},
          {"threads", "N", "global thread-pool size (0 = hardware)", "run"},
          {"outputs", "FILE", "estimates file to score", "eval"},
          {"help", "", "show this help"},
      });
  return table;
}

int usage() {
  std::cerr << flag_table().help();
  return 2;
}

std::string require(const io::Args& args, const std::string& key) {
  const auto v = args.get(key);
  if (!v) throw std::runtime_error("missing required --" + key);
  return *v;
}

int cmd_gen(const io::Args& args) {
  const auto kind = require(args, "kind");
  const auto n = static_cast<std::size_t>(args.get_int("n", 256));
  const auto m = static_cast<std::size_t>(args.get_int("m", 256));
  const double alpha = args.get_double("alpha", 0.5);
  const auto radius = static_cast<std::size_t>(args.get_int("radius", 0));
  const auto types = static_cast<std::size_t>(args.get_int("types", 4));
  const double noise = args.get_double("noise", 0.1);
  rng::Rng rng(args.get_seed("seed", 1));

  matrix::Instance inst;
  if (kind == "planted") {
    inst = matrix::planted_community(n, m, {alpha, radius}, rng);
  } else if (kind == "multi") {
    inst = matrix::planted_communities(
        n, m, {{alpha / 2, radius}, {alpha / 2, radius * 2}}, rng);
  } else if (kind == "adversarial") {
    inst = matrix::adversarial_diversity(n, m, types, radius, noise, rng);
  } else if (kind == "markov") {
    inst = matrix::markov_type_model(n, m, types, noise, rng);
  } else if (kind == "lowrank") {
    inst = matrix::low_rank_model(n, m, types, noise, rng);
  } else if (kind == "uniform") {
    inst = matrix::uniform_random(n, m, rng);
  } else {
    throw std::runtime_error("unknown --kind=" + kind);
  }

  io::save_instance_file(inst, require(args, "out"));
  std::cout << "wrote " << kind << " instance: " << n << " players x " << m
            << " objects, " << inst.communities.size() << " communities\n";
  return 0;
}

int cmd_info(const io::Args& args) {
  const auto inst = io::load_instance_file(require(args, "in"));
  std::cout << "players: " << inst.matrix.players() << "\nobjects: "
            << inst.matrix.objects() << "\ncommunities: " << inst.communities.size()
            << '\n';
  for (std::size_t c = 0; c < inst.communities.size(); ++c) {
    const auto& ids = inst.communities[c];
    std::cout << "  community " << c << ": " << ids.size() << " players, diameter "
              << inst.matrix.subset_diameter(ids) << '\n';
  }
  return 0;
}

int cmd_run(const io::Args& args) {
  const auto inst = io::load_instance_file(require(args, "in"));
  const auto algo = args.get("algo").value_or("unknown_d");
  const double alpha = args.get_double("alpha", 0.5);
  const auto seed = args.get_seed("seed", 1);
  const auto profile = args.get("profile").value_or("practical");
  const auto params =
      profile == "paper" ? core::Params::paper() : core::Params::practical();

  // Observability sinks. The thread count must be requested before the
  // first parallel phase constructs the global pool.
  engine::set_global_threads(static_cast<std::size_t>(args.get_int("threads", 0)));
  const auto metrics_path = args.get("metrics");
  if (metrics_path.has_value()) obs::MetricsRegistry::global().set_enabled(true);
  std::ofstream trace_out;
  std::unique_ptr<obs::Tracer> tracer;
  if (const auto trace_path = args.get("trace"); trace_path.has_value()) {
    trace_out.open(*trace_path);
    if (!trace_out) throw std::runtime_error("cannot open --trace file");
    tracer = std::make_unique<obs::Tracer>(trace_out);
    obs::set_tracer(tracer.get());
  }

  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  std::vector<bits::BitVector> outputs;

  // Optional fault injection: a seeded declarative plan (see
  // faults::FaultPlan::parse for the grammar). The run then ends with a
  // FaultReport of everything that fired.
  std::unique_ptr<faults::FaultInjector> injector;
  if (const auto spec = args.get("faults"); spec.has_value()) {
    const auto plan = faults::FaultPlan::parse(*spec);
    injector = std::make_unique<faults::FaultInjector>(plan, inst.matrix.players());
    oracle.set_fault_injector(injector.get());
  }

  if (algo == "unknown_d") {
    outputs = core::find_preferences_unknown_d(oracle, &board, alpha, params, rng::Rng(seed))
                  .outputs;
  } else if (algo == "zero" || algo == "small" || algo == "large") {
    const auto d = static_cast<std::size_t>(args.get_int("d", algo == "zero" ? 0 : 8));
    outputs = core::find_preferences(oracle, &board, alpha, d, params, rng::Rng(seed))
                  .outputs;
  } else if (algo == "anytime") {
    const auto budget = static_cast<std::uint64_t>(
        args.get_int("budget", static_cast<std::int64_t>(inst.matrix.objects()) * 4));
    outputs = core::anytime(oracle, &board, budget, params, rng::Rng(seed)).outputs;
  } else if (algo == "solo") {
    outputs = baselines::solo_probing(oracle).outputs;
  } else if (algo == "knn") {
    baselines::KnnParams kp;
    kp.probes_per_player = static_cast<std::size_t>(
        args.get_int("budget", static_cast<std::int64_t>(inst.matrix.objects() / 4)));
    outputs = baselines::sampled_knn(oracle, kp, rng::Rng(seed)).outputs;
  } else if (algo == "svd") {
    baselines::SvdParams sp;
    sp.sample_rate = args.get_double("rate", 0.25);
    sp.rank = static_cast<std::size_t>(args.get_int("rank", 4));
    outputs = baselines::svd_recommender(oracle, sp, rng::Rng(seed)).outputs;
  } else {
    throw std::runtime_error("unknown --algo=" + algo);
  }

  std::ofstream os(require(args, "out"));
  if (!os) throw std::runtime_error("cannot open output file");
  io::save_outputs(outputs, os);

  if (metrics_path.has_value()) {
    // Serial point: export the oracle ledgers as gauges so baseline
    // algos (which bypass the core entry points) are covered too.
    auto& reg = obs::MetricsRegistry::global();
    reg.set_gauge("oracle.total_invocations",
                  static_cast<std::int64_t>(oracle.total_invocations()));
    reg.set_gauge("oracle.total_charged", static_cast<std::int64_t>(oracle.total_charged()));
    reg.set_gauge("oracle.max_invocations",
                  static_cast<std::int64_t>(oracle.max_invocations()));
    std::ofstream ms(*metrics_path);
    if (!ms) throw std::runtime_error("cannot open --metrics file");
    ms << reg.snapshot().to_json() << '\n';
  }
  if (tracer != nullptr) {
    obs::set_tracer(nullptr);
    tracer->flush();
  }

  std::cout << "algo: " << algo << "\nrounds (max probes/player): "
            << oracle.max_invocations() << "\ntotal probes: " << oracle.total_invocations()
            << "\nsolo cost would be: " << inst.matrix.objects() << " rounds\n";
  if (injector != nullptr) {
    std::cout << "fault report:\n" << injector->report().to_string();
  }
  return 0;
}

int cmd_eval(const io::Args& args) {
  const auto inst = io::load_instance_file(require(args, "in"));
  std::ifstream is(require(args, "outputs"));
  if (!is) throw std::runtime_error("cannot open outputs file");
  const auto outputs = io::load_outputs(is);
  if (outputs.size() != inst.matrix.players()) {
    throw std::runtime_error("outputs/player count mismatch");
  }

  io::Table table("evaluation", {{"community"}, {"players"}, {"diameter D"}, {"worst_err"},
                                 {"stretch", 2}, {"mean_err", 1}});
  for (std::size_t c = 0; c < inst.communities.size(); ++c) {
    const auto& ids = inst.communities[c];
    if (ids.empty()) continue;
    std::size_t total = 0;
    for (auto p : ids) total += outputs[p].hamming(inst.matrix.row(p));
    table.add_row({static_cast<long long>(c), static_cast<long long>(ids.size()),
                   static_cast<long long>(inst.matrix.subset_diameter(ids)),
                   static_cast<long long>(inst.matrix.discrepancy(outputs, ids)),
                   inst.matrix.stretch(outputs, ids),
                   static_cast<double>(total) / static_cast<double>(ids.size())});
  }
  table.print(std::cout);

  std::size_t total = 0;
  for (matrix::PlayerId p = 0; p < inst.matrix.players(); ++p) {
    total += outputs[p].hamming(inst.matrix.row(p));
  }
  std::cout << "overall mean error: "
            << static_cast<double>(total) / static_cast<double>(inst.matrix.players())
            << " / " << inst.matrix.objects() << " objects\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    std::cout << flag_table().help();
    return 0;
  }
  try {
    const io::Args args(argc - 1, argv + 1);
    if (args.get_flag("help")) {
      std::cout << flag_table().help(cmd);
      return 0;
    }
    flag_table().validate(args, cmd);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "eval") return cmd_eval(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "tmwia_cli " << cmd << ": " << e.what() << '\n';
    return 1;
  }
}
