// tmwia_cli — command-line driver for the library.
//
//   tmwia_cli gen  --kind=planted --n=256 --m=256 --alpha=0.5 --radius=2 \
//                  --seed=1 --out=world.tmw
//   tmwia_cli info --in=world.tmw
//   tmwia_cli run  --in=world.tmw --algo=unknown_d --alpha=0.5 \
//                  --seed=2 --out=estimates.txt
//   tmwia_cli eval --in=world.tmw --outputs=estimates.txt
//
// `gen` writes an instance file (matrix + planted structure), `run`
// executes an algorithm against it through a fresh ProbeOracle and
// writes per-player estimates, `eval` scores estimates against the
// hidden truth, `info` prints the instance's shape and community
// structure. Every subcommand is deterministic given --seed.
//
// Observability: `run` takes --metrics=FILE (final MetricsRegistry
// snapshot as one-line JSON), --trace=FILE (span/event JSONL on a
// deterministic logical clock), --record=FILE (flight-recorder event
// log, JSONL or binary), --report=FILE (RunReport with the per-phase
// timeline as JSON) and --threads=N (global pool size; the artifacts
// are byte-identical for any N under the same seed).
//
// The flight log round-trips: `inspect` renders the phase timeline,
// per-player cost ledger and fault overlay of a recorded run, and
// `replay` re-drives a fresh billboard shadow + ProtocolAuditor from
// the events alone, cross-checking the stream against the recorded
// run_end totals.
//
// Service mode: `serve --requests=FILE` drives a long-lived
// serve::RecommendationService from a scriptable JSONL request stream
// (one flat JSON object per line; '-' reads stdin) and writes one
// response line per request to --out (default stdout). `--background`
// runs refinement epochs on a background thread (capped per tenant by
// --max-epochs) while requests are answered from the versioned cache;
// without it, refinement happens only at explicit {"op":"refine"}
// lines, which keeps the response stream deterministic.
//
// Durability: `run --checkpoint=FILE --checkpoint-every=R` (unknown_d)
// cuts a crash-consistent snapshot at guess boundaries every R rounds;
// `resume --checkpoint=FILE --in=WORLD` continues a killed run to a
// byte-identical report (DESIGN.md §11). `run --algo=mimic` drives the
// scheduler under engine::Supervisor (deadlines/backoff/quarantine);
// with --sabotage=P it demonstrates a degraded-but-complete run.
//
// Observability: `run/resume/serve --prof=FILE` writes the
// deterministic cost-attribution tree (--flame=FILE the flamegraph
// form; --prof-wall opts into wall-time sampling, breaking byte
// stability). `serve --telemetry=FILE --telemetry-every=N` streams
// periodic metrics/profiler snapshots as JSONL (with a Prometheus
// text exposition at FILE.prom) and `serve --slo=SPEC` arms the SLO
// watchdog (alerts land in the stream; a breach sets the exit code).
// `stats --telemetry=FILE [--follow]` summarizes or tails a stream.
//
// Exit codes (stable; asserted by tests/cli_workflow.sh):
//   0  success
//   1  unexpected runtime error
//   2  usage error (bad flag, bad subcommand, malformed spec)
//   3  replay/audit failure (protocol violation or total mismatch)
//   4  run completed degraded (quarantined players / unmet phases)
//   5  checkpoint file corrupt or unreadable
//   6  serve completed but an SLO objective was breached
//
// tmwia-lint: allow-file(sink-registration) CLI is a sink registrar:
// it owns the trace/record sinks it installs for --trace/--record.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "tmwia/baselines/baselines.hpp"
#include "tmwia/billboard/protocol_auditor.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/billboard/strategies.hpp"
#include "tmwia/core/checkpoint.hpp"
#include "tmwia/core/session.hpp"
#include "tmwia/core/tmwia.hpp"
#include "tmwia/engine/supervisor.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/serialize.hpp"
#include "tmwia/io/table.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/serve/protocol.hpp"
#include "tmwia/serve/service.hpp"

using namespace tmwia;

namespace {

// Documented exit codes (keep in sync with the header comment and
// DESIGN.md §11).
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitAuditFailed = 3;
constexpr int kExitDegraded = 4;
constexpr int kExitCheckpointCorrupt = 5;
constexpr int kExitSloBreach = 6;

// The single source of truth for every flag tmwia_cli accepts: --help
// is rendered from this table and unknown flags are rejected against
// it, per subcommand.
const io::FlagTable& flag_table() {
  static const io::FlagTable table(
      "usage: tmwia_cli <gen|info|run|resume|eval|inspect|replay|serve|stats> [--key=value ...]  "
      "(or: tmwia_cli --help)",
      {
          {"kind", "K", "instance family: planted|multi|adversarial|markov|lowrank|uniform",
           "gen"},
          {"n", "N", "players (default 256)", "gen"},
          {"m", "M", "objects (default 256)", "gen"},
          {"alpha", "A", "community fraction (default 0.5)", "gen,run"},
          {"radius", "R", "community radius (default 0)", "gen"},
          {"types", "K", "taste types for adversarial/markov/lowrank (default 4)", "gen"},
          {"noise", "F", "per-entry noise rate for generated instances (default 0.1)",
           "gen"},
          {"seed", "S", "deterministic seed (default 1)", "gen,run"},
          {"out", "FILE", "output file (instance, estimates, or serve responses; serve "
           "defaults to stdout)", "gen,run,resume,serve"},
          {"in", "FILE", "instance file", "info,run,resume,eval"},
          {"algo", "NAME", "zero|small|large|unknown_d|anytime|mimic|solo|knn|svd", "run"},
          {"d", "D", "distance bound for --algo=small|large (default 8)", "run"},
          {"profile", "P", "parameter profile: practical|paper (default practical)", "run"},
          {"budget", "B", "round budget (anytime) / probes per player (knn)", "run"},
          {"rate", "F", "sample rate for --algo=svd (default 0.25)", "run"},
          {"rank", "K", "rank for --algo=svd (default 4)", "run"},
          {"faults", "SPEC", "fault plan, e.g. seed=S,crash=R@A-B,probe=R,kill=R", "run"},
          {"metrics", "FILE", "write final metrics snapshot JSON here", "run,resume,serve"},
          {"trace", "FILE", "write span/event trace JSONL here (serve: exemplar "
           "spans)", "run,resume,serve"},
          {"record", "FILE", "write the flight-recorder event log here", "run,resume"},
          {"record-format", "F", "recorder wire format: jsonl|binary (default jsonl)",
           "run,resume"},
          {"report", "FILE", "write the RunReport (phase timeline) as JSON here",
           "run,resume,serve"},
          {"threads", "N", "global thread-pool size (0 = hardware)", "run,resume,serve"},
          {"kernel", "B", "distance-kernel backend: scalar|avx2|avx512|auto "
           "(default auto; any choice computes identical results)", "run,resume,serve"},
          {"checkpoint", "FILE", "checkpoint file (written by run, read+rewritten by "
           "resume)", "run,resume"},
          {"checkpoint-every", "R", "checkpoint cadence in rounds (0 = never; resume "
           "inherits it)", "run"},
          {"strikes", "K", "mimic: exceptions before quarantine (default 3)", "run"},
          {"backoff", "R", "mimic: backoff base in rounds (default 1)", "run"},
          {"phase-rounds", "LIST", "mimic: comma-separated per-phase round budgets",
           "run"},
          {"sabotage", "P", "mimic: make player P's strategy always throw (drill)",
           "run"},
          {"outputs", "FILE", "estimates file to score", "eval"},
          {"requests", "FILE", "serve: request JSONL stream ('-' = stdin)", "serve"},
          {"background", "", "serve: refine on a background thread while answering",
           "serve"},
          {"max-epochs", "E", "serve: background epochs per tenant (default 4, 0 = until "
           "the stream ends)", "serve"},
          {"log", "FILE", "flight-recorder log to read", "inspect,replay"},
          {"prof", "FILE", "write the cost-attribution tree JSON here (deterministic "
           "logical costs)", "run,resume,serve"},
          {"flame", "FILE", "write a flamegraph-style JSON (probes axis) here",
           "run,resume,serve"},
          {"prof-wall", "", "also sample wall time into profile zones (breaks "
           "byte-stability; needs --prof or --flame)", "run,resume,serve"},
          {"telemetry", "FILE", "serve: stream telemetry JSONL here (Prometheus "
           "exposition at FILE.prom); stats: stream to read", "serve,stats"},
          {"telemetry-every", "N", "serve: requests per telemetry tick (default 64)",
           "serve"},
          {"slo", "SPEC", "serve: SLO objectives, e.g. "
           "p99_us=5000,staleness=4,degraded=0,audit=0,window=256", "serve"},
          {"follow", "", "stats: keep tailing the telemetry stream", "stats"},
          {"help", "", "show this help"},
      });
  return table;
}

int usage() {
  std::cerr << flag_table().help();
  return kExitUsage;
}

std::string require(const io::Args& args, const std::string& key) {
  const auto v = args.get(key);
  if (!v) throw std::invalid_argument("missing required --" + key);
  return *v;
}

/// Apply --kernel=B (if given) before any distance work runs. Unknown
/// names and backends this CPU cannot execute are usage errors
/// (set_backend's invalid_argument maps to exit code 2).
void apply_kernel_flag(const io::Args& args) {
  const auto name = args.get("kernel");
  if (!name.has_value()) return;
  const auto backend = bits::kernels::parse_backend(*name);
  if (!backend.has_value()) {
    throw std::invalid_argument("--kernel: unknown backend '" + *name +
                                "' (expected scalar|avx2|avx512|auto)");
  }
  bits::kernels::set_backend(*backend);
}

/// One durable line of JSON (report, metrics snapshot): written through
/// the io atomic-write path so a crash never leaves a torn artifact.
void write_text_artifact(const std::string& path, std::string text) {
  text.push_back('\n');
  io::atomic_write_file(path, text);
}

/// Arm the global cost-attribution profiler when --prof/--flame ask
/// for an artifact. Wall sampling is opt-in on top (it breaks the
/// byte-stability contract the determinism drills compare).
void apply_profiler_flags(const io::Args& args) {
  const bool want = args.get("prof").has_value() || args.get("flame").has_value();
  if (args.get_flag("prof-wall") && !want) {
    throw std::invalid_argument("--prof-wall requires --prof or --flame");
  }
  if (!want) return;
  auto& prof = obs::Profiler::global();
  prof.set_enabled(true);
  if (args.get_flag("prof-wall")) prof.set_wall_sampling(true);
}

/// Serial-point profiler export shared by run/resume/serve.
void write_profiler_artifacts(const io::Args& args) {
  auto& prof = obs::Profiler::global();
  if (const auto path = args.get("prof"); path.has_value()) {
    write_text_artifact(*path, prof.report().to_json(prof.wall_sampling()));
  }
  if (const auto path = args.get("flame"); path.has_value()) {
    write_text_artifact(*path, prof.report().flamegraph_json(obs::Cost::kProbes));
  }
}

/// The trace/record sinks `run` and `resume` both install. The
/// recorder gets the planted-truth evaluator, so phase summaries carry
/// real discrepancy numbers (the library only sees the std::function).
struct ObsSinks {
  // tmwia-lint: allow(durable-write) streaming event sinks, not one-shot artifacts
  std::ofstream trace_out;
  std::unique_ptr<obs::Tracer> tracer;
  // tmwia-lint: allow(durable-write) streaming event sinks, not one-shot artifacts
  std::ofstream record_out;
  std::unique_ptr<obs::FlightRecorder> recorder;

  void open(const io::Args& args, const matrix::Instance& inst) {
    if (const auto trace_path = args.get("trace"); trace_path.has_value()) {
      trace_out.open(*trace_path);
      if (!trace_out) throw std::runtime_error("cannot open --trace file");
      tracer = std::make_unique<obs::Tracer>(trace_out);
      obs::set_tracer(tracer.get());
    }
    if (const auto record_path = args.get("record"); record_path.has_value()) {
      const auto fmt_name = args.get("record-format").value_or("jsonl");
      obs::RecordFormat fmt = obs::RecordFormat::kJsonl;
      if (fmt_name == "binary") {
        fmt = obs::RecordFormat::kBinary;
      } else if (fmt_name != "jsonl") {
        throw std::invalid_argument("unknown --record-format=" + fmt_name);
      }
      record_out.open(*record_path, fmt == obs::RecordFormat::kBinary
                                        ? std::ios::out | std::ios::binary
                                        : std::ios::out);
      if (!record_out) throw std::runtime_error("cannot open --record file");
      recorder = std::make_unique<obs::FlightRecorder>(record_out, fmt);
      recorder->set_output_evaluator(make_truth_evaluator(inst.matrix));
      obs::set_recorder(recorder.get());
    } else if (args.get("record-format").has_value()) {
      throw std::invalid_argument("--record-format requires --record");
    }
  }

  void finish() {
    if (tracer != nullptr) {
      obs::set_tracer(nullptr);
      tracer->flush();
    }
    if (recorder != nullptr) {
      obs::set_recorder(nullptr);
      recorder->flush();
    }
  }
};

/// Serial-point metrics export shared by `run` and `resume`.
void write_metrics_snapshot(const std::string& path, const billboard::ProbeOracle& oracle) {
  auto& reg = obs::MetricsRegistry::global();
  reg.set_gauge("oracle.total_invocations",
                static_cast<std::int64_t>(oracle.total_invocations()));
  reg.set_gauge("oracle.total_charged", static_cast<std::int64_t>(oracle.total_charged()));
  reg.set_gauge("oracle.max_invocations",
                static_cast<std::int64_t>(oracle.max_invocations()));
  write_text_artifact(path, reg.snapshot().to_json());
}

int cmd_gen(const io::Args& args) {
  const auto kind = require(args, "kind");
  const auto n = static_cast<std::size_t>(args.get_int("n", 256));
  const auto m = static_cast<std::size_t>(args.get_int("m", 256));
  const double alpha = args.get_double("alpha", 0.5);
  const auto radius = static_cast<std::size_t>(args.get_int("radius", 0));
  const auto types = static_cast<std::size_t>(args.get_int("types", 4));
  const double noise = args.get_double("noise", 0.1);
  rng::Rng rng(args.get_seed("seed", 1));

  matrix::Instance inst;
  if (kind == "planted") {
    inst = matrix::planted_community(n, m, {alpha, radius}, rng);
  } else if (kind == "multi") {
    inst = matrix::planted_communities(
        n, m, {{alpha / 2, radius}, {alpha / 2, radius * 2}}, rng);
  } else if (kind == "adversarial") {
    inst = matrix::adversarial_diversity(n, m, types, radius, noise, rng);
  } else if (kind == "markov") {
    inst = matrix::markov_type_model(n, m, types, noise, rng);
  } else if (kind == "lowrank") {
    inst = matrix::low_rank_model(n, m, types, noise, rng);
  } else if (kind == "uniform") {
    inst = matrix::uniform_random(n, m, rng);
  } else {
    throw std::invalid_argument("unknown --kind=" + kind);
  }

  io::save_instance_file(inst, require(args, "out"));
  std::cout << "wrote " << kind << " instance: " << n << " players x " << m
            << " objects, " << inst.communities.size() << " communities\n";
  return 0;
}

int cmd_info(const io::Args& args) {
  const auto inst = io::load_instance_file(require(args, "in"));
  std::cout << "players: " << inst.matrix.players() << "\nobjects: "
            << inst.matrix.objects() << "\ncommunities: " << inst.communities.size()
            << '\n';
  for (std::size_t c = 0; c < inst.communities.size(); ++c) {
    const auto& ids = inst.communities[c];
    std::cout << "  community " << c << ": " << ids.size() << " players, diameter "
              << inst.matrix.subset_diameter(ids) << '\n';
  }
  return 0;
}

/// Failure drill for the supervisor path: every probe decision throws,
/// so the player strikes out and is quarantined instead of aborting
/// the run (--sabotage=P).
class SabotagedStrategy final : public billboard::PlayerStrategy {
 public:
  explicit SabotagedStrategy(std::unique_ptr<billboard::PlayerStrategy> inner)
      : inner_(std::move(inner)) {}

  std::optional<billboard::ObjectId> next_probe(const billboard::RoundView&) override {
    throw std::runtime_error("sabotaged strategy");
  }
  void on_result(billboard::ObjectId, bool) override {}
  [[nodiscard]] bool done() const override { return inner_->done(); }

 private:
  std::unique_ptr<billboard::PlayerStrategy> inner_;
};

int cmd_run(const io::Args& args) {
  const auto inst = io::load_instance_file(require(args, "in"));
  const auto algo = args.get("algo").value_or("unknown_d");
  const double alpha = args.get_double("alpha", 0.5);
  const auto seed = args.get_seed("seed", 1);
  const auto profile = args.get("profile").value_or("practical");
  const auto params =
      profile == "paper" ? core::Params::paper() : core::Params::practical();

  // Observability sinks. The thread count must be requested before the
  // first parallel phase constructs the global pool, and the kernel
  // backend before the first distance call.
  engine::set_global_threads(static_cast<std::size_t>(args.get_int("threads", 0)));
  apply_kernel_flag(args);
  const auto metrics_path = args.get("metrics");
  if (metrics_path.has_value()) obs::MetricsRegistry::global().set_enabled(true);
  apply_profiler_flags(args);
  ObsSinks sinks;
  sinks.open(args, inst);

  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  std::vector<bits::BitVector> outputs;
  std::optional<core::RunReport> report;

  // Optional fault injection: a seeded declarative plan (see
  // faults::FaultPlan::parse for the grammar). The run then ends with a
  // FaultReport of everything that fired.
  std::unique_ptr<faults::FaultInjector> injector;
  if (const auto spec = args.get("faults"); spec.has_value()) {
    const auto plan = faults::FaultPlan::parse(*spec);
    injector = std::make_unique<faults::FaultInjector>(plan, inst.matrix.players());
    oracle.set_fault_injector(injector.get());
  }

  if (algo == "unknown_d") {
    // Optional durability: cut a crash-consistent snapshot at guess
    // boundaries every --checkpoint-every rounds. The harness metadata
    // stored in the file is everything `resume` needs besides the
    // instance itself (which travels by --in).
    const auto ckpt_path = args.get("checkpoint");
    const auto ckpt_every =
        static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
    if (ckpt_path.has_value() && ckpt_every == 0) {
      throw std::invalid_argument("--checkpoint requires --checkpoint-every");
    }
    core::CheckpointPolicy policy;
    policy.every_rounds = ckpt_every;
    std::vector<std::pair<std::string, std::string>> harness;
    if (const auto spec = args.get("faults"); spec.has_value()) {
      harness.emplace_back("faults", *spec);
    }
    harness.emplace_back("profile", profile);
    harness.emplace_back("checkpoint_every", std::to_string(ckpt_every));
    if (ckpt_path.has_value()) {
      policy.sink = [&ckpt_path, &harness](const core::RunCheckpoint& ck) {
        core::RunCheckpoint with_meta = ck;
        with_meta.harness = harness;
        core::save_run_checkpoint(*ckpt_path, with_meta);
      };
    }
    report = core::find_preferences_unknown_d(oracle, &board, alpha, params,
                                              rng::Rng(seed), policy);
  } else if (algo == "mimic") {
    // Supervised scheduler execution of the mimic heuristic: per-phase
    // round deadlines, strike/backoff/quarantine on throwing
    // strategies, and a degraded (never aborted) report.
    engine::SupervisorConfig scfg;
    scfg.max_strikes = static_cast<std::size_t>(args.get_int("strikes", 3));
    scfg.backoff_base = static_cast<std::size_t>(args.get_int("backoff", 1));
    const auto n = inst.matrix.players();
    const auto m = inst.matrix.objects();

    std::vector<engine::PhaseSpec> phase_specs;
    if (const auto list = args.get("phase-rounds"); list.has_value()) {
      std::istringstream ls(*list);
      std::string item;
      while (std::getline(ls, item, ',')) {
        std::size_t pos = 0;
        const auto budget = std::stoull(item, &pos);
        if (pos != item.size() || budget == 0) {
          throw std::invalid_argument("bad --phase-rounds entry '" + item + "'");
        }
        phase_specs.push_back({"phase:" + std::to_string(phase_specs.size()),
                               static_cast<std::size_t>(budget)});
      }
    }
    if (phase_specs.empty()) phase_specs.push_back({"phase:0", m * 4});

    const rng::Rng root(seed);
    std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
    std::vector<const billboard::MimicStrategy*> estimates(n, nullptr);
    strategies.reserve(n);
    for (matrix::PlayerId p = 0; p < n; ++p) {
      auto s = std::make_unique<billboard::MimicStrategy>(
          p, m, /*sample_budget=*/std::max<std::size_t>(m / 8, 4), /*spot_checks=*/8,
          root.split(0x31C, p), /*patience=*/16);
      estimates[p] = s.get();
      strategies.push_back(std::move(s));
    }
    if (const auto sab = args.get("sabotage"); sab.has_value()) {
      const auto p = static_cast<std::size_t>(args.get_int("sabotage", 0));
      if (p >= n) throw std::invalid_argument("--sabotage player out of range");
      strategies[p] = std::make_unique<SabotagedStrategy>(std::move(strategies[p]));
    }

    engine::Supervisor supervisor(oracle, scfg);
    const auto sres = supervisor.run(strategies, phase_specs);

    core::RunReport rep;
    rep.algo = core::RunReport::Algo::kSupervised;
    rep.rounds = oracle.max_invocations();
    rep.total_probes = oracle.total_invocations();
    rep.outputs.reserve(n);
    for (matrix::PlayerId p = 0; p < n; ++p) rep.outputs.push_back(estimates[p]->estimate());
    for (const auto& ph : sres.phases) {
      rep.timeline.push_back({ph.label, ph.cum_rounds, ph.cum_probes, -1.0, -1.0});
    }
    rep.degraded.quarantined = sres.quarantined;
    rep.degraded.unmet_phases = sres.unmet_phases;
    if (injector != nullptr && !sres.quarantined.empty()) {
      // Quarantined players were flagged as orphans: re-adopt their
      // outputs from the most-supported survivors (Section 6.1 RSelect).
      std::vector<matrix::PlayerId> ids(n);
      for (matrix::PlayerId p = 0; p < n; ++p) ids[p] = p;
      core::rescue_orphans(oracle, rep.outputs, ids, params, root.split(0x0FA9));
    }
    if (obs::MetricsRegistry::global().enabled()) {
      rep.metrics = obs::MetricsRegistry::global().snapshot();
    }
    std::cout << "supervisor: " << sres.phases.size() << " phases, " << sres.strikes
              << " strikes, " << sres.benched_rounds << " benched rounds, "
              << sres.quarantined.size() << " quarantined\n";
    report = std::move(rep);
  } else if (algo == "zero" || algo == "small" || algo == "large") {
    const auto d = static_cast<std::size_t>(args.get_int("d", algo == "zero" ? 0 : 8));
    report = core::find_preferences(oracle, &board, alpha, d, params, rng::Rng(seed));
  } else if (algo == "anytime") {
    const auto budget = static_cast<std::uint64_t>(
        args.get_int("budget", static_cast<std::int64_t>(inst.matrix.objects()) * 4));
    report = core::anytime(oracle, &board, budget, params, rng::Rng(seed));
  } else if (algo == "solo") {
    outputs = baselines::solo_probing(oracle).outputs;
  } else if (algo == "knn") {
    baselines::KnnParams kp;
    kp.probes_per_player = static_cast<std::size_t>(
        args.get_int("budget", static_cast<std::int64_t>(inst.matrix.objects() / 4)));
    outputs = baselines::sampled_knn(oracle, kp, rng::Rng(seed)).outputs;
  } else if (algo == "svd") {
    baselines::SvdParams sp;
    sp.sample_rate = args.get_double("rate", 0.25);
    sp.rank = static_cast<std::size_t>(args.get_int("rank", 4));
    outputs = baselines::svd_recommender(oracle, sp, rng::Rng(seed)).outputs;
  } else {
    throw std::invalid_argument("unknown --algo=" + algo);
  }
  if (const auto report_path = args.get("report"); report_path.has_value()) {
    if (!report.has_value()) {
      throw std::invalid_argument("--report: --algo=" + algo + " produces no RunReport");
    }
    write_text_artifact(*report_path, report->to_json());
  }
  bool degraded = false;
  if (report.has_value()) {
    degraded = !report->degraded.empty();
    // The report JSON is already on disk; it never embeds the
    // estimates, so the remaining consumer is save_outputs below.
    outputs = std::move(report->outputs);
  }

  {
    std::ostringstream os;
    io::save_outputs(outputs, os);
    io::atomic_write_file(require(args, "out"), os.str());
  }

  if (metrics_path.has_value()) {
    // Serial point: export the oracle ledgers as gauges so baseline
    // algos (which bypass the core entry points) are covered too.
    write_metrics_snapshot(*metrics_path, oracle);
  }
  write_profiler_artifacts(args);
  sinks.finish();

  std::cout << "algo: " << algo << "\nrounds (max probes/player): "
            << oracle.max_invocations() << "\ntotal probes: " << oracle.total_invocations()
            << "\nsolo cost would be: " << inst.matrix.objects() << " rounds\n";
  if (injector != nullptr) {
    std::cout << "fault report:\n" << injector->report().to_string();
  }
  if (degraded) {
    std::cout << "run DEGRADED (see report's degraded section)\n";
    return kExitDegraded;
  }
  return kExitOk;
}

int cmd_resume(const io::Args& args) {
  const auto ckpt = core::load_run_checkpoint(require(args, "checkpoint"));
  const auto inst = io::load_instance_file(require(args, "in"));
  const auto profile = ckpt.harness_value("profile");
  const auto params =
      profile == "paper" ? core::Params::paper() : core::Params::practical();

  engine::set_global_threads(static_cast<std::size_t>(args.get_int("threads", 0)));
  apply_kernel_flag(args);
  const auto metrics_path = args.get("metrics");
  if (metrics_path.has_value()) obs::MetricsRegistry::global().set_enabled(true);
  apply_profiler_flags(args);
  ObsSinks sinks;
  sinks.open(args, inst);

  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  std::unique_ptr<faults::FaultInjector> injector;
  if (const auto spec = ckpt.harness_value("faults"); !spec.empty()) {
    auto plan = faults::FaultPlan::parse(spec);
    // The kill drill (if any) already fired in the run being resumed;
    // re-arming it would kill the resumed run at the same round.
    plan.kill_at_round = faults::kNever;
    injector = std::make_unique<faults::FaultInjector>(plan, inst.matrix.players());
    oracle.set_fault_injector(injector.get());
  }

  // Keep cutting checkpoints on the run's original cadence, into the
  // same file — so a resumed run is itself resumable, and its ckpt
  // notes line up with an uninterrupted reference run.
  const auto ckpt_path = require(args, "checkpoint");
  core::CheckpointPolicy policy;
  if (const auto every = ckpt.harness_value("checkpoint_every"); !every.empty()) {
    policy.every_rounds = std::stoull(every);
  }
  const auto harness = ckpt.harness;
  policy.sink = [&ckpt_path, &harness](const core::RunCheckpoint& ck) {
    core::RunCheckpoint with_meta = ck;
    with_meta.harness = harness;
    core::save_run_checkpoint(ckpt_path, with_meta);
  };

  auto report = core::resume_unknown_d(oracle, &board, params, ckpt, policy);
  const bool degraded = !report.degraded.empty();

  if (const auto report_path = args.get("report"); report_path.has_value()) {
    write_text_artifact(*report_path, report.to_json());
  }
  {
    std::ostringstream os;
    io::save_outputs(report.outputs, os);
    io::atomic_write_file(require(args, "out"), os.str());
  }
  if (metrics_path.has_value()) write_metrics_snapshot(*metrics_path, oracle);
  write_profiler_artifacts(args);
  sinks.finish();

  std::cout << "resumed from checkpoint seq " << ckpt.seq << " (cut at "
            << ckpt.cum_rounds << " rounds)\nrounds (max probes/player): "
            << oracle.max_invocations()
            << "\ntotal probes: " << oracle.total_invocations() << '\n';
  if (injector != nullptr) {
    std::cout << "fault report:\n" << injector->report().to_string();
  }
  if (degraded) {
    std::cout << "run DEGRADED (see report's degraded section)\n";
    return kExitDegraded;
  }
  return kExitOk;
}

int cmd_eval(const io::Args& args) {
  const auto inst = io::load_instance_file(require(args, "in"));
  std::ifstream is(require(args, "outputs"));
  if (!is) throw std::runtime_error("cannot open outputs file");
  const auto outputs = io::load_outputs(is);
  if (outputs.size() != inst.matrix.players()) {
    throw std::runtime_error("outputs/player count mismatch");
  }

  io::Table table("evaluation", {{"community"}, {"players"}, {"diameter D"}, {"worst_err"},
                                 {"stretch", 2}, {"mean_err", 1}});
  for (std::size_t c = 0; c < inst.communities.size(); ++c) {
    const auto& ids = inst.communities[c];
    if (ids.empty()) continue;
    std::size_t total = 0;
    for (auto p : ids) total += outputs[p].hamming(inst.matrix.row(p));
    table.add_row({static_cast<long long>(c), static_cast<long long>(ids.size()),
                   static_cast<long long>(inst.matrix.subset_diameter(ids)),
                   static_cast<long long>(inst.matrix.discrepancy(outputs, ids)),
                   inst.matrix.stretch(outputs, ids),
                   static_cast<double>(total) / static_cast<double>(ids.size())});
  }
  table.print(std::cout);

  std::size_t total = 0;
  for (matrix::PlayerId p = 0; p < inst.matrix.players(); ++p) {
    total += outputs[p].hamming(inst.matrix.row(p));
  }
  std::cout << "overall mean error: "
            << static_cast<double>(total) / static_cast<double>(inst.matrix.players())
            << " / " << inst.matrix.objects() << " objects\n";
  return 0;
}

obs::RecorderLog load_log(const io::Args& args) {
  const auto path = require(args, "log");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open --log file '" + path + "'");
  return obs::read_recorder_log(in);
}

/// Per-player charges accumulated from the event stream.
struct PlayerLedger {
  std::uint64_t attempts = 0;  ///< probe + probe_failed (charged)
  std::uint64_t failed = 0;
  std::uint64_t posts = 0;  ///< result + vector posts
};

int cmd_inspect(const io::Args& args) {
  const auto log = load_log(args);
  std::cout << "events: " << log.events.size() << " ("
            << (log.format == obs::RecordFormat::kBinary ? "binary" : "jsonl")
            << ")\n\n";

  // Run/phase timeline: scope transitions plus every phase summary.
  io::Table timeline("run timeline",
                     {{"scope"}, {"event"}, {"players"}, {"cum_rounds"}, {"cum_probes"},
                      {"max_disc", 1}, {"mean_disc", 2}});
  std::vector<std::string> stack;
  std::uint64_t rounds_seen = 0;
  std::uint64_t result_posts = 0;
  std::vector<PlayerLedger> ledger;
  std::map<std::string, std::uint64_t> faults;
  std::vector<std::uint32_t> crashed_players;
  std::uint64_t dropped_events = 0;

  auto at_player = [&ledger](std::uint32_t p) -> PlayerLedger& {
    if (p >= ledger.size()) ledger.resize(p + 1);
    return ledger[p];
  };
  auto indent = [&stack] {
    return std::string(2 * (stack.empty() ? 0 : stack.size() - 1), ' ') +
           (stack.empty() ? std::string("?") : stack.back());
  };

  using Kind = obs::RecorderEvent::Kind;
  for (const auto& ev : log.events) {
    switch (ev.kind) {
      case Kind::kRunBegin:
      case Kind::kPhaseBegin:
        stack.push_back(ev.label);
        timeline.add_row({indent(), std::string(ev.kind == Kind::kRunBegin
                                                    ? "begin"
                                                    : "phase"),
                          static_cast<long long>(ev.a), std::string("-"), std::string("-"),
                          std::string("-"), std::string("-")});
        break;
      case Kind::kRunEnd:
      case Kind::kPhaseEnd:
        timeline.add_row({indent(), std::string("end"), std::string("-"),
                          static_cast<long long>(ev.a), static_cast<long long>(ev.b),
                          std::string("-"), std::string("-")});
        if (!stack.empty()) stack.pop_back();
        break;
      case Kind::kPhaseSummary: {
        std::vector<io::Cell> row{indent() + "/" + ev.label, std::string("summary"),
                                  static_cast<long long>(ev.player),
                                  static_cast<long long>(ev.a),
                                  static_cast<long long>(ev.b)};
        if (ev.has(obs::RecorderEvent::kHasX)) {
          row.emplace_back(ev.x);
          row.emplace_back(ev.y);
        } else {
          row.emplace_back(std::string("-"));
          row.emplace_back(std::string("-"));
        }
        timeline.add_row(std::move(row));
        break;
      }
      case Kind::kRoundBegin:
        ++rounds_seen;
        break;
      case Kind::kProbe:
        ++at_player(ev.player).attempts;
        break;
      case Kind::kProbeFailed: {
        auto& pl = at_player(ev.player);
        ++pl.attempts;
        ++pl.failed;
        break;
      }
      case Kind::kPost:
        ++at_player(ev.player).posts;
        ++result_posts;
        break;
      case Kind::kVectorPost:
        ++at_player(ev.player).posts;
        break;
      case Kind::kCrash:
        ++faults["crash"];
        crashed_players.push_back(ev.player);
        break;
      case Kind::kRecover:
        ++faults["recover"];
        break;
      case Kind::kDegraded:
        ++faults["degraded"];
        break;
      case Kind::kPostDropped:
        ++faults["post_dropped"];
        break;
      case Kind::kPostDelayed:
        ++faults["post_delayed"];
        break;
      case Kind::kOverflow:
        dropped_events += ev.a;
        break;
      default:
        break;
    }
  }
  timeline.print(std::cout);
  if (rounds_seen != 0) {
    std::cout << "\nscheduler rounds: " << rounds_seen
              << ", result posts: " << result_posts << '\n';
  }
  if (dropped_events != 0) {
    std::cout << "WARNING: " << dropped_events
              << " events were dropped at record time (stage overflow)\n";
  }

  // Per-player cost ledger: totals plus the most expensive players.
  std::uint64_t total_attempts = 0;
  std::uint64_t max_attempts = 0;
  for (const auto& pl : ledger) {
    total_attempts += pl.attempts;
    max_attempts = std::max(max_attempts, pl.attempts);
  }
  std::cout << "\nprobe cost: " << total_attempts << " charged attempts, max/player "
            << max_attempts << '\n';
  std::vector<std::uint32_t> by_cost(ledger.size());
  for (std::uint32_t p = 0; p < ledger.size(); ++p) by_cost[p] = p;
  std::stable_sort(by_cost.begin(), by_cost.end(), [&](std::uint32_t a, std::uint32_t b) {
    return ledger[a].attempts > ledger[b].attempts;
  });
  io::Table costs("top players by probe cost",
                  {{"player"}, {"attempts"}, {"failed"}, {"posts"}});
  for (std::size_t i = 0; i < std::min<std::size_t>(by_cost.size(), 10); ++i) {
    const auto p = by_cost[i];
    costs.add_row({static_cast<long long>(p), static_cast<long long>(ledger[p].attempts),
                   static_cast<long long>(ledger[p].failed),
                   static_cast<long long>(ledger[p].posts)});
  }
  costs.print(std::cout);

  // Fault overlay.
  if (!faults.empty()) {
    io::Table overlay("fault overlay", {{"fault"}, {"events"}});
    for (const auto& [name, count] : faults) {
      overlay.add_row({name, static_cast<long long>(count)});
    }
    overlay.print(std::cout);
    std::sort(crashed_players.begin(), crashed_players.end());
    crashed_players.erase(std::unique(crashed_players.begin(), crashed_players.end()),
                          crashed_players.end());
    if (!crashed_players.empty()) {
      std::cout << "crashed players (" << crashed_players.size() << "):";
      for (std::size_t i = 0; i < std::min<std::size_t>(crashed_players.size(), 16); ++i) {
        std::cout << ' ' << crashed_players[i];
      }
      if (crashed_players.size() > 16) std::cout << " ...";
      std::cout << '\n';
    }
  } else {
    std::cout << "no fault events recorded\n";
  }
  return 0;
}

int cmd_replay(const io::Args& args) {
  const auto log = load_log(args);
  using Kind = obs::RecorderEvent::Kind;

  // Depth-0 run scopes; nested phase markers stay inside their segment.
  struct Segment {
    std::size_t begin = 0;  ///< index of the run_begin event
    std::size_t end = 0;    ///< index of the matching run_end event
  };
  std::vector<Segment> segments;
  std::size_t open_begin = 0;
  bool open = false;
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    const auto kind = log.events[i].kind;
    if (kind == Kind::kRunBegin) {
      if (open) throw std::runtime_error("replay: nested run_begin");
      open_begin = i;
      open = true;
    } else if (kind == Kind::kRunEnd) {
      if (!open) throw std::runtime_error("replay: run_end without run_begin");
      segments.push_back({open_begin, i});
      open = false;
    }
  }
  if (open) throw std::runtime_error("replay: unterminated run scope");
  if (segments.empty()) throw std::runtime_error("replay: no run scopes in log");

  io::Table table("replay", {{"run"}, {"events"}, {"probes"}, {"rounds"}, {"posts"},
                             {"channels"}, {"violations"}});
  bool ok = true;
  for (const auto& seg : segments) {
    const auto& begin = log.events[seg.begin];
    const auto& end = log.events[seg.end];
    const auto players = static_cast<std::size_t>(begin.a);
    const auto objects = static_cast<std::size_t>(begin.b);

    // Re-drive a fresh billboard shadow and auditor from events alone:
    // posted results as per-player bitmaps, vector posts per channel,
    // every charged attempt through the auditor's A1-A4 ledgers.
    billboard::ProtocolAuditor auditor(players, objects);
    std::vector<bits::BitVector> posted(players, bits::BitVector(objects));
    std::map<std::string, std::uint64_t> channels;
    std::vector<std::uint64_t> attempts(players, 0);
    std::uint64_t charged = 0;
    std::uint64_t result_posts = 0;
    bool in_round = false;

    for (std::size_t i = seg.begin + 1; i < seg.end; ++i) {
      const auto& ev = log.events[i];
      switch (ev.kind) {
        case Kind::kRoundBegin:
          auditor.begin_round(ev.round);
          in_round = true;
          break;
        case Kind::kRoundEnd:
          if (in_round) auditor.end_round();
          in_round = false;
          break;
        case Kind::kProbe:
          auditor.on_probe_attempt(ev.player);
          auditor.on_probe(ev.player, ev.object);
          if (ev.player < players) ++attempts[ev.player];
          ++charged;
          break;
        case Kind::kProbeFailed:
          auditor.on_probe_attempt(ev.player);
          if (ev.player < players) ++attempts[ev.player];
          ++charged;
          break;
        case Kind::kPost:
          auditor.on_post(ev.player, ev.object);
          if (ev.player < players) posted[ev.player].set(ev.object, true);
          ++result_posts;
          break;
        case Kind::kVectorPost:
          ++channels[ev.label];
          break;
        default:
          break;
      }
    }
    if (in_round) auditor.end_round();

    // A4 cross-check: the recorded run_end totals must reconcile with
    // the attempts reconstructed from the stream (recorded as a
    // violation, not a throw, so everything lands in one report).
    auditor.verify_totals(end.b, end.a);
    const auto report = auditor.report();

    std::uint64_t posted_bits = 0;
    for (const auto& row : posted) posted_bits += row.count_ones();
    if (posted_bits != result_posts) {
      // A player's posted set is a set: duplicate posts collapse.
      std::cout << "note: " << (result_posts - posted_bits)
                << " re-posted results collapsed in the billboard shadow\n";
    }

    table.add_row({begin.label, static_cast<long long>(seg.end - seg.begin + 1),
                   static_cast<long long>(charged), static_cast<long long>(end.a),
                   static_cast<long long>(result_posts),
                   static_cast<long long>(channels.size()),
                   static_cast<long long>(report.violations.size())});
    if (!report.clean()) {
      ok = false;
      for (const auto& v : report.violations) {
        std::cout << "VIOLATION [" << begin.label << "] "
                  << billboard::to_string(v.kind) << " player=" << v.player
                  << " object=" << v.object << " round=" << v.round << ": " << v.detail
                  << '\n';
      }
    }
  }
  table.print(std::cout);
  std::cout << (ok ? "replay clean: billboard state reconstructed, totals verified\n"
                   : "replay FAILED\n");
  return ok ? kExitOk : kExitAuditFailed;
}

}  // namespace

int cmd_serve(const io::Args& args) {
  // Thread count before the first parallel phase, kernel backend
  // before the first distance call — same ordering contract as `run`.
  engine::set_global_threads(static_cast<std::size_t>(args.get_int("threads", 0)));
  apply_kernel_flag(args);
  const auto metrics_path = args.get("metrics");
  if (metrics_path.has_value()) obs::MetricsRegistry::global().set_enabled(true);
  apply_profiler_flags(args);

  // Live-observability stack, outermost first: optional exemplar
  // tracer, optional SLO watchdog, optional telemetry exporter over
  // both. The exporter snapshots the metrics registry, so --telemetry
  // implies enabling it (otherwise every snapshot would be empty).
  const auto telemetry_path = args.get("telemetry");
  if (!telemetry_path.has_value() && args.get("telemetry-every").has_value()) {
    throw std::invalid_argument("--telemetry-every requires --telemetry");
  }
  // tmwia-lint: allow(durable-write) streaming exemplar-trace sink, not a one-shot artifact
  std::ofstream trace_out;
  std::unique_ptr<obs::Tracer> tracer;
  if (const auto trace_path = args.get("trace"); trace_path.has_value()) {
    trace_out.open(*trace_path);
    if (!trace_out) throw std::runtime_error("cannot open --trace file");
    tracer = std::make_unique<obs::Tracer>(trace_out);
    obs::set_tracer(tracer.get());
  }
  std::unique_ptr<obs::SloWatchdog> watchdog;
  if (const auto spec = args.get("slo"); spec.has_value()) {
    auto parsed = obs::SloSpec::parse(*spec);
    if (!parsed.any()) {
      throw std::invalid_argument("--slo: spec enables no objective");
    }
    watchdog = std::make_unique<obs::SloWatchdog>(parsed);
  }
  std::unique_ptr<obs::TelemetryExporter> telemetry;
  if (telemetry_path.has_value()) {
    obs::MetricsRegistry::global().set_enabled(true);
    obs::TelemetryConfig tcfg;
    tcfg.path = *telemetry_path;
    tcfg.every = static_cast<std::size_t>(args.get_int("telemetry-every", 64));
    if (tcfg.every == 0) throw std::invalid_argument("--telemetry-every must be >= 1");
    telemetry = std::make_unique<obs::TelemetryExporter>(
        tcfg, obs::MetricsRegistry::global(), &obs::Profiler::global(), watchdog.get(),
        tracer.get());
  }

  const auto req_path = require(args, "requests");
  std::ifstream req_file;
  std::istream* in = &std::cin;
  if (req_path != "-") {
    req_file.open(req_path);
    if (!req_file) throw std::runtime_error("cannot open --requests file '" + req_path + "'");
    in = &req_file;
  }
  // tmwia-lint: allow(durable-write) streaming response sink, not a one-shot artifact
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (const auto out_path = args.get("out"); out_path.has_value()) {
    out_file.open(*out_path);
    if (!out_file) throw std::runtime_error("cannot open --out file '" + *out_path + "'");
    out = &out_file;
  }

  serve::RecommendationService service;
  service.set_telemetry(telemetry.get());
  service.set_watchdog(watchdog.get());
  const bool background = args.get_flag("background");
  const auto max_epochs = static_cast<std::uint64_t>(args.get_int("max-epochs", 4));
  bool any_failed = false;
  std::string line;
  while (std::getline(*in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    serve::Response resp;
    try {
      resp = service.handle(serve::parse_request(line));
    } catch (const std::exception& ex) {
      resp.op = "parse";
      resp.ok = false;
      resp.error = ex.what();
    }
    if (!resp.ok) any_failed = true;
    *out << resp.to_json() << '\n';
    // The refiner needs at least one tenant to round-robin over, so it
    // starts lazily after the first successful add_tenant.
    if (background && !service.refiner_running() && !service.tenant_names().empty()) {
      service.start_refiner(max_epochs);
    }
  }
  // Let the in-flight epoch finish, then join; remaining epochs are
  // abandoned (the stream is done, nobody would read the fresher cache).
  service.stop_refiner();

  // Quiescent tail: feed the cumulative audit ledgers to the watchdog
  // (the audit objective is end-of-session by nature), close the
  // telemetry stream (final tick + slo_report record), then write the
  // one-shot artifacts.
  if (watchdog != nullptr) {
    for (const auto& name : service.tenant_names()) {
      const auto audit = service.tenant(name)->audit();
      watchdog->observe_audit_violations(audit.violations.size());
    }
  }
  if (telemetry != nullptr) {
    telemetry->finish();
  } else if (watchdog != nullptr) {
    // No exporter to drive the tick cadence: evaluate once at the end
    // so --slo still judges the session.
    (void)watchdog->evaluate(0);
  }
  if (tracer != nullptr) {
    obs::set_tracer(nullptr);
    tracer->flush();
  }

  if (metrics_path.has_value()) {
    write_text_artifact(*metrics_path, obs::MetricsRegistry::global().snapshot().to_json());
  }
  write_profiler_artifacts(args);
  if (const auto report_path = args.get("report"); report_path.has_value()) {
    core::RunReport rep;
    rep.algo = core::RunReport::Algo::kServe;
    for (const auto& name : service.tenant_names()) {
      auto* t = service.tenant(name);
      rep.total_probes += t->total_probes();
      rep.rounds = std::max(rep.rounds, t->rounds());
    }
    auto& prof = obs::Profiler::global();
    if (prof.enabled()) rep.profile_json = prof.report().to_json(prof.wall_sampling());
    if (watchdog != nullptr) rep.slo_json = watchdog->report().to_json();
    if (obs::MetricsRegistry::global().enabled()) {
      rep.metrics = obs::MetricsRegistry::global().snapshot();
    }
    write_text_artifact(*report_path, rep.to_json());
  }

  if (any_failed) return kExitUsage;
  if (watchdog != nullptr && watchdog->breached()) {
    std::cerr << "serve: SLO breached: " << watchdog->report().to_json() << '\n';
    return kExitSloBreach;
  }
  if (service.any_degraded()) return kExitDegraded;
  return kExitOk;
}

// ---------------------------------------------------------------- stats

// Classify one telemetry JSONL line by its leading "kind" field. The
// stream writes `{"kind":"snapshot",...}` etc. with the kind first, so
// a prefix check is enough — no JSON parser needed for a tail loop.
std::string record_kind(const std::string& line) {
  const std::string prefix = "{\"kind\":\"";
  if (line.rfind(prefix, 0) != 0) return "?";
  const auto end = line.find('"', prefix.size());
  if (end == std::string::npos) return "?";
  return line.substr(prefix.size(), end - prefix.size());
}

int cmd_stats(const io::Args& args) {
  const auto path = require(args, "telemetry");
  const bool follow = args.get_flag("follow");

  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open --telemetry file: " + path);

  std::map<std::string, std::uint64_t> counts;
  std::string last_snapshot;
  std::string line;
  // One pass over what exists now; in --follow mode keep polling for
  // appended lines (clear the eof latch, re-read from where we stopped).
  for (;;) {
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::string kind = record_kind(line);
      ++counts[kind];
      if (kind == "snapshot") {
        last_snapshot = line;
      } else if (follow) {
        // Alerts and the final verdict are the interesting tail events.
        std::cout << line << '\n' << std::flush;
      }
      if (kind == "slo_report" && follow) {
        // The writer emits slo_report exactly once, on finish(): the
        // stream is complete, stop tailing.
        std::cout << "stats: stream finished\n";
        return kExitOk;
      }
    }
    if (!follow) break;
    in.clear();  // drop eofbit so the next getline sees appended data
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "records:";
  for (const auto& [kind, n] : counts) std::cout << ' ' << kind << '=' << n;
  std::cout << '\n';
  if (!last_snapshot.empty()) std::cout << last_snapshot << '\n';
  return kExitOk;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    std::cout << flag_table().help();
    return 0;
  }
  try {
    const io::Args args(argc - 1, argv + 1);
    if (args.get_flag("help")) {
      std::cout << flag_table().help(cmd);
      return 0;
    }
    flag_table().validate(args, cmd);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "resume") return cmd_resume(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "stats") return cmd_stats(args);
    return usage();
  } catch (const io::CheckpointError& e) {
    // CheckpointError messages already carry their "checkpoint:" context.
    std::cerr << "tmwia_cli " << cmd << ": " << e.what() << '\n';
    return kExitCheckpointCorrupt;
  } catch (const std::invalid_argument& e) {
    std::cerr << "tmwia_cli " << cmd << ": " << e.what() << '\n';
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "tmwia_cli " << cmd << ": " << e.what() << '\n';
    return kExitError;
  }
}
