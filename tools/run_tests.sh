#!/usr/bin/env bash
# Build and run the test suite under several configurations:
#
#   lint       tools/lint/tmwia_lint.py over src/, bench/, tests/ with
#              per-header self-containment compile checks; writes
#              build/LINT_REPORT.json and jq-checks it. Adds clang-tidy
#              via -DTMWIA_LINT=ON when a clang-tidy binary exists.
#   plain      full suite, default flags            (build/)
#   asan       full suite, ASan+UBSan               (build-asan/)
#   tsan       obs/engine/scheduler suites under ThreadSanitizer —
#              exercises the sharded MetricsRegistry and the thread
#              pool for data races                  (build-tsan/)
#   audit      opt-in: just the ProtocolAuditor suite (runtime
#              billboard-invariant checks; also part of plain)
#   bench-json opt-in: run every e* bench binary and jq-check that each
#              writes parseable BENCH_<name>.json
#   bench-history opt-in: run every e* bench with TMWIA_BENCH_DIR set to
#              build/bench-history, append the run to
#              build/bench-history/BENCH_HISTORY.jsonl via
#              tools/bench/bench_history.py, and --check it against the
#              best prior run (regression budgets in that script)
#   kernel-parity opt-in: the distance-kernel determinism contract —
#              run the kernels parity suite under ASan+UBSan, then
#              drive one CLI run per backend this CPU supports and
#              require byte-identical flight-recorder logs, estimate
#              files, and RunReports (modulo the reports' "kernel"
#              provenance field, which names the backend by design)
#   thread-safety opt-in: the static concurrency gate — tmwia_lint.py
#              --self-test, then the full lint with a jq check that the
#              concurrency rules (naked-mutex, manual-lock,
#              explicit-atomic-ordering, owner-write, stale-pragma) are
#              present in build/LINT_REPORT.json with zero unexplained
#              findings, then (when a clang++ exists) a full build with
#              -DTMWIA_THREAD_SAFETY=ON so Clang's -Werror=thread-safety
#              checks every capability annotation   (build-tsa/)
#   serve      opt-in: the serving-layer contract — spawn
#              `tmwia_cli serve` on the committed sample request stream
#              (tools/serve_requests.sample.jsonl), jq-check every
#              response line's shape, and verify the exit-code contract:
#              0 for a clean stream, 2 when a request fails to parse or
#              dispatch, 4 when a tenant ends the stream degraded
#   telemetry  default: the observability contract — replay the sample
#              serve stream with --telemetry/--slo/--prof and jq-check
#              the JSONL record kinds, the Prometheus exposition, the
#              RunReport profile/slo sections, and the stats summary;
#              force an SLO breach with a sabotaged tenant (exit 6,
#              structured alert record); and require the --prof
#              attribution tree to be byte-identical across
#              --threads 1/4 and across kernel backends
#   kill-resume opt-in: durability drill — checkpoint an e8-scale
#              unknown_d run, SIGKILL it mid-phase via the kill-at-round
#              fault, resume from the snapshot, and require the
#              flight-recorder log spliced at the snapshot round to be
#              byte-identical to an uninterrupted run. Runs under the
#              plain and ASan builds, with --threads 1 and 4.
#
# Usage:
#   tools/run_tests.sh [--plain-only|--sanitize-only|--tsan-only]
#                      [--lint-only] [--audit] [--bench-json]
#                      [--bench-history] [--kernel-parity]
#                      [--thread-safety] [--kill-resume] [--serve]
#                      [--telemetry] [-j N]
#
# Default runs lint + plain + asan + tsan + telemetry; the *-only modes
# drop the telemetry stage (pass --telemetry to add it back). All
# requested stages must pass.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_LINT=1
RUN_PLAIN=1
RUN_SAN=1
RUN_TSAN=1
RUN_AUDIT=0
RUN_BENCH_JSON=0
RUN_BENCH_HISTORY=0
RUN_KERNEL_PARITY=0
RUN_THREAD_SAFETY=0
RUN_KILL_RESUME=0
RUN_SERVE=0
RUN_TELEMETRY=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --plain-only) RUN_SAN=0; RUN_TSAN=0; RUN_LINT=0; RUN_TELEMETRY=0 ;;
    --sanitize-only) RUN_PLAIN=0; RUN_TSAN=0; RUN_LINT=0; RUN_TELEMETRY=0 ;;
    --tsan-only) RUN_PLAIN=0; RUN_SAN=0; RUN_LINT=0; RUN_TELEMETRY=0 ;;
    --lint-only) RUN_PLAIN=0; RUN_SAN=0; RUN_TSAN=0; RUN_LINT=1; RUN_TELEMETRY=0 ;;
    --audit) RUN_AUDIT=1 ;;
    --bench-json) RUN_BENCH_JSON=1 ;;
    --bench-history) RUN_BENCH_HISTORY=1 ;;
    --kernel-parity) RUN_KERNEL_PARITY=1 ;;
    --thread-safety) RUN_THREAD_SAFETY=1 ;;
    --kill-resume) RUN_KILL_RESUME=1 ;;
    --serve) RUN_SERVE=1 ;;
    --telemetry) RUN_TELEMETRY=1 ;;
    -j) JOBS="$2"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$ROOT" "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ $RUN_LINT -eq 1 ]]; then
  echo "== lint =="
  mkdir -p "$ROOT/build"
  python3 "$ROOT/tools/lint/tmwia_lint.py" --root "$ROOT" --compile-checks -q \
    --json "$ROOT/build/LINT_REPORT.json"
  if command -v jq >/dev/null; then
    # The report must be well-formed and agree with the exit status.
    jq -e '.tool == "tmwia-lint" and .ok == true and .finding_count == 0' \
      "$ROOT/build/LINT_REPORT.json" >/dev/null \
      || { echo "LINT_REPORT.json malformed or reports findings" >&2; exit 1; }
  fi
  if command -v clang-tidy >/dev/null; then
    echo "-- clang-tidy (via TMWIA_LINT=ON rebuild)"
    cmake -B "$ROOT/build-tidy" -S "$ROOT" -DTMWIA_LINT=ON
    cmake --build "$ROOT/build-tidy" -j "$JOBS"
  else
    echo "-- clang-tidy not found; skipped (tmwia_lint.py rules still enforced)"
  fi
fi

if [[ $RUN_PLAIN -eq 1 ]]; then
  echo "== plain =="
  run_suite "$ROOT/build"
fi

if [[ $RUN_SAN -eq 1 ]]; then
  echo "== ASan + UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  run_suite "$ROOT/build-asan" -DTMWIA_SANITIZE=ON
fi

if [[ $RUN_TSAN -eq 1 ]]; then
  echo "== TSan (obs + engine + scheduler) =="
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DTMWIA_TSAN=ON
  cmake --build "$ROOT/build-tsan" -j "$JOBS" \
    --target test_obs test_profile test_engine test_round_scheduler test_thread_safety test_serve
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$ROOT/build-tsan" --output-on-failure -j "$JOBS" \
    -R '(Metrics|Trace|Obs|Engine|ThreadPool|Parallel|RoundScheduler|Scheduler|ThreadSafety|Serve|Profile|Slo|Telemetry)'
fi

if [[ $RUN_AUDIT -eq 1 ]]; then
  echo "== audit (ProtocolAuditor invariants) =="
  cmake -B "$ROOT/build" -S "$ROOT" -DTMWIA_AUDIT=ON
  cmake --build "$ROOT/build" -j "$JOBS" --target test_protocol_auditor
  ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" -R 'ProtocolAuditor'
fi

if [[ $RUN_BENCH_JSON -eq 1 ]]; then
  echo "== bench JSON =="
  command -v jq >/dev/null || { echo "jq required for --bench-json" >&2; exit 2; }
  cmake --build "$ROOT/build" -j "$JOBS"
  BENCH_DIR="$(mktemp -d)"
  trap 'rm -rf "$BENCH_DIR"' EXIT
  for b in "$ROOT"/build/bench/e*; do
    [[ -x "$b" ]] || continue
    name="$(basename "$b")"
    echo "-- $name"
    # Benches are experiments: a FAIL verdict is reported, not fatal
    # here — this stage checks the reporting contract, not the science.
    (cd "$BENCH_DIR" && "$b" > "$name.log" 2>&1) || true
    jq -e '.bench and (.ok | type == "boolean") and (.wall_ms | type == "number")' \
      "$BENCH_DIR/BENCH_$name.json" >/dev/null \
      || { echo "invalid or missing BENCH_$name.json" >&2; exit 1; }
  done
fi

if [[ $RUN_BENCH_HISTORY -eq 1 ]]; then
  echo "== bench history =="
  cmake --build "$ROOT/build" -j "$JOBS"
  HIST_DIR="$ROOT/build/bench-history"
  mkdir -p "$HIST_DIR"
  # Fresh build tree: start the trajectory from the committed baseline
  # so the very first local run is already checked against a real prior
  # (the kernel-era numbers), not trivially green.
  if [[ ! -f "$HIST_DIR/BENCH_HISTORY.jsonl" \
        && -f "$ROOT/tools/bench/BENCH_HISTORY.baseline.jsonl" ]]; then
    cp "$ROOT/tools/bench/BENCH_HISTORY.baseline.jsonl" "$HIST_DIR/BENCH_HISTORY.jsonl"
    echo "-- seeded baseline from tools/bench/BENCH_HISTORY.baseline.jsonl"
  fi
  for b in "$ROOT"/build/bench/e*; do
    [[ -x "$b" ]] || continue
    name="$(basename "$b")"
    echo "-- $name"
    # A FAIL verdict is data for the trajectory, not fatal here; the
    # history check flags a green->red flip as a regression instead.
    (cd "$HIST_DIR" && TMWIA_BENCH_DIR="$HIST_DIR" "$b" > "$name.log" 2>&1) || true
  done
  python3 "$ROOT/tools/bench/bench_history.py" --bench-dir "$HIST_DIR" --check
fi

if [[ $RUN_KERNEL_PARITY -eq 1 ]]; then
  echo "== kernel parity =="
  # The determinism contract (bits/kernels.hpp): every backend computes
  # the same integers, so switching backends must not change a single
  # observable byte of a run. First the randomized parity suite under
  # ASan+UBSan, then an end-to-end CLI cross-check.
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DTMWIA_SANITIZE=ON >/dev/null
  cmake --build "$ROOT/build-asan" -j "$JOBS" --target test_kernels tmwia_cli
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS" \
    -R '(Kernels|RankSelect)'

  CLI="$ROOT/build-asan/tools/tmwia_cli"
  PAR_DIR="$(mktemp -d)"
  "$CLI" gen --kind=planted --n=96 --m=128 --alpha=0.5 --radius=1 --seed=7 \
    --out="$PAR_DIR/world.tmw" >/dev/null
  ref=""
  for k in scalar avx2 avx512; do
    rc=0
    "$CLI" run --in="$PAR_DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
      --kernel="$k" --record="$PAR_DIR/$k.jsonl" --report="$PAR_DIR/$k.json" \
      --out="$PAR_DIR/$k.txt" >/dev/null 2>"$PAR_DIR/$k.err" || rc=$?
    if [[ $rc -eq 2 ]] && grep -q "not supported on this CPU" "$PAR_DIR/$k.err"; then
      echo "-- $k: not supported on this CPU; skipped"
      continue
    fi
    if [[ $rc -ne 0 ]]; then
      cat "$PAR_DIR/$k.err" >&2
      echo "kernel parity: --kernel=$k run failed (rc=$rc)" >&2
      rm -rf "$PAR_DIR"
      exit 1
    fi
    # The RunReport names its backend on purpose; normalize that one
    # field before demanding byte equality.
    sed 's/"kernel":"[a-z0-9]*"/"kernel":"_"/' "$PAR_DIR/$k.json" \
      >"$PAR_DIR/$k.normalized.json"
    if [[ -z "$ref" ]]; then
      ref="$k"
      echo "-- $k: reference"
      continue
    fi
    cmp "$PAR_DIR/$ref.jsonl" "$PAR_DIR/$k.jsonl"
    cmp "$PAR_DIR/$ref.txt" "$PAR_DIR/$k.txt"
    cmp "$PAR_DIR/$ref.normalized.json" "$PAR_DIR/$k.normalized.json"
    echo "-- $k: flight log, estimates, and report match $ref"
  done
  rm -rf "$PAR_DIR"
fi

if [[ $RUN_THREAD_SAFETY -eq 1 ]]; then
  echo "== thread safety (lint rules + annotation build) =="
  command -v jq >/dev/null || { echo "jq required for --thread-safety" >&2; exit 2; }
  python3 "$ROOT/tools/lint/tmwia_lint.py" --self-test
  mkdir -p "$ROOT/build"
  python3 "$ROOT/tools/lint/tmwia_lint.py" --root "$ROOT" -q \
    --json "$ROOT/build/LINT_REPORT.json"
  for rule in naked-mutex manual-lock explicit-atomic-ordering owner-write stale-pragma; do
    jq -e --arg r "$rule" '.rules[$r] and (.rules[$r].findings | length == 0)' \
      "$ROOT/build/LINT_REPORT.json" >/dev/null \
      || { echo "thread-safety: rule '$rule' missing from LINT_REPORT.json or has unexplained findings" >&2; exit 1; }
    echo "-- $rule: present, 0 unexplained findings"
  done
  if command -v clang++ >/dev/null; then
    echo "-- clang++ -Wthread-safety -Werror=thread-safety build"
    cmake -B "$ROOT/build-tsa" -S "$ROOT" \
      -DCMAKE_CXX_COMPILER=clang++ -DTMWIA_THREAD_SAFETY=ON
    cmake --build "$ROOT/build-tsa" -j "$JOBS"
  else
    echo "-- clang++ not found; annotation compile check skipped (lint rules still enforced)"
  fi
fi

if [[ $RUN_SERVE -eq 1 ]]; then
  echo "== serve (service mode contract) =="
  command -v jq >/dev/null || { echo "jq required for --serve" >&2; exit 2; }
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target tmwia_cli
  CLI="$ROOT/build/tools/tmwia_cli"
  SERVE_DIR="$(mktemp -d)"

  echo "-- clean stream: sample requests, exit 0, well-formed responses"
  "$CLI" serve --requests="$ROOT/tools/serve_requests.sample.jsonl" \
    --out="$SERVE_DIR/resp.jsonl" --metrics="$SERVE_DIR/metrics.json"
  # Every response line: known op, boolean ok, numeric latency.
  jq -e -s 'length > 0 and all(.[];
      (.op | type == "string") and (.ok | type == "boolean")
      and (.latency_us | type == "number"))' \
    "$SERVE_DIR/resp.jsonl" >/dev/null \
    || { echo "serve: malformed response line(s)" >&2; exit 1; }
  # All sample requests succeed; recommend carries items, estimate a
  # bitstring, stats the published-epoch counters, every view a hash.
  jq -e -s 'all(.[]; .ok)
      and ([.[] | select(.op == "recommend")] | length == 2)
      and all(.[] | select(.op == "recommend"); .items | type == "array")
      and all(.[] | select(.op == "estimate"); .estimate | test("^[01]+$"))
      and all(.[] | select(.op == "stats"); .epochs_published >= 1)
      and all(.[] | select(.epoch != null); .hash | test("^0x[0-9a-f]{16}$"))' \
    "$SERVE_DIR/resp.jsonl" >/dev/null \
    || { echo "serve: response contract violated" >&2; exit 1; }
  jq -e '.counters["serve.requests"] >= 1' "$SERVE_DIR/metrics.json" >/dev/null \
    || { echo "serve: metrics artifact missing serve.requests" >&2; exit 1; }

  echo "-- bad request: exit 2, ok=false response"
  rc=0
  printf '%s\n' '{"op":"recommend","tenant":"ghost","player":0}' \
    | "$CLI" serve --requests=- --out="$SERVE_DIR/bad.jsonl" || rc=$?
  [[ $rc -eq 2 ]] || { echo "serve: expected exit 2 for failed request, got $rc" >&2; exit 1; }
  jq -e '.ok == false and (.error | length > 0)' "$SERVE_DIR/bad.jsonl" >/dev/null \
    || { echo "serve: failed request not reported as ok=false" >&2; exit 1; }

  echo "-- degraded tenant: exit 4, responses carry the marker"
  rc=0
  printf '%s\n' \
    '{"op":"add_tenant","tenant":"sab","n":16,"m":32,"kind":"planted","seed":3,"sabotage":true}' \
    '{"op":"refine","tenant":"sab","epochs":1}' \
    '{"op":"recommend","tenant":"sab","player":0,"k":4}' \
    | "$CLI" serve --requests=- --out="$SERVE_DIR/deg.jsonl" || rc=$?
  [[ $rc -eq 4 ]] || { echo "serve: expected exit 4 for degraded tenant, got $rc" >&2; exit 1; }
  jq -e -s 'all(.[]; .ok) and (.[-1].degraded == true) and (.[-1].staleness >= 1)' \
    "$SERVE_DIR/deg.jsonl" >/dev/null \
    || { echo "serve: degraded responses not marked" >&2; exit 1; }

  rm -rf "$SERVE_DIR"
fi

if [[ $RUN_TELEMETRY -eq 1 ]]; then
  echo "== telemetry (profiler + exporter + SLO watchdog) =="
  command -v jq >/dev/null || { echo "jq required for the telemetry stage" >&2; exit 2; }
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target tmwia_cli
  CLI="$ROOT/build/tools/tmwia_cli"
  TEL_DIR="$(mktemp -d)"

  echo "-- clean stream: JSONL shape, exposition, SLO verdict, exit 0"
  "$CLI" serve --requests="$ROOT/tools/serve_requests.sample.jsonl" \
    --out="$TEL_DIR/resp.jsonl" --telemetry="$TEL_DIR/stream.jsonl" \
    --telemetry-every=2 --slo='degraded=0,window=64' \
    --prof="$TEL_DIR/prof.json" --report="$TEL_DIR/report.json"
  # Every record is a known kind; snapshots carry seq + metrics;
  # exemplars name a tenant and latency; the stream ends with a clean
  # slo_report verdict.
  jq -e -s 'length > 0
      and all(.[]; .kind == "snapshot" or .kind == "exemplar"
          or .kind == "alert" or .kind == "slo_report")
      and ([.[] | select(.kind == "snapshot")] | length >= 1)
      and all(.[] | select(.kind == "snapshot");
          (.seq >= 1) and (.metrics | type == "object"))
      and all(.[] | select(.kind == "exemplar");
          (.tenant | type == "string") and (.latency_us | type == "number"))
      and (.[-1].kind == "slo_report") and (.[-1].report.ok == true)' \
    "$TEL_DIR/stream.jsonl" >/dev/null \
    || { echo "telemetry: malformed stream" >&2; exit 1; }
  grep -q '^tmwia_serve_requests ' "$TEL_DIR/stream.jsonl.prom" \
    || { echo "telemetry: exposition missing tmwia_serve_requests" >&2; exit 1; }
  jq -e '.algo == "serve" and (.profile.name == "root") and (.slo.ok == true)' \
    "$TEL_DIR/report.json" >/dev/null \
    || { echo "telemetry: RunReport missing profile/slo sections" >&2; exit 1; }
  jq -e '.name == "root" and (.children | length >= 1)' "$TEL_DIR/prof.json" >/dev/null \
    || { echo "telemetry: --prof artifact malformed" >&2; exit 1; }

  echo "-- stats: per-kind summary over the stream"
  "$CLI" stats --telemetry="$TEL_DIR/stream.jsonl" | grep -q 'slo_report=1' \
    || { echo "telemetry: stats summary missing slo_report count" >&2; exit 1; }

  echo "-- forced SLO breach: sabotaged tenant, exit 6, structured alert"
  rc=0
  printf '%s\n' \
    '{"op":"add_tenant","tenant":"sab","n":16,"m":32,"kind":"planted","seed":3,"sabotage":true}' \
    '{"op":"refine","tenant":"sab","epochs":1}' \
    '{"op":"recommend","tenant":"sab","player":0,"k":4}' \
    | "$CLI" serve --requests=- --out="$TEL_DIR/sab.jsonl" \
        --telemetry="$TEL_DIR/sab_stream.jsonl" --telemetry-every=1 \
        --slo='degraded=0,window=8' || rc=$?
  [[ $rc -eq 6 ]] || { echo "telemetry: expected exit 6 for SLO breach, got $rc" >&2; exit 1; }
  jq -e -s '([.[] | select(.kind == "alert" and .objective == "degraded"
          and .observed > .threshold)] | length >= 1)
      and (.[-1].kind == "slo_report") and (.[-1].report.ok == false)' \
    "$TEL_DIR/sab_stream.jsonl" >/dev/null \
    || { echo "telemetry: breach stream missing alert/verdict" >&2; exit 1; }

  echo "-- attribution determinism: --prof bytes across threads and kernels"
  "$CLI" gen --kind=planted --n=64 --m=96 --alpha=0.5 --radius=1 --seed=7 \
    --out="$TEL_DIR/world.tmw" >/dev/null
  for t in 1 4; do
    "$CLI" run --in="$TEL_DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
      --threads="$t" --prof="$TEL_DIR/prof_t$t.json" --out=/dev/null >/dev/null
  done
  cmp "$TEL_DIR/prof_t1.json" "$TEL_DIR/prof_t4.json"
  echo "-- --threads 1/4: attribution trees match"
  ref=""
  for k in scalar avx2 avx512; do
    rc=0
    "$CLI" run --in="$TEL_DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
      --kernel="$k" --prof="$TEL_DIR/prof_$k.json" --out=/dev/null \
      >/dev/null 2>"$TEL_DIR/$k.err" || rc=$?
    if [[ $rc -eq 2 ]] && grep -q "not supported on this CPU" "$TEL_DIR/$k.err"; then
      echo "-- $k: not supported on this CPU; skipped"
      continue
    fi
    if [[ $rc -ne 0 ]]; then
      cat "$TEL_DIR/$k.err" >&2
      echo "telemetry: --kernel=$k profiled run failed (rc=$rc)" >&2
      exit 1
    fi
    if [[ -z "$ref" ]]; then
      ref="$k"
      echo "-- $k: reference"
      continue
    fi
    cmp "$TEL_DIR/prof_$ref.json" "$TEL_DIR/prof_$k.json"
    echo "-- $k: attribution tree matches $ref"
  done
  rm -rf "$TEL_DIR"
fi

if [[ $RUN_KILL_RESUME -eq 1 ]]; then
  echo "== kill/resume determinism =="
  # The e8 (main theorem) scenario via the CLI: unknown_d on a planted
  # instance. One reference run records the full flight-recorder log;
  # a second run with the same seeds is SIGKILLed mid-phase by the
  # kill-at-round fault, resumed from its last checkpoint, and the
  # spliced log must equal the reference byte for byte.
  kill_resume_drill() {
    local cli="$1" threads="$2" label="$3"
    echo "-- $label --threads=$threads"
    local dir
    dir="$(mktemp -d)"
    "$cli" gen --kind=planted --n=64 --m=128 --alpha=0.5 --radius=1 --seed=7 \
      --out="$dir/world.tmw" >/dev/null
    "$cli" run --in="$dir/world.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
      --threads="$threads" --checkpoint-every=50 --faults=seed=1 \
      --record="$dir/ref.jsonl" --report="$dir/ref.json" \
      --out="$dir/ref_out.txt" >/dev/null
    local rc=0
    # The killed run records too: the flight recorder's logical clock
    # (and the truth evaluator's timeline numbers) are part of the
    # checkpointed state a byte-identical resume needs.
    "$cli" run --in="$dir/world.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
      --threads="$threads" --checkpoint="$dir/ck.tmw" --checkpoint-every=50 \
      --faults=seed=1,kill=2000 --record="$dir/dead.jsonl" \
      --out=/dev/null >/dev/null 2>&1 || rc=$?
    if [[ $rc -ne 137 ]]; then
      echo "kill drill: expected SIGKILL exit 137, got $rc" >&2
      rm -rf "$dir"
      return 1
    fi
    "$cli" resume --checkpoint="$dir/ck.tmw" --in="$dir/world.tmw" \
      --threads="$threads" --record="$dir/res.jsonl" --report="$dir/res.json" \
      --out="$dir/res_out.txt" >"$dir/resume.txt"
    local seq cut
    seq="$(sed -n 's/.*resumed from checkpoint seq \([0-9][0-9]*\).*/\1/p' "$dir/resume.txt")"
    cut="$(grep -n '"label":"ckpt"' "$dir/ref.jsonl" \
      | awk -F: -v seq="$seq" '$0 ~ "\"a\":" seq "," {print $1; exit}')"
    if [[ -z "$cut" ]]; then
      echo "kill drill: no ckpt note for seq $seq in reference log" >&2
      rm -rf "$dir"
      return 1
    fi
    head -n "$cut" "$dir/ref.jsonl" >"$dir/spliced.jsonl"
    cat "$dir/res.jsonl" >>"$dir/spliced.jsonl"
    cmp "$dir/ref.jsonl" "$dir/spliced.jsonl"
    cmp "$dir/ref_out.txt" "$dir/res_out.txt"
    cmp "$dir/ref.json" "$dir/res.json"
    rm -rf "$dir"
  }

  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target tmwia_cli
  for t in 1 4; do
    kill_resume_drill "$ROOT/build/tools/tmwia_cli" "$t" plain
  done

  cmake -B "$ROOT/build-asan" -S "$ROOT" -DTMWIA_SANITIZE=ON >/dev/null
  cmake --build "$ROOT/build-asan" -j "$JOBS" --target tmwia_cli
  for t in 1 4; do
    ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    kill_resume_drill "$ROOT/build-asan/tools/tmwia_cli" "$t" asan
  done
fi

echo "all requested suites passed"
