#!/usr/bin/env bash
# Build and run the test suite twice: once plain, once under
# ASan+UBSan (-DTMWIA_SANITIZE=ON). Usage:
#
#   tools/run_tests.sh [--plain-only|--sanitize-only] [-j N]
#
# Build trees go to build/ (plain) and build-asan/ (sanitized) under the
# repo root; both runs must pass for the script to exit 0.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_PLAIN=1
RUN_SAN=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --plain-only) RUN_SAN=0 ;;
    --sanitize-only) RUN_PLAIN=0 ;;
    -j) JOBS="$2"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$ROOT" "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ $RUN_PLAIN -eq 1 ]]; then
  echo "== plain =="
  run_suite "$ROOT/build"
fi

if [[ $RUN_SAN -eq 1 ]]; then
  echo "== ASan + UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  run_suite "$ROOT/build-asan" -DTMWIA_SANITIZE=ON
fi

echo "all requested suites passed"
