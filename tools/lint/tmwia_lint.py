#!/usr/bin/env python3
"""tmwia-lint: project lint for determinism and billboard-protocol rules.

The paper's guarantees (Thm 1.1: constant stretch in polylog rounds)
assume the billboard model exactly: deterministic seeded randomness,
estimates computed only from billboard-visible posts, one probe per
player per round, and probe-cost accounting that cannot drift. The
runtime half of that contract is checked by billboard::ProtocolAuditor;
this tool is the static half. It scans C++ sources (comments and string
literals stripped) for constructs that would let those invariants rot:

  unseeded-rng             rand()/srand()/std::random_device/std::mt19937
                           and friends. All randomness must flow from
                           tmwia::rng::Rng seeds (splittable, replayable).
  wall-clock               system_clock/steady_clock/time()/... in library
                           or test code. Wall time is nondeterminism; only
                           src/obs (opt-in tracing) and bench/ (measuring
                           wall time is their job) may touch clocks.
  raw-io                   std::cout/std::cerr/printf in library code —
                           output must go through io::/obs:: so runs stay
                           machine-comparable. Bench/test mains that print
                           carry explicit allow-file pragmas.
  nonconst-global          mutable namespace-scope state outside the
                           registered singletons (function-local statics
                           like MetricsRegistry::global() are fine).
  matrix-read-in-strategy  strategy code naming PreferenceMatrix (or
                           including preference_matrix.hpp): player code
                           must reach the hidden matrix only through
                           ProbeOracle, which charges probe cost. Use
                           tmwia/matrix/ids.hpp for the id types.
  durable-write            std::ofstream/std::rename/fsync/fopen outside
                           src/io in artifact-producing code. Checkpoints
                           and reports must go through io::atomic_write_file
                           (tmp + fsync + rename) so a crash or a concurrent
                           reader never sees a torn file. Streaming event
                           sinks (trace/record) carry explicit allow pragmas.
  sink-registration        constructing or installing Tracer/FlightRecorder
                           sinks (set_tracer/set_recorder) outside src/obs.
                           The slots are process-global; only designated
                           sink owners (Session, the CLI, the bench
                           harness, obs tests — each with an auditable
                           allow-file pragma) may register them, so library
                           code can never hijack the artifact contract.
  size-empty               `x.size() == 0` instead of `x.empty()` (the
                           readability-container-size-empty mirror, kept
                           here because clang-tidy is optional).
  header-pragma-once       every header starts its include guard.
  header-test-stale        tests/header_selfcontained_test.cpp no longer
                           matches the set of public headers (regenerate
                           with --write-header-test).
  header-selfcontained     (--compile-checks) each public header compiles
                           as its own translation unit.

Suppressions are explicit and auditable:

  // tmwia-lint: allow(rule[,rule]) [reason]       this line or the next
  // tmwia-lint: allow-file(rule[,rule]) [reason]  whole file

Every suppression is recorded in the JSON report's "allowed" lists —
nothing is silently exempt.

Usage:
  tools/lint/tmwia_lint.py [--root DIR] [--json PATH] [--compile-checks]
                           [--write-header-test] [--list-rules] [-q]

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field

CODE_DIRS = ("src", "bench", "tests", "tools", "examples")
CPP_EXTS = (".cpp", ".hpp", ".cc", ".hh", ".h")

PRAGMA_LINE = re.compile(r"//\s*tmwia-lint:\s*allow\(([^)]*)\)")
PRAGMA_FILE = re.compile(r"//\s*tmwia-lint:\s*allow-file\(([^)]*)\)")


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    text: str
    allowed: bool = False

    def as_json(self):
        return {"file": self.file, "line": self.line, "text": self.text}


@dataclass
class Rule:
    id: str
    description: str
    # A file is in scope if it matches `dirs` and none of `exempt`.
    dirs: tuple
    exempt: tuple = ()
    patterns: tuple = ()

    def in_scope(self, relpath: str) -> bool:
        if not any(relpath.startswith(d) for d in self.dirs):
            return False
        return not any(relpath.startswith(e) for e in self.exempt)


RULES = [
    Rule(
        id="unseeded-rng",
        description="ambient/unseeded randomness; use tmwia::rng::Rng (seeded, splittable)",
        dirs=CODE_DIRS,
        patterns=(
            r"\brand\s*\(",
            r"\bsrand\s*\(",
            r"\bstd\s*::\s*random_device\b",
            r"\brandom_device\b",
            r"\bmt19937(_64)?\b",
            r"\bdefault_random_engine\b",
            r"\bminstd_rand0?\b",
        ),
    ),
    Rule(
        id="wall-clock",
        description="wall-clock reads outside src/obs and bench/ break replayability",
        dirs=("src", "tests", "tools", "examples"),
        exempt=("src/obs",),
        patterns=(
            r"\bsystem_clock\b",
            r"\bhigh_resolution_clock\b",
            r"\bsteady_clock\b",
            r"\bgettimeofday\b",
            r"\bclock_gettime\b",
            r"\bstd\s*::\s*time\b",
            r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)",
            r"\blocaltime\b",
            r"\bgmtime\b",
        ),
    ),
    Rule(
        id="raw-io",
        description="direct stdout/stderr in library code; route through io::/obs::",
        dirs=("src", "bench", "tests"),
        exempt=("src/io", "src/obs"),
        patterns=(
            r"\bstd\s*::\s*cout\b",
            r"\bstd\s*::\s*cerr\b",
            r"(?<![\w:])printf\s*\(",   # not snprintf/fprintf-matched-below
            r"\bfprintf\s*\(",
            r"(?<![\w:])puts\s*\(",
            r"\bfputs\s*\(",
        ),
    ),
    Rule(
        id="matrix-read-in-strategy",
        description="strategy code must not see PreferenceMatrix (hidden-vector "
        "abstraction); include tmwia/matrix/ids.hpp for id types",
        dirs=("src/core", "src/billboard"),
        exempt=(
            # The single sanctioned gateway between players and the truth.
            "src/billboard/probe_oracle.",
            "src/billboard/include/tmwia/billboard/probe_oracle.hpp",
        ),
        patterns=(
            r"\bPreferenceMatrix\b",
            r"preference_matrix\.hpp",
        ),
    ),
    Rule(
        id="durable-write",
        description="direct ofstream/rename/fsync/fopen writes outside src/io; "
        "durable artifacts (checkpoints, reports, metrics) must go through "
        "io::atomic_write_file so a crash never leaves a torn file",
        dirs=("src", "bench", "tools"),
        exempt=("src/io",),
        patterns=(
            r"\bofstream\b",
            r"\bstd\s*::\s*rename\s*\(",
            r"(?<![\w:])fsync\s*\(",
            r"(?<![\w:])fopen\s*\(",
        ),
    ),
    Rule(
        id="sink-registration",
        description="only src/obs and designated sink owners (allow-file pragma) "
        "may construct or install Tracer/FlightRecorder sinks",
        dirs=CODE_DIRS,
        exempt=("src/obs",),
        patterns=(
            r"\bset_tracer\s*\(",
            r"\bset_recorder\s*\(",
            r"\bmake_unique\s*<\s*(obs\s*::\s*)?(Tracer|FlightRecorder)\b",
            r"\b(Tracer|FlightRecorder)\s+\w+\s*[({]",
        ),
    ),
    Rule(
        id="size-empty",
        description="use .empty() instead of comparing .size() with 0",
        dirs=CODE_DIRS,
        patterns=(r"\.\s*size\s*\(\s*\)\s*[=!]=\s*0\b", r"\b0\s*[=!]=\s*\w+(\(\))?\s*\.\s*size\s*\(\s*\)"),
    ),
]

PER_BIT_LOOP = Rule(
    id="per-bit-loop",
    description="per-bit get() loop in a distance-critical file; use the "
    "word-parallel bits/kernels batched API (dist_many, known_diff_positions, "
    "ball_size, ...) or BitVector word operations instead",
    # Hot files only: the distance/vote/probe paths where a per-bit loop
    # is a real regression. Cold setup/diagnostic code may loop bits.
    dirs=(
        "src/core/select",
        "src/core/rselect",
        "src/core/coalesce",
        "src/core/small_radius",
        "src/core/large_radius",
        "src/core/bit_space",
        "src/core/include/tmwia/core/select",
        "src/core/include/tmwia/core/zero_radius.hpp",
        "src/core/include/tmwia/core/bit_space",
        "src/billboard/billboard",
        "src/billboard/probe_oracle",
        "src/billboard/include/tmwia/billboard/billboard",
        "src/billboard/include/tmwia/billboard/probe_oracle",
    ),
)

NONCONST_GLOBAL = Rule(
    id="nonconst-global",
    description="mutable namespace-scope state; wrap in a registered singleton "
    "(function-local static) or make it constexpr/const",
    dirs=("src",),
)

HEADER_PRAGMA_ONCE = Rule(
    id="header-pragma-once",
    description="headers must use #pragma once",
    dirs=CODE_DIRS,
)

HEADER_TEST_STALE = Rule(
    id="header-test-stale",
    description="tests/header_selfcontained_test.cpp is stale; regenerate with "
    "tools/lint/tmwia_lint.py --write-header-test",
    dirs=("tests",),
)

HEADER_SELFCONTAINED = Rule(
    id="header-selfcontained",
    description="public headers must compile stand-alone (--compile-checks)",
    dirs=("src",),
)

ALL_RULES = RULES + [PER_BIT_LOOP, NONCONST_GLOBAL, HEADER_PRAGMA_ONCE,
                     HEADER_TEST_STALE, HEADER_SELFCONTAINED]


def strip_comments_and_strings(src: str) -> str:
    """Blank out comments and the contents of string/char literals,
    preserving line structure so reported line numbers stay true."""
    out = []
    i, n = 0, len(src)
    mode = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = src[i]
        nxt = src[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', src[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    mode = "raw_string"
                    out.append('R"')
                    i += 2
                    continue
            if c == '"':
                mode = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
            i += 1
        elif mode == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "raw_string":
            if src.startswith(raw_delim, i):
                mode = "code"
                out.append(raw_delim)
                i += len(raw_delim)
                continue
            out.append(c if c == "\n" else " ")
            i += 1
    return "".join(out)


def parse_pragmas(raw_lines):
    """Return (file_allows: set, line_allows: {lineno: set}). A line
    pragma covers its own line and the following line."""
    file_allows = set()
    line_allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = PRAGMA_FILE.search(line)
        if m:
            file_allows.update(r.strip() for r in m.group(1).split(",") if r.strip())
        m = PRAGMA_LINE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            line_allows.setdefault(idx, set()).update(rules)
            line_allows.setdefault(idx + 1, set()).update(rules)
    return file_allows, line_allows


# A bit read with an index argument. The argument requirement keeps
# smart-pointer `.get()` (no argument) out of the match.
_BIT_GET = re.compile(r"\.\s*get\s*\(\s*[^)\s]")
_FOR_HEADER = re.compile(r"\bfor\s*\(")


def scan_per_bit_loops(stripped_lines, raw_lines, relpath):
    """Flag for-loops whose lexical extent reads bits one index at a
    time. The extent runs from the for-header until the loop's braces
    balance out (capped: hot loops here are short); a brace-less loop
    body is its following line."""
    findings = []
    n = len(stripped_lines)
    for idx, header in enumerate(stripped_lines):
        m = _FOR_HEADER.search(header)
        if m is None:
            continue
        depth = 0
        opened = False
        for j in range(idx, min(idx + 12, n)):
            seg = stripped_lines[j][m.end():] if j == idx else stripped_lines[j]
            if _BIT_GET.search(seg):
                findings.append(Finding(PER_BIT_LOOP.id, relpath, idx + 1,
                                        raw_lines[idx].strip()[:160]))
                break
            depth += seg.count("{") - seg.count("}")
            opened = opened or "{" in seg
            if opened and depth <= 0:
                break
            if not opened and j > idx:
                break  # brace-less body: one line past the header
    return findings


# Declaration statements that are not mutable globals.
_GLOBAL_OK = re.compile(
    r"\b(const|constexpr|constinit|using|typedef|extern|friend|template|"
    r"operator|return|static_assert|namespace|class|struct|union|enum|"
    r"concept|requires|thread_local)\b"
)
_DECL_SHAPE = re.compile(r"^[A-Za-z_][\w:<>,\s\*&\[\]\.]*\s[a-zA-Z_]\w*(\s*=[^=].*|\s*\{.*\})?$")


def scan_nonconst_globals(stripped: str, relpath: str):
    """Token-light scan for mutable namespace-scope variables: walk
    statements, tracking whether every enclosing brace is a namespace."""
    findings = []
    stack = []  # entries: "ns" | "type" | "other"
    stmt_chars = []
    stmt_line = 1
    stmt_started = False
    line = 1
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "\n":
            line += 1
            stmt_chars.append(" ")
            i += 1
            continue
        if c == "{":
            head = "".join(stmt_chars).strip()
            if re.search(r"\bnamespace\b", head):
                kind = "ns"
            elif re.search(r"\b(class|struct|union|enum)\b", head) and "(" not in head:
                kind = "type"
            elif "=" in head.split("(")[0] and "(" not in head.split("=")[0]:
                # brace-init of a variable: `T x = {...}` / `T x{...}`
                kind = "init"
            elif "(" not in head and head and not head.endswith(")"):
                kind = "init"
            else:
                kind = "other"
            if kind == "init" and all(k == "ns" for k in stack):
                # `T x{...};` at namespace scope — treat like a decl.
                head_stmt = head
                if head_stmt and not _GLOBAL_OK.search(head_stmt) and "(" not in head_stmt:
                    shaped = _DECL_SHAPE.match(head_stmt + "{}")
                    if shaped:
                        findings.append((stmt_line, head_stmt + "{...}"))
            stack.append(kind if kind != "init" else "other")
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if c == "}":
            if stack:
                stack.pop()
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if c == ";":
            stmt = re.sub(r"\s+", " ", "".join(stmt_chars)).strip()
            if (
                stmt
                and all(k == "ns" for k in stack)
                and not _GLOBAL_OK.search(stmt)
                and "(" not in stmt  # function decls / ctor calls
                and not stmt.startswith("#")
                and _DECL_SHAPE.match(stmt)
            ):
                findings.append((stmt_line, stmt))
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if not stmt_started and not c.isspace():
            stmt_line = line
            stmt_started = True
        stmt_chars.append(c)
        i += 1
    return [Finding(NONCONST_GLOBAL.id, relpath, ln, text[:160]) for ln, text in findings]


def public_headers(root: str):
    """Every header under src/*/include, repo-relative, sorted."""
    out = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        if os.sep + "include" + os.sep not in dirpath + os.sep:
            continue
        for f in filenames:
            if f.endswith(".hpp"):
                out.append(os.path.relpath(os.path.join(dirpath, f), root))
    return sorted(out)


def include_name(header_relpath: str) -> str:
    """src/core/include/tmwia/core/select.hpp -> tmwia/core/select.hpp"""
    parts = header_relpath.split(os.sep)
    idx = parts.index("include")
    return "/".join(parts[idx + 1:])


HEADER_TEST_PATH = os.path.join("tests", "header_selfcontained_test.cpp")


def render_header_test(root: str) -> str:
    headers = [include_name(h) for h in public_headers(root)]
    lines = [
        "// GENERATED by tools/lint/tmwia_lint.py --write-header-test — do not edit.",
        "//",
        "// Include-hygiene backstop: every public header of the library is",
        "// included here, so a header that stops compiling (or starts relying",
        "// on an include-order accident elsewhere in the tree) breaks this TU.",
        "// The per-header self-containment proof is tmwia_lint.py",
        "// --compile-checks, which compiles each header as its own TU; this",
        "// generated test keeps the whole set compiling together in every",
        "// build configuration, including sanitizer trees.",
        "#include <gtest/gtest.h>",
        "",
    ]
    lines += [f'#include "{h}"' for h in headers]
    lines += [
        "",
        "TEST(HeaderSelfContained, AllPublicHeadersCompileTogether) {",
        f"  SUCCEED() << \"{len(headers)} public headers included\";",
        "}",
        "",
    ]
    return "\n".join(lines)


def check_header_test(root: str):
    want = render_header_test(root)
    path = os.path.join(root, HEADER_TEST_PATH)
    try:
        with open(path, encoding="utf-8") as f:
            have = f.read()
    except OSError:
        return [Finding(HEADER_TEST_STALE.id, HEADER_TEST_PATH, 1, "file missing")]
    if have != want:
        return [Finding(HEADER_TEST_STALE.id, HEADER_TEST_PATH, 1,
                        "contents differ from generator output")]
    return []


def compile_check_headers(root: str, quiet: bool):
    """Compile each public header as its own TU (self-containment)."""
    gxx = shutil.which("g++") or shutil.which("c++") or shutil.which("clang++")
    if gxx is None:
        return [Finding(HEADER_SELFCONTAINED.id, "src", 1, "no C++ compiler found")], 0
    include_dirs = sorted(
        {os.path.join(root, "src", d, "include")
         for d in os.listdir(os.path.join(root, "src"))
         if os.path.isdir(os.path.join(root, "src", d, "include"))}
    )
    args_base = [gxx, "-std=c++20", "-fsyntax-only", "-DTMWIA_AUDIT=1", "-x", "c++", "-"]
    for d in include_dirs:
        args_base.insert(2, "-I" + d)
    findings = []
    checked = 0
    for header in public_headers(root):
        checked += 1
        if not quiet:
            print(f"  [self-contained] {header}", file=sys.stderr)
        proc = subprocess.run(
            args_base,
            input=f'#include "{include_name(header)}"\n',
            capture_output=True,
            text=True,
            cwd=root,
            check=False,
        )
        if proc.returncode != 0:
            first_error = next(
                (ln for ln in proc.stderr.splitlines() if "error" in ln), "compile failed"
            )
            findings.append(Finding(HEADER_SELFCONTAINED.id, header, 1, first_error[:200]))
    return findings, checked


def iter_source_files(root: str):
    for d in CODE_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [x for x in dirnames if x not in ("build", "__pycache__")]
            for f in sorted(filenames):
                if f.endswith(CPP_EXTS):
                    yield os.path.relpath(os.path.join(dirpath, f), root)


def lint(root: str, compile_checks: bool, quiet: bool):
    findings = []
    allowed = []
    compiled = {r.id: [re.compile(p) for p in r.patterns] for r in RULES}
    files_scanned = 0

    for relpath in iter_source_files(root):
        files_scanned += 1
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        file_allows, line_allows = parse_pragmas(raw_lines)
        stripped = strip_comments_and_strings(raw)
        stripped_lines = stripped.splitlines()

        def emit(f: Finding):
            if f.rule in file_allows or f.rule in line_allows.get(f.line, set()):
                f.allowed = True
                allowed.append(f)
            else:
                findings.append(f)

        # Match against stripped lines (no comment/string noise), except
        # #include directives, whose path the stripper blanks as a string
        # literal — those are matched raw so include-based rules can fire.
        scan_lines = [
            raw if raw.lstrip().startswith("#include") else stripped_line
            for raw, stripped_line in zip(raw_lines, stripped_lines)
        ]
        for rule in RULES:
            if not rule.in_scope(relpath):
                continue
            for lineno, line in enumerate(scan_lines, start=1):
                for pat in compiled[rule.id]:
                    if pat.search(line):
                        emit(Finding(rule.id, relpath, lineno,
                                     raw_lines[lineno - 1].strip()[:160]))
                        break

        if PER_BIT_LOOP.in_scope(relpath):
            for f in scan_per_bit_loops(stripped_lines, raw_lines, relpath):
                emit(f)

        if NONCONST_GLOBAL.in_scope(relpath):
            for f in scan_nonconst_globals(stripped, relpath):
                emit(f)

        if relpath.endswith((".hpp", ".hh", ".h")) and "#pragma once" not in raw:
            emit(Finding(HEADER_PRAGMA_ONCE.id, relpath, 1, "missing #pragma once"))

    for f in check_header_test(root):
        findings.append(f)

    headers_checked = 0
    if compile_checks:
        cc_findings, headers_checked = compile_check_headers(root, quiet)
        findings.extend(cc_findings)

    return findings, allowed, files_scanned, headers_checked


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None, help="repo root (default: two dirs up)")
    ap.add_argument("--json", default=None, help="write machine-readable report here")
    ap.add_argument("--compile-checks", action="store_true",
                    help="also compile every public header stand-alone")
    ap.add_argument("--write-header-test", action="store_true",
                    help=f"regenerate {HEADER_TEST_PATH} and exit")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"tmwia-lint: {root} does not look like the repo root", file=sys.stderr)
        return 2

    if args.list_rules:
        for r in ALL_RULES:
            print(f"{r.id:24} {r.description}")
        return 0

    if args.write_header_test:
        path = os.path.join(root, HEADER_TEST_PATH)
        with open(path, "w", encoding="utf-8") as f:
            f.write(render_header_test(root))
        print(f"tmwia-lint: wrote {HEADER_TEST_PATH}")
        return 0

    findings, allowed, files_scanned, headers_checked = lint(
        root, args.compile_checks, args.quiet)

    by_rule = {r.id: {"description": r.description, "findings": [], "allowed": []}
               for r in ALL_RULES}
    for f in findings:
        by_rule[f.rule]["findings"].append(f.as_json())
    for f in allowed:
        by_rule[f.rule]["allowed"].append(f.as_json())

    report = {
        "tool": "tmwia-lint",
        "version": 1,
        "root": os.path.abspath(root),
        "files_scanned": files_scanned,
        "headers_compile_checked": headers_checked,
        "finding_count": len(findings),
        "allowed_count": len(allowed),
        "ok": not findings,
        "rules": by_rule,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if not args.quiet:
        for f in sorted(findings, key=lambda x: (x.rule, x.file, x.line)):
            print(f"{f.file}:{f.line}: [{f.rule}] {f.text}")
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"tmwia-lint: {files_scanned} files, {status}, "
              f"{len(allowed)} explicit allowance(s)", file=sys.stderr)
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
