#!/usr/bin/env python3
"""tmwia-lint: project lint for determinism and billboard-protocol rules.

The paper's guarantees (Thm 1.1: constant stretch in polylog rounds)
assume the billboard model exactly: deterministic seeded randomness,
estimates computed only from billboard-visible posts, one probe per
player per round, and probe-cost accounting that cannot drift. The
runtime half of that contract is checked by billboard::ProtocolAuditor;
this tool is the static half. It scans C++ sources (comments and string
literals stripped) for constructs that would let those invariants rot:

  unseeded-rng             rand()/srand()/std::random_device/std::mt19937
                           and friends. All randomness must flow from
                           tmwia::rng::Rng seeds (splittable, replayable).
  wall-clock               system_clock/steady_clock/time()/... in library
                           or test code. Wall time is nondeterminism; only
                           src/obs (opt-in tracing) and bench/ (measuring
                           wall time is their job) may touch clocks.
  raw-io                   std::cout/std::cerr/printf in library code —
                           output must go through io::/obs:: so runs stay
                           machine-comparable. Bench/test mains that print
                           carry explicit allow-file pragmas.
  nonconst-global          mutable namespace-scope state outside the
                           registered singletons (function-local statics
                           like MetricsRegistry::global() are fine).
  matrix-read-in-strategy  strategy code naming PreferenceMatrix (or
                           including preference_matrix.hpp): player code
                           must reach the hidden matrix only through
                           ProbeOracle, which charges probe cost. Use
                           tmwia/matrix/ids.hpp for the id types.
  serve-matrix-isolation   serve-layer code naming PreferenceMatrix or
                           reaching into the hidden truth (inst_.matrix):
                           request handlers answer only from the published
                           AnswerCache, which is fed exclusively through
                           probes. The Tenant harness side (which builds
                           the ProbeOracle) carries the audited pragma.
  durable-write            std::ofstream/std::rename/fsync/fopen outside
                           src/io in artifact-producing code. Checkpoints
                           and reports must go through io::atomic_write_file
                           (tmp + fsync + rename) so a crash or a concurrent
                           reader never sees a torn file. Streaming event
                           sinks (trace/record) carry explicit allow pragmas.
  sink-registration        constructing or installing Tracer/FlightRecorder
                           sinks (set_tracer/set_recorder) outside src/obs.
                           The slots are process-global; only designated
                           sink owners (Session, the CLI, the bench
                           harness, obs tests — each with an auditable
                           allow-file pragma) may register them, so library
                           code can never hijack the artifact contract.
  size-empty               `x.size() == 0` instead of `x.empty()` (the
                           readability-container-size-empty mirror, kept
                           here because clang-tidy is optional).
  naked-mutex              a mutex member (std::mutex/shared_mutex/
                           support::Mutex) with no sibling
                           TMWIA_GUARDED_BY annotation in the file. Every
                           lock must say what it protects, so the Clang
                           thread-safety build (TMWIA_THREAD_SAFETY) has
                           something to check; deliberately-unguarded
                           state carries an explained allow pragma.
  manual-lock              raw .lock()/.unlock() calls outside the
                           annotated RAII lockers (support::MutexLock,
                           lock_guard/unique_lock/scoped_lock). Manual
                           pairing is invisible to the static analysis
                           and leaks on exceptions.
  explicit-atomic-ordering std::atomic load/store/exchange/fetch_*/
                           compare_exchange without an explicit
                           std::memory_order argument. Defaulted seq_cst
                           hides the intended protocol; every ordering in
                           library code is a documented decision.
  owner-write              files outside src/obs touching obs:: shard
                           internals (local_shard/attach_thread/slot_add,
                           the g_recorder slot). The owner-write/merge-on-
                           read discipline only holds if writers go
                           through the Counter/Histogram handles and the
                           set_recorder/set_tracer registration points.
  metric-name-registry     a metric or profile-zone name literal
                           (counter/histogram/set_gauge/add_gauge/
                           ProfileZone/intern call site in src/) that is
                           not in the generated registry header
                           (src/obs/.../metric_names.gen.hpp, regenerate
                           with --write-metric-registry), or a registry
                           entry no call site uses. Dynamically composed
                           names ("serve." + tenant + ...) always fire
                           and carry an auditable allow pragma, so the
                           set of unregistered name shapes stays
                           enumerable.
  stale-pragma             a tmwia-lint allow/allow-file pragma that no
                           longer suppresses any finding — the escape-
                           hatch inventory stays honest.
  header-pragma-once       every header starts its include guard.
  header-test-stale        tests/header_selfcontained_test.cpp no longer
                           matches the set of public headers (regenerate
                           with --write-header-test).
  header-selfcontained     (--compile-checks) each public header compiles
                           as its own translation unit.

Suppressions are explicit and auditable:

  // tmwia-lint: allow(rule[,rule]) [reason]       this line or the next
  // tmwia-lint: allow-file(rule[,rule]) [reason]  whole file

Every suppression is recorded in the JSON report's "allowed" lists —
nothing is silently exempt.

Usage:
  tools/lint/tmwia_lint.py [--root DIR] [--json PATH] [--compile-checks]
                           [--write-header-test] [--write-metric-registry]
                           [--list-rules] [--self-test] [-q]

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass, field

CODE_DIRS = ("src", "bench", "tests", "tools", "examples")
CPP_EXTS = (".cpp", ".hpp", ".cc", ".hh", ".h")

PRAGMA_LINE = re.compile(r"//\s*tmwia-lint:\s*allow\(([^)]*)\)")
PRAGMA_FILE = re.compile(r"//\s*tmwia-lint:\s*allow-file\(([^)]*)\)")


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    text: str
    allowed: bool = False

    def as_json(self):
        return {"file": self.file, "line": self.line, "text": self.text}


@dataclass
class Rule:
    id: str
    description: str
    # A file is in scope if it matches `dirs` and none of `exempt`.
    dirs: tuple
    exempt: tuple = ()
    patterns: tuple = ()

    def in_scope(self, relpath: str) -> bool:
        if not any(relpath.startswith(d) for d in self.dirs):
            return False
        return not any(relpath.startswith(e) for e in self.exempt)


RULES = [
    Rule(
        id="unseeded-rng",
        description="ambient/unseeded randomness; use tmwia::rng::Rng (seeded, splittable)",
        dirs=CODE_DIRS,
        patterns=(
            r"\brand\s*\(",
            r"\bsrand\s*\(",
            r"\bstd\s*::\s*random_device\b",
            r"\brandom_device\b",
            r"\bmt19937(_64)?\b",
            r"\bdefault_random_engine\b",
            r"\bminstd_rand0?\b",
        ),
    ),
    Rule(
        id="wall-clock",
        description="wall-clock reads outside src/obs and bench/ break replayability",
        dirs=("src", "tests", "tools", "examples"),
        exempt=("src/obs",),
        patterns=(
            r"\bsystem_clock\b",
            r"\bhigh_resolution_clock\b",
            r"\bsteady_clock\b",
            r"\bgettimeofday\b",
            r"\bclock_gettime\b",
            r"\bstd\s*::\s*time\b",
            r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)",
            r"\blocaltime\b",
            r"\bgmtime\b",
        ),
    ),
    Rule(
        id="raw-io",
        description="direct stdout/stderr in library code; route through io::/obs::",
        dirs=("src", "bench", "tests"),
        exempt=("src/io", "src/obs"),
        patterns=(
            r"\bstd\s*::\s*cout\b",
            r"\bstd\s*::\s*cerr\b",
            r"(?<![\w:])printf\s*\(",   # not snprintf/fprintf-matched-below
            r"\bstd\s*::\s*printf\s*\(",
            r"\bfprintf\s*\(",
            r"(?<![\w:])puts\s*\(",
            r"\bfputs\s*\(",
        ),
    ),
    Rule(
        id="matrix-read-in-strategy",
        description="strategy code must not see PreferenceMatrix (hidden-vector "
        "abstraction); include tmwia/matrix/ids.hpp for id types",
        dirs=("src/core", "src/billboard"),
        exempt=(
            # The single sanctioned gateway between players and the truth.
            "src/billboard/probe_oracle.",
            "src/billboard/include/tmwia/billboard/probe_oracle.hpp",
        ),
        patterns=(
            r"\bPreferenceMatrix\b",
            r"preference_matrix\.hpp",
        ),
    ),
    Rule(
        id="serve-matrix-isolation",
        description="serve-layer request/service code must not touch "
        "PreferenceMatrix or the tenant's hidden truth; answers come from the "
        "published AnswerCache, fed only through probes (the Tenant harness "
        "side carries an auditable allow-file pragma)",
        dirs=("src/serve",),
        patterns=(
            r"\bPreferenceMatrix\b",
            r"preference_matrix\.hpp",
            r"\binst_\s*\.\s*matrix\b",
        ),
    ),
    Rule(
        id="durable-write",
        description="direct ofstream/rename/fsync/fopen writes outside src/io; "
        "durable artifacts (checkpoints, reports, metrics) must go through "
        "io::atomic_write_file so a crash never leaves a torn file",
        dirs=("src", "bench", "tools"),
        exempt=("src/io",),
        patterns=(
            r"\bofstream\b",
            r"\bstd\s*::\s*rename\s*\(",
            r"(?<![\w:])fsync\s*\(",
            r"(?<![\w:])fopen\s*\(",
        ),
    ),
    Rule(
        id="sink-registration",
        description="only src/obs and designated sink owners (allow-file pragma) "
        "may construct or install Tracer/FlightRecorder sinks",
        dirs=CODE_DIRS,
        exempt=("src/obs",),
        patterns=(
            r"\bset_tracer\s*\(",
            r"\bset_recorder\s*\(",
            r"\bmake_unique\s*<\s*(obs\s*::\s*)?(Tracer|FlightRecorder)\b",
            r"\b(Tracer|FlightRecorder)\s+\w+\s*[({]",
        ),
    ),
    Rule(
        id="size-empty",
        description="use .empty() instead of comparing .size() with 0",
        dirs=CODE_DIRS,
        patterns=(r"\.\s*size\s*\(\s*\)\s*[=!]=\s*0\b", r"\b0\s*[=!]=\s*\w+(\(\))?\s*\.\s*size\s*\(\s*\)"),
    ),
    Rule(
        id="manual-lock",
        description="raw .lock()/.unlock() call; use the RAII lockers "
        "(support::MutexLock, std::scoped_lock) so the thread-safety analysis "
        "sees the critical section and an exception cannot leak a held lock",
        dirs=CODE_DIRS,
        exempt=("src/support",),  # the annotated wrappers themselves
        patterns=(
            r"(?:\.|->)\s*lock\s*\(\s*\)",
            r"(?:\.|->)\s*unlock\s*\(\s*\)",
        ),
    ),
    Rule(
        id="owner-write",
        description="obs:: shard internals (local_shard/attach_thread/slot_add, "
        "the recorder slot word) touched outside src/obs; write metrics through "
        "Counter/Histogram handles and install sinks via set_recorder/set_tracer",
        dirs=CODE_DIRS,
        exempt=("src/obs",),
        patterns=(
            r"\blocal_shard\s*\(",
            r"\battach_thread\s*\(",
            r"\bslot_add\s*\(",
            r"\bg_recorder\b",
            r"\bobs\s*::\s*detail\b",
        ),
    ),
]

PER_BIT_LOOP = Rule(
    id="per-bit-loop",
    description="per-bit get() loop in a distance-critical file; use the "
    "word-parallel bits/kernels batched API (dist_many, known_diff_positions, "
    "ball_size, ...) or BitVector word operations instead",
    # Hot files only: the distance/vote/probe paths where a per-bit loop
    # is a real regression. Cold setup/diagnostic code may loop bits.
    dirs=(
        "src/core/select",
        "src/core/rselect",
        "src/core/coalesce",
        "src/core/small_radius",
        "src/core/large_radius",
        "src/core/bit_space",
        "src/core/include/tmwia/core/select",
        "src/core/include/tmwia/core/zero_radius.hpp",
        "src/core/include/tmwia/core/bit_space",
        "src/billboard/billboard",
        "src/billboard/probe_oracle",
        "src/billboard/include/tmwia/billboard/billboard",
        "src/billboard/include/tmwia/billboard/probe_oracle",
    ),
)

NONCONST_GLOBAL = Rule(
    id="nonconst-global",
    description="mutable namespace-scope state; wrap in a registered singleton "
    "(function-local static) or make it constexpr/const",
    dirs=("src",),
)

HEADER_PRAGMA_ONCE = Rule(
    id="header-pragma-once",
    description="headers must use #pragma once",
    dirs=CODE_DIRS,
)

HEADER_TEST_STALE = Rule(
    id="header-test-stale",
    description="tests/header_selfcontained_test.cpp is stale; regenerate with "
    "tools/lint/tmwia_lint.py --write-header-test",
    dirs=("tests",),
)

HEADER_SELFCONTAINED = Rule(
    id="header-selfcontained",
    description="public headers must compile stand-alone (--compile-checks)",
    dirs=("src",),
)

NAKED_MUTEX = Rule(
    id="naked-mutex",
    description="mutex member with no sibling TMWIA_GUARDED_BY annotation in "
    "the file; declare what it protects (or carry an explained allow pragma "
    "for externally-synchronized state)",
    dirs=("src",),
    exempt=("src/support",),  # the capability wrappers wrap a raw std::mutex
)

EXPLICIT_ATOMIC_ORDERING = Rule(
    id="explicit-atomic-ordering",
    description="atomic load/store/exchange/fetch_*/compare_exchange with a "
    "defaulted (seq_cst) ordering in library code; spell the std::memory_order "
    "so the protocol is a documented decision",
    dirs=("src",),
)

METRIC_NAME_REGISTRY = Rule(
    id="metric-name-registry",
    description="metric/profile-zone name literal not in the generated "
    "registry (src/obs/include/tmwia/obs/metric_names.gen.hpp; regenerate "
    "with --write-metric-registry), or a registry entry with no remaining "
    "call site; dynamically composed names carry an explained allow pragma",
    # src/obs owns the registry machinery itself and mints no product
    # names; tests/bench/tools mint throwaway names at will.
    dirs=("src",),
    exempt=("src/obs",),
)

STALE_PRAGMA = Rule(
    id="stale-pragma",
    description="tmwia-lint allow pragma that no longer suppresses any "
    "finding; delete it (or keep it deliberately under allow(stale-pragma))",
    dirs=CODE_DIRS,
)

ALL_RULES = RULES + [PER_BIT_LOOP, NONCONST_GLOBAL, NAKED_MUTEX,
                     EXPLICIT_ATOMIC_ORDERING, METRIC_NAME_REGISTRY,
                     STALE_PRAGMA, HEADER_PRAGMA_ONCE, HEADER_TEST_STALE,
                     HEADER_SELFCONTAINED]


def strip_comments_and_strings(src: str) -> str:
    """Blank out comments and the contents of string/char literals,
    preserving line structure so reported line numbers stay true."""
    out = []
    i, n = 0, len(src)
    mode = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = src[i]
        nxt = src[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', src[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    mode = "raw_string"
                    out.append('R"')
                    i += 2
                    continue
            if c == '"':
                mode = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
            i += 1
        elif mode == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "raw_string":
            if src.startswith(raw_delim, i):
                mode = "code"
                out.append(raw_delim)
                i += len(raw_delim)
                continue
            out.append(c if c == "\n" else " ")
            i += 1
    return "".join(out)


@dataclass
class Pragma:
    """One (pragma occurrence, rule) pair. `used` flips when the pragma
    suppresses a finding; pragmas still unused at the end of the file's
    scan are themselves findings (stale-pragma)."""
    line: int
    rule: str
    kind: str  # "line" | "file"
    used: bool = False


def parse_pragmas(raw_lines):
    """Return (file_allows: {rule: Pragma}, line_allows: {lineno: {rule:
    Pragma}}, pragmas: [Pragma]). A line pragma covers its own line and
    the following line (both map to the same record, so either hit marks
    it used)."""
    file_allows = {}
    line_allows = {}
    pragmas = []
    for idx, line in enumerate(raw_lines, start=1):
        m = PRAGMA_FILE.search(line)
        if m:
            for rule in (r.strip() for r in m.group(1).split(",")):
                if not rule:
                    continue
                p = Pragma(idx, rule, "file")
                pragmas.append(p)
                # A duplicate file pragma for the same rule can never be
                # the suppressor, so it ends the scan unused — and stale.
                file_allows.setdefault(rule, p)
        m = PRAGMA_LINE.search(line)
        if m:
            for rule in (r.strip() for r in m.group(1).split(",")):
                if not rule:
                    continue
                p = Pragma(idx, rule, "line")
                pragmas.append(p)
                line_allows.setdefault(idx, {}).setdefault(rule, p)
                line_allows.setdefault(idx + 1, {}).setdefault(rule, p)
    return file_allows, line_allows, pragmas


# A bit read with an index argument. The argument requirement keeps
# smart-pointer `.get()` (no argument) out of the match.
_BIT_GET = re.compile(r"\.\s*get\s*\(\s*[^)\s]")
_FOR_HEADER = re.compile(r"\bfor\s*\(")


def scan_per_bit_loops(stripped_lines, raw_lines, relpath):
    """Flag for-loops whose lexical extent reads bits one index at a
    time. The extent runs from the for-header until the loop's braces
    balance out (capped: hot loops here are short); a brace-less loop
    body is its following line."""
    findings = []
    n = len(stripped_lines)
    for idx, header in enumerate(stripped_lines):
        m = _FOR_HEADER.search(header)
        if m is None:
            continue
        depth = 0
        opened = False
        for j in range(idx, min(idx + 12, n)):
            seg = stripped_lines[j][m.end():] if j == idx else stripped_lines[j]
            if _BIT_GET.search(seg):
                findings.append(Finding(PER_BIT_LOOP.id, relpath, idx + 1,
                                        raw_lines[idx].strip()[:160]))
                break
            depth += seg.count("{") - seg.count("}")
            opened = opened or "{" in seg
            if opened and depth <= 0:
                break
            if not opened and j > idx:
                break  # brace-less body: one line past the header
    return findings


# Declaration statements that are not mutable globals.
_GLOBAL_OK = re.compile(
    r"\b(const|constexpr|constinit|using|typedef|extern|friend|template|"
    r"operator|return|static_assert|namespace|class|struct|union|enum|"
    r"concept|requires|thread_local)\b"
)
_DECL_SHAPE = re.compile(r"^[A-Za-z_][\w:<>,\s\*&\[\]\.]*\s[a-zA-Z_]\w*(\s*=[^=].*|\s*\{.*\})?$")


def scan_nonconst_globals(stripped: str, relpath: str):
    """Token-light scan for mutable namespace-scope variables: walk
    statements, tracking whether every enclosing brace is a namespace."""
    findings = []
    stack = []  # entries: "ns" | "type" | "other"
    stmt_chars = []
    stmt_line = 1
    stmt_started = False
    line = 1
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "\n":
            line += 1
            stmt_chars.append(" ")
            i += 1
            continue
        if c == "{":
            head = "".join(stmt_chars).strip()
            if re.search(r"\bnamespace\b", head):
                kind = "ns"
            elif re.search(r"\b(class|struct|union|enum)\b", head) and "(" not in head:
                kind = "type"
            elif "=" in head.split("(")[0] and "(" not in head.split("=")[0]:
                # brace-init of a variable: `T x = {...}` / `T x{...}`
                kind = "init"
            elif "(" not in head and head and not head.endswith(")"):
                kind = "init"
            else:
                kind = "other"
            if kind == "init" and all(k == "ns" for k in stack):
                # `T x{...};` at namespace scope — treat like a decl.
                head_stmt = head
                if head_stmt and not _GLOBAL_OK.search(head_stmt) and "(" not in head_stmt:
                    shaped = _DECL_SHAPE.match(head_stmt + "{}")
                    if shaped:
                        findings.append((stmt_line, head_stmt + "{...}"))
            stack.append(kind if kind != "init" else "other")
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if c == "}":
            if stack:
                stack.pop()
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if c == ";":
            stmt = re.sub(r"\s+", " ", "".join(stmt_chars)).strip()
            if (
                stmt
                and all(k == "ns" for k in stack)
                and not _GLOBAL_OK.search(stmt)
                and "(" not in stmt  # function decls / ctor calls
                and not stmt.startswith("#")
                and _DECL_SHAPE.match(stmt)
            ):
                findings.append((stmt_line, stmt))
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if not stmt_started and not c.isspace():
            stmt_line = line
            stmt_started = True
        stmt_chars.append(c)
        i += 1
    return [Finding(NONCONST_GLOBAL.id, relpath, ln, text[:160]) for ln, text in findings]


# A mutex-typed member declaration, after whitespace/`::` normalization.
# Bare `Mutex` covers the in-namespace `using support::Mutex;` idiom.
_MUTEX_DECL = re.compile(
    r"^(?:mutable\s+)?"
    r"(?:std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex)"
    r"|(?:tmwia::)?(?:support::)?Mutex)"
    r"\s+([A-Za-z_]\w*)$"
)


def scan_naked_mutexes(stripped: str, raw: str, raw_lines, relpath: str):
    """Mutex members whose protected state is undeclared: no
    TMWIA_GUARDED_BY / TMWIA_PT_GUARDED_BY in the file names the member.
    Same brace walk as scan_nonconst_globals, but looking at declaration
    statements whose innermost scope is a type."""
    findings = []
    stack = []  # entries: "ns" | "type" | "other"
    stmt_chars = []
    stmt_line = 1
    stmt_started = False
    line = 1
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "\n":
            line += 1
            stmt_chars.append(" ")
            i += 1
            continue
        if c == "{":
            head = "".join(stmt_chars).strip()
            if re.search(r"\bnamespace\b", head):
                stack.append("ns")
            elif re.search(r"\b(class|struct|union)\b", head) and "(" not in head:
                stack.append("type")
            else:
                stack.append("other")
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if c == "}":
            if stack:
                stack.pop()
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if c == ";":
            if stack and stack[-1] == "type":
                stmt = re.sub(r"\s*::\s*", "::",
                              re.sub(r"\s+", " ", "".join(stmt_chars)).strip())
                m = _MUTEX_DECL.match(stmt)
                if m and not re.search(
                        r"TMWIA_(?:PT_)?GUARDED_BY\(\s*" + re.escape(m.group(1)) + r"\s*\)",
                        raw):
                    findings.append(Finding(NAKED_MUTEX.id, relpath, stmt_line,
                                            raw_lines[stmt_line - 1].strip()[:160]))
            stmt_chars = []
            stmt_started = False
            i += 1
            continue
        if not stmt_started and not c.isspace():
            stmt_line = line
            stmt_started = True
        stmt_chars.append(c)
        i += 1
    return findings


_ATOMIC_OP = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_strong|compare_exchange_weak)\s*\("
)


def scan_atomic_orderings(stripped_lines, raw_lines, relpath):
    """Atomic operations must spell their std::memory_order. The argument
    span runs from the call's open paren until its parens balance, joined
    across up to four lines (enough for clang-format-wrapped calls); a
    span with no memory_order token is a finding. One finding per line."""
    findings = []
    n = len(stripped_lines)
    for idx, line in enumerate(stripped_lines):
        for m in _ATOMIC_OP.finditer(line):
            depth = 1
            arg_chars = []
            col = m.end()
            for j in range(idx, min(idx + 4, n)):
                seg = stripped_lines[j][col:] if j == idx else stripped_lines[j]
                col = 0
                for ch in seg:
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    arg_chars.append(ch)
                if depth == 0:
                    break
            if "memory_order" not in "".join(arg_chars):
                findings.append(Finding(EXPLICIT_ATOMIC_ORDERING.id, relpath, idx + 1,
                                        raw_lines[idx].strip()[:160]))
                break
    return findings


# A metric/zone construction site whose name argument starts with a
# string literal. Matched against the STRIPPED line (so a mention in a
# comment cannot fire); the literal's contents are then read from the
# raw line at the same offsets (the stripper is offset-preserving).
_METRIC_SITES = (
    # Registry handles: name is the first argument.
    re.compile(r'\b(?:counter|histogram|set_gauge|add_gauge)\s*\(\s*"'),
    # Scoped profile zone with a literal name.
    re.compile(r'\bProfileZone\s+\w+\s*[({]\s*"'),
    # Pre-interned zone id: name is the second argument.
    re.compile(r'\bintern\s*\(\s*[^,()]*,\s*"'),
)

METRIC_REGISTRY_PATH = os.path.join(
    "src", "obs", "include", "tmwia", "obs", "metric_names.gen.hpp")


def iter_metric_literals(stripped_lines, raw_lines):
    """Yield (lineno, name, complete) for every metric/zone name literal.
    `complete` is False when the literal is only the head of a composed
    name ("serve." + tenant + ...) — those can never be registered and
    always need a pragma."""
    for idx, sline in enumerate(stripped_lines):
        raw = raw_lines[idx] if idx < len(raw_lines) else ""
        seen_cols = set()
        for pat in _METRIC_SITES:
            for m in pat.finditer(sline):
                qpos = m.end() - 1  # the opening quote
                if qpos in seen_cols or qpos >= len(raw):
                    continue
                seen_cols.add(qpos)
                end = raw.find('"', qpos + 1)
                if end < 0:
                    continue
                name = raw[qpos + 1:end]
                rest = raw[end + 1:].strip()
                # A literal followed by ) or , (or a line break before
                # the next argument) is the whole name.
                complete = rest == "" or rest[0] in "),"
                yield idx + 1, name, complete


def load_metric_registry(root: str):
    """Parse the generated registry header into ({name: lineno} or None
    when the header is missing)."""
    path = os.path.join(root, METRIC_REGISTRY_PATH)
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError:
        return None
    entries = {}
    for lineno, line in enumerate(lines, start=1):
        m = re.match(r'\s*"([^"]+)",?\s*$', line)
        if m:
            entries.setdefault(m.group(1), lineno)
    return entries


def scan_metric_names(stripped_lines, raw_lines, relpath, registry, used_names):
    """Per-file half of metric-name-registry: every literal must be a
    registered complete name. Composed names (incomplete literals) fire
    unconditionally — the pragma on the call site is the registry entry
    for the name *shape*."""
    findings = []
    for lineno, name, complete in iter_metric_literals(stripped_lines, raw_lines):
        if complete:
            used_names.add(name)
        if registry is None:
            findings.append(Finding(
                METRIC_NAME_REGISTRY.id, relpath, lineno,
                f'"{name}": registry header missing; run --write-metric-registry'))
        elif not complete:
            findings.append(Finding(
                METRIC_NAME_REGISTRY.id, relpath, lineno,
                f'"{name}...": dynamically composed name (pragma required)'))
        elif name not in registry:
            findings.append(Finding(
                METRIC_NAME_REGISTRY.id, relpath, lineno,
                f'"{name}" not in metric_names.gen.hpp; run --write-metric-registry'))
    return findings


def check_metric_registry_unused(registry, used_names):
    """Registry entries no call site names anymore: the generated header
    is stale in the shrinking direction."""
    if registry is None:
        return []
    return [Finding(METRIC_NAME_REGISTRY.id, METRIC_REGISTRY_PATH, lineno,
                    f'"{name}" registered but never used; run --write-metric-registry')
            for name, lineno in sorted(registry.items(), key=lambda kv: kv[1])
            if name not in used_names]


def collect_metric_names(root: str):
    """All complete metric/zone name literals in rule scope, for the
    generator."""
    names = set()
    for relpath in iter_source_files(root):
        if not METRIC_NAME_REGISTRY.in_scope(relpath):
            continue
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        stripped_lines = strip_comments_and_strings(raw).splitlines()
        for _lineno, name, complete in iter_metric_literals(stripped_lines, raw_lines):
            if complete:
                names.add(name)
    return sorted(names)


def render_metric_registry(root: str) -> str:
    names = collect_metric_names(root)
    lines = [
        "// GENERATED by tools/lint/tmwia_lint.py --write-metric-registry — do not edit.",
        "//",
        "// The canonical inventory of statically-named metrics and profile",
        "// zones. The metric-name-registry lint rule keeps call sites and this",
        "// table in lockstep: a name used but not listed here (or listed but no",
        "// longer used) is a finding, so dashboards and alert rules keyed on",
        "// these strings cannot silently drift from the code. Dynamically",
        "// composed names (per-tenant counters, per-guess zones) are excluded",
        "// by construction and carry allow pragmas at their call sites.",
        "#pragma once",
        "",
        "#include <array>",
        "#include <string_view>",
        "",
        "namespace tmwia::obs {",
        "",
        f"inline constexpr std::array<std::string_view, {len(names)}> kMetricNames = {{",
    ]
    lines += [f'    "{n}",' for n in names]
    lines += [
        "};",
        "",
        "}  // namespace tmwia::obs",
        "",
    ]
    return "\n".join(lines)


def public_headers(root: str):
    """Every header under src/*/include, repo-relative, sorted."""
    out = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        if os.sep + "include" + os.sep not in dirpath + os.sep:
            continue
        for f in filenames:
            if f.endswith(".hpp"):
                out.append(os.path.relpath(os.path.join(dirpath, f), root))
    return sorted(out)


def include_name(header_relpath: str) -> str:
    """src/core/include/tmwia/core/select.hpp -> tmwia/core/select.hpp"""
    parts = header_relpath.split(os.sep)
    idx = parts.index("include")
    return "/".join(parts[idx + 1:])


HEADER_TEST_PATH = os.path.join("tests", "header_selfcontained_test.cpp")


def render_header_test(root: str) -> str:
    headers = [include_name(h) for h in public_headers(root)]
    lines = [
        "// GENERATED by tools/lint/tmwia_lint.py --write-header-test — do not edit.",
        "//",
        "// Include-hygiene backstop: every public header of the library is",
        "// included here, so a header that stops compiling (or starts relying",
        "// on an include-order accident elsewhere in the tree) breaks this TU.",
        "// The per-header self-containment proof is tmwia_lint.py",
        "// --compile-checks, which compiles each header as its own TU; this",
        "// generated test keeps the whole set compiling together in every",
        "// build configuration, including sanitizer trees.",
        "#include <gtest/gtest.h>",
        "",
    ]
    lines += [f'#include "{h}"' for h in headers]
    lines += [
        "",
        "TEST(HeaderSelfContained, AllPublicHeadersCompileTogether) {",
        f"  SUCCEED() << \"{len(headers)} public headers included\";",
        "}",
        "",
    ]
    return "\n".join(lines)


def check_header_test(root: str):
    want = render_header_test(root)
    path = os.path.join(root, HEADER_TEST_PATH)
    try:
        with open(path, encoding="utf-8") as f:
            have = f.read()
    except OSError:
        return [Finding(HEADER_TEST_STALE.id, HEADER_TEST_PATH, 1, "file missing")]
    if have != want:
        return [Finding(HEADER_TEST_STALE.id, HEADER_TEST_PATH, 1,
                        "contents differ from generator output")]
    return []


def compile_check_headers(root: str, quiet: bool):
    """Compile each public header as its own TU (self-containment)."""
    gxx = shutil.which("g++") or shutil.which("c++") or shutil.which("clang++")
    if gxx is None:
        return [Finding(HEADER_SELFCONTAINED.id, "src", 1, "no C++ compiler found")], 0
    include_dirs = sorted(
        {os.path.join(root, "src", d, "include")
         for d in os.listdir(os.path.join(root, "src"))
         if os.path.isdir(os.path.join(root, "src", d, "include"))}
    )
    args_base = [gxx, "-std=c++20", "-fsyntax-only", "-DTMWIA_AUDIT=1", "-x", "c++", "-"]
    for d in include_dirs:
        args_base.insert(2, "-I" + d)
    findings = []
    checked = 0
    for header in public_headers(root):
        checked += 1
        if not quiet:
            print(f"  [self-contained] {header}", file=sys.stderr)
        proc = subprocess.run(
            args_base,
            input=f'#include "{include_name(header)}"\n',
            capture_output=True,
            text=True,
            cwd=root,
            check=False,
        )
        if proc.returncode != 0:
            first_error = next(
                (ln for ln in proc.stderr.splitlines() if "error" in ln), "compile failed"
            )
            findings.append(Finding(HEADER_SELFCONTAINED.id, header, 1, first_error[:200]))
    return findings, checked


def iter_source_files(root: str):
    for d in CODE_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [x for x in dirnames if x not in ("build", "__pycache__")]
            for f in sorted(filenames):
                if f.endswith(CPP_EXTS):
                    yield os.path.relpath(os.path.join(dirpath, f), root)


def lint(root: str, compile_checks: bool, quiet: bool):
    findings = []
    allowed = []
    compiled = {r.id: [re.compile(p) for p in r.patterns] for r in RULES}
    files_scanned = 0
    metric_registry = load_metric_registry(root)
    metric_usage = set()

    for relpath in iter_source_files(root):
        files_scanned += 1
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        file_allows, line_allows, pragmas = parse_pragmas(raw_lines)
        stripped = strip_comments_and_strings(raw)
        stripped_lines = stripped.splitlines()

        def emit(f: Finding):
            pragma = file_allows.get(f.rule) or line_allows.get(f.line, {}).get(f.rule)
            if pragma is not None:
                pragma.used = True
                f.allowed = True
                allowed.append(f)
            else:
                findings.append(f)

        # Match against stripped lines (no comment/string noise), except
        # #include directives, whose path the stripper blanks as a string
        # literal — those are matched raw so include-based rules can fire.
        scan_lines = [
            raw if raw.lstrip().startswith("#include") else stripped_line
            for raw, stripped_line in zip(raw_lines, stripped_lines)
        ]
        for rule in RULES:
            if not rule.in_scope(relpath):
                continue
            for lineno, line in enumerate(scan_lines, start=1):
                for pat in compiled[rule.id]:
                    if pat.search(line):
                        emit(Finding(rule.id, relpath, lineno,
                                     raw_lines[lineno - 1].strip()[:160]))
                        break

        if PER_BIT_LOOP.in_scope(relpath):
            for f in scan_per_bit_loops(stripped_lines, raw_lines, relpath):
                emit(f)

        if NONCONST_GLOBAL.in_scope(relpath):
            for f in scan_nonconst_globals(stripped, relpath):
                emit(f)

        if NAKED_MUTEX.in_scope(relpath):
            for f in scan_naked_mutexes(stripped, raw, raw_lines, relpath):
                emit(f)

        if EXPLICIT_ATOMIC_ORDERING.in_scope(relpath):
            for f in scan_atomic_orderings(stripped_lines, raw_lines, relpath):
                emit(f)

        if METRIC_NAME_REGISTRY.in_scope(relpath):
            for f in scan_metric_names(stripped_lines, raw_lines, relpath,
                                       metric_registry, metric_usage):
                emit(f)

        if relpath.endswith((".hpp", ".hh", ".h")) and "#pragma once" not in raw:
            emit(Finding(HEADER_PRAGMA_ONCE.id, relpath, 1, "missing #pragma once"))

        # Last, after every rule has had its chance to consume a pragma:
        # a suppression that suppressed nothing is itself a finding. It
        # goes through emit() too, so a deliberate keeper can carry
        # allow(stale-pragma); unused allow(stale-pragma) pragmas are not
        # re-reported (no self-referential fixpoint).
        for pragma in pragmas:
            if pragma.rule != STALE_PRAGMA.id and not pragma.used:
                emit(Finding(STALE_PRAGMA.id, relpath, pragma.line,
                             f"allow{'-file' if pragma.kind == 'file' else ''}"
                             f"({pragma.rule}) suppresses nothing"))

    # Cross-file half of metric-name-registry: entries nobody names.
    # No pragma channel here — the fix is always regeneration.
    for f in check_metric_registry_unused(metric_registry, metric_usage):
        findings.append(f)

    for f in check_header_test(root):
        findings.append(f)

    headers_checked = 0
    if compile_checks:
        cc_findings, headers_checked = compile_check_headers(root, quiet)
        findings.extend(cc_findings)

    return findings, allowed, files_scanned, headers_checked


# Fixture tree for --self-test: every new-generation rule has a firing,
# a clean, and a suppressed variant. The files are never compiled — they
# only need to look right to the scanners.
SELF_TEST_FIXTURES = {
    "src/fix/naked_fire.hpp": (
        "#pragma once\n"
        "#include <mutex>\n"
        "struct NakedFire {\n"
        "  std::mutex mu_;\n"
        "  int x = 0;\n"
        "};\n"
    ),
    "src/fix/naked_ok.hpp": (
        "#pragma once\n"
        '#include "tmwia/support/thread_annotations.hpp"\n'
        "struct NakedOk {\n"
        "  tmwia::support::Mutex mu_;\n"
        "  int x TMWIA_GUARDED_BY(mu_) = 0;\n"
        "};\n"
    ),
    "src/fix/naked_allowed.hpp": (
        "#pragma once\n"
        "#include <mutex>\n"
        "struct NakedAllowed {\n"
        "  // tmwia-lint: allow(naked-mutex) fixture: externally synchronized\n"
        "  std::mutex mu_;\n"
        "};\n"
    ),
    "src/fix/manual_lock.cpp": (
        "#include <mutex>\n"
        "void fixture_manual_lock(std::mutex& m) {\n"
        "  m.lock();\n"
        "  m.unlock();\n"
        "  // tmwia-lint: allow(manual-lock) fixture: sanctioned call\n"
        "  m.lock();\n"
        "}\n"
    ),
    "src/fix/atomic.cpp": (
        "#include <atomic>\n"
        "void fixture_atomics(std::atomic<int>& x) {\n"
        "  x.load();\n"
        "  x.store(1);\n"
        "  x.fetch_add(2);\n"
        "  (void)x.load(std::memory_order_acquire);\n"
        "  x.store(3,\n"
        "          std::memory_order_release);\n"
        "}\n"
    ),
    "src/fix/owner_write.cpp": (
        "void fixture_owner_write() {\n"
        "  obs_registry()\n"
        "      .attach_thread();\n"
        "}\n"
    ),
    "src/obs/owner_ok.cpp": (
        "void fixture_owner_ok() {\n"
        "  local_shard().slot_add(0, 1);\n"
        "}\n"
    ),
    "src/serve/fix_serve_fire.cpp": (
        "void fixture_serve_fire(void* m) {\n"
        "  touch<PreferenceMatrix>(m);\n"
        "  read(inst_.matrix);\n"
        "}\n"
    ),
    "src/serve/fix_serve_allowed.cpp": (
        "// tmwia-lint: allow-file(serve-matrix-isolation) fixture: harness side\n"
        "void fixture_serve_allowed(PreferenceMatrix* m) {}\n"
    ),
    "src/fix/stale.cpp": (
        "// tmwia-lint: allow-file(unseeded-rng) fixture: nothing random here\n"
        "void fixture_stale() {}\n"
    ),
    # metric-name-registry: a fixture registry header declares fix.known
    # (used), fix.unused (stale entry); a rogue literal, a clean literal
    # and a pragma'd composed name exercise the three verdicts.
    "src/obs/include/tmwia/obs/metric_names.gen.hpp": (
        "// GENERATED fixture registry\n"
        "#pragma once\n"
        "inline constexpr const char* kMetricNames[] = {\n"
        '    "fix.known",\n'
        '    "fix.unused",\n'
        "};\n"
    ),
    "src/fix/metric_fire.cpp": (
        "void fixture_metric_fire(void* reg) {\n"
        '  registry_of(reg).counter("fix.rogue");\n'
        "}\n"
    ),
    "src/fix/metric_ok.cpp": (
        "void fixture_metric_ok(void* reg) {\n"
        '  registry_of(reg).counter("fix.known");\n'
        "}\n"
    ),
    "src/fix/metric_allowed.cpp": (
        "void fixture_metric_allowed(void* reg, const char* t) {\n"
        "  // tmwia-lint: allow(metric-name-registry) fixture: per-tenant name\n"
        '  registry_of(reg).counter("fix." + std::string(t));\n'
        "}\n"
    ),
    "src/fix/stale_allowed.cpp": (
        "// tmwia-lint: allow(stale-pragma) fixture: historical marker\n"
        "// tmwia-lint: allow(manual-lock) fixture: nothing locks\n"
        "void fixture_stale_allowed() {}\n"
    ),
}

SELF_TEST_FINDINGS = {
    ("naked-mutex", "src/fix/naked_fire.hpp", 4),
    ("manual-lock", "src/fix/manual_lock.cpp", 3),
    ("manual-lock", "src/fix/manual_lock.cpp", 4),
    ("explicit-atomic-ordering", "src/fix/atomic.cpp", 3),
    ("explicit-atomic-ordering", "src/fix/atomic.cpp", 4),
    ("explicit-atomic-ordering", "src/fix/atomic.cpp", 5),
    ("owner-write", "src/fix/owner_write.cpp", 3),
    ("serve-matrix-isolation", "src/serve/fix_serve_fire.cpp", 2),
    ("serve-matrix-isolation", "src/serve/fix_serve_fire.cpp", 3),
    ("stale-pragma", "src/fix/stale.cpp", 1),
    ("metric-name-registry", "src/fix/metric_fire.cpp", 2),
    ("metric-name-registry", METRIC_REGISTRY_PATH, 5),
    # The fixture tree has no tests/header_selfcontained_test.cpp, so the
    # generated header test is reported missing — expected, not part of
    # the rules under test.
    ("header-test-stale", HEADER_TEST_PATH, 1),
}

SELF_TEST_ALLOWED = {
    ("naked-mutex", "src/fix/naked_allowed.hpp", 5),
    ("manual-lock", "src/fix/manual_lock.cpp", 6),
    ("stale-pragma", "src/fix/stale_allowed.cpp", 2),
    ("serve-matrix-isolation", "src/serve/fix_serve_allowed.cpp", 2),
    ("metric-name-registry", "src/fix/metric_allowed.cpp", 3),
}


def self_test() -> int:
    """Exercise the concurrency/pragma rules against the built-in
    fixtures; exact-set comparison so a rule that over- or under-fires
    both fail."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="tmwia-lint-selftest-") as td:
        for rel, content in SELF_TEST_FIXTURES.items():
            path = os.path.join(td, rel.replace("/", os.sep))
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        findings, allowed, _files, _headers = lint(td, compile_checks=False, quiet=True)

    ok = True
    for label, got, want in (
        ("finding", {(f.rule, f.file, f.line) for f in findings}, SELF_TEST_FINDINGS),
        ("allowance", {(f.rule, f.file, f.line) for f in allowed}, SELF_TEST_ALLOWED),
    ):
        for item in sorted(want - got):
            ok = False
            print(f"self-test: missing {label}: {item}", file=sys.stderr)
        for item in sorted(got - want):
            ok = False
            print(f"self-test: unexpected {label}: {item}", file=sys.stderr)
    print(f"tmwia-lint --self-test: {len(SELF_TEST_FIXTURES)} fixtures, "
          f"{'PASS' if ok else 'FAIL'}", file=sys.stderr)
    return 0 if ok else 1


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None, help="repo root (default: two dirs up)")
    ap.add_argument("--json", default=None, help="write machine-readable report here")
    ap.add_argument("--compile-checks", action="store_true",
                    help="also compile every public header stand-alone")
    ap.add_argument("--write-header-test", action="store_true",
                    help=f"regenerate {HEADER_TEST_PATH} and exit")
    ap.add_argument("--write-metric-registry", action="store_true",
                    help=f"regenerate {METRIC_REGISTRY_PATH} and exit")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="run the lint rules against built-in fixtures and exit")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"tmwia-lint: {root} does not look like the repo root", file=sys.stderr)
        return 2

    if args.list_rules:
        for r in ALL_RULES:
            print(f"{r.id:24} {r.description}")
        return 0

    if args.write_header_test:
        path = os.path.join(root, HEADER_TEST_PATH)
        with open(path, "w", encoding="utf-8") as f:
            f.write(render_header_test(root))
        print(f"tmwia-lint: wrote {HEADER_TEST_PATH}")
        return 0

    if args.write_metric_registry:
        path = os.path.join(root, METRIC_REGISTRY_PATH)
        with open(path, "w", encoding="utf-8") as f:
            f.write(render_metric_registry(root))
        print(f"tmwia-lint: wrote {METRIC_REGISTRY_PATH}")
        return 0

    findings, allowed, files_scanned, headers_checked = lint(
        root, args.compile_checks, args.quiet)

    by_rule = {r.id: {"description": r.description, "findings": [], "allowed": []}
               for r in ALL_RULES}
    for f in findings:
        by_rule[f.rule]["findings"].append(f.as_json())
    for f in allowed:
        by_rule[f.rule]["allowed"].append(f.as_json())

    report = {
        "tool": "tmwia-lint",
        "version": 1,
        "root": os.path.abspath(root),
        "files_scanned": files_scanned,
        "headers_compile_checked": headers_checked,
        "finding_count": len(findings),
        "allowed_count": len(allowed),
        "ok": not findings,
        "rules": by_rule,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if not args.quiet:
        for f in sorted(findings, key=lambda x: (x.rule, x.file, x.line)):
            print(f"{f.file}:{f.line}: [{f.rule}] {f.text}")
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"tmwia-lint: {files_scanned} files, {status}, "
              f"{len(allowed)} explicit allowance(s)", file=sys.stderr)
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
