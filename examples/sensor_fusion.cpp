// Sensor fusion — the paper's "tracking dynamic environment by
// unreliable sensors" framing of the interactive model (Section 1).
//
// A field of binary-threshold sensors observes m spatial cells. Sensors
// in the same area see (almost) the same world but each has its own
// calibration quirks — an (alpha, D) community per area. Reading a cell
// costs energy, so each sensor may only sample a few cells itself; the
// base station's billboard shares all readings.
//
// This example exercises the *anytime* driver: the deployment does not
// know how many sensor groups there are or how tight they cluster; it
// just keeps refining until the energy budget runs out, and we snapshot
// the reconstruction quality phase by phase.
//
// Run: ./build/examples/sensor_fusion [--sensors=512] [--cells=512]
#include <cstdio>
#include <iostream>

#include "tmwia/core/tmwia.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"

int main(int argc, char** argv) {
  using namespace tmwia;
  const io::Args args(argc, argv);
  const auto sensors = static_cast<std::size_t>(args.get_int("sensors", 512));
  const auto cells = static_cast<std::size_t>(args.get_int("cells", 512));
  const auto budget = static_cast<std::uint64_t>(args.get_int("budget", 40000));
  const auto seed = args.get_seed("seed", 13);

  // Three sensor clusters with different noise levels (calibration
  // quirk radius), plus 10% failed/erratic sensors.
  rng::Rng gen(seed);
  auto field = matrix::planted_communities(sensors, cells,
                                           {{0.3, 2}, {0.3, 6}, {0.3, 12}}, gen);
  std::printf("sensor field: %zu sensors x %zu cells; 3 clusters with increasing "
              "calibration noise, %zu erratic sensors\n\n",
              sensors, cells, field.outsiders().size());

  billboard::ProbeOracle readings(field.matrix);
  billboard::Billboard board;

  // Anytime operation: alpha = 1/2, 1/4, ... until the energy budget is
  // spent. No alpha, no D — nothing about the field is assumed.
  const auto res = core::anytime(readings, &board, budget, core::Params::practical(),
                                 rng::Rng(seed + 1));

  io::Table phases("anytime phases (cumulative)",
                   {{"phase alpha", 4}, {"cum rounds"}, {"cum probes"}});
  for (const auto& ph : res.phases) {
    phases.add_row({ph.alpha, static_cast<long long>(ph.rounds),
                    static_cast<long long>(ph.total_probes)});
  }
  phases.print(std::cout);

  io::Table quality("final reconstruction per sensor cluster",
                    {{"cluster"}, {"sensors"}, {"noise D"}, {"worst_err"}, {"stretch", 2}});
  bool ok = true;
  for (std::size_t c = 0; c < field.communities.size(); ++c) {
    const auto& cl = field.communities[c];
    const auto D = field.matrix.subset_diameter(cl);
    const auto err = field.matrix.discrepancy(res.outputs, cl);
    const double stretch = field.matrix.stretch(res.outputs, cl);
    if (stretch > 8.0) ok = false;
    quality.add_row({static_cast<long long>(c), static_cast<long long>(cl.size()),
                     static_cast<long long>(D), static_cast<long long>(err), stretch});
  }
  quality.print(std::cout);

  std::printf("\neach cluster is reconstructed to within a constant multiple of its own\n"
              "calibration noise — noisier clusters get proportionally looser answers,\n"
              "which is exactly the stretch guarantee. %s\n",
              ok ? "(all clusters within stretch 8)" : "(a cluster exceeded stretch 8!)");
  return ok ? 0 : 1;
}
