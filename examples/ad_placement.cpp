// Ad placement — the paper's own motivating scenario (Section 1):
//
//   "Probing takes place each time the advertiser provides a user with
//    an ad for some product: if the user clicks on this ad, the matrix
//    entry is set to 1 [...] The task is to reconstruct, for each user,
//    his preference vector (e.g., so that the advertiser can learn what
//    type does the user belong to)."
//
// Users belong to hidden interest segments (sports / cooking / gaming /
// travel), each with individual quirks, plus a slice of erratic users.
// Every ad impression is one probe; the advertiser wants each user's
// full click-propensity vector with as few wasted impressions as
// possible, and does not know the segment sizes or their diversity.
//
// Run: ./build/examples/ad_placement [--users=400] [--products=512]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "tmwia/core/tmwia.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"

int main(int argc, char** argv) {
  using namespace tmwia;
  const io::Args args(argc, argv);
  const auto users = static_cast<std::size_t>(args.get_int("users", 400));
  const auto products = static_cast<std::size_t>(args.get_int("products", 512));
  const auto seed = args.get_seed("seed", 7);

  const std::vector<std::string> segment_names{"sports", "cooking", "gaming", "travel"};

  // Four interest segments of ~22% each (radius: individual quirks),
  // 12% erratic users with arbitrary click behaviour.
  rng::Rng gen(seed);
  auto world = matrix::planted_communities(
      users, products,
      {{0.22, 3}, {0.22, 5}, {0.22, 2}, {0.22, 8}}, gen);

  std::printf("ad world: %zu users x %zu products, 4 hidden segments + %zu erratic users\n",
              users, products, world.outsiders().size());

  billboard::ProbeOracle impressions(world.matrix);
  billboard::Billboard board;

  // The advertiser knows neither the segment diameters (taste
  // diversity) nor which user is in which segment; it assumes segments
  // hold at least ~20% of users and lets the unknown-D driver do the
  // rest.
  const auto result = core::find_preferences_unknown_d(
      impressions, &board, /*alpha=*/0.2, core::Params::practical(), rng::Rng(seed + 1));

  io::Table table("per-segment reconstruction (click-propensity vectors)",
                  {{"segment"}, {"users"}, {"diameter D"}, {"worst_err"}, {"stretch", 2},
                   {"avg impressions/user", 1}});
  for (std::size_t s = 0; s < world.communities.size(); ++s) {
    const auto& seg = world.communities[s];
    std::uint64_t imp = 0;
    for (auto u : seg) imp += impressions.invocations(u);
    table.add_row({segment_names[s], static_cast<long long>(seg.size()),
                   static_cast<long long>(world.matrix.subset_diameter(seg)),
                   static_cast<long long>(world.matrix.discrepancy(result.outputs, seg)),
                   world.matrix.stretch(result.outputs, seg),
                   static_cast<double>(imp) / static_cast<double>(seg.size())});
  }
  table.print(std::cout);

  // What the advertiser actually wanted: segment identification. Match
  // each user's reconstructed vector against the segment centroids.
  std::size_t correct = 0, total = 0;
  for (std::size_t s = 0; s < world.communities.size(); ++s) {
    for (auto u : world.communities[s]) {
      ++total;
      if (bits::kernels::argmin_dist(world.centers, result.outputs[u]).index == s) {
        ++correct;
      }
    }
  }
  std::printf("\nsegment identification from reconstructed vectors: %zu/%zu users "
              "(%.1f%%)\n",
              correct, total, 100.0 * static_cast<double>(correct) /
                                  static_cast<double>(total));
  std::printf("showing every user every ad would cost %zu impressions each; the "
              "billboard run used %llu rounds\n",
              products, static_cast<unsigned long long>(result.rounds));
  return correct * 10 >= total * 9 ? 0 : 1;  // >= 90% segment accuracy expected
}
