// P2P simulation — the paper's execution model, literally: "a
// distributed randomized peer-to-peer algorithm" where "in each round,
// each player reads the shared billboard, probes one object, and writes
// the result on the billboard."
//
// This example runs Zero Radius as genuinely independent per-player
// state machines under the lockstep RoundScheduler (no central
// coordinator beyond the clock): every peer derives the shared
// recursion tree from the common coins, probes its own leaf, publishes
// its vectors, awaits its sibling half and adopts by vote + Select. It
// then cross-checks the distributed run against the centralized engine
// — same coins, bit-identical answers — which is the faithfulness
// argument behind the fast simulations used everywhere else.
//
// Run: ./build/examples/p2p_simulation [--peers=256] [--seed=21]
#include <cstdio>
#include <numeric>

#include "tmwia/core/tmwia.hpp"
#include "tmwia/io/args.hpp"

int main(int argc, char** argv) {
  using namespace tmwia;
  const io::Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("peers", 256));
  const auto seed = args.get_seed("seed", 21);

  rng::Rng gen(seed);
  auto world = matrix::planted_community(n, n, {0.5, 0}, gen);
  std::printf("P2P world: %zu peers, %zu objects, one exact-taste community of %zu\n\n",
              n, n, world.communities[0].size());

  const rng::Rng common_coins(seed ^ 0xC01);

  // --- the real thing: lockstep peers -----------------------------------
  billboard::ProbeOracle oracle(world.matrix);
  const auto dist = core::zero_radius_distributed(oracle, 0.5, core::Params::practical(),
                                                  common_coins);
  std::printf("distributed run: %zu lockstep rounds (%zu idle waits), all peers done: %s\n",
              dist.schedule.rounds, dist.schedule.idle_probes,
              dist.schedule.all_done ? "yes" : "no");
  std::printf("max probes by any peer: %llu (solo probing would need %zu)\n",
              static_cast<unsigned long long>(oracle.max_invocations()), n);

  std::size_t exact = 0;
  for (auto p : world.communities[0]) {
    if (dist.outputs[p] == world.centers[0]) ++exact;
  }
  std::printf("community members with exact reconstruction: %zu/%zu\n\n", exact,
              world.communities[0].size());

  // --- cross-check against the centralized engine -----------------------
  billboard::ProbeOracle oracle2(world.matrix);
  std::vector<core::PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(n);
  std::iota(objects.begin(), objects.end(), 0u);
  const auto central = core::zero_radius_bits(oracle2, nullptr, players, objects, 0.5,
                                              core::Params::practical(), common_coins);

  std::size_t identical = 0;
  bool probes_match = true;
  for (core::PlayerId p = 0; p < n; ++p) {
    if (dist.outputs[p] == central[p]) ++identical;
    if (oracle.invocations(p) != oracle2.invocations(p)) probes_match = false;
  }
  std::printf("centralized-engine cross-check: %zu/%zu outputs bit-identical, per-peer "
              "probe counts %s\n",
              identical, n, probes_match ? "identical" : "DIFFER");
  return (identical == n && probes_match && exact == world.communities[0].size()) ? 0 : 1;
}
