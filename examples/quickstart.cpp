// Quickstart: the 60-line tour of the tmwia public API.
//
//   1. Build (or bring) a hidden preference matrix.
//   2. Hand it to a Session — the facade that wires the probe oracle
//      and billboard for you.
//   3. Run the main algorithm (here: unknown D, known community
//      fraction alpha).
//   4. Inspect outputs, probe costs and rounds.
//
// Build & run:   ./build/examples/quickstart [--n=256] [--seed=42]
#include <cstdio>
#include <numeric>
#include <vector>

#include "tmwia/core/tmwia.hpp"
#include "tmwia/io/args.hpp"

namespace {
std::vector<std::uint32_t> first_64() {
  std::vector<std::uint32_t> c(64);
  std::iota(c.begin(), c.end(), 0u);
  return c;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace tmwia;
  const io::Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 256));
  const auto seed = args.get_seed("seed", 42);

  // A world with 256 users and 256 items: half the users form a "taste
  // community" whose opinions differ pairwise in at most ~4 items; the
  // rest are arbitrary.
  rng::Rng gen(seed);
  matrix::Instance inst = matrix::planted_community(n, n, {/*alpha=*/0.5, /*radius=*/2}, gen);

  // Reconstruct everyone's preferences. alpha is the assumed community
  // fraction; D (the community diameter) is NOT needed — the driver
  // guesses D = 0, 1, 2, 4, ... and each player picks its best result.
  // The Session owns the probe oracle (which charges every probe) and
  // the shared billboard.
  Session session(inst.matrix);
  const core::RunReport result = session.alpha(0.5).seed(seed + 1).run();

  // How well did the community do?
  const auto& community = inst.communities[0];
  const std::size_t D = inst.matrix.subset_diameter(community);
  const std::size_t disc = inst.matrix.discrepancy(result.outputs, community);
  std::printf("community of %zu players, true diameter D = %zu\n", community.size(), D);
  std::printf("worst community member error: %zu items (stretch %.2f)\n", disc,
              inst.matrix.stretch(result.outputs, community));
  std::printf("rounds used: %llu (solo probing would need m = %zu)\n",
              static_cast<unsigned long long>(result.rounds), inst.matrix.objects());
  std::printf("total probes across all players: %llu\n",
              static_cast<unsigned long long>(result.total_probes));

  // Individual estimates are plain bit vectors:
  const matrix::PlayerId someone = community[0];
  const auto head = first_64();
  std::printf("player %u likes %zu of the first 64 items; estimate agrees on %zu/64\n",
              someone, inst.matrix.row(someone).project(head).count_ones(),
              64 - result.outputs[someone].hamming_on(inst.matrix.row(someone), head));
  return 0;
}
