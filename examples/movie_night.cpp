// Movie night — classic collaborative filtering with the interactive
// twist: watching a movie IS the probe. A streaming platform's users
// split into taste clusters (each person still has individual taste),
// and everyone wants to know their whole like/dislike vector over the
// catalogue while watching as few movies as possible.
//
// This example contrasts three strategies for the same users:
//   * binge (solo probing)  — watch everything: exact, m nights;
//   * tmwia                 — the paper's collaborative algorithm;
//   * random + majority     — watch a random sample, trust the crowd.
//
// Run: ./build/examples/movie_night [--users=512] [--movies=512]
#include <cstdio>
#include <iostream>

#include "tmwia/baselines/baselines.hpp"
#include "tmwia/core/tmwia.hpp"
#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"

int main(int argc, char** argv) {
  using namespace tmwia;
  const io::Args args(argc, argv);
  const auto users = static_cast<std::size_t>(args.get_int("users", 512));
  const auto movies = static_cast<std::size_t>(args.get_int("movies", 512));
  const auto seed = args.get_seed("seed", 11);

  // Two taste clusters (say, thrillers vs musicals people) with real
  // internal disagreement, and 20% of users with one-of-a-kind taste.
  rng::Rng gen(seed);
  auto world = matrix::planted_communities(users, movies, {{0.4, 4}, {0.4, 6}}, gen);
  std::printf("catalogue of %zu movies, %zu users in 2 taste clusters, %zu loners\n\n",
              movies, users, world.outsiders().size());

  io::Table table("movie night: nights spent vs taste accuracy",
                  {{"strategy"}, {"nights (rounds)"}, {"cluster1 worst_err"},
                   {"cluster2 worst_err"}, {"loner mean_err", 1}});

  auto loner_mean = [&](const std::vector<bits::BitVector>& outputs) {
    const auto loners = world.outsiders();
    if (loners.empty()) return 0.0;
    std::size_t t = 0;
    for (auto p : loners) t += outputs[p].hamming(world.matrix.row(p));
    return static_cast<double>(t) / static_cast<double>(loners.size());
  };
  auto add_row = [&](const std::string& name, std::uint64_t rounds,
                     const std::vector<bits::BitVector>& outputs) {
    table.add_row({name, static_cast<long long>(rounds),
                   static_cast<long long>(
                       world.matrix.discrepancy(outputs, world.communities[0])),
                   static_cast<long long>(
                       world.matrix.discrepancy(outputs, world.communities[1])),
                   loner_mean(outputs)});
  };

  {
    billboard::ProbeOracle oracle(world.matrix);
    const auto res = baselines::solo_probing(oracle);
    add_row("binge everything", res.rounds, res.outputs);
  }
  {
    Session session(world.matrix);
    const auto res = session.alpha(0.4).seed(seed + 1).run();
    add_row("tmwia (collaborative)", res.rounds, res.outputs);
  }
  {
    billboard::ProbeOracle oracle(world.matrix);
    const auto res = baselines::global_majority(oracle, movies / 8, rng::Rng(seed + 2));
    add_row("random sample + crowd majority", res.rounds, res.outputs);
  }
  table.print(std::cout);

  std::printf(
      "\ntakeaways: the crowd-majority strategy is cheap but ignores that the two\n"
      "clusters disagree (its one answer fails both); tmwia recovers each cluster\n"
      "member to within a few movies of their true taste. Loners are inherently on\n"
      "their own — the paper's guarantee (Theorem 1.1) is relative to how esoteric\n"
      "your taste is: stretch = error / community diameter.\n");
  return 0;
}
