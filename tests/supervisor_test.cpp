// Tests for engine::Supervisor: strike/backoff/quarantine semantics,
// phase deadlines, degraded-but-complete runs, the monotone round clock
// across phases, and the injector orphan hand-off.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/billboard/strategies.hpp"
#include "tmwia/engine/supervisor.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/faults/fault_plan.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia {
namespace {

using billboard::PlayerStrategy;
using billboard::RoundView;

matrix::Instance small_instance(std::size_t n, std::uint64_t seed) {
  rng::Rng gen(seed);
  return matrix::planted_community(n, n, {0.5, 0}, gen);
}

/// Throws on its first `failures` probe decisions, then behaves like a
/// SoloStrategy.
class FlakyStrategy final : public PlayerStrategy {
 public:
  FlakyStrategy(std::size_t objects, std::size_t failures)
      : solo_(objects), failures_(failures) {}

  std::optional<billboard::ObjectId> next_probe(const RoundView& view) override {
    if (calls_++ < failures_) throw std::runtime_error("flaky");
    return solo_.next_probe(view);
  }
  void on_result(billboard::ObjectId o, bool value) override { solo_.on_result(o, value); }
  [[nodiscard]] bool done() const override { return solo_.done(); }

  [[nodiscard]] std::size_t calls() const { return calls_; }

 private:
  billboard::SoloStrategy solo_;
  std::size_t failures_;
  std::size_t calls_ = 0;
};

std::vector<std::unique_ptr<PlayerStrategy>> solo_strategies(std::size_t n) {
  std::vector<std::unique_ptr<PlayerStrategy>> s;
  for (std::size_t p = 0; p < n; ++p) {
    s.push_back(std::make_unique<billboard::SoloStrategy>(n));
  }
  return s;
}

TEST(Supervisor, HealthyRunCompletesUndegraded) {
  const auto inst = small_instance(8, 1);
  billboard::ProbeOracle oracle(inst.matrix);
  auto strategies = solo_strategies(8);
  engine::Supervisor sup(oracle);
  const auto res = sup.run(strategies, {{"phase:0", 32}});
  EXPECT_FALSE(res.degraded());
  EXPECT_TRUE(res.quarantined.empty());
  EXPECT_TRUE(res.unmet_phases.empty());
  EXPECT_EQ(res.strikes, 0u);
  ASSERT_EQ(res.phases.size(), 1u);
  EXPECT_TRUE(res.phases[0].met_deadline);
  EXPECT_TRUE(res.phases[0].result.all_done);
  // Ownership returned intact.
  for (const auto& s : strategies) EXPECT_NE(s, nullptr);
}

TEST(Supervisor, FewStrikesBackOffButComplete) {
  const auto inst = small_instance(8, 2);
  billboard::ProbeOracle oracle(inst.matrix);
  auto strategies = solo_strategies(8);
  // 2 failures < max_strikes=3: the player is benched twice, never
  // quarantined, and still finishes.
  strategies[3] = std::make_unique<FlakyStrategy>(8, 2);
  engine::Supervisor sup(oracle, {.max_strikes = 3, .backoff_base = 2, .backoff_cap = 8});
  const auto res = sup.run(strategies, {{"phase:0", 64}});
  EXPECT_FALSE(res.degraded());
  EXPECT_EQ(res.strikes, 2u);
  EXPECT_GT(res.benched_rounds, 0u);
  ASSERT_EQ(res.phases.size(), 1u);
  EXPECT_TRUE(res.phases[0].result.all_done);
  // The scheduler's own permanent-failure path was never triggered.
  EXPECT_TRUE(res.phases[0].result.failed_strategies.empty());
}

TEST(Supervisor, StrikeOutQuarantinesAndRunCompletes) {
  const auto inst = small_instance(8, 3);
  billboard::ProbeOracle oracle(inst.matrix);
  auto strategies = solo_strategies(8);
  strategies[5] = std::make_unique<FlakyStrategy>(8, 1000);  // never recovers
  engine::Supervisor sup(oracle, {.max_strikes = 3, .backoff_base = 1, .backoff_cap = 4});
  const auto res = sup.run(strategies, {{"phase:0", 128}});
  EXPECT_TRUE(res.degraded());
  ASSERT_EQ(res.quarantined.size(), 1u);
  EXPECT_EQ(res.quarantined[0], 5u);
  EXPECT_EQ(res.strikes, 3u);  // quarantined at exactly max_strikes
  // Everyone else finished: the phase met its deadline (the quarantined
  // player reports done, the loss shows in `quarantined`, not a stall).
  ASSERT_EQ(res.phases.size(), 1u);
  EXPECT_TRUE(res.phases[0].met_deadline);
  EXPECT_TRUE(res.unmet_phases.empty());
}

TEST(Supervisor, TinyBudgetRecordsUnmetPhase) {
  const auto inst = small_instance(8, 4);
  billboard::ProbeOracle oracle(inst.matrix);
  auto strategies = solo_strategies(8);
  engine::Supervisor sup(oracle);
  // Solo needs 8 rounds; phase 0's budget of 3 cannot make it. Phase 1
  // finishes the job.
  const auto res = sup.run(strategies, {{"phase:0", 3}, {"phase:1", 32}});
  EXPECT_TRUE(res.degraded());
  ASSERT_EQ(res.unmet_phases.size(), 1u);
  EXPECT_EQ(res.unmet_phases[0], "phase:0");
  ASSERT_EQ(res.phases.size(), 2u);
  EXPECT_FALSE(res.phases[0].met_deadline);
  EXPECT_TRUE(res.phases[1].met_deadline);
  // Monotone round clock across phases (the final all-done detection
  // round is touched but not counted, hence GE).
  EXPECT_EQ(res.phases[1].cum_rounds, res.phases[0].result.rounds + res.phases[1].result.rounds);
  EXPECT_GE(sup.next_round(), res.phases[1].cum_rounds);
  EXPECT_TRUE(res.quarantined.empty());
}

TEST(Supervisor, AllPhasesExhaustedStillReturns) {
  const auto inst = small_instance(8, 5);
  billboard::ProbeOracle oracle(inst.matrix);
  auto strategies = solo_strategies(8);
  engine::Supervisor sup(oracle);
  const auto res = sup.run(strategies, {{"phase:0", 2}, {"phase:1", 2}});
  EXPECT_TRUE(res.degraded());
  EXPECT_EQ(res.unmet_phases.size(), 2u);
  ASSERT_EQ(res.phases.size(), 2u);
  EXPECT_FALSE(res.phases[1].result.all_done);
}

TEST(Supervisor, QuarantineMarksOrphanOnInjector) {
  const auto inst = small_instance(8, 6);
  billboard::ProbeOracle oracle(inst.matrix);
  faults::FaultInjector injector(faults::FaultPlan::parse("seed=9"), 8);
  oracle.set_fault_injector(&injector);
  auto strategies = solo_strategies(8);
  strategies[2] = std::make_unique<FlakyStrategy>(8, 1000);
  engine::Supervisor sup(oracle, {.max_strikes = 2, .backoff_base = 1, .backoff_cap = 2});
  const auto res = sup.run(strategies, {{"phase:0", 64}});
  ASSERT_EQ(res.quarantined.size(), 1u);
  EXPECT_EQ(res.quarantined[0], 2u);
  // Routed into the existing degradation machinery: orphaned (so
  // rescue_orphans re-adopts) and excluded from votes (is_failed).
  EXPECT_TRUE(injector.is_orphaned(2));
  EXPECT_TRUE(injector.is_failed(2));
  EXPECT_FALSE(injector.is_orphaned(3));
}

TEST(Supervisor, BackoffDelaysInnerCalls) {
  const auto inst = small_instance(8, 7);
  billboard::ProbeOracle oracle(inst.matrix);
  auto strategies = solo_strategies(8);
  auto flaky = std::make_unique<FlakyStrategy>(8, 1);
  auto* handle = flaky.get();
  strategies[0] = std::move(flaky);
  engine::Supervisor sup(oracle, {.max_strikes = 3, .backoff_base = 8, .backoff_cap = 64});
  const auto res = sup.run(strategies, {{"phase:0", 64}});
  EXPECT_FALSE(res.degraded());
  EXPECT_EQ(res.benched_rounds, 8u);  // exactly one backoff_base window
  // Throwing call + 8 solo rounds; the benched rounds never reached the
  // inner strategy.
  EXPECT_EQ(handle->calls(), 9u);
}

TEST(SchedulerResume, RoundClockIsMonotoneAcrossRuns) {
  const auto inst = small_instance(4, 8);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::RoundScheduler sched(oracle);
  auto strategies = solo_strategies(4);
  EXPECT_EQ(sched.next_round(), 0u);
  const auto r1 = sched.run(strategies, 2);
  EXPECT_EQ(r1.rounds, 2u);
  EXPECT_EQ(sched.next_round(), 2u);
  const auto r2 = sched.run(strategies, 16);
  EXPECT_EQ(r2.rounds, 2u);  // 4 solo rounds total, 2 remained
  EXPECT_TRUE(r2.all_done);
  // The all-done probe round is touched (auditor brackets ran), so the
  // clock moves past it.
  EXPECT_GE(sched.next_round(), 4u);

  billboard::RoundScheduler fresh(oracle);
  fresh.resume_at(10);
  EXPECT_EQ(fresh.next_round(), 10u);
}

}  // namespace
}  // namespace tmwia
