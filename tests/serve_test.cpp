// serve:: — the long-lived recommendation service.
//
// Contract coverage:
//   * request codec: parse/render, unknown op/field rejection, defaults;
//   * cache versions: toplist ranking, content-hash sensitivity;
//   * multi-tenant isolation: a tenant refined inside a two-tenant
//     service (concurrent readers + interleaved epochs) produces
//     byte-identical estimates AND a byte-identical flight log to the
//     same tenant refined solo — no cross-tenant leakage of any kind;
//   * versioned consistency: every response's (epoch, cache_hash) pair
//     matches the publish ledger even while the background refiner is
//     swapping versions (this test is the TSan target for the serve
//     layer);
//   * degradation: a sabotaged epoch publishes nothing, keeps serving
//     the stale version, and marks every response degraded;
//   * observability hooks: degraded responses flow through the
//     service's observe hook into an attached SloWatchdog (the exit-6
//     contract's trigger) and every request into a TelemetryExporter;
//   * snapshot/restore: the restored tenant serves the byte-identical
//     (epoch, hash) version and its post-restore audit stays clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/slo.hpp"
#include "tmwia/obs/telemetry.hpp"
#include "tmwia/rng/rng.hpp"
#include "tmwia/serve/cache.hpp"
#include "tmwia/serve/protocol.hpp"
#include "tmwia/serve/service.hpp"
#include "tmwia/serve/tenant.hpp"

namespace {

using namespace tmwia;

matrix::Instance make_instance(std::uint64_t seed, std::size_t n = 16, std::size_t m = 32) {
  rng::Rng gen = rng::Rng(seed).split(0x6e57, 0);
  return matrix::planted_community(n, m, {0.5, 0}, gen);
}

serve::TenantConfig make_config(const std::string& name, std::uint64_t seed) {
  serve::TenantConfig cfg;
  cfg.name = name;
  cfg.seed = seed;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "serve_" + tag + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".tmp";
}

// ---- protocol codec --------------------------------------------------

TEST(ServeProtocol, ParsesRecommendWithDefaults) {
  const auto req = serve::parse_request(R"({"op":"recommend","tenant":"a","player":3})");
  EXPECT_EQ(req.op, "recommend");
  EXPECT_EQ(req.tenant, "a");
  EXPECT_EQ(req.player, 3u);
  EXPECT_EQ(req.k, 8u);  // default
}

TEST(ServeProtocol, ParsesAddTenantFields) {
  const auto req = serve::parse_request(
      R"({"op":"add_tenant","tenant":"t","n":8,"m":16,"kind":"uniform","seed":9,)"
      R"("alpha":0.25,"algo":"mimic","toplist_cap":4,"sabotage":true})");
  EXPECT_EQ(req.n, 8u);
  EXPECT_EQ(req.m, 16u);
  EXPECT_EQ(req.kind, "uniform");
  EXPECT_EQ(req.seed, 9u);
  EXPECT_DOUBLE_EQ(req.alpha, 0.25);
  EXPECT_EQ(req.algo, "mimic");
  EXPECT_EQ(req.toplist_cap, 4u);
  EXPECT_TRUE(req.sabotage);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  // Unknown op.
  EXPECT_THROW(serve::parse_request(R"({"op":"frobnicate","tenant":"a"})"),
               std::invalid_argument);
  // Unknown field for the op.
  EXPECT_THROW(serve::parse_request(R"({"op":"recommend","tenant":"a","player":1,"nope":2})"),
               std::invalid_argument);
  // Missing required fields.
  EXPECT_THROW(serve::parse_request(R"({"op":"recommend","tenant":"a"})"),
               std::invalid_argument);
  EXPECT_THROW(serve::parse_request(R"({"op":"recommend","player":1})"),
               std::invalid_argument);
  EXPECT_THROW(serve::parse_request(R"({"op":"add_tenant","tenant":"a"})"),
               std::invalid_argument);
  EXPECT_THROW(serve::parse_request(R"({"op":"snapshot","tenant":"a"})"),
               std::invalid_argument);
  // Not JSON at all.
  EXPECT_THROW(serve::parse_request("recommend a 3"), std::invalid_argument);
}

TEST(ServeProtocol, ResponseJsonCarriesViewAndItems) {
  serve::Response r;
  r.op = "recommend";
  r.tenant = "a";
  r.has_view = true;
  r.epoch = 2;
  r.cache_hash = 0xabcdef;
  r.staleness = 1;
  r.has_items = true;
  r.items = {5, 1, 9};
  r.latency_us = 12;
  const std::string js = r.to_json();
  EXPECT_NE(js.find("\"op\":\"recommend\""), std::string::npos);
  EXPECT_NE(js.find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(js.find(serve::hash_to_hex(0xabcdef)), std::string::npos);
  EXPECT_NE(js.find("\"items\":[5,1,9]"), std::string::npos);
  EXPECT_NE(js.find("\"staleness\":1"), std::string::npos);
}

// ---- cache versions --------------------------------------------------

TEST(ServeCache, ToplistRanksUnprobedLikedBySupport) {
  // One player over 8 objects: likes {1,2,5,6}, already probed {2}.
  std::vector<bits::BitVector> est(1, bits::BitVector(8));
  for (auto o : {1u, 2u, 5u, 6u}) est[0].set(o, true);
  std::vector<bits::BitVector> probed(1, bits::BitVector(8));
  probed[0].set(2, true);
  // Two candidates both carry a known 1 at object 5, one at object 1.
  std::vector<bits::TriVector> cands;
  for (int c = 0; c < 2; ++c) {
    bits::TriVector t(8);
    t.set(5, bits::Tri::kOne);
    if (c == 0) t.set(1, bits::Tri::kOne);
    cands.push_back(t);
  }
  const auto v = serve::build_cache_version(1, est, probed, cands, 16);
  // 5 (support 2) before 1 (support 1) before 6 (support 0); 2 excluded.
  EXPECT_EQ(v->toplists[0], (std::vector<std::uint32_t>{5, 1, 6}));

  // Everything probed -> fall back to all predicted-liked.
  probed[0] = est[0];
  const auto v2 = serve::build_cache_version(1, est, probed, cands, 16);
  EXPECT_EQ(v2->toplists[0], (std::vector<std::uint32_t>{5, 1, 2, 6}));

  // The cap truncates.
  const auto v3 = serve::build_cache_version(1, est, std::vector<bits::BitVector>(), cands, 2);
  EXPECT_EQ(v3->toplists[0].size(), 2u);
}

TEST(ServeCache, ContentHashIsEpochAndPayloadSensitive) {
  std::vector<bits::BitVector> est(2, bits::BitVector(16));
  est[0].set(3, true);
  const auto a = serve::build_cache_version(1, est, {}, {}, 4);
  const auto b = serve::build_cache_version(1, est, {}, {}, 4);
  EXPECT_EQ(a->content_hash, b->content_hash);  // deterministic
  const auto c = serve::build_cache_version(2, est, {}, {}, 4);
  EXPECT_NE(a->content_hash, c->content_hash);  // epoch mixed in
  est[1].set(7, true);
  const auto d = serve::build_cache_version(1, est, {}, {}, 4);
  EXPECT_NE(a->content_hash, d->content_hash);  // payload mixed in
}

// ---- tenant refinement ----------------------------------------------

TEST(ServeTenant, RefineEpochsPublishAndAuditClean) {
  serve::Tenant t(make_config("solo", 11), make_instance(11));
  EXPECT_EQ(t.epochs_published(), 0u);
  EXPECT_EQ(t.cache().current()->epoch, 0u);

  const auto v1 = t.refine_epoch();
  EXPECT_EQ(v1->epoch, 1u);
  EXPECT_EQ(t.epochs_published(), 1u);
  EXPECT_FALSE(t.degraded());

  const auto v2 = t.refine_epoch();
  EXPECT_EQ(v2->epoch, 2u);
  EXPECT_NE(v1->content_hash, v2->content_hash);
  EXPECT_GT(t.total_probes(), 0u);
  EXPECT_TRUE(t.audit().clean());
}

TEST(ServeTenant, MimicEpochsPublishUnderSupervisor) {
  auto cfg = make_config("mimic", 5);
  cfg.algo = "mimic";
  serve::Tenant t(cfg, make_instance(5));
  const auto v = t.refine_epoch();
  EXPECT_EQ(v->epoch, 1u);
  EXPECT_FALSE(t.degraded());
  EXPECT_TRUE(t.audit().clean());
}

TEST(ServeTenant, SabotagedEpochServesStaleAndMarksDegraded) {
  auto cfg = make_config("sab", 3);
  cfg.sabotage_refine = true;
  serve::Tenant t(cfg, make_instance(3));
  const auto v0 = t.cache().current();

  const auto v = t.refine_epoch();
  EXPECT_TRUE(t.degraded());
  EXPECT_EQ(t.epochs_started(), 1u);
  EXPECT_EQ(t.epochs_published(), 0u);
  // The cache still serves the epoch-0 version, byte-identical.
  EXPECT_EQ(v->epoch, 0u);
  EXPECT_EQ(v->content_hash, v0->content_hash);
}

// ---- multi-tenant isolation -----------------------------------------

TEST(ServeIsolation, ServiceTenantsMatchSoloRunsByteForByte) {
  constexpr std::uint64_t kSeedA = 21, kSeedB = 22;
  const std::string log_a = temp_path("iso_a"), log_b = temp_path("iso_b");
  const std::string log_sa = temp_path("iso_sa"), log_sb = temp_path("iso_sb");

  // Two tenants with different hidden matrices share one service; the
  // refiner interleaves their epochs while reader threads hammer both.
  std::vector<bits::BitVector> est_a, est_b;
  {
    obs::MetricsRegistry::global().set_enabled(true);
    serve::RecommendationService service;
    auto cfg_a = make_config("a", kSeedA);
    cfg_a.record_path = log_a;
    auto cfg_b = make_config("b", kSeedB);
    cfg_b.record_path = log_b;
    service.add_tenant(std::move(cfg_a), make_instance(kSeedA));
    service.add_tenant(std::move(cfg_b), make_instance(kSeedB));

    service.start_refiner(2);
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&service, r] {
        const std::string tenant = r == 0 ? "a" : "b";
        for (std::uint32_t i = 0; i < 500; ++i) {
          const auto resp = service.recommend(tenant, i % 16, 4);
          ASSERT_TRUE(resp.ok);
          ASSERT_EQ(service.published_hash(tenant, resp.epoch), resp.cache_hash);
        }
      });
    }
    for (auto& th : readers) th.join();
    service.stop_refiner();
    while (service.tenant("a")->epochs_published() < 2) service.refine("a");
    while (service.tenant("b")->epochs_published() < 2) service.refine("b");

    est_a = service.tenant("a")->cache().current()->estimates;
    est_b = service.tenant("b")->cache().current()->estimates;
    EXPECT_TRUE(service.tenant("a")->audit().clean());
    EXPECT_TRUE(service.tenant("b")->audit().clean());
  }

  // Solo reference runs: same config, same seeds, no sibling tenant.
  auto solo = [&](std::uint64_t seed, const std::string& log) {
    auto cfg = make_config("solo", seed);
    cfg.record_path = log;
    serve::Tenant t(cfg, make_instance(seed));
    t.refine_epoch();
    t.refine_epoch();
    return t.cache().current()->estimates;
  };
  const auto solo_a = solo(kSeedA, log_sa);
  const auto solo_b = solo(kSeedB, log_sb);

  // No cross-tenant leakage: estimates byte-identical to the solo runs.
  EXPECT_EQ(est_a, solo_a);
  EXPECT_EQ(est_b, solo_b);
  // Different matrices must not collapse to the same answers.
  EXPECT_NE(est_a, est_b);

  // Per-tenant flight logs byte-identical to the solo logs (tenants'
  // recorders flushed on destruction above).
  const auto shared_log_a = slurp(log_a), shared_log_b = slurp(log_b);
  EXPECT_FALSE(shared_log_a.empty());
  EXPECT_EQ(shared_log_a, slurp(log_sa));
  EXPECT_EQ(shared_log_b, slurp(log_sb));

  for (const auto& p : {log_a, log_b, log_sa, log_sb}) std::remove(p.c_str());
}

// ---- versioned consistency under concurrent refinement ---------------

TEST(ServeConsistency, ResponsesNeverTearAcrossVersionSwaps) {
  serve::RecommendationService service;
  service.add_tenant(make_config("t", 31), make_instance(31));

  service.start_refiner(4);
  std::uint64_t views = 0;
  std::uint64_t distinct_epochs = 0;
  std::uint64_t last_epoch = ~0ull;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    const auto r = (i % 4 == 3) ? service.estimate("t", i % 16)
                                : service.recommend("t", i % 16, 4);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(r.has_view);
    // The (epoch, hash) pair must match what was published for that
    // epoch — a torn read mixing two versions could not.
    ASSERT_EQ(service.published_hash("t", r.epoch), r.cache_hash);
    ASSERT_NE(r.cache_hash, 0u);
    ++views;
    if (r.epoch != last_epoch) {
      ++distinct_epochs;
      last_epoch = r.epoch;
    }
  }
  service.stop_refiner();
  EXPECT_EQ(views, 4000u);
  EXPECT_GE(distinct_epochs, 1u);
  EXPECT_TRUE(service.tenant("t")->audit().clean());
}

// ---- service request path -------------------------------------------

TEST(ServeService, HandlesErrorsWithoutThrowing) {
  serve::RecommendationService service;
  // Unknown tenant.
  auto r = service.recommend("ghost", 0, 4);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown tenant");
  // Unknown op through handle().
  serve::Request req;
  req.op = "frobnicate";
  req.tenant = "ghost";
  r = service.handle(req);
  EXPECT_FALSE(r.ok);

  // Player out of range on a real tenant.
  service.add_tenant(make_config("t", 41), make_instance(41));
  r = service.recommend("t", 999, 4);
  EXPECT_FALSE(r.ok);

  // Duplicate tenant registration throws.
  EXPECT_THROW(service.add_tenant(make_config("t", 41), make_instance(41)),
               std::invalid_argument);
}

TEST(ServeService, DegradedTenantMarksResponsesAndServiceFlag) {
  serve::RecommendationService service;
  auto cfg = make_config("sab", 51);
  cfg.sabotage_refine = true;
  service.add_tenant(std::move(cfg), make_instance(51));
  EXPECT_FALSE(service.any_degraded());

  service.refine("sab");
  EXPECT_TRUE(service.any_degraded());
  const auto r = service.recommend("sab", 0, 4);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.epoch, 0u);       // still the stale epoch-0 version
  EXPECT_EQ(r.staleness, 1u);   // one epoch behind
}

// ---- SLO watchdog + telemetry hooks ----------------------------------

/// The serve exit-code 6 contract, at the library layer: a sabotaged
/// tenant's degraded responses flow through the service's observe hook
/// into the watchdog, which raises a structured "degraded" alert and
/// latches breached().
TEST(ServeSlo, SabotagedTenantTripsWatchdog) {
  serve::RecommendationService service;
  service.add_tenant(make_config("good", 41), make_instance(41));
  auto cfg = make_config("sab", 51);
  cfg.sabotage_refine = true;
  service.add_tenant(std::move(cfg), make_instance(51));

  obs::SloWatchdog watchdog(obs::SloSpec::parse("degraded=0,window=8"));
  service.set_watchdog(&watchdog);

  // Healthy traffic: no alert, no breach.
  service.refine("good");
  EXPECT_TRUE(service.recommend("good", 0, 4).ok);
  EXPECT_TRUE(watchdog.evaluate(1).empty());
  EXPECT_FALSE(watchdog.breached());

  // The sabotaged epoch degrades every later response; one is enough.
  service.refine("sab");
  const auto r = service.recommend("sab", 0, 4);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.degraded);
  const auto alerts = watchdog.evaluate(2);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].objective, "degraded");
  EXPECT_DOUBLE_EQ(alerts[0].observed, 1.0);
  EXPECT_TRUE(watchdog.breached());
  const auto rep = watchdog.report();
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.objectives.size(), 1u);
  EXPECT_EQ(rep.objectives[0].name, "degraded");
}

/// Requests flow into an attached TelemetryExporter: with every=1 each
/// request closes a tick, and the exemplar record names the tenant and
/// op that was served.
TEST(ServeSlo, ServiceFeedsTelemetryExporter) {
  const std::string path = temp_path("telemetry");
  serve::RecommendationService service;
  service.add_tenant(make_config("t", 41), make_instance(41));
  service.refine("t");

  obs::TelemetryConfig cfg;
  cfg.path = path;
  cfg.every = 1;
  cfg.write_exposition = false;
  {
    obs::TelemetryExporter exporter(cfg, obs::MetricsRegistry::global());
    service.set_telemetry(&exporter);
    EXPECT_TRUE(service.recommend("t", 0, 4).ok);
    EXPECT_EQ(exporter.ticks(), 1u);
    service.set_telemetry(nullptr);
    exporter.finish();
  }
  const auto text = slurp(path);
  EXPECT_NE(text.find("\"kind\":\"snapshot\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"exemplar\",\"seq\":1,\"tenant\":\"t\",\"op\":\"recommend\""),
            std::string::npos);
  std::remove(path.c_str());
}

// ---- snapshot / restore ---------------------------------------------

TEST(ServeSnapshot, RoundTripServesIdenticalVersionAndStaysAuditable) {
  const std::string path = temp_path("ckpt");
  std::uint64_t epoch = 0, hash = 0, probes = 0;
  {
    serve::Tenant t(make_config("snap", 61), make_instance(61));
    t.refine_epoch();
    t.refine_epoch();
    const auto v = t.cache().current();
    epoch = v->epoch;
    hash = v->content_hash;
    probes = t.total_probes();
    t.save_snapshot(path);
  }

  serve::Tenant back(make_config("snap", 61), make_instance(61));
  back.restore_snapshot(path);
  const auto v = back.cache().current();
  EXPECT_EQ(v->epoch, epoch);
  EXPECT_EQ(v->content_hash, hash);  // byte-identical serving state
  EXPECT_EQ(back.epochs_started(), epoch);
  EXPECT_EQ(back.total_probes(), probes);

  // The restored tenant keeps refining and keeps a clean audit (the
  // auditor baseline excludes pre-snapshot traffic).
  const auto v3 = back.refine_epoch();
  EXPECT_EQ(v3->epoch, epoch + 1);
  EXPECT_FALSE(back.degraded());
  EXPECT_TRUE(back.audit().clean());

  // Restoring into a tenant that already ran epochs is rejected.
  serve::Tenant busy(make_config("snap", 61), make_instance(61));
  busy.refine_epoch();
  EXPECT_THROW(busy.restore_snapshot(path), std::logic_error);

  std::remove(path.c_str());
}

}  // namespace
