// Parity suite for the batched distance-kernel layer: every supported
// backend (scalar, AVX2, AVX-512) must compute the SAME integers as a
// naive per-bit reference on randomized inputs, including non-word-
// aligned tails and TriVector '?' masks. Also covers the RankSelect
// directory and backend selection semantics. Runs under ASan/UBSan via
// tools/run_tests.sh (and the dedicated --kernel-parity stage).
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/bits/rank_select.hpp"
#include "tmwia/bits/trivector.hpp"
#include "tmwia/core/session.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::bits {
namespace {

/// Every backend this CPU can run — parity cases iterate this list.
std::vector<KernelBackend> supported_backends() {
  std::vector<KernelBackend> out{KernelBackend::kScalar};
  if (kernels::backend_supported(KernelBackend::kAvx2)) {
    out.push_back(KernelBackend::kAvx2);
  }
  if (kernels::backend_supported(KernelBackend::kAvx512)) {
    out.push_back(KernelBackend::kAvx512);
  }
  return out;
}

/// Restores the entry backend on scope exit so parity tests cannot
/// leak a backend override into other tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(kernels::requested_backend()) {}
  ~BackendGuard() { kernels::set_backend(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  KernelBackend saved_;
};

BitVector random_bits(std::size_t n, rng::Rng& rng) {
  BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform(2) == 1) v.set(i, true);
  }
  return v;
}

TriVector random_tri(std::size_t n, rng::Rng& rng) {
  TriVector t(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = rng.uniform(4);
    // 25% '?' so masks are exercised but distances stay informative.
    t.set(i, r == 0 ? Tri::kUnknown : (r == 1 ? Tri::kOne : Tri::kZero));
  }
  return t;
}

std::size_t naive_dist(const BitVector& a, const BitVector& b) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < a.size(); ++i) c += (a.get(i) != b.get(i)) ? 1 : 0;
  return c;
}

std::size_t naive_dtilde(const TriVector& a, const BitVector& b) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.get(i) == Tri::kUnknown) continue;
    if ((a.get(i) == Tri::kOne) != b.get(i)) ++c;
  }
  return c;
}

std::size_t naive_dtilde(const TriVector& a, const TriVector& b) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.get(i) == Tri::kUnknown || b.get(i) == Tri::kUnknown) continue;
    if (a.get(i) != b.get(i)) ++c;
  }
  return c;
}

// Sizes chosen to hit every dispatch shape: sub-word, exactly one
// word, non-word-aligned tails, AVX2-block (256) and AVX-512-block
// (512) multiples, and sizes just off those boundaries.
const std::size_t kSizes[] = {1, 7, 63, 64, 65, 127, 192, 255, 256,
                              257, 511, 512, 513, 777, 1024, 2048, 2049};

TEST(KernelsBackend, NamesRoundTrip) {
  for (const auto b : {KernelBackend::kScalar, KernelBackend::kAvx2,
                       KernelBackend::kAvx512, KernelBackend::kAuto}) {
    const auto parsed = kernels::parse_backend(kernels::backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(kernels::parse_backend("sse2").has_value());
  EXPECT_FALSE(kernels::parse_backend("").has_value());
}

TEST(KernelsBackend, ScalarAndAutoAlwaysSupported) {
  EXPECT_TRUE(kernels::backend_supported(KernelBackend::kScalar));
  EXPECT_TRUE(kernels::backend_supported(KernelBackend::kAuto));
  EXPECT_NE(kernels::resolve_backend(KernelBackend::kAuto), KernelBackend::kAuto);
}

TEST(KernelsBackend, SetBackendSwitchesActive) {
  const BackendGuard guard;
  for (const auto b : supported_backends()) {
    kernels::set_backend(b);
    EXPECT_EQ(kernels::requested_backend(), b);
    EXPECT_EQ(kernels::active_backend(), b);
  }
  kernels::set_backend(KernelBackend::kAuto);
  EXPECT_EQ(kernels::requested_backend(), KernelBackend::kAuto);
  EXPECT_EQ(kernels::active_backend(),
            kernels::resolve_backend(KernelBackend::kAuto));
}

TEST(KernelsParity, DistMatchesNaiveOnAllBackends) {
  const BackendGuard guard;
  rng::Rng rng(20260808);
  for (const std::size_t n : kSizes) {
    const BitVector a = random_bits(n, rng);
    const BitVector b = random_bits(n, rng);
    const std::size_t want = naive_dist(a, b);
    for (const auto backend : supported_backends()) {
      kernels::set_backend(backend);
      EXPECT_EQ(kernels::dist(a, b), want) << "n=" << n << " backend="
                                           << kernels::backend_name(backend);
      EXPECT_EQ(a.hamming(b), want);
    }
  }
}

TEST(KernelsParity, DtildeMatchesNaiveOnAllBackends) {
  const BackendGuard guard;
  rng::Rng rng(7);
  for (const std::size_t n : kSizes) {
    const TriVector a = random_tri(n, rng);
    const TriVector b = random_tri(n, rng);
    const BitVector v = random_bits(n, rng);
    const std::size_t want_tt = naive_dtilde(a, b);
    const std::size_t want_tb = naive_dtilde(a, v);
    for (const auto backend : supported_backends()) {
      kernels::set_backend(backend);
      EXPECT_EQ(kernels::dtilde(a, b), want_tt) << "n=" << n;
      EXPECT_EQ(kernels::dtilde(a, v), want_tb) << "n=" << n;
      EXPECT_EQ(a.dtilde(b), want_tt);
      EXPECT_EQ(a.dtilde(v), want_tb);
    }
  }
}

TEST(KernelsParity, BatchedOpsAgreeAcrossBackends) {
  const BackendGuard guard;
  rng::Rng rng(42);
  for (const std::size_t n : {65UL, 257UL, 513UL, 1000UL}) {
    std::vector<BitVector> vs;
    for (int i = 0; i < 33; ++i) vs.push_back(random_bits(n, rng));
    const BitVector target = random_bits(n, rng);
    const TriVector center = random_tri(n, rng);

    // Scalar is the reference; every other backend must match exactly.
    kernels::set_backend(KernelBackend::kScalar);
    std::vector<std::uint32_t> ref_dists(vs.size());
    kernels::dist_many(target, vs, ref_dists);
    std::vector<std::uint32_t> ref_dt(vs.size());
    kernels::dtilde_many(center, vs, ref_dt);
    const auto ref_arg = kernels::argmin_dist(vs, target);
    const auto ref_ball = kernels::ball_size(vs, center, n / 3);
    const auto ref_members = kernels::ball_members(vs, center, n / 3);
    const auto ref_ball_bits = kernels::ball_size(vs, target, n / 2);
    const auto ref_diam = kernels::pairwise_diameter(vs);
    const std::vector<std::uint32_t> idx{0, 5, 9, 31};
    const auto ref_sub_diam = kernels::pairwise_diameter(vs, idx);

    for (std::size_t i = 0; i < vs.size(); ++i) {
      EXPECT_EQ(ref_dists[i], naive_dist(target, vs[i]));
      EXPECT_EQ(ref_dt[i], naive_dtilde(center, vs[i]));
    }

    for (const auto backend : supported_backends()) {
      kernels::set_backend(backend);
      std::vector<std::uint32_t> d(vs.size());
      kernels::dist_many(target, vs, d);
      EXPECT_EQ(d, ref_dists) << kernels::backend_name(backend);
      std::vector<std::uint32_t> dt(vs.size());
      kernels::dtilde_many(center, vs, dt);
      EXPECT_EQ(dt, ref_dt);
      const auto arg = kernels::argmin_dist(vs, target);
      EXPECT_EQ(arg.index, ref_arg.index);
      EXPECT_EQ(arg.dist, ref_arg.dist);
      EXPECT_EQ(kernels::ball_size(vs, center, n / 3), ref_ball);
      EXPECT_EQ(kernels::ball_members(vs, center, n / 3), ref_members);
      EXPECT_EQ(kernels::ball_size(vs, target, n / 2), ref_ball_bits);
      EXPECT_EQ(kernels::pairwise_diameter(vs), ref_diam);
      EXPECT_EQ(kernels::pairwise_diameter(vs, idx), ref_sub_diam);
    }
  }
}

TEST(KernelsParity, ArgminBreaksTiesTowardLowestIndex) {
  const BackendGuard guard;
  // vs[1] and vs[3] are both at distance 1; index 1 must win on every
  // backend (the determinism contract).
  std::vector<BitVector> vs{
      BitVector::from_string("1111"), BitVector::from_string("0001"),
      BitVector::from_string("1100"), BitVector::from_string("0100")};
  for (const auto backend : supported_backends()) {
    kernels::set_backend(backend);
    const auto r = kernels::argmin_dist(vs, BitVector::from_string("0000"));
    EXPECT_EQ(r.index, 1U) << kernels::backend_name(backend);
    EXPECT_EQ(r.dist, 1U);
  }
}

TEST(KernelsParity, KnownDiffMatchesNaive) {
  rng::Rng rng(99);
  for (const std::size_t n : {64UL, 193UL, 521UL}) {
    const TriVector a = random_tri(n, rng);
    const TriVector b = random_tri(n, rng);
    const BitVector d = kernels::known_diff(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      const bool want = a.get(i) != Tri::kUnknown && b.get(i) != Tri::kUnknown &&
                        a.get(i) != b.get(i);
      EXPECT_EQ(d.get(i), want) << "n=" << n << " i=" << i;
    }
    EXPECT_EQ(d.count_ones(), naive_dtilde(a, b));
  }
}

TEST(KernelsParity, KnownDiffPositionsMatchesKnownDiff) {
  const BackendGuard guard;
  rng::Rng rng(314);
  for (const std::size_t n : {64UL, 193UL, 521UL}) {
    const TriVector a = random_tri(n, rng);
    const TriVector b = random_tri(n, rng);
    const auto want = kernels::known_diff(a, b).one_positions();
    for (const auto backend : supported_backends()) {
      kernels::set_backend(backend);
      std::vector<std::uint32_t> got{0xdeadbeef};  // must be cleared, not appended
      kernels::known_diff_positions(a, b, got);
      EXPECT_EQ(got, want) << "n=" << n << " backend="
                           << kernels::backend_name(backend);
    }
  }
  const TriVector a(64);
  const TriVector wrong(65);
  std::vector<std::uint32_t> out;
  EXPECT_THROW(kernels::known_diff_positions(a, wrong, out), std::invalid_argument);
}

// ------------------------------------------------- backend provenance

TEST(KernelsProvenance, RunReportRecordsResolvedBackend) {
  const BackendGuard guard;
  rng::Rng rng(5);
  const auto inst = matrix::planted_community(48, 48, {.alpha = 0.5, .radius = 0}, rng);
  tmwia::Session session(inst.matrix);
  session.kernel(KernelBackend::kScalar);
  const auto report = session.run(0);
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"kernel\":\"scalar\""), std::string::npos) << json;
  // The builder freezes with the rest of the configuration.
  EXPECT_THROW(session.kernel(KernelBackend::kAuto), std::logic_error);
}

TEST(KernelsProvenance, RunReportNeverRecordsAuto) {
  const BackendGuard guard;
  kernels::set_backend(KernelBackend::kAuto);
  const core::RunReport report;  // provenance is read at to_json time
  EXPECT_EQ(report.to_json().find("\"kernel\":\"auto\""), std::string::npos);
  const std::string want = std::string("\"kernel\":\"") +
                           std::string(kernels::backend_name(kernels::active_backend())) +
                           "\"";
  EXPECT_NE(report.to_json().find(want), std::string::npos);
}

TEST(KernelsParity, WordPrimitivesHandleEmptyAndTails) {
  for (const auto backend : supported_backends()) {
    const BackendGuard guard;
    kernels::set_backend(backend);
    EXPECT_EQ(kernels::popcount_words(nullptr, 0), 0U);
    const std::vector<std::uint64_t> a{~0ULL, 0x5555555555555555ULL, 1ULL};
    const std::vector<std::uint64_t> b{0ULL, ~0ULL, 1ULL};
    EXPECT_EQ(kernels::popcount_words(a.data(), a.size()), 64U + 32U + 1U);
    EXPECT_EQ(kernels::xor_popcount_words(a.data(), b.data(), a.size()),
              64U + 32U + 0U);
    EXPECT_EQ(kernels::and_popcount_words(a.data(), b.data(), a.size()),
              0U + 32U + 1U);
  }
}

TEST(KernelsErrors, MismatchedSizesThrow) {
  const BitVector a(64);
  const BitVector b(65);
  EXPECT_THROW((void)kernels::dist(a, b), std::invalid_argument);
  std::vector<BitVector> vs{b};
  std::vector<std::uint32_t> out(1);
  EXPECT_THROW(kernels::dist_many(a, vs, out), std::invalid_argument);
  EXPECT_THROW((void)kernels::argmin_dist(std::span<const BitVector>{}, a),
               std::invalid_argument);
  std::vector<std::uint32_t> small;
  std::vector<BitVector> two{a, a};
  EXPECT_THROW(kernels::dist_many(a, two, small), std::invalid_argument);
}

// ------------------------------------------------------------ RankSelect

TEST(RankSelect, RankAndSelectMatchNaiveOnRandomBits) {
  rng::Rng rng(12345);
  for (const std::size_t n : {1UL, 63UL, 64UL, 65UL, 511UL, 512UL, 513UL,
                              4096UL, 5000UL}) {
    const BitVector bits = random_bits(n, rng);
    const RankSelect rs(bits);
    EXPECT_EQ(rs.size(), n);
    EXPECT_EQ(rs.ones(), bits.count_ones());
    std::size_t running = 0;
    std::vector<std::uint32_t> ones;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(rs.rank1(i), running) << "n=" << n << " i=" << i;
      if (bits.get(i)) {
        ones.push_back(static_cast<std::uint32_t>(i));
        ++running;
      }
    }
    EXPECT_EQ(rs.rank1(n), running);
    for (std::size_t k = 0; k < ones.size(); ++k) {
      EXPECT_EQ(rs.select1(k), ones[k]) << "n=" << n << " k=" << k;
    }
    EXPECT_EQ(rs.one_positions(), ones);
  }
}

TEST(RankSelect, EmptyAndAllOnes) {
  const RankSelect empty(BitVector(0));
  EXPECT_EQ(empty.size(), 0U);
  EXPECT_EQ(empty.ones(), 0U);
  EXPECT_EQ(empty.rank1(0), 0U);

  const RankSelect ones(BitVector(700, true));
  EXPECT_EQ(ones.ones(), 700U);
  for (const std::size_t i : {0UL, 1UL, 333UL, 699UL}) {
    EXPECT_EQ(ones.rank1(i), i);
    EXPECT_EQ(ones.select1(i), i);
  }
  EXPECT_THROW((void)ones.select1(700), std::out_of_range);
}

TEST(RankSelect, SnapshotIsImmutable) {
  BitVector bits(128);
  bits.set(5, true);
  const RankSelect rs(bits);
  bits.set(6, true);  // must not be visible through the index
  EXPECT_EQ(rs.ones(), 1U);
  EXPECT_TRUE(rs.get(5));
  EXPECT_FALSE(rs.get(6));
}

}  // namespace
}  // namespace tmwia::bits
