// Unit tests for the bits module: BitVector, TriVector, Hamming
// helpers. These are the value types every algorithm builds on, so the
// suite covers boundaries (word edges, empty vectors) and the exact
// semantics the paper's proofs rely on (d-tilde ignoring ?, merge
// absorbing ?).
#include <gtest/gtest.h>

#include <string>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/hamming.hpp"
#include "tmwia/bits/trivector.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::bits {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.count_ones(), 0u);
}

TEST(BitVector, ConstructZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, ConstructFilled) {
  BitVector v(130, true);
  EXPECT_EQ(v.count_ones(), 130u);
  // tail invariant: hamming against itself stays 0 even via word ops
  EXPECT_EQ(v.hamming(v), 0u);
}

TEST(BitVector, SetGetFlipAcrossWordBoundary) {
  BitVector v(129);
  for (std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u}) {
    EXPECT_FALSE(v.get(i));
    v.set(i, true);
    EXPECT_TRUE(v.get(i));
    v.flip(i);
    EXPECT_FALSE(v.get(i));
  }
}

TEST(BitVector, FromToStringRoundTrip) {
  const std::string s = "0110100111010001";
  EXPECT_EQ(BitVector::from_string(s).to_string(), s);
}

TEST(BitVector, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVector::from_string("01x"), std::invalid_argument);
}

TEST(BitVector, HammingBasics) {
  const auto a = BitVector::from_string("0011");
  const auto b = BitVector::from_string("0101");
  EXPECT_EQ(a.hamming(b), 2u);
  EXPECT_EQ(a.hamming(a), 0u);
  EXPECT_EQ(dist(a, b), 2u);
}

TEST(BitVector, HammingSizeMismatchThrows) {
  BitVector a(4), b(5);
  EXPECT_THROW((void)a.hamming(b), std::invalid_argument);
}

TEST(BitVector, HammingLargeRandom) {
  rng::Rng r(42);
  BitVector a(1000), b(1000);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const bool x = r.coin();
    const bool y = r.coin();
    a.set(i, x);
    b.set(i, y);
    if (x != y) ++expected;
  }
  EXPECT_EQ(a.hamming(b), expected);
}

TEST(BitVector, HammingOnSubset) {
  const auto a = BitVector::from_string("00110011");
  const auto b = BitVector::from_string("01010101");
  const std::vector<std::uint32_t> coords{0, 1, 2};
  // positions: a=001 b=010 -> differ at 1 and 2
  EXPECT_EQ(a.hamming_on(b, coords), 2u);
}

TEST(BitVector, ProjectAndScatterRoundTrip) {
  const auto v = BitVector::from_string("10110100");
  const std::vector<std::uint32_t> coords{1, 3, 6};
  const auto piece = v.project(coords);
  EXPECT_EQ(piece.to_string(), "010");

  BitVector w(8);
  w.scatter(piece, coords);
  EXPECT_EQ(w.to_string(), "00010000");
}

TEST(BitVector, ScatterSizeMismatchThrows) {
  BitVector w(8);
  const std::vector<std::uint32_t> coords{1, 3};
  EXPECT_THROW(w.scatter(BitVector(3), coords), std::invalid_argument);
}

TEST(BitVector, LexCompareFirstCoordinateMostSignificant) {
  const auto a = BitVector::from_string("0111");
  const auto b = BitVector::from_string("1000");
  EXPECT_LT(a.lex_compare(b), 0);
  EXPECT_GT(b.lex_compare(a), 0);
  EXPECT_EQ(a.lex_compare(a), 0);
}

TEST(BitVector, LexCompareAcrossWords) {
  BitVector a(100), b(100);
  a.set(70, true);
  b.set(71, true);
  // first difference at coord 70: a has 1, b has 0 -> a sorts after b
  EXPECT_GT(a.lex_compare(b), 0);
}

TEST(BitVector, LexComparePrefix) {
  const auto a = BitVector::from_string("01");
  const auto b = BitVector::from_string("010");
  EXPECT_LT(a.lex_compare(b), 0);
}

TEST(BitVector, XorAndOr) {
  const auto a = BitVector::from_string("0011");
  const auto b = BitVector::from_string("0101");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a & b).to_string(), "0001");
  EXPECT_EQ((a | b).to_string(), "0111");
}

TEST(BitVector, OnePositions) {
  const auto v = BitVector::from_string("0100100001");
  const auto pos = v.one_positions();
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[0], 1u);
  EXPECT_EQ(pos[1], 4u);
  EXPECT_EQ(pos[2], 9u);
}

TEST(BitVector, HashDiffersOnContentAndSize) {
  const auto a = BitVector::from_string("0101");
  const auto b = BitVector::from_string("0111");
  BitVector c(4), d(5);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(c.hash(), d.hash());
  EXPECT_EQ(a.hash(), BitVector::from_string("0101").hash());
}

// ---------------------------------------------------------------- TriVector

TEST(TriVector, DefaultAllUnknown) {
  TriVector t(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.get(i), Tri::kUnknown);
    EXPECT_FALSE(t.is_known(i));
  }
  EXPECT_EQ(t.unknown_count(), 5u);
}

TEST(TriVector, SetGetAllValues) {
  TriVector t(3);
  t.set(0, Tri::kZero);
  t.set(1, Tri::kOne);
  t.set(2, Tri::kUnknown);
  EXPECT_EQ(t.get(0), Tri::kZero);
  EXPECT_EQ(t.get(1), Tri::kOne);
  EXPECT_EQ(t.get(2), Tri::kUnknown);
  EXPECT_EQ(t.to_string(), "01?");
}

TEST(TriVector, FromBitsHasNoUnknowns) {
  const auto t = TriVector::from_bits(BitVector::from_string("0101"));
  EXPECT_EQ(t.unknown_count(), 0u);
  EXPECT_EQ(t.to_string(), "0101");
}

TEST(TriVector, FromToStringRoundTrip) {
  const std::string s = "01?10??1";
  EXPECT_EQ(TriVector::from_string(s).to_string(), s);
}

TEST(TriVector, DtildeIgnoresUnknown) {
  const auto a = TriVector::from_string("01?1");
  const auto b = TriVector::from_string("0?01");
  // coordinates with both known: 0 (0 vs 0), 3 (1 vs 1) -> 0 diffs
  EXPECT_EQ(a.dtilde(b), 0u);

  const auto c = TriVector::from_string("11?0");
  // both-known coords vs a: 0 (0 vs 1 differ), 1 (1 vs 1), 3 (1 vs 0 differ)
  EXPECT_EQ(a.dtilde(c), 2u);
}

TEST(TriVector, DtildeAgainstBitVector) {
  const auto a = TriVector::from_string("0?1");
  const auto v = BitVector::from_string("011");
  EXPECT_EQ(a.dtilde(v), 0u);
  const auto w = BitVector::from_string("110");
  EXPECT_EQ(a.dtilde(w), 2u);
}

TEST(TriVector, DtildeOnSubset) {
  const auto a = TriVector::from_string("01?1");
  const auto c = TriVector::from_string("11?0");
  const std::vector<std::uint32_t> coords{0, 1};
  EXPECT_EQ(a.dtilde_on(c, coords), 1u);
}

TEST(TriVector, MergeAgreementsKeptDisagreementsErased) {
  const auto a = TriVector::from_string("0101");
  const auto b = TriVector::from_string("0110");
  const auto m = a.merge(b);
  EXPECT_EQ(m.to_string(), "01??");
}

TEST(TriVector, MergeUnknownIsAbsorbing) {
  // Lemma 5.1 requires that a merged vector never asserts a value any
  // merge ancestor disagreed on, so ? must absorb.
  const auto a = TriVector::from_string("0?1");
  const auto b = TriVector::from_string("011");
  const auto m = a.merge(b);
  EXPECT_EQ(m.to_string(), "0?1");
}

TEST(TriVector, FillUnknown) {
  const auto a = TriVector::from_string("0?1?");
  EXPECT_EQ(a.fill_unknown(false).to_string(), "0010");
  EXPECT_EQ(a.fill_unknown(true).to_string(), "0111");
}

TEST(TriVector, ProjectKeepsValues) {
  const auto a = TriVector::from_string("0?1?01");
  const std::vector<std::uint32_t> coords{1, 2, 5};
  EXPECT_EQ(a.project(coords).to_string(), "?11");
}

TEST(TriVector, LexCompareOrdersZeroOneUnknown) {
  const auto z = TriVector::from_string("0");
  const auto o = TriVector::from_string("1");
  const auto u = TriVector::from_string("?");
  EXPECT_LT(z.lex_compare(o), 0);
  EXPECT_LT(o.lex_compare(u), 0);
  EXPECT_LT(z.lex_compare(u), 0);
}

// ---------------------------------------------------------------- hamming.hpp
// These exercise the deprecated compatibility forwards on purpose; the
// kernel layer they forward to is covered by tests/kernels_test.cpp.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Hamming, DiameterOfSet) {
  std::vector<BitVector> vs{BitVector::from_string("0000"), BitVector::from_string("0011"),
                            BitVector::from_string("1111")};
  EXPECT_EQ(diameter(vs), 4u);
  EXPECT_EQ(diameter(std::span<const BitVector>(vs.data(), 1)), 0u);
}

TEST(Hamming, DiameterOfSubset) {
  std::vector<BitVector> vs{BitVector::from_string("0000"), BitVector::from_string("0011"),
                            BitVector::from_string("1111")};
  const std::vector<std::uint32_t> idx{0, 1};
  EXPECT_EQ(diameter(vs, idx), 2u);
}

TEST(Hamming, ArgminDist) {
  std::vector<BitVector> vs{BitVector::from_string("1111"), BitVector::from_string("0011"),
                            BitVector::from_string("0001")};
  EXPECT_EQ(argmin_dist(vs, BitVector::from_string("0000")), 2u);
}

TEST(Hamming, BallSizeAndMembers) {
  std::vector<BitVector> vs{BitVector::from_string("0000"), BitVector::from_string("0001"),
                            BitVector::from_string("0111")};
  const auto center = TriVector::from_string("000?");
  // dtilde distances: 0, 0, 2
  EXPECT_EQ(ball_size(vs, center, 0), 2u);
  EXPECT_EQ(ball_size(vs, center, 2), 3u);
  const auto members = ball_members(vs, center, 0);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], 0u);
  EXPECT_EQ(members[1], 1u);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace tmwia::bits
