// Remaining coverage gaps: BitSpace publish/billboard plumbing through
// the higher algorithms, accounting coherence of the driver results,
// pure-explore good-object mode, and small API edges.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/core/tmwia.hpp"

namespace tmwia::core {
namespace {

TEST(Plumbing, SmallRadiusPostsNamespacedChannels) {
  const std::size_t n = 128;
  rng::Rng gen(1);
  auto inst = matrix::planted_community(n, 128, {0.5, 1}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;

  std::vector<PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(128);
  std::iota(objects.begin(), objects.end(), 0u);

  (void)small_radius(oracle, &board, players, objects, 0.5, 2, Params::practical(),
                     rng::Rng(2), n);
  // Each (iteration, part) Zero Radius run posts under its own prefix,
  // so nothing collides and the board fills up.
  EXPECT_GT(board.total_posts(), n);
}

TEST(Plumbing, LargeRadiusPublishesGroupOutputs) {
  const std::size_t n = 256;
  rng::Rng gen(3);
  auto inst = matrix::planted_community(n, 512, {0.5, 20}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;

  std::vector<PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(512);
  std::iota(objects.begin(), objects.end(), 0u);

  const auto res = large_radius(oracle, &board, players, objects, 0.5, D,
                                Params::practical(), rng::Rng(4));
  // The per-group Small Radius outputs are published on lr/group/<l>.
  std::size_t groups_with_posts = 0;
  for (std::size_t l = 0; l < res.parts; ++l) {
    if (board.posters("lr/group/" + std::to_string(l)) > 0) ++groups_with_posts;
  }
  EXPECT_EQ(groups_with_posts, res.parts);
}

TEST(Accounting, DriverRoundsMatchOracleDeltas) {
  const std::size_t n = 128;
  rng::Rng gen(5);
  auto inst = matrix::planted_community(n, n, {0.5, 1}, gen);
  billboard::ProbeOracle oracle(inst.matrix);

  const auto before_rounds = oracle.max_invocations();
  EXPECT_EQ(before_rounds, 0u);
  const auto res =
      find_preferences(oracle, nullptr, 0.5, 2, Params::practical(), rng::Rng(6));
  EXPECT_EQ(res.rounds, oracle.max_invocations());
  EXPECT_EQ(res.total_probes, oracle.total_invocations());
  EXPECT_GE(res.total_probes, res.rounds);
}

TEST(Accounting, SequentialPhasesReportDeltasNotTotals) {
  const std::size_t n = 128;
  rng::Rng gen(7);
  auto inst = matrix::planted_community(n, n, {1.0, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);

  const auto r1 = find_preferences(oracle, nullptr, 1.0, 0, Params::practical(), rng::Rng(8));
  const auto r2 = find_preferences(oracle, nullptr, 1.0, 0, Params::practical(), rng::Rng(9));
  // Same algorithm, same sizes: the second run's *delta* accounting
  // must not include the first run's probes.
  EXPECT_LT(r2.rounds, 2 * r1.rounds + 8);
  EXPECT_EQ(r1.total_probes + r2.total_probes, oracle.total_invocations());
}

TEST(GoodObjectEdge, PureExploreStillFindsEverything) {
  rng::Rng gen(10);
  matrix::PreferenceMatrix mat(32, 64);
  for (matrix::PlayerId p = 0; p < 32; ++p) mat.set_value(p, 7, true);
  billboard::ProbeOracle oracle(mat);
  GoodObjectParams params;
  params.explore_prob = 1.0;  // never exploit: everyone searches alone
  const auto res = good_object(oracle, params, rng::Rng(11));
  EXPECT_EQ(res.unsatisfied, 0u);
  // Without sharing, the expected cost per player is ~m/2; the total
  // should be visibly worse than the collaborative default (see E12).
  EXPECT_GT(res.total_probes, 32u * 8u);
}

TEST(ApiEdges, StretchOfOutsidersIsFiniteAndLarge) {
  rng::Rng gen(12);
  auto inst = matrix::planted_community(64, 128, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences(oracle, nullptr, 0.5, 0, Params::practical(), rng::Rng(13));
  // Outsiders have no community; their "stretch" against the outsider
  // set (huge diameter) is small even when errors are large — the
  // guarantee's relativity in action.
  const auto outsiders = inst.outsiders();
  ASSERT_GT(outsiders.size(), 1u);
  const auto diam = inst.matrix.subset_diameter(outsiders);
  EXPECT_GT(diam, 30u);  // random vectors are far apart
  EXPECT_LT(inst.matrix.stretch(res.outputs, outsiders), 3.0);
}

TEST(ApiEdges, UnknownDRunsOnUniformNoiseWithoutCrashing) {
  // No structure at all: the algorithm must still terminate and return
  // full-length outputs (quality is whatever the billboard affords).
  rng::Rng gen(14);
  auto inst = matrix::uniform_random(64, 64, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences_unknown_d(oracle, nullptr, 0.5, Params::practical(), rng::Rng(15));
  ASSERT_EQ(res.outputs.size(), 64u);
  for (const auto& v : res.outputs) EXPECT_EQ(v.size(), 64u);
}

TEST(ApiEdges, AnytimeWithTinyBudgetStopsAfterOnePhase) {
  rng::Rng gen(16);
  auto inst = matrix::planted_community(64, 64, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = anytime(oracle, nullptr, /*round_budget=*/1, Params::practical(),
                           rng::Rng(17));
  EXPECT_EQ(res.phases.size(), 1u);
}

}  // namespace
}  // namespace tmwia::core
