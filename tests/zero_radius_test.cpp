// Integration tests for Algorithm Zero Radius (Fig. 2 / Theorem 3.1):
// correctness for planted identical-preference communities and the
// O(log n / alpha) per-player probe bound.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

std::vector<PlayerId> iota_players(std::size_t n) {
  std::vector<PlayerId> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

std::vector<std::uint32_t> iota_objects(std::size_t m) {
  std::vector<std::uint32_t> o(m);
  std::iota(o.begin(), o.end(), 0u);
  return o;
}

struct ZrCase {
  std::size_t n;
  double alpha;
  std::uint64_t seed;
};

class ZeroRadiusCorrectness : public ::testing::TestWithParam<ZrCase> {};

TEST_P(ZeroRadiusCorrectness, CommunityMembersOutputExactVector) {
  const auto [n, alpha, seed] = GetParam();
  const std::size_t m = n;
  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, m, {alpha, 0}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  const auto outputs =
      zero_radius_bits(oracle, &board, iota_players(n), iota_objects(m), alpha,
                       Params::practical(), rng::Rng(seed ^ 0xf00));

  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(outputs[p], inst.centers[0]) << "player " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZeroRadiusCorrectness,
                         ::testing::Values(ZrCase{64, 1.0, 1}, ZrCase{128, 0.5, 2},
                                           ZrCase{256, 0.5, 3}, ZrCase{256, 0.25, 4},
                                           ZrCase{512, 0.25, 5}, ZrCase{512, 0.125, 6}));

TEST(ZeroRadius, ProbeCostLogarithmicPerPlayer) {
  // Theorem 3.1: O(log n / alpha) probes per player. Verify against the
  // explicit form c * (leaf_threshold + log2(n) * vote_candidates),
  // which is what the recursion costs with our practical constants.
  const std::size_t n = 1024;
  const double alpha = 0.5;
  rng::Rng gen(77);
  auto inst = matrix::planted_community(n, n, {alpha, 0}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto params = Params::practical();
  (void)zero_radius_bits(oracle, nullptr, iota_players(n), iota_objects(n), alpha, params,
                         rng::Rng(78));

  const double log_n = std::log2(static_cast<double>(n));
  const double leaf = static_cast<double>(zero_radius_leaf_threshold(n, alpha, params));
  // leaf probes + per-level Select(<=2/alpha candidates, D=0) probing at
  // most one distinguishing coordinate per eliminated candidate, over
  // log2 n levels; factor 4 headroom.
  const double bound = 4.0 * (leaf + log_n * 2.0 / alpha);
  EXPECT_LT(static_cast<double>(oracle.max_invocations()), bound);
}

TEST(ZeroRadius, MuchCheaperThanSoloForLargeN) {
  const std::size_t n = 2048;
  const double alpha = 0.5;
  rng::Rng gen(99);
  auto inst = matrix::planted_community(n, n, {alpha, 0}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  (void)zero_radius_bits(oracle, nullptr, iota_players(n), iota_objects(n), alpha,
                         Params::practical(), rng::Rng(100));
  // Solo probing costs m = 2048 rounds; the collaborative algorithm
  // should be at least 10x cheaper per player at this size.
  EXPECT_LT(oracle.max_invocations(), n / 10);
}

TEST(ZeroRadius, LeafCaseProbesEverythingAndIsExact) {
  // Tiny instance: below the leaf threshold everyone probes all
  // objects, so every player (typical or not) is exact.
  const std::size_t n = 8;
  rng::Rng gen(5);
  auto inst = matrix::uniform_random(n, n, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto outputs = zero_radius_bits(oracle, nullptr, iota_players(n), iota_objects(n), 0.5,
                                        Params::practical(), rng::Rng(6));
  for (PlayerId p = 0; p < n; ++p) {
    EXPECT_EQ(outputs[p], inst.matrix.row(p));
  }
}

TEST(ZeroRadius, SubsetOfPlayersAndObjects) {
  // The algorithm must work on arbitrary player/object subsets (Small
  // Radius calls it per part).
  const std::size_t n = 300;
  const std::size_t m = 400;
  rng::Rng gen(7);
  auto inst = matrix::planted_community(n, m, {0.6, 0}, gen);

  // Take a subset of objects and the community players plus noise.
  std::vector<std::uint32_t> objects;
  for (std::uint32_t o = 10; o < 200; o += 3) objects.push_back(o);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto players = iota_players(n);
  const auto outputs = zero_radius_bits(oracle, nullptr, players, objects, 0.6,
                                        Params::practical(), rng::Rng(8));

  const auto expected = inst.centers[0].project(objects);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(outputs[p], expected);
  }
}

TEST(ZeroRadius, DeterministicGivenSeed) {
  const std::size_t n = 128;
  rng::Rng gen(123);
  auto inst = matrix::planted_community(n, n, {0.5, 0}, gen);

  billboard::ProbeOracle o1(inst.matrix);
  billboard::ProbeOracle o2(inst.matrix);
  const auto r1 = zero_radius_bits(o1, nullptr, iota_players(n), iota_objects(n), 0.5,
                                   Params::practical(), rng::Rng(9));
  const auto r2 = zero_radius_bits(o2, nullptr, iota_players(n), iota_objects(n), 0.5,
                                   Params::practical(), rng::Rng(9));
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(o1.total_invocations(), o2.total_invocations());
}

TEST(ZeroRadius, PostsAppearOnBillboard) {
  const std::size_t n = 64;
  rng::Rng gen(55);
  auto inst = matrix::planted_community(n, n, {1.0, 0}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  (void)zero_radius_bits(oracle, &board, iota_players(n), iota_objects(n), 1.0,
                         Params::practical(), rng::Rng(56), "t");
  EXPECT_GT(board.total_posts(), 0u);
}

}  // namespace
}  // namespace tmwia::core
