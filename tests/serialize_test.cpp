// Tests for matrix/instance/output serialization: exact round-trips in
// both encodings, malformed-input rejection, format sniffing.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tmwia/io/serialize.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::io {
namespace {

matrix::PreferenceMatrix sample_matrix(std::size_t n, std::size_t m, std::uint64_t seed) {
  rng::Rng rng(seed);
  return matrix::uniform_random(n, m, rng).matrix;
}

TEST(SerializeText, RoundTrip) {
  const auto m = sample_matrix(17, 70, 1);  // odd sizes cross word edges
  std::stringstream ss;
  save_matrix_text(m, ss);
  const auto back = load_matrix_text(ss);
  ASSERT_EQ(back.players(), m.players());
  ASSERT_EQ(back.objects(), m.objects());
  for (matrix::PlayerId p = 0; p < m.players(); ++p) {
    EXPECT_EQ(back.row(p), m.row(p));
  }
}

TEST(SerializeText, RejectsBadHeader) {
  std::stringstream ss("NOT A HEADER\n1 1\n0\n");
  EXPECT_THROW(load_matrix_text(ss), std::runtime_error);
}

TEST(SerializeText, RejectsRowLengthMismatch) {
  std::stringstream ss("TMWIA/1 text\n1 4\n01\n");
  EXPECT_THROW(load_matrix_text(ss), std::runtime_error);
}

TEST(SerializeText, RejectsTruncated) {
  std::stringstream ss("TMWIA/1 text\n3 4\n0101\n");
  EXPECT_THROW(load_matrix_text(ss), std::runtime_error);
}

TEST(SerializeBinary, RoundTrip) {
  const auto m = sample_matrix(9, 129, 2);
  std::stringstream ss;
  save_matrix_binary(m, ss);
  const auto back = load_matrix_binary(ss);
  for (matrix::PlayerId p = 0; p < m.players(); ++p) {
    EXPECT_EQ(back.row(p), m.row(p));
  }
}

TEST(SerializeBinary, RejectsBadMagic) {
  std::stringstream ss("garbage");
  EXPECT_THROW(load_matrix_binary(ss), std::runtime_error);
}

TEST(SerializeInstance, RoundTripWithCommunities) {
  rng::Rng rng(3);
  const auto inst = matrix::planted_communities(40, 64, {{0.3, 1}, {0.3, 2}}, rng);
  std::stringstream ss;
  save_instance(inst, ss);
  const auto back = load_instance(ss);
  EXPECT_EQ(back.communities, inst.communities);
  EXPECT_EQ(back.centers, inst.centers);
  for (matrix::PlayerId p = 0; p < 40; ++p) {
    EXPECT_EQ(back.matrix.row(p), inst.matrix.row(p));
  }
}

TEST(SerializeInstance, NoCommunities) {
  rng::Rng rng(4);
  const auto inst = matrix::uniform_random(5, 8, rng);
  std::stringstream ss;
  save_instance(inst, ss);
  const auto back = load_instance(ss);
  EXPECT_TRUE(back.communities.empty());
}

TEST(SerializeOutputs, RoundTrip) {
  std::vector<bits::BitVector> outs{bits::BitVector::from_string("0101"),
                                    bits::BitVector::from_string("1111")};
  std::stringstream ss;
  save_outputs(outs, ss);
  EXPECT_EQ(load_outputs(ss), outs);
}

TEST(SerializeFile, SniffsTextAndBinary) {
  const auto m = sample_matrix(6, 40, 5);
  const std::string text_path = "/tmp/tmwia_ser_test.txt";
  const std::string bin_path = "/tmp/tmwia_ser_test.bin";
  save_matrix_file(m, text_path, /*binary=*/false);
  save_matrix_file(m, bin_path, /*binary=*/true);
  const auto t = load_matrix_file(text_path);
  const auto b = load_matrix_file(bin_path);
  for (matrix::PlayerId p = 0; p < 6; ++p) {
    EXPECT_EQ(t.row(p), m.row(p));
    EXPECT_EQ(b.row(p), m.row(p));
  }
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(SerializeFile, MissingFileThrows) {
  EXPECT_THROW(load_matrix_file("/tmp/definitely_missing_tmwia_file"), std::runtime_error);
}

}  // namespace
}  // namespace tmwia::io
