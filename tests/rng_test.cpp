// Tests for the rng module: engine statistical sanity, split-stream
// independence and determinism, and the partition primitives the
// algorithms lean on (Lemma 4.1's i.i.d. partition, Zero Radius's half
// split, Large Radius's multi-part player assignment).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "tmwia/rng/partition.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::rng {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsPureAndTagSensitive) {
  Rng root(7);
  Rng c1 = root.split(1);
  Rng c2 = root.split(1);
  Rng c3 = root.split(2);
  EXPECT_EQ(c1.next(), c2.next());  // same tag => same stream
  Rng c4 = root.split(1);
  EXPECT_NE(c4.next(), c3.next());  // different tag => different stream

  // splitting does not advance the parent
  Rng fresh(7);
  EXPECT_EQ(root.next(), fresh.next());
}

TEST(Rng, SplitMultiTag) {
  Rng root(7);
  EXPECT_NE(root.split(1, 2).next(), root.split(2, 1).next());
  EXPECT_NE(root.split(1, 0, 3).next(), root.split(1, 3, 0).next());
}

TEST(Rng, UniformBoundsRespected) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(7), 7u);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformApproximatelyUniform) {
  Rng r(13);
  std::vector<int> counts(8, 0);
  const int N = 80000;
  for (int i = 0; i < N; ++i) ++counts[r.uniform(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, N / 8, 400);  // ~4 sigma
  }
}

TEST(Rng, Uniform01InRange) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 40000; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 40000.0, 0.3, 0.015);
}

TEST(Rng, CoinIsFair) {
  Rng r(23);
  int heads = 0;
  for (int i = 0; i < 40000; ++i) {
    if (r.coin()) ++heads;
  }
  EXPECT_NEAR(heads / 40000.0, 0.5, 0.015);
}

// ----------------------------------------------------------------- partitions

TEST(Partition, RandomPartitionCoversExactly) {
  Rng r(29);
  const auto p = random_partition(100, 7, r);
  EXPECT_EQ(p.count(), 7u);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (const auto& part : p.parts) {
    for (auto id : part) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate " << id;
    }
    total += part.size();
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end()));
  }
  EXPECT_EQ(total, 100u);
}

TEST(Partition, RandomPartitionRoughlyBalanced) {
  Rng r(31);
  const auto p = random_partition(10000, 10, r);
  for (const auto& part : p.parts) {
    EXPECT_NEAR(static_cast<double>(part.size()), 1000.0, 150.0);
  }
}

TEST(Partition, RandomPartitionRejectsZeroParts) {
  Rng r(37);
  EXPECT_THROW(random_partition(10, 0, r), std::invalid_argument);
}

TEST(Partition, SinglePartGetsEverything) {
  Rng r(41);
  const auto p = random_partition(50, 1, r);
  EXPECT_EQ(p.parts[0].size(), 50u);
}

TEST(Partition, HalfSplitSizesAndDisjointness) {
  Rng r(43);
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 101; ++i) ids.push_back(i * 3);
  const auto [a, b] = random_half_split(ids, r);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_EQ(b.size(), 51u);
  std::set<std::uint32_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  for (auto x : sa) EXPECT_EQ(sb.count(x), 0u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(Partition, HalfSplitIsActuallyRandom) {
  std::vector<std::uint32_t> ids(64);
  for (std::uint32_t i = 0; i < 64; ++i) ids[i] = i;
  Rng r1(47), r2(48);
  const auto [a1, b1] = random_half_split(ids, r1);
  const auto [a2, b2] = random_half_split(ids, r2);
  EXPECT_NE(a1, a2);
}

TEST(Partition, AssignToPartsEachItemInExactlyCopies) {
  Rng r(53);
  std::vector<std::uint32_t> ids(40);
  for (std::uint32_t i = 0; i < 40; ++i) ids[i] = i;
  const auto p = assign_to_parts(ids, 8, 3, r);
  std::map<std::uint32_t, int> count;
  for (const auto& part : p.parts) {
    std::set<std::uint32_t> in_part(part.begin(), part.end());
    EXPECT_EQ(in_part.size(), part.size()) << "item twice in one part";
    for (auto id : part) ++count[id];
  }
  for (auto id : ids) EXPECT_EQ(count[id], 3) << "item " << id;
}

TEST(Partition, AssignToPartsClampsCopies) {
  Rng r(59);
  std::vector<std::uint32_t> ids{1, 2, 3};
  const auto p = assign_to_parts(ids, 2, 10, r);  // copies clamped to 2
  std::map<std::uint32_t, int> count;
  for (const auto& part : p.parts) {
    for (auto id : part) ++count[id];
  }
  for (auto id : ids) EXPECT_EQ(count[id], 2);
}

TEST(Sampling, WithoutReplacementDistinctSortedInRange) {
  Rng r(61);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = sample_without_replacement(100, 10, r);
    EXPECT_EQ(s.size(), 10u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    std::set<std::uint32_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 10u);
    for (auto x : s) EXPECT_LT(x, 100u);
  }
}

TEST(Sampling, FullSampleIsIdentity) {
  Rng r(67);
  const auto s = sample_without_replacement(5, 5, r);
  EXPECT_EQ(s, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Sampling, RejectsOversample) {
  Rng r(71);
  EXPECT_THROW(sample_without_replacement(3, 4, r), std::invalid_argument);
}

TEST(Sampling, MarginalsUniform) {
  // Every index should appear with probability k/n.
  Rng r(73);
  std::vector<int> counts(20, 0);
  const int N = 20000;
  for (int i = 0; i < N; ++i) {
    for (auto x : sample_without_replacement(20, 5, r)) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, N / 4, 350);
  }
}

TEST(Shuffle, PermutationPreserved) {
  Rng r(79);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  shuffle(w, r);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

}  // namespace
}  // namespace tmwia::rng
