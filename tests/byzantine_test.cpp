// Tests for Byzantine vote manipulation in Zero Radius: dishonest
// players (the paper's intro: "some eBay users may be dishonest")
// coordinate on a forged vector to cross the popularity threshold.
// Probing-based Select defends honest adopters — a forged candidate is
// eliminated at its first distinguishing coordinate — so correctness
// holds even when the forgery IS popular; the attack only costs extra
// Select probes.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/core/bit_space.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

struct Setup {
  matrix::Instance inst;
  std::vector<PlayerId> players;
  std::vector<std::uint32_t> objects;
};

Setup make(std::size_t n, double alpha, std::uint64_t seed) {
  Setup s;
  rng::Rng gen(seed);
  s.inst = matrix::planted_community(n, n, {alpha, 0}, gen);
  s.players.resize(n);
  std::iota(s.players.begin(), s.players.end(), 0u);
  s.objects.resize(n);
  std::iota(s.objects.begin(), s.objects.end(), 0u);
  return s;
}

std::vector<bits::BitVector> run_with_byzantine(const Setup& s, double alpha,
                                                const std::vector<PlayerId>& liars,
                                                const bits::BitVector& forged,
                                                billboard::ProbeOracle& oracle,
                                                std::uint64_t seed) {
  BitSpace space(oracle, nullptr);
  space.set_byzantine(liars, forged);
  // BitSpace rows are packed BitVectors already.
  return zero_radius(space, s.players, s.objects, alpha, Params::practical(), rng::Rng(seed),
                     s.players.size());
}

TEST(Byzantine, HonestCommunitySurvivesCoordinatedForgery) {
  const std::size_t n = 256;
  const double alpha = 0.5;
  auto s = make(n, alpha, 41);

  // 20% of players (taken from OUTSIDE the community) coordinate on a
  // forged vector: the bitwise complement of the community center — the
  // most distinguishable lie.
  const auto outsiders = s.inst.outsiders();
  std::vector<PlayerId> liars(outsiders.begin(),
                              outsiders.begin() + static_cast<std::ptrdiff_t>(n / 5));
  bits::BitVector forged = s.inst.centers[0] ^ bits::BitVector(n, true);

  billboard::ProbeOracle oracle(s.inst.matrix);
  const auto outputs = run_with_byzantine(s, alpha, liars, forged, oracle, 42);
  for (auto p : s.inst.communities[0]) {
    EXPECT_EQ(outputs[p], s.inst.centers[0]) << "player " << p;
  }
}

TEST(Byzantine, ForgeryCostsExtraSelectProbes) {
  const std::size_t n = 256;
  const double alpha = 0.5;
  auto s = make(n, alpha, 43);

  billboard::ProbeOracle clean_oracle(s.inst.matrix);
  const auto clean = run_with_byzantine(s, alpha, {}, bits::BitVector(n), clean_oracle, 44);

  const auto outsiders = s.inst.outsiders();
  std::vector<PlayerId> liars(outsiders.begin(),
                              outsiders.begin() + static_cast<std::ptrdiff_t>(n / 4));
  bits::BitVector forged = s.inst.centers[0] ^ bits::BitVector(n, true);
  billboard::ProbeOracle attacked_oracle(s.inst.matrix);
  const auto attacked =
      run_with_byzantine(s, alpha, liars, forged, attacked_oracle, 44);

  // Same correctness...
  for (auto p : s.inst.communities[0]) {
    EXPECT_EQ(attacked[p], s.inst.centers[0]);
  }
  // ...but the forged popular candidate forces distinguishing probes.
  EXPECT_GT(attacked_oracle.total_invocations(), clean_oracle.total_invocations());
}

TEST(Byzantine, SubtleForgeryNearTheCenterAlsoRejected) {
  // A smarter lie: the center with a few flips (hard to distinguish —
  // few distinguishing coordinates). Select probes exactly those.
  const std::size_t n = 256;
  const double alpha = 0.5;
  auto s = make(n, alpha, 45);

  const auto outsiders = s.inst.outsiders();
  std::vector<PlayerId> liars(outsiders.begin(),
                              outsiders.begin() + static_cast<std::ptrdiff_t>(n / 4));
  rng::Rng frng(46);
  bits::BitVector forged = matrix::flip_random(s.inst.centers[0], 8, frng);

  billboard::ProbeOracle oracle(s.inst.matrix);
  const auto outputs = run_with_byzantine(s, alpha, liars, forged, oracle, 47);
  for (auto p : s.inst.communities[0]) {
    EXPECT_EQ(outputs[p], s.inst.centers[0]) << "player " << p;
  }
}

TEST(Byzantine, CommunityInsidersLyingOnlyHurtThemselves) {
  // Liars drawn from inside the community: they forfeit their own
  // adopted halves (they still *output* honestly computed values — the
  // lie is in what they publish), and the honest remainder must still
  // clear the vote threshold: alpha=0.5 community, 1/5 of it lies,
  // honest fraction 0.4 still >= threshold fraction alpha/4.
  const std::size_t n = 256;
  const double alpha = 0.5;
  auto s = make(n, alpha, 49);

  const auto& comm = s.inst.communities[0];
  std::vector<PlayerId> liars(comm.begin(),
                              comm.begin() + static_cast<std::ptrdiff_t>(comm.size() / 5));
  bits::BitVector forged = s.inst.centers[0] ^ bits::BitVector(n, true);

  billboard::ProbeOracle oracle(s.inst.matrix);
  const auto outputs = run_with_byzantine(s, alpha, liars, forged, oracle, 50);
  std::size_t honest_exact = 0;
  std::size_t honest_total = 0;
  for (std::size_t i = comm.size() / 5; i < comm.size(); ++i) {
    ++honest_total;
    if (outputs[comm[i]] == s.inst.centers[0]) ++honest_exact;
  }
  EXPECT_EQ(honest_exact, honest_total);
}

}  // namespace
}  // namespace tmwia::core
