// Tests for the distributed per-player Zero Radius (state machines
// under the lockstep RoundScheduler), including the
// simulation-faithfulness theorem of this codebase: from the same
// shared coins, the distributed execution and the centralized engine
// produce BIT-IDENTICAL outputs and identical per-player probe counts.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/zero_radius_strategy.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

struct EqCase {
  std::size_t n;
  double alpha;
  std::uint64_t seed;
};

class DistributedEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(DistributedEquivalence, MatchesCentralizedBitForBit) {
  const auto [n, alpha, seed] = GetParam();
  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, n, {alpha, 0}, gen);

  const rng::Rng shared_coins(seed ^ 0xD15C0);

  // Centralized engine.
  billboard::ProbeOracle central_oracle(inst.matrix);
  std::vector<PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(n);
  std::iota(objects.begin(), objects.end(), 0u);
  const auto central = zero_radius_bits(central_oracle, nullptr, players, objects, alpha,
                                        Params::practical(), shared_coins);

  // Distributed execution.
  billboard::ProbeOracle dist_oracle(inst.matrix);
  const auto dist =
      zero_radius_distributed(dist_oracle, alpha, Params::practical(), shared_coins);

  ASSERT_TRUE(dist.schedule.all_done);
  ASSERT_EQ(dist.outputs.size(), central.size());
  for (PlayerId p = 0; p < n; ++p) {
    EXPECT_EQ(dist.outputs[p], central[p]) << "output mismatch, player " << p;
    EXPECT_EQ(dist_oracle.invocations(p), central_oracle.invocations(p))
        << "probe count mismatch, player " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistributedEquivalence,
                         ::testing::Values(EqCase{64, 1.0, 1}, EqCase{128, 0.5, 2},
                                           EqCase{256, 0.5, 3}, EqCase{256, 0.25, 4},
                                           EqCase{100, 0.5, 5}  // non-power-of-two
                                           ));

TEST(DistributedZeroRadius, CommunityReconstructionCorrect) {
  const std::size_t n = 256;
  rng::Rng gen(11);
  auto inst = matrix::planted_community(n, n, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      zero_radius_distributed(oracle, 0.5, Params::practical(), rng::Rng(12));
  ASSERT_TRUE(res.schedule.all_done);
  for (auto p : inst.communities[0]) {
    EXPECT_EQ(res.outputs[p], inst.centers[0]);
  }
}

TEST(DistributedZeroRadius, OneProbePerRoundInvariant) {
  // The scheduler enforces it structurally; verify via accounting:
  // probes per player <= rounds executed.
  const std::size_t n = 128;
  rng::Rng gen(13);
  auto inst = matrix::planted_community(n, n, {1.0, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      zero_radius_distributed(oracle, 1.0, Params::practical(), rng::Rng(14));
  for (PlayerId p = 0; p < n; ++p) {
    EXPECT_LE(oracle.invocations(p), res.schedule.rounds);
  }
}

TEST(DistributedZeroRadius, WallClockRoundsStayLogarithmicish) {
  // Including the await-idling, the lockstep schedule should still be
  // far below the m rounds of solo probing (the halves work in
  // parallel; awaits cost what the slowest sibling costs).
  const std::size_t n = 1024;
  rng::Rng gen(15);
  auto inst = matrix::planted_community(n, n, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      zero_radius_distributed(oracle, 0.5, Params::practical(), rng::Rng(16));
  ASSERT_TRUE(res.schedule.all_done);
  EXPECT_LT(res.schedule.rounds, n / 4);
}

TEST(DistributedZeroRadius, StrategyRejectsUnknownSelf) {
  std::vector<PlayerId> players{0, 1, 2};
  std::vector<std::uint32_t> objects{0, 1, 2};
  EXPECT_THROW(ZeroRadiusStrategy(7, players, objects, 1.0, Params::practical(),
                                  rng::Rng(1)),
               std::invalid_argument);
}

TEST(DistributedZeroRadius, TinyInstanceIsAllLeaf) {
  // Below the leaf threshold there is no recursion: every player just
  // probes everything and the schedule ends after m rounds.
  const std::size_t n = 8;
  rng::Rng gen(17);
  auto inst = matrix::uniform_random(n, n, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = zero_radius_distributed(oracle, 1.0, Params::practical(), rng::Rng(18));
  ASSERT_TRUE(res.schedule.all_done);
  EXPECT_EQ(res.schedule.rounds, n);  // exactly the m leaf probes
  for (PlayerId p = 0; p < n; ++p) {
    EXPECT_EQ(res.outputs[p], inst.matrix.row(p));
  }
}

}  // namespace
}  // namespace tmwia::core
