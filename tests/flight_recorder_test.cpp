// Tests for obs::FlightRecorder: JSONL wire shape, staged per-player
// drain order (the --threads determinism mechanism), stage-cap overflow
// accounting, binary/JSONL round-trip equivalence, nested run scopes,
// and an end-to-end faulted run whose event stream reconciles with the
// run_end totals and the RunReport timeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/billboard/protocol_auditor.hpp"
#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/flight_recorder.hpp"

// tmwia-lint: allow-file(sink-registration) recorder unit tests construct their own sinks.

namespace {

using namespace tmwia;
using obs::RecorderEvent;

std::vector<RecorderEvent> parse(const std::string& text) {
  std::istringstream in(text);
  return obs::read_recorder_log(in).events;
}

std::vector<RecorderEvent> events_of_kind(const std::vector<RecorderEvent>& events,
                                          RecorderEvent::Kind kind) {
  std::vector<RecorderEvent> out;
  for (const auto& ev : events) {
    if (ev.kind == kind) out.push_back(ev);
  }
  return out;
}

TEST(FlightRecorder, JsonlWireShape) {
  std::ostringstream out;
  obs::FlightRecorder rec(out);
  rec.run_begin("fp:zero", 0.5, 2, 4);
  rec.probe(1, 3, true, 7);
  rec.note("zr.adopt", 2, 1);
  rec.run_end("fp:zero", 5, 9);
  rec.flush();
  EXPECT_EQ(out.str(),
            "{\"t\":0,\"ev\":\"run_begin\",\"a\":2,\"b\":4,\"x\":0.5,\"label\":\"fp:zero\"}\n"
            "{\"t\":1,\"ev\":\"probe\",\"p\":1,\"o\":3,\"a\":1,\"b\":7}\n"
            "{\"t\":2,\"ev\":\"note\",\"a\":2,\"b\":1,\"label\":\"zr.adopt\"}\n"
            "{\"t\":3,\"ev\":\"run_end\",\"a\":5,\"b\":9,\"label\":\"fp:zero\"}\n");
  EXPECT_EQ(rec.events_written(), 4u);
  EXPECT_EQ(rec.events_dropped(), 0u);
}

TEST(FlightRecorder, KindNamesRoundTrip) {
  for (int k = 1; k <= 18; ++k) {
    const auto kind = static_cast<RecorderEvent::Kind>(k);
    const std::string name = obs::to_string(kind);
    ASSERT_NE(name, "unknown") << k;
    const auto back = obs::kind_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(obs::kind_from_string("no_such_event").has_value());
  EXPECT_STREQ(obs::to_string(static_cast<RecorderEvent::Kind>(99)), "unknown");
}

/// Staged events drain in ascending player order at the next serial
/// emission, regardless of staging order — this is the property that
/// makes the stream thread-count invariant.
TEST(FlightRecorder, StagedEventsDrainInPlayerOrder) {
  std::ostringstream out;
  obs::FlightRecorder rec(out);
  rec.run_begin("run", 0.5, 3, 8);
  rec.probe(2, 0, false, 0);
  rec.probe(0, 1, true, 0);
  rec.probe(1, 2, true, 0);
  rec.probe(0, 3, false, 1);
  rec.note("mark", 0, 0);
  rec.run_end("run", 0, 4);

  const auto events = parse(out.str());
  const auto probes = events_of_kind(events, RecorderEvent::Kind::kProbe);
  ASSERT_EQ(probes.size(), 4u);
  EXPECT_EQ(probes[0].player, 0u);
  EXPECT_EQ(probes[0].object, 1u);
  EXPECT_EQ(probes[1].player, 0u);
  EXPECT_EQ(probes[1].object, 3u);
  EXPECT_EQ(probes[2].player, 1u);
  EXPECT_EQ(probes[3].player, 2u);
  // All probes drained before the note that triggered the drain.
  EXPECT_EQ(events[5].kind, RecorderEvent::Kind::kNote);
}

/// Concurrent owner-write staging (thread p writes only player p's
/// stage) drains to the same deterministic stream.
TEST(FlightRecorder, ConcurrentStagingIsDeterministic) {
  auto run_once = [] {
    std::ostringstream out;
    obs::FlightRecorder rec(out);
    rec.run_begin("run", 0.5, 4, 16);
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (std::uint32_t p = 0; p < 4; ++p) {
      threads.emplace_back([&rec, p] {
        for (std::uint32_t i = 0; i < 8; ++i) {
          rec.probe(p, i, (i % 2) != 0, i);
        }
      });
    }
    for (auto& t : threads) t.join();
    rec.run_end("run", 0, 32);
    return out.str();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  const auto probes = events_of_kind(parse(a), RecorderEvent::Kind::kProbe);
  ASSERT_EQ(probes.size(), 32u);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(probes[i].player, i / 8) << i;
    EXPECT_EQ(probes[i].object, i % 8) << i;
  }
}

/// Beyond the per-player stage cap, events are dropped but the drop is
/// surfaced as an explicit overflow record — a truncated log says so.
TEST(FlightRecorder, StageCapOverflowIsExplicit) {
  std::ostringstream out;
  obs::FlightRecorder rec(out, obs::RecordFormat::kJsonl, /*stage_cap=*/2);
  rec.run_begin("run", 0.5, 1, 8);
  for (std::uint32_t i = 0; i < 5; ++i) rec.probe(0, i, false, i);
  rec.run_end("run", 0, 5);

  const auto events = parse(out.str());
  EXPECT_EQ(events_of_kind(events, RecorderEvent::Kind::kProbe).size(), 2u);
  const auto overflows = events_of_kind(events, RecorderEvent::Kind::kOverflow);
  ASSERT_EQ(overflows.size(), 1u);
  EXPECT_TRUE(overflows[0].has(RecorderEvent::kHasPlayer));
  EXPECT_EQ(overflows[0].player, 0u);
  EXPECT_EQ(overflows[0].a, 3u);
  EXPECT_EQ(rec.events_dropped(), 3u);
}

/// Probe traffic before the first run_begin has no stage to land in;
/// it is counted and reported as a playerless overflow at flush().
TEST(FlightRecorder, PreRunBeginEventsSurfaceAtFlush) {
  std::ostringstream out;
  obs::FlightRecorder rec(out);
  rec.probe(3, 1, true, 0);
  rec.flush();
  const auto events = parse(out.str());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RecorderEvent::Kind::kOverflow);
  EXPECT_FALSE(events[0].has(RecorderEvent::kHasPlayer));
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(rec.events_dropped(), 1u);
}

/// Nested run scopes (unknown_d driving find_preferences, anytime
/// driving unknown_d) emit phase_begin/phase_end markers; only the
/// outermost pair is run_begin/run_end.
TEST(FlightRecorder, NestedScopesEmitPhaseMarkers) {
  std::ostringstream out;
  obs::FlightRecorder rec(out);
  rec.run_begin("unknown_d", 0.5, 4, 8);
  rec.run_begin("fp:small", 0.5, 4, 8, /*d=*/3);
  rec.run_end("fp:small", 2, 10);
  rec.run_end("unknown_d", 2, 10);
  rec.flush();

  const auto events = parse(out.str());
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, RecorderEvent::Kind::kRunBegin);
  EXPECT_EQ(events[1].kind, RecorderEvent::Kind::kPhaseBegin);
  EXPECT_EQ(events[1].label, "fp:small");
  EXPECT_EQ(events[1].a, 3u);  // the guessed D rides in `a`
  EXPECT_EQ(events[2].kind, RecorderEvent::Kind::kPhaseEnd);
  EXPECT_EQ(events[3].kind, RecorderEvent::Kind::kRunEnd);
}

/// phase_summary carries discrepancy only when an evaluator is set.
TEST(FlightRecorder, PhaseSummaryUsesEvaluator) {
  std::ostringstream out;
  obs::FlightRecorder rec(out);
  rec.run_begin("run", 0.5, 2, 4);
  std::vector<bits::BitVector> outputs(2, bits::BitVector(4));
  const auto bare = rec.phase_summary("p0", outputs, 3, 17);
  EXPECT_EQ(bare.max_disc, -1.0);
  rec.set_output_evaluator([](const std::vector<bits::BitVector>&) {
    obs::FlightRecorder::PhaseEval eval;
    eval.max_disc = 4.0;
    eval.mean_disc = 1.5;
    return eval;
  });
  const auto eval = rec.phase_summary("p1", outputs, 5, 20);
  EXPECT_EQ(eval.max_disc, 4.0);
  rec.run_end("run", 5, 20);

  const auto summaries = events_of_kind(parse(out.str()), RecorderEvent::Kind::kPhaseSummary);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_FALSE(summaries[0].has(RecorderEvent::kHasX));
  EXPECT_EQ(summaries[0].player, 2u);  // outputs carried in `p`
  EXPECT_EQ(summaries[0].a, 3u);
  EXPECT_EQ(summaries[0].b, 17u);
  EXPECT_TRUE(summaries[1].has(RecorderEvent::kHasX));
  EXPECT_EQ(summaries[1].x, 4.0);
  EXPECT_EQ(summaries[1].y, 1.5);
}

/// The binary framing carries exactly the same records as JSONL: write
/// one scripted sequence in both formats and compare parsed events.
TEST(FlightRecorder, BinaryRoundTripMatchesJsonl) {
  auto script = [](obs::FlightRecorder& rec) {
    rec.run_begin("scheduler", 0.25, 3, 9);
    rec.round_begin(0);
    rec.probe(1, 4, true, 0);
    rec.probe(2, 5, false, 0);
    rec.vector_post(0, "zr/vote", 0xDEADBEEFu, 9);
    rec.fault(RecorderEvent::Kind::kPostDelayed, 0, 1, /*a=*/3);
    rec.post(0, 1, 4);
    rec.round_end(0, 3, 1);
    rec.phase_summary("round0", {}, 1, 2);
    rec.run_end("scheduler", 1, 2);
    rec.flush();
  };

  std::ostringstream jout;
  {
    obs::FlightRecorder rec(jout, obs::RecordFormat::kJsonl);
    script(rec);
  }
  std::ostringstream bout;
  {
    obs::FlightRecorder rec(bout, obs::RecordFormat::kBinary);
    script(rec);
  }

  std::istringstream jin(jout.str());
  std::istringstream bin(bout.str());
  const auto jlog = obs::read_recorder_log(jin);
  const auto blog = obs::read_recorder_log(bin);
  EXPECT_EQ(jlog.format, obs::RecordFormat::kJsonl);
  EXPECT_EQ(blog.format, obs::RecordFormat::kBinary);
  ASSERT_EQ(jlog.events.size(), blog.events.size());
  for (std::size_t i = 0; i < jlog.events.size(); ++i) {
    const auto& a = jlog.events[i];
    const auto& b = blog.events[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.mask, b.mask) << i;
    EXPECT_EQ(a.t, b.t) << i;
    EXPECT_EQ(a.round, b.round) << i;
    EXPECT_EQ(a.player, b.player) << i;
    EXPECT_EQ(a.object, b.object) << i;
    EXPECT_EQ(a.a, b.a) << i;
    EXPECT_EQ(a.b, b.b) << i;
    EXPECT_EQ(a.x, b.x) << i;
    EXPECT_EQ(a.y, b.y) << i;
    EXPECT_EQ(a.label, b.label) << i;
  }
}

TEST(FlightRecorder, ReaderRejectsMalformedInput) {
  std::istringstream bad_key("{\"t\":0,\"ev\":\"note\",\"zz\":1}\n");
  EXPECT_THROW(obs::read_recorder_log(bad_key), std::runtime_error);
  std::istringstream bad_kind("{\"t\":0,\"ev\":\"no_such\"}\n");
  EXPECT_THROW(obs::read_recorder_log(bad_kind), std::runtime_error);
  std::istringstream truncated(std::string("TMWIAFR1") + "\x08");
  EXPECT_THROW(obs::read_recorder_log(truncated), std::runtime_error);
}

/// End to end: a faulted unknown-D run records a stream whose per-player
/// charged attempts (probe + probe_failed events) reconcile exactly with
/// the run_end totals, and which is byte-identical run to run. The same
/// reconciliation is what `tmwia_cli replay` checks on real logs.
TEST(FlightRecorder, FaultedRunStreamReconcilesWithTotals) {
  rng::Rng gen(11);
  const auto inst = matrix::planted_community(48, 48, {0.5, 1}, gen);
  const auto plan = faults::FaultPlan::parse("seed=3,probe=0.05,retry=3");

  core::RunReport report;
  auto run_once = [&](core::RunReport* out_report) {
    std::ostringstream out;
    obs::FlightRecorder rec(out);
    obs::set_recorder(&rec);
    billboard::ProbeOracle oracle(inst.matrix);
    faults::FaultInjector injector(plan, inst.matrix.players());
    oracle.set_fault_injector(&injector);
    auto res = core::find_preferences_unknown_d(oracle, nullptr, 0.5,
                                                core::Params::practical(), rng::Rng(5));
    obs::set_recorder(nullptr);
    rec.flush();
    EXPECT_EQ(rec.events_dropped(), 0u);
    if (out_report != nullptr) *out_report = std::move(res);
    return out.str();
  };

  const auto text1 = run_once(&report);
  const auto text2 = run_once(nullptr);
  EXPECT_EQ(text1, text2);

  const auto events = parse(text1);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, RecorderEvent::Kind::kRunBegin);
  EXPECT_EQ(events.front().label, "unknown_d");
  // Exactly one outermost scope, closed by the last event.
  ASSERT_EQ(events_of_kind(events, RecorderEvent::Kind::kRunEnd).size(), 1u);
  EXPECT_EQ(events.back().kind, RecorderEvent::Kind::kRunEnd);
  // Logical clock is gapless from 0.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t, i);
  }

  // Charged attempts in the stream == run_end's probe total ==
  // the RunReport's own accounting.
  std::uint64_t charged = 0;
  for (const auto& ev : events) {
    if (ev.kind == RecorderEvent::Kind::kProbe ||
        ev.kind == RecorderEvent::Kind::kProbeFailed) {
      ++charged;
    }
  }
  const auto& run_end = events.back();
  EXPECT_EQ(charged, run_end.b);
  EXPECT_EQ(report.total_probes, run_end.b);
  EXPECT_EQ(report.rounds, run_end.a);

  // Every timeline checkpoint has its phase_summary record in the
  // stream, in order (the stream also carries the nested per-guess
  // fp:* summaries, so the timeline is a subsequence).
  const auto summaries = events_of_kind(events, RecorderEvent::Kind::kPhaseSummary);
  ASSERT_GE(summaries.size(), report.timeline.size());
  std::size_t si = 0;
  for (const auto& cp : report.timeline) {
    while (si < summaries.size() &&
           (summaries[si].label != cp.label || summaries[si].a != cp.rounds ||
            summaries[si].b != cp.total_probes)) {
      ++si;
    }
    ASSERT_LT(si, summaries.size()) << "no phase_summary for checkpoint " << cp.label;
    ++si;
  }
  // And the report renders them into JSON.
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"algo\":\"unknown_d\""), std::string::npos);
  EXPECT_NE(json.find("\"timeline\":["), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"select\""), std::string::npos);
}

/// A faulted lockstep (RoundScheduler) run records round markers,
/// probes, posts and fault transitions that replay cleanly through a
/// fresh ProtocolAuditor — the same reconstruction `tmwia_cli replay`
/// performs, here with the A1-A3 round checks active.
TEST(FlightRecorder, SchedulerLogReplaysThroughAuditor) {
  class Sweep final : public billboard::PlayerStrategy {
   public:
    explicit Sweep(std::size_t m) : m_(m) {}
    std::optional<matrix::ObjectId> next_probe(const billboard::RoundView&) override {
      if (next_ >= m_) return std::nullopt;
      return static_cast<matrix::ObjectId>(next_);
    }
    void on_result(matrix::ObjectId, bool) override { ++next_; }
    [[nodiscard]] bool done() const override { return next_ >= m_; }

   private:
    std::size_t m_;
    std::size_t next_ = 0;
  };

  rng::Rng gen(31);
  const auto inst = matrix::planted_community(6, 12, {0.5, 1}, gen);
  auto plan = faults::FaultPlan::parse("seed=2,probe=0.1,retry=3");
  plan.explicit_crashes = {{1, {2, 5}}};  // player 1 down for rounds [2, 5)

  std::ostringstream out;
  obs::FlightRecorder rec(out);
  obs::set_recorder(&rec);
  billboard::ProbeOracle oracle(inst.matrix);
  faults::FaultInjector injector(plan, inst.matrix.players());
  oracle.set_fault_injector(&injector);
  billboard::RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  for (std::size_t p = 0; p < inst.matrix.players(); ++p) {
    strategies.push_back(std::make_unique<Sweep>(inst.matrix.objects()));
  }
  const auto res = sched.run(strategies, /*max_rounds=*/128);
  obs::set_recorder(nullptr);
  rec.flush();
  EXPECT_TRUE(res.all_done);

  const auto events = parse(out.str());
  ASSERT_GE(events.size(), 2u);
  ASSERT_EQ(events.front().kind, RecorderEvent::Kind::kRunBegin);
  EXPECT_EQ(events.front().label, "scheduler");
  ASSERT_EQ(events.back().kind, RecorderEvent::Kind::kRunEnd);
  // The crash window shows up as explicit transition events.
  const auto crashes = events_of_kind(events, RecorderEvent::Kind::kCrash);
  const auto recovers = events_of_kind(events, RecorderEvent::Kind::kRecover);
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0].player, 1u);
  EXPECT_EQ(crashes[0].round, 2u);
  ASSERT_EQ(recovers.size(), 1u);
  EXPECT_EQ(recovers[0].round, 5u);

  // Replay: re-drive billboard state and the auditor from events only.
  billboard::ProtocolAuditor auditor(events.front().a, events.front().b);
  std::vector<bits::BitVector> posted(events.front().a,
                                      bits::BitVector(events.front().b));
  bool in_round = false;
  for (std::size_t i = 1; i + 1 < events.size(); ++i) {
    const auto& ev = events[i];
    switch (ev.kind) {
      case RecorderEvent::Kind::kRoundBegin:
        auditor.begin_round(ev.round);
        in_round = true;
        break;
      case RecorderEvent::Kind::kRoundEnd:
        if (in_round) auditor.end_round();
        in_round = false;
        break;
      case RecorderEvent::Kind::kProbe:
        auditor.on_probe_attempt(ev.player);
        auditor.on_probe(ev.player, ev.object);
        break;
      case RecorderEvent::Kind::kProbeFailed:
        auditor.on_probe_attempt(ev.player);
        break;
      case RecorderEvent::Kind::kPost:
        auditor.on_post(ev.player, ev.object);
        posted[ev.player].set(ev.object, true);
        break;
      default:
        break;
    }
  }
  auditor.verify_totals(events.back().b, events.back().a);
  const auto audit = auditor.report();
  EXPECT_TRUE(audit.clean()) << audit.to_json();
  EXPECT_GT(audit.rounds_audited, 0u);
  // Every player eventually posted its full sweep: the billboard state
  // reconstructed from the log matches the run's final posted sets.
  for (std::size_t p = 0; p < posted.size(); ++p) {
    EXPECT_EQ(posted[p].count_ones(), inst.matrix.objects()) << p;
  }
}

}  // namespace
