// Tests for the billboard module: probe accounting semantics (the cost
// model of Section 1.1) and channel/vote aggregation.
#include <gtest/gtest.h>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::billboard {
namespace {

matrix::PreferenceMatrix small_matrix() {
  matrix::PreferenceMatrix m(3, 4);
  m.row(0) = bits::BitVector::from_string("0101");
  m.row(1) = bits::BitVector::from_string("0011");
  m.row(2) = bits::BitVector::from_string("1111");
  return m;
}

TEST(ProbeOracle, ProbeReturnsTruth) {
  const auto m = small_matrix();
  ProbeOracle o(m);
  EXPECT_FALSE(o.probe(0, 0));
  EXPECT_TRUE(o.probe(0, 1));
  EXPECT_TRUE(o.probe(2, 3));
}

TEST(ProbeOracle, InvocationsCountEveryCall) {
  const auto m = small_matrix();
  ProbeOracle o(m);
  o.probe(0, 1);
  o.probe(0, 1);
  o.probe(0, 2);
  EXPECT_EQ(o.invocations(0), 3u);
  EXPECT_EQ(o.charged(0), 2u);  // (0,1) charged once
  EXPECT_EQ(o.invocations(1), 0u);
}

TEST(ProbeOracle, TotalsAndMax) {
  const auto m = small_matrix();
  ProbeOracle o(m);
  o.probe(0, 0);
  o.probe(0, 1);
  o.probe(1, 0);
  EXPECT_EQ(o.total_invocations(), 3u);
  EXPECT_EQ(o.total_charged(), 3u);
  EXPECT_EQ(o.max_invocations(), 2u);
}

TEST(ProbeOracle, RoundsSinceSnapshot) {
  const auto m = small_matrix();
  ProbeOracle o(m);
  o.probe(0, 0);
  const auto snap = o.snapshot();
  o.probe(1, 0);
  o.probe(1, 1);
  o.probe(2, 0);
  EXPECT_EQ(o.rounds_since(snap), 2u);  // player 1 probed twice
}

TEST(ProbeOracle, ProbedRecordIsPublic) {
  const auto m = small_matrix();
  ProbeOracle o(m);
  EXPECT_FALSE(o.is_probed(1, 2));
  EXPECT_THROW(o.probed_value(1, 2), std::logic_error);
  o.probe(1, 2);
  EXPECT_TRUE(o.is_probed(1, 2));
  EXPECT_TRUE(o.probed_value(1, 2));
}

TEST(ProbeOracle, OutOfRangeThrows) {
  const auto m = small_matrix();
  ProbeOracle o(m);
  EXPECT_THROW(o.probe(3, 0), std::out_of_range);
  EXPECT_THROW(o.probe(0, 4), std::out_of_range);
}

TEST(ProbeOracle, ConcurrentProbesByDistinctPlayers) {
  rng::Rng rng(1);
  const auto inst = matrix::uniform_random(64, 256, rng);
  ProbeOracle o(inst.matrix);
  engine::parallel_for(0, 64, [&](std::size_t p) {
    for (std::uint32_t j = 0; j < 256; ++j) {
      (void)o.probe(static_cast<matrix::PlayerId>(p), j);
    }
  });
  EXPECT_EQ(o.total_invocations(), 64u * 256u);
  EXPECT_EQ(o.max_invocations(), 256u);
}

// ------------------------------------------------------------------ Billboard

TEST(Billboard, PostAndPopular) {
  Billboard b;
  const auto v1 = bits::BitVector::from_string("0101");
  const auto v2 = bits::BitVector::from_string("1111");
  b.post("ch", 0, v1);
  b.post("ch", 1, v1);
  b.post("ch", 2, v2);

  const auto pop2 = b.popular("ch", 2);
  ASSERT_EQ(pop2.size(), 1u);
  EXPECT_EQ(pop2[0].vec, v1);
  EXPECT_EQ(pop2[0].votes, 2u);

  const auto pop1 = b.popular("ch", 1);
  EXPECT_EQ(pop1.size(), 2u);
  // lexicographic order: 0101 < 1111
  EXPECT_EQ(pop1[0].vec, v1);
}

TEST(Billboard, RepostOverwrites) {
  Billboard b;
  b.post("ch", 0, bits::BitVector::from_string("0000"));
  b.post("ch", 0, bits::BitVector::from_string("1111"));
  const auto pop = b.popular("ch", 1);
  ASSERT_EQ(pop.size(), 1u);
  EXPECT_EQ(pop[0].vec.to_string(), "1111");
  EXPECT_EQ(b.posters("ch"), 1u);
}

TEST(Billboard, MissingChannelEmpty) {
  Billboard b;
  EXPECT_TRUE(b.popular("nope", 1).empty());
  EXPECT_EQ(b.posters("nope"), 0u);
}

TEST(Billboard, ClearRemovesChannel) {
  Billboard b;
  b.post("ch", 0, bits::BitVector(4));
  b.clear("ch");
  EXPECT_EQ(b.posters("ch"), 0u);
  EXPECT_EQ(b.total_posts(), 0u);
}

TEST(Billboard, ChannelsIndependent) {
  Billboard b;
  b.post("a", 0, bits::BitVector(4));
  b.post("b", 0, bits::BitVector(8));
  EXPECT_EQ(b.posters("a"), 1u);
  EXPECT_EQ(b.posters("b"), 1u);
  EXPECT_EQ(b.total_posts(), 2u);
}

TEST(Tally, GroupsByEqualityAndThreshold) {
  std::vector<bits::BitVector> posts{
      bits::BitVector::from_string("01"), bits::BitVector::from_string("01"),
      bits::BitVector::from_string("10"), bits::BitVector::from_string("11"),
      bits::BitVector::from_string("01")};
  const auto t = tally(posts, 2);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].vec.to_string(), "01");
  EXPECT_EQ(t[0].votes, 3u);

  const auto all = tally(posts, 1);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].vec.to_string(), "01");  // lexicographic order
  EXPECT_EQ(all[1].vec.to_string(), "10");
  EXPECT_EQ(all[2].vec.to_string(), "11");
}

TEST(Tally, EmptyPosts) { EXPECT_TRUE(tally({}, 1).empty()); }

TEST(Billboard, ConcurrentPostsSafe) {
  Billboard b;
  const auto v = bits::BitVector::from_string("0101");
  engine::parallel_for(0, 128, [&](std::size_t p) {
    b.post("ch", static_cast<matrix::PlayerId>(p), v);
  });
  EXPECT_EQ(b.posters("ch"), 128u);
  const auto pop = b.popular("ch", 128);
  ASSERT_EQ(pop.size(), 1u);
  EXPECT_EQ(pop[0].votes, 128u);
}

}  // namespace
}  // namespace tmwia::billboard
