// Tests for the good-object algorithm (the [4]-style explore/exploit
// comparator): termination, the O(m + n log n) total-probe shape when a
// commonly liked object exists, and graceful behaviour when none does.
#include <gtest/gtest.h>

#include <cmath>

#include "tmwia/core/good_object.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

/// A matrix where column `shared` is all ones and the rest is sparse
/// random likes (density `density`).
matrix::PreferenceMatrix shared_good_column(std::size_t n, std::size_t m, ObjectId shared,
                                            double density, rng::Rng& rng) {
  matrix::PreferenceMatrix mat(n, m);
  for (PlayerId p = 0; p < n; ++p) {
    for (ObjectId o = 0; o < m; ++o) {
      if (o == shared || rng.bernoulli(density)) mat.set_value(p, o, true);
    }
  }
  return mat;
}

TEST(GoodObject, EveryoneFindsSomethingWithSharedColumn) {
  rng::Rng rng(1);
  const auto mat = shared_good_column(128, 256, 77, 0.0, rng);
  billboard::ProbeOracle oracle(mat);
  const auto res = good_object(oracle, {}, rng::Rng(2));
  EXPECT_EQ(res.unsatisfied, 0u);
  for (PlayerId p = 0; p < 128; ++p) {
    ASSERT_TRUE(res.found[p].has_value());
    EXPECT_TRUE(mat.value(p, *res.found[p]));
  }
}

TEST(GoodObject, TotalProbesNearMPlusNLogN) {
  // [4]: O(m + n log |P|) probes overall. With only the shared column
  // good, exploration costs ~m total before the first hit; exploitation
  // then spreads it in ~log n rounds.
  const std::size_t n = 256;
  const std::size_t m = 512;
  rng::Rng rng(3);
  const auto mat = shared_good_column(n, m, 13, 0.0, rng);
  billboard::ProbeOracle oracle(mat);
  const auto res = good_object(oracle, {}, rng::Rng(4));
  EXPECT_EQ(res.unsatisfied, 0u);
  const double budget =
      8.0 * (static_cast<double>(m) +
             static_cast<double>(n) * std::log2(static_cast<double>(n)));
  EXPECT_LT(static_cast<double>(res.total_probes), budget);
  // Far cheaper than everyone probing everything.
  EXPECT_LT(res.total_probes, static_cast<std::uint64_t>(n) * m / 4);
}

TEST(GoodObject, DenseLikesAreFoundAlmostImmediately) {
  rng::Rng rng(5);
  auto inst = matrix::uniform_random(64, 128, rng);  // density ~1/2
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = good_object(oracle, {}, rng::Rng(6));
  EXPECT_EQ(res.unsatisfied, 0u);
  EXPECT_LT(res.rounds, 40u);  // geometric with p ~ 1/2 per probe
}

TEST(GoodObject, PlayerWhoLikesNothingExhaustsAndStops) {
  matrix::PreferenceMatrix mat(4, 16);
  // Player 0 likes nothing; others like everything.
  for (PlayerId p = 1; p < 4; ++p) {
    for (ObjectId o = 0; o < 16; ++o) mat.set_value(p, o, true);
  }
  billboard::ProbeOracle oracle(mat);
  const auto res = good_object(oracle, {}, rng::Rng(7));
  EXPECT_FALSE(res.found[0].has_value());
  for (PlayerId p = 1; p < 4; ++p) EXPECT_TRUE(res.found[p].has_value());
  EXPECT_EQ(res.unsatisfied, 0u);  // exhausted players are resolved, not stuck
  // Player 0 probed every object exactly once in exploration.
  EXPECT_GE(oracle.charged(0), 16u);
}

TEST(GoodObject, RespectsRoundCap) {
  matrix::PreferenceMatrix mat(8, 64);  // nobody likes anything
  billboard::ProbeOracle oracle(mat);
  GoodObjectParams params;
  params.max_rounds = 5;
  const auto res = good_object(oracle, params, rng::Rng(8));
  EXPECT_LE(res.rounds, 5u);
  EXPECT_EQ(res.unsatisfied, 8u);
}

TEST(GoodObject, PureExploitNeverStarvesBeforeFirstPost) {
  // explore_prob = 0 would deadlock without the "explore while no
  // recommendations exist" rule.
  rng::Rng rng(9);
  const auto mat = shared_good_column(32, 64, 5, 0.0, rng);
  billboard::ProbeOracle oracle(mat);
  GoodObjectParams params;
  params.explore_prob = 0.0;
  const auto res = good_object(oracle, params, rng::Rng(10));
  EXPECT_EQ(res.unsatisfied, 0u);
}

TEST(GoodObject, DeterministicGivenSeed) {
  rng::Rng rng(11);
  const auto mat = shared_good_column(64, 64, 9, 0.05, rng);
  billboard::ProbeOracle o1(mat), o2(mat);
  const auto r1 = good_object(o1, {}, rng::Rng(12));
  const auto r2 = good_object(o2, {}, rng::Rng(12));
  EXPECT_EQ(r1.found, r2.found);
  EXPECT_EQ(r1.total_probes, r2.total_probes);
}

}  // namespace
}  // namespace tmwia::core
