// Tests for Algorithm Coalesce (Fig. 6 / Theorem 5.3): output size at
// most ~1/alpha, a unique representative close to every member of a
// planted cluster, bounded ?-entries, determinism, and probe-freeness
// (trivially: the API takes no oracle).
#include <gtest/gtest.h>

#include <vector>

#include "tmwia/bits/hamming.hpp"
#include "tmwia/core/coalesce.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {
namespace {

using bits::BitVector;
using bits::TriVector;

TEST(Coalesce, EmptyInput) {
  const auto res = coalesce({}, 2, 1);
  EXPECT_TRUE(res.candidates.empty());
}

TEST(Coalesce, SingleClusterCollapsesToOneCandidate) {
  rng::Rng rng(1);
  const auto center = matrix::random_vector(128, rng);
  std::vector<BitVector> vs;
  for (int i = 0; i < 20; ++i) vs.push_back(matrix::flip_random(center, 2, rng));

  const auto res = coalesce(vs, 4, 10);
  ASSERT_EQ(res.candidates.size(), 1u);
  EXPECT_LE(res.candidates[0].dtilde(center), 8u);
}

TEST(Coalesce, UnderPopulatedInputYieldsNothing) {
  rng::Rng rng(2);
  std::vector<BitVector> vs;
  for (int i = 0; i < 5; ++i) vs.push_back(matrix::random_vector(256, rng));
  // Random 256-bit vectors are pairwise ~128 apart; min_ball 3 with
  // D=10 removes everything.
  const auto res = coalesce(vs, 10, 3);
  EXPECT_TRUE(res.candidates.empty());
}

TEST(Coalesce, TwoFarClustersStayDistinct) {
  rng::Rng rng(3);
  const auto c1 = matrix::random_vector(256, rng);
  const auto c2 = matrix::flip_random(c1, 200, rng);
  std::vector<BitVector> vs;
  for (int i = 0; i < 12; ++i) vs.push_back(matrix::flip_random(c1, 1, rng));
  for (int i = 0; i < 12; ++i) vs.push_back(matrix::flip_random(c2, 1, rng));

  const auto res = coalesce(vs, 2, 8);
  ASSERT_EQ(res.candidates.size(), 2u);
  // One candidate near each center.
  const std::size_t d11 = res.candidates[0].dtilde(c1);
  const std::size_t d12 = res.candidates[0].dtilde(c2);
  EXPECT_TRUE((d11 <= 4) != (d12 <= 4));
}

TEST(Coalesce, NearClustersMergeWithQuestionMarks) {
  // Two clusters within the 5D merge radius of each other produce one
  // merged candidate whose disagreements became '?'. (With D = 1 the
  // merge bound is 5; the centers are 2 apart.)
  const auto a = BitVector::from_string("00000000");
  const auto b = BitVector::from_string("00000011");
  std::vector<BitVector> vs;
  for (int i = 0; i < 6; ++i) vs.push_back(a);
  for (int i = 0; i < 6; ++i) vs.push_back(b);

  const auto res = coalesce(vs, 1, 4);
  ASSERT_EQ(res.candidates.size(), 1u);
  EXPECT_EQ(res.candidates[0].to_string(), "000000??");
  EXPECT_EQ(res.pre_merge_count, 2u);
}

TEST(Coalesce, MergeBoundRespected) {
  // Same two clusters, but with merge_mult 0 they must NOT merge
  // (dtilde = 2 > 0).
  const auto a = BitVector::from_string("00000000");
  const auto b = BitVector::from_string("00000011");
  std::vector<BitVector> vs;
  for (int i = 0; i < 6; ++i) vs.push_back(a);
  for (int i = 0; i < 6; ++i) vs.push_back(b);

  const auto res = coalesce(vs, 0, 4, /*merge_mult=*/0.0);
  EXPECT_EQ(res.candidates.size(), 2u);
}

TEST(Coalesce, Deterministic) {
  rng::Rng rng(4);
  std::vector<BitVector> vs;
  const auto center = matrix::random_vector(64, rng);
  for (int i = 0; i < 30; ++i) vs.push_back(matrix::flip_random(center, 3, rng));
  for (int i = 0; i < 10; ++i) vs.push_back(matrix::random_vector(64, rng));

  const auto r1 = coalesce(vs, 6, 15);
  const auto r2 = coalesce(vs, 6, 15);
  EXPECT_EQ(r1.candidates, r2.candidates);
}

// Theorem 5.3 property sweep: plant an (alpha, D)-cluster among noise;
// verify output size <= 1/alpha', a unique closest representative
// within 2D of every cluster member, and <= 5D/alpha' question marks.
struct CoalesceCase {
  std::size_t n;
  std::size_t m;
  std::size_t D;
  double alpha;
  std::uint64_t seed;
};

class CoalesceProperty : public ::testing::TestWithParam<CoalesceCase> {};

TEST_P(CoalesceProperty, Theorem53Properties) {
  const auto [n, m, D, alpha, seed] = GetParam();
  rng::Rng rng(seed);

  const auto center = matrix::random_vector(m, rng);
  const auto cluster_size = static_cast<std::size_t>(alpha * static_cast<double>(n));
  std::vector<BitVector> vs;
  std::vector<std::size_t> cluster_idx;
  for (std::size_t i = 0; i < cluster_size; ++i) {
    cluster_idx.push_back(vs.size());
    vs.push_back(matrix::flip_random(center, rng.uniform(D / 2 + 1), rng));
  }
  while (vs.size() < n) vs.push_back(matrix::random_vector(m, rng));

  const auto min_ball = cluster_size;
  const auto res = coalesce(vs, D, min_ball);

  // Size bound: each pre-merge representative accounts for >= min_ball
  // distinct input vectors.
  EXPECT_LE(res.pre_merge_count, n / min_ball);
  EXPECT_LE(res.candidates.size(), res.pre_merge_count);
  ASSERT_FALSE(res.candidates.empty());

  // A unique candidate within 2D of every cluster member.
  std::size_t close_candidates = 0;
  std::size_t best = 0;
  for (std::size_t c = 0; c < res.candidates.size(); ++c) {
    bool close_to_all = true;
    for (std::size_t i : cluster_idx) {
      if (res.candidates[c].dtilde(vs[i]) > 2 * D) {
        close_to_all = false;
        break;
      }
    }
    if (close_to_all) {
      ++close_candidates;
      best = c;
    }
  }
  EXPECT_EQ(close_candidates, 1u);

  // ?-entries bound: 5D per merge, at most |A|-1 merges, so
  // 5D * pre_merge_count is a safe form of the paper's 5D/alpha.
  EXPECT_LE(res.candidates[best].unknown_count(), 5 * D * res.pre_merge_count);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoalesceProperty,
                         ::testing::Values(CoalesceCase{40, 256, 4, 0.5, 11},
                                           CoalesceCase{60, 256, 8, 0.3, 12},
                                           CoalesceCase{80, 512, 6, 0.25, 13},
                                           CoalesceCase{100, 512, 10, 0.2, 14},
                                           CoalesceCase{120, 512, 12, 0.5, 15},
                                           CoalesceCase{150, 1024, 16, 0.3, 16}));

TEST(Coalesce, RepresentativeNeverAssertsAncestorDisagreement) {
  // Lemma 5.1: for input v and any representative u it merged into,
  // dtilde(v, rep) <= dist(v, u). Build a three-way merge chain and
  // check all inputs.
  std::vector<BitVector> vs;
  for (int i = 0; i < 4; ++i) vs.push_back(BitVector::from_string("000000"));
  for (int i = 0; i < 4; ++i) vs.push_back(BitVector::from_string("000011"));
  for (int i = 0; i < 4; ++i) vs.push_back(BitVector::from_string("001100"));

  const auto res = coalesce(vs, 1, 3);
  ASSERT_EQ(res.candidates.size(), 1u);
  const auto& rep = res.candidates[0];
  EXPECT_EQ(rep.to_string(), "00????");
  for (const auto& v : vs) {
    EXPECT_EQ(rep.dtilde(v), 0u);
  }
}

}  // namespace
}  // namespace tmwia::core
