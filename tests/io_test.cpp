// Tests for the io module: table rendering, CSV output, arg parsing.
#include <gtest/gtest.h>

#include <sstream>

#include "tmwia/io/args.hpp"
#include "tmwia/io/table.hpp"

namespace tmwia::io {
namespace {

TEST(Table, RejectsNoColumns) {
  EXPECT_THROW(Table("t", {}), std::invalid_argument);
}

TEST(Table, RejectsWrongCellCount) {
  Table t("t", {{"a"}, {"b"}});
  EXPECT_THROW(t.add_row({Cell{std::string("x")}}), std::invalid_argument);
}

TEST(Table, PrintsAlignedRows) {
  Table t("demo", {{"name"}, {"count"}, {"ratio", 2}});
  t.add_row({std::string("alpha"), 42LL, 0.3333});
  t.add_row({std::string("b"), 7LL, 12.5});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("0.33"), std::string::npos);
  EXPECT_NE(s.find("12.50"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat) {
  Table t("demo", {{"x"}, {"y", 1}});
  t.add_row({1LL, 2.0});
  t.add_row({3LL, 4.5});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.0\n3,4.5\n");
}

TEST(Args, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--alpha=0.5", "--verbose", "--name=test"};
  Args a(5, argv);
  EXPECT_EQ(a.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(a.get_flag("verbose"));
  EXPECT_FALSE(a.get_flag("quiet"));
  EXPECT_EQ(*a.get("name"), "test");
  EXPECT_EQ(a.program(), "prog");
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Args a(1, argv);
  EXPECT_EQ(a.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
  EXPECT_EQ(a.get_seed("seed", 99u), 99u);
  EXPECT_FALSE(a.get("missing").has_value());
}

TEST(Args, RejectsPositional) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

TEST(Args, SeedParsesLargeValues) {
  const char* argv[] = {"prog", "--seed=18446744073709551615"};
  Args a(2, argv);
  EXPECT_EQ(a.get_seed("seed", 0), 18446744073709551615ull);
}

}  // namespace
}  // namespace tmwia::io
