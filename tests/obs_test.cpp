// tmwia-lint: allow-file(sink-registration) obs unit tests construct the sinks under test.
// Tests for the observability layer (src/obs): counter/gauge/histogram
// correctness, the per-thread shard merge (same totals and identical
// snapshot bytes regardless of writer-thread count), trace JSONL shape,
// and end-to-end byte-determinism of metrics + traces for a fixed seed
// and fault plan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/latency.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/trace.hpp"

namespace {

using namespace tmwia;

TEST(Metrics, CounterBasics) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("a.calls");
  c.inc();
  c.add(41);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a.calls"), 42u);
  EXPECT_EQ(snap.counter("never.touched"), 0u);
}

TEST(Metrics, DisabledRegistryDropsWrites) {
  obs::MetricsRegistry reg(/*enabled=*/false);
  auto c = reg.counter("a");
  c.add(7);
  EXPECT_EQ(reg.snapshot().counter("a"), 0u);
  reg.set_enabled(true);
  c.add(7);
  EXPECT_EQ(reg.snapshot().counter("a"), 7u);
}

TEST(Metrics, DefaultHandleIsNoOp) {
  obs::MetricsRegistry::Counter c;
  c.inc();  // must not crash
  obs::MetricsRegistry::Histogram h;
  h.observe(3);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  obs::MetricsRegistry reg;
  auto c1 = reg.counter("x");
  auto c2 = reg.counter("x");
  c1.inc();
  c2.inc();
  EXPECT_EQ(reg.snapshot().counter("x"), 2u);
  EXPECT_THROW((void)reg.histogram("x", obs::MetricsRegistry::pow2_bounds(4)),
               std::invalid_argument);
  (void)reg.histogram("h", {1, 2, 4});
  EXPECT_THROW((void)reg.histogram("h", {1, 2, 8}), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("h"), std::invalid_argument);
}

TEST(Metrics, HistogramBucketsInclusiveUpperEdges) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("lat", {1, 2, 4});
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 5u, 100u}) h.observe(v);
  const auto snap = reg.snapshot();
  const auto& hd = snap.histograms.at("lat");
  ASSERT_EQ(hd.bounds, (std::vector<std::uint64_t>{1, 2, 4}));
  // buckets: <=1 -> {0,1}; <=2 -> {2}; <=4 -> {3,4}; overflow -> {5,100}
  EXPECT_EQ(hd.buckets, (std::vector<std::uint64_t>{2, 1, 2, 2}));
  EXPECT_EQ(hd.count, 7u);
  EXPECT_EQ(hd.sum, 0u + 1 + 2 + 3 + 4 + 5 + 100);
}

TEST(Metrics, Pow2Bounds) {
  const auto b = obs::MetricsRegistry::pow2_bounds(4);
  EXPECT_EQ(b, (std::vector<std::uint64_t>{1, 2, 4, 8}));
}

TEST(Metrics, Gauges) {
  obs::MetricsRegistry reg;
  reg.set_gauge("g", -5);
  reg.add_gauge("g", 8);
  reg.add_gauge("other", 2);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.gauge("g"), 3);
  EXPECT_EQ(snap.gauge("other"), 2);
  EXPECT_EQ(snap.gauge("absent"), 0);
}

TEST(Metrics, ResetZeroesKeepsHandles) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("c");
  auto h = reg.histogram("h", {1, 2});
  c.add(3);
  h.observe(1);
  reg.set_gauge("g", 9);
  reg.reset();
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  EXPECT_EQ(snap.gauge("g"), 0);
  c.inc();
  h.observe(2);
  snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
}

/// The same logical workload spread over 1, 2, 4 and 8 writer threads
/// must merge to identical snapshots — byte-identical to_json().
TEST(Metrics, ShardMergeIsThreadCountInvariant) {
  constexpr std::uint64_t kTotalAdds = 9600;  // divisible by 1,2,4,8
  std::vector<std::string> jsons;
  std::vector<obs::Snapshot> snaps;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::MetricsRegistry reg;
    auto c = reg.counter("work.items");
    auto h = reg.histogram("work.size", obs::MetricsRegistry::pow2_bounds(8));
    const std::uint64_t per_thread = kTotalAdds / threads;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < per_thread; ++i) {
          c.inc();
          // Observation values depend only on the global item index,
          // not on which thread handles it.
          h.observe((t * per_thread + i) % 300);
        }
      });
    }
    for (auto& th : pool) th.join();
    reg.set_gauge("work.done", 1);
    snaps.push_back(reg.snapshot());
    jsons.push_back(snaps.back().to_json());
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i], snaps[0]);
    EXPECT_EQ(jsons[i], jsons[0]) << "thread-count " << i;
  }
  EXPECT_EQ(snaps[0].counter("work.items"), kTotalAdds);
  EXPECT_EQ(snaps[0].histograms.at("work.size").count, kTotalAdds);
}

TEST(Metrics, SnapshotJsonShape) {
  obs::MetricsRegistry reg;
  reg.counter("b").inc();
  reg.set_gauge("a", -1);
  reg.histogram("h", {2, 4}).observe(3);
  // The percentile fields are %.17g-rendered doubles; build the
  // expected substrings the same way instead of hardcoding them.
  const auto snap = reg.snapshot();
  const auto& hd = snap.histograms.at("h");
  char pcts[128];
  std::snprintf(pcts, sizeof pcts, ",\"p50\":%.17g,\"p95\":%.17g,\"p99\":%.17g",
                hd.percentile(0.50), hd.percentile(0.95), hd.percentile(0.99));
  EXPECT_EQ(reg.snapshot().to_json(),
            std::string("{\"counters\":{\"b\":1},\"gauges\":{\"a\":-1},"
                        "\"histograms\":{\"h\":{\"bounds\":[2,4],\"buckets\":[0,1,0],"
                        "\"sum\":3,\"count\":1") +
                pcts + "}}}");
}

/// Percentile estimation: linear interpolation within a bucket, using
/// the bucket's lower edge (previous bound, or 0) and upper edge.
TEST(Metrics, HistogramPercentiles) {
  obs::HistogramData h;
  h.bounds = {10, 20, 40};
  h.buckets = {10, 10, 0, 0};  // 20 observations, none in overflow
  h.count = 20;
  // p50 sits exactly at the top of the first bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0);
  // p75: rank 15 is 5 observations into the (10, 20] bucket of 10.
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h.percentile(1.5), 20.0);
  // Empty histogram reports 0.
  obs::HistogramData empty;
  empty.bounds = {1, 2};
  empty.buckets = {0, 0, 0};
  EXPECT_DOUBLE_EQ(empty.percentile(0.99), 0.0);
}

/// Overflow-bucket edge case: the last bucket has no upper edge, so
/// any percentile landing there clamps to bounds.back() rather than
/// extrapolating into unbounded territory.
TEST(Metrics, HistogramPercentileOverflowClamps) {
  obs::HistogramData h;
  h.bounds = {10, 20};
  h.buckets = {2, 2, 16};  // 80% of mass in the overflow bucket
  h.count = 20;
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 20.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 20.0);
  // Percentiles below the overflow mass still interpolate normally.
  EXPECT_DOUBLE_EQ(h.percentile(0.10), 10.0);
  // All mass in overflow: every percentile clamps.
  obs::HistogramData all_over;
  all_over.bounds = {5};
  all_over.buckets = {0, 7};
  all_over.count = 7;
  EXPECT_DOUBLE_EQ(all_over.percentile(0.01), 5.0);
  EXPECT_DOUBLE_EQ(all_over.percentile(0.99), 5.0);
}

/// One observation: every percentile interpolates inside that one
/// bucket — the rank q*1 lands q of the way across the (10, 20]
/// bucket, so p50/p95/p99 spread across it and never spill into
/// neighbouring (empty) buckets or divide by zero.
TEST(Metrics, HistogramPercentileSingleSample) {
  obs::HistogramData h;
  h.bounds = {10, 20, 40};
  h.buckets = {0, 1, 0, 0};  // one observation in (10, 20]
  h.count = 1;
  h.sum = 15;
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 19.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 19.9);
  // q = 0 still resolves to the sample's bucket (its lower edge).
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  // A single sample in the overflow bucket clamps to bounds.back().
  obs::HistogramData over;
  over.bounds = {10, 20};
  over.buckets = {0, 0, 1};
  over.count = 1;
  EXPECT_DOUBLE_EQ(over.percentile(0.50), 20.0);
  EXPECT_DOUBLE_EQ(over.percentile(0.99), 20.0);
}

// ---- WallTimer -------------------------------------------------------

/// elapsed_us() reflects real elapsed time: at least as long as a
/// sleep bracketed by the reading, and monotone across calls.
TEST(WallTimer, ElapsedCoversSleepAndIsMonotone) {
  obs::WallTimer timer;
  const auto immediately = timer.elapsed_us();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto after_sleep = timer.elapsed_us();
  EXPECT_GE(after_sleep, immediately + 2000);
  EXPECT_GE(timer.elapsed_us(), after_sleep);  // steady clock: never backwards
}

TEST(WallTimer, ResetRestartsTheClock) {
  obs::WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(timer.elapsed_us(), 2000u);
  timer.reset();
  // After reset the elapsed time restarts near zero — far below the
  // 2ms that had accumulated (slack for scheduling hiccups).
  EXPECT_LT(timer.elapsed_us(), 2000u);
}

TEST(Trace, JsonlShapeAndLogicalClock) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  const auto span = tracer.begin_span("phase", {{"n", 64}, {"alpha", 0.5}});
  tracer.event("tick", {{"round", 1}});
  tracer.end_span(span, {{"ok", "yes"}});
  tracer.flush();
  EXPECT_EQ(out.str(),
            "{\"t\":0,\"kind\":\"begin\",\"span\":1,\"name\":\"phase\","
            "\"attrs\":{\"n\":64,\"alpha\":0.5}}\n"
            "{\"t\":1,\"kind\":\"event\",\"name\":\"tick\",\"attrs\":{\"round\":1}}\n"
            "{\"t\":2,\"kind\":\"end\",\"span\":1,\"attrs\":{\"ok\":\"yes\"}}\n");
}

TEST(Trace, NullTracerSpanIsNoOp) {
  obs::Span span(nullptr, "nothing", {{"k", 1}});
  span.end({{"r", 2}});  // must not crash
  EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(Trace, RaiiSpanClosesOnScopeExit) {
  std::ostringstream out;
  obs::Tracer tracer(out);
  {
    obs::Span span(&tracer, "s");
  }
  tracer.flush();
  const auto text = out.str();
  EXPECT_NE(text.find("\"kind\":\"begin\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"end\""), std::string::npos);
}

/// The scheduler turns the injector's crash windows into trace *events*
/// at the transition rounds: one "scheduler.crash" when the player goes
/// down, one "scheduler.recover" when it comes back.
TEST(Trace, SchedulerEmitsCrashAndRecoverEvents) {
  // Probes objects 0..m-1 in order, one per round, done after m results.
  class Sweep final : public billboard::PlayerStrategy {
   public:
    explicit Sweep(std::size_t m) : m_(m) {}
    std::optional<matrix::ObjectId> next_probe(const billboard::RoundView&) override {
      if (next_ >= m_) return std::nullopt;
      return static_cast<matrix::ObjectId>(next_);
    }
    void on_result(matrix::ObjectId, bool) override { ++next_; }
    [[nodiscard]] bool done() const override { return next_ >= m_; }

   private:
    std::size_t m_;
    std::size_t next_ = 0;
  };

  rng::Rng gen(23);
  const auto inst = matrix::planted_community(6, 10, {0.5, 1}, gen);
  faults::FaultPlan plan;
  plan.explicit_crashes = {{2, {3, 6}}};  // player 2 down for rounds [3, 6)
  billboard::ProbeOracle oracle(inst.matrix);
  faults::FaultInjector injector(plan, inst.matrix.players());
  oracle.set_fault_injector(&injector);

  std::ostringstream out;
  obs::Tracer tracer(out);
  obs::set_tracer(&tracer);
  billboard::RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  for (std::size_t p = 0; p < inst.matrix.players(); ++p) {
    strategies.push_back(std::make_unique<Sweep>(inst.matrix.objects()));
  }
  const auto res = sched.run(strategies, /*max_rounds=*/64);
  obs::set_tracer(nullptr);
  tracer.flush();

  EXPECT_TRUE(res.all_done);
  EXPECT_EQ(res.crash_skips, 3u);
  const auto text = out.str();
  EXPECT_NE(text.find("\"name\":\"scheduler.crash\","
                      "\"attrs\":{\"round\":3,\"player\":2}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"name\":\"scheduler.recover\","
                      "\"attrs\":{\"round\":6,\"player\":2}"),
            std::string::npos)
      << text;
  // Exactly one transition each way: the window fires once.
  EXPECT_EQ(text.find("scheduler.crash"), text.rfind("scheduler.crash"));
  EXPECT_EQ(text.find("scheduler.recover"), text.rfind("scheduler.recover"));
}

/// End-to-end determinism: the same seed and fault plan must produce
/// byte-identical metrics snapshots and trace JSONL, run to run.
TEST(Obs, MetricsAndTraceDeterministicUnderFaults) {
  rng::Rng gen(17);
  const auto inst = matrix::planted_community(64, 64, {0.5, 1}, gen);
  const auto plan = faults::FaultPlan::parse("seed=3,probe=0.05,retry=3");

  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  auto run_once = [&](std::string* trace_text) {
    std::ostringstream trace_out;
    obs::Tracer tracer(trace_out);
    obs::set_tracer(&tracer);
    reg.set_enabled(true);
    reg.reset();
    billboard::ProbeOracle oracle(inst.matrix);
    faults::FaultInjector injector(plan, inst.matrix.players());
    oracle.set_fault_injector(&injector);
    const auto res = core::find_preferences_unknown_d(
        oracle, nullptr, 0.5, core::Params::practical(), rng::Rng(5));
    obs::set_tracer(nullptr);
    tracer.flush();
    *trace_text = trace_out.str();
    return res.metrics.to_json();
  };

  std::string trace1;
  std::string trace2;
  const auto metrics1 = run_once(&trace1);
  const auto metrics2 = run_once(&trace2);
  reg.reset();
  reg.set_enabled(was_enabled);

  EXPECT_EQ(metrics1, metrics2);
  EXPECT_EQ(trace1, trace2);
  EXPECT_FALSE(trace1.empty());
  // Every trace line is a JSON object with a leading logical clock.
  std::istringstream lines(trace1);
  std::string line;
  std::uint64_t expect_t = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.rfind("{\"t\":" + std::to_string(expect_t) + ",", 0), 0u)
        << line;
    ++expect_t;
  }
  EXPECT_GT(expect_t, 0u);
  // The instrumented fault paths actually fired under this plan.
  EXPECT_NE(metrics1.find("\"counters\""), std::string::npos);
}

}  // namespace
