// Thread-safety stress tests for the concurrently-used structures:
// Billboard's posting surface and the MetricsRegistry shard merge.
//
// These tests are most valuable under ThreadSanitizer (run_tests.sh
// --tsan builds and runs them there), but they also assert a functional
// contract that holds in any build: hammering the structures from N
// threads must produce byte-identical results to the same operations
// applied single-threaded, because posts are keyed by player (order
// between players is immaterial) and metric merges are commutative sums.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/matrix/ids.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/rng/rng.hpp"

namespace {

using tmwia::bits::BitVector;
using tmwia::matrix::PlayerId;

constexpr std::size_t kThreads = 8;
constexpr std::size_t kPlayersPerThread = 32;
constexpr std::size_t kObjects = 193;  // straddles a word boundary

/// Deterministic per-player row, independent of which thread posts it.
BitVector row_for(PlayerId p) {
  tmwia::rng::Rng rng(tmwia::rng::Rng(0xb111b0a2d).split(p));
  BitVector v(kObjects);
  for (std::size_t w = 0; w * BitVector::kWordBits < kObjects; ++w) {
    v.set_word(w, rng.next());
  }
  return v;
}

TEST(ThreadSafety, ConcurrentBillboardPostsMatchSerial) {
  const std::size_t players = kThreads * kPlayersPerThread;
  std::vector<BitVector> rows;
  rows.reserve(players);
  for (PlayerId p = 0; p < players; ++p) rows.push_back(row_for(p));

  // Serial reference: every player posts in id order from one thread.
  tmwia::billboard::Billboard serial;
  for (PlayerId p = 0; p < players; ++p) serial.post("votes", p, rows[p]);

  // Stress: each thread batch-posts its own player slice while also
  // reading posters()/has_posted()/popular() — readers race writers.
  tmwia::billboard::Billboard board;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&board, &rows, t] {
      const PlayerId first = static_cast<PlayerId>(t * kPlayersPerThread);
      std::vector<PlayerId> ids;
      ids.reserve(kPlayersPerThread);
      for (std::size_t i = 0; i < kPlayersPerThread; ++i) {
        ids.push_back(first + static_cast<PlayerId>(i));
      }
      // Post in three chunks with interleaved reads, so consolidation
      // runs while other threads' pending logs fill.
      const std::size_t third = kPlayersPerThread / 3;
      std::size_t done = 0;
      while (done < kPlayersPerThread) {
        const std::size_t n = std::min(third + 1, kPlayersPerThread - done);
        board.post_many("votes", std::span(ids).subspan(done, n),
                        std::span(rows).subspan(first + done, n));
        done += n;
        (void)board.posters("votes");
        (void)board.has_posted("votes", first);
        (void)board.popular("votes", 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto got = board.snapshot("votes");
  const auto want = serial.snapshot("votes");
  ASSERT_EQ(got.players, want.players);
  ASSERT_EQ(got.rows.size(), want.rows.size());
  for (std::size_t i = 0; i < want.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i], want.rows[i]) << "player " << want.players[i];
  }
  EXPECT_EQ(board.posters("votes"), players);
  EXPECT_EQ(board.total_posts(), serial.total_posts());
}

/// Apply thread t's deterministic slice of metric traffic.
void metric_work(tmwia::obs::MetricsRegistry& reg, std::size_t t) {
  // find-or-create from every thread: registration itself is part of
  // the contended surface under test.
  auto ops = reg.counter("ops");
  auto mine = reg.counter("thread." + std::to_string(t));
  auto lat = reg.histogram("lat", tmwia::obs::MetricsRegistry::pow2_bounds(10));
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ops.add(i % 7);
    mine.inc();
    lat.observe((t * 2000 + i) % 700);
  }
}

TEST(ThreadSafety, ConcurrentMetricShardsMergeToSerialSnapshot) {
  tmwia::obs::MetricsRegistry serial(true);
  for (std::size_t t = 0; t < kThreads; ++t) metric_work(serial, t);

  tmwia::obs::MetricsRegistry reg(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] { metric_work(reg, t); });
  }
  for (auto& th : threads) th.join();

  const auto got = reg.snapshot();
  const auto want = serial.snapshot();
  EXPECT_EQ(got, want);
  EXPECT_EQ(got.to_json(), want.to_json());
  std::uint64_t ops_per_thread = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) ops_per_thread += i % 7;
  EXPECT_EQ(got.counter("ops"), ops_per_thread * kThreads);
}

TEST(ThreadSafety, SetBackendRejectedDuringParallelPhase) {
  namespace kernels = tmwia::bits::kernels;
  const auto current = kernels::requested_backend();
  ASSERT_EQ(kernels::parallel_phases_active(), 0u);
  {
    const kernels::ParallelPhaseGuard gate;
    EXPECT_EQ(kernels::parallel_phases_active(), 1u);
    EXPECT_THROW(kernels::set_backend(current), std::logic_error);
  }
  EXPECT_EQ(kernels::parallel_phases_active(), 0u);
  // Idle again: reselection is legal and keeps the same backend.
  EXPECT_NO_THROW(kernels::set_backend(current));
  EXPECT_EQ(kernels::requested_backend(), current);
}

}  // namespace
