// Tests for the fault-injection subsystem: plan grammar, deterministic
// replay, faithful retry accounting, and graceful degradation of the
// algorithm tower under crash-stop / probe-failure / post-loss faults.
#include <gtest/gtest.h>

#include <memory>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/billboard/strategies.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/faults/fault_plan.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia {
namespace {

using faults::FaultInjector;
using faults::FaultPlan;
using faults::kNever;

TEST(FaultPlan, ParsesFullGrammar) {
  const auto plan =
      FaultPlan::parse("seed=7,crash=0.2@16-64,recover=8,probe=0.05,retry=4,drop=0.1,delay=0.5@3");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.crash_rate, 0.2);
  EXPECT_EQ(plan.crash_round_lo, 16u);
  EXPECT_EQ(plan.crash_round_hi, 64u);
  EXPECT_EQ(plan.recover_after, 8u);
  EXPECT_DOUBLE_EQ(plan.probe_fail_rate, 0.05);
  EXPECT_EQ(plan.retry_budget, 4u);
  EXPECT_DOUBLE_EQ(plan.post_drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan.post_delay_rate, 0.5);
  EXPECT_EQ(plan.post_delay_rounds, 3u);
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(FaultPlan::none().any());
  EXPECT_FALSE(FaultPlan::parse("").any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("crash"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash=0.1@9-3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("probe=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("delay=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("warp=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=x"), std::invalid_argument);
}

TEST(FaultPlan, CrashWindowsAreDeterministicAndRateBound) {
  auto plan = FaultPlan::parse("seed=11,crash=0.25@10-20,recover=5");
  std::size_t crashed = 0;
  for (matrix::PlayerId p = 0; p < 1000; ++p) {
    const auto w = plan.crash_window(p);
    EXPECT_EQ(w.at, plan.crash_window(p).at);  // pure in (seed, p)
    if (w.at == kNever) continue;
    ++crashed;
    EXPECT_GE(w.at, 10u);
    EXPECT_LE(w.at, 20u);
    EXPECT_EQ(w.recover, w.at + 5);
  }
  // ~25% of 1000 players; generous deterministic envelope.
  EXPECT_GT(crashed, 180u);
  EXPECT_LT(crashed, 320u);

  plan.explicit_crashes.push_back({3, {7, kNever}});
  EXPECT_EQ(plan.crash_window(3).at, 7u);
  EXPECT_EQ(plan.crash_window(3).recover, kNever);
}

// Acceptance 1: crash-stopping up to 20% of the players mid-run leaves
// the surviving typical players with bounded error — no throw, no
// abandoned all-zero rows.
TEST(FaultTolerance, SurvivorsKeepBoundedErrorUnderCrashes) {
  rng::Rng gen(3);
  auto inst = matrix::planted_community(256, 256, {0.5, 2}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;

  const auto plan = FaultPlan::parse("seed=5,crash=0.2@40-400");
  FaultInjector injector(plan, inst.matrix.players());
  oracle.set_fault_injector(&injector);

  const auto res = core::find_preferences(oracle, &board, 0.5, 4, core::Params::practical(),
                                          rng::Rng(4));

  const auto report = injector.report();
  EXPECT_FALSE(report.crashed.empty());
  EXPECT_LE(report.crashed.size(), inst.matrix.players() / 4);

  std::size_t survivors = 0;
  for (matrix::PlayerId p : inst.communities[0]) {
    if (injector.is_failed(p)) continue;
    ++survivors;
    EXPECT_GT(res.outputs[p].count_ones(), 0u) << "player " << p << " left with a zero row";
    EXPECT_LE(res.outputs[p].hamming(inst.matrix.row(p)), 24u) << "player " << p;
  }
  EXPECT_GT(survivors, inst.communities[0].size() / 2);
}

// Acceptance 2: transient probe failures burn invocations (the probe
// was sent, the result lost), so every retry shows up in the
// theorem-bound cost and therefore in the round accounting.
TEST(FaultTolerance, RetriesAreChargedToInvocationsAndRounds) {
  rng::Rng gen(7);
  auto inst = matrix::planted_community(128, 128, {0.5, 0}, gen);

  billboard::ProbeOracle clean(inst.matrix);
  const auto base = core::find_preferences(clean, nullptr, 0.5, 0, core::Params::practical(),
                                           rng::Rng(8));

  billboard::ProbeOracle oracle(inst.matrix);
  const auto plan = FaultPlan::parse("seed=9,probe=0.1,retry=6");
  FaultInjector injector(plan, inst.matrix.players());
  oracle.set_fault_injector(&injector);
  const auto res = core::find_preferences(oracle, nullptr, 0.5, 0, core::Params::practical(),
                                          rng::Rng(8));

  const auto report = injector.report();
  EXPECT_GT(report.probe_failures, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_LE(report.retries, report.probe_failures);

  // invocations = successful attempts + failed attempts, and only
  // successful attempts on fresh pairs are charged: the failure tax is
  // visible in the gap.
  for (matrix::PlayerId p = 0; p < inst.matrix.players(); ++p) {
    EXPECT_GE(oracle.invocations(p), oracle.charged(p));
  }
  EXPECT_GE(oracle.total_invocations(), oracle.total_charged() + report.probe_failures);

  // With a retry budget deep enough that exhaustion never fires, the
  // workload is identical and the retry tax strictly inflates rounds.
  EXPECT_TRUE(report.degraded.empty());
  EXPECT_GT(res.rounds, base.rounds);
  EXPECT_EQ(res.outputs, base.outputs);  // retries change cost, not results
}

// Acceptance 3: the same FaultPlan seed replays byte-identically.
TEST(FaultTolerance, SameSeedReproducesByteIdenticalReports) {
  rng::Rng gen(11);
  auto inst = matrix::planted_community(192, 192, {0.5, 2}, gen);
  const auto plan = FaultPlan::parse("seed=13,crash=0.15@30-300,probe=0.05,retry=3,drop=0.05");

  auto run = [&] {
    billboard::ProbeOracle oracle(inst.matrix);
    billboard::Billboard board;
    FaultInjector injector(plan, inst.matrix.players());
    oracle.set_fault_injector(&injector);
    auto res = core::find_preferences(oracle, &board, 0.5, 4, core::Params::practical(),
                                      rng::Rng(14));
    return std::make_pair(injector.report(), std::move(res.outputs));
  };

  const auto [report_a, outputs_a] = run();
  const auto [report_b, outputs_b] = run();
  EXPECT_EQ(report_a, report_b);
  EXPECT_EQ(report_a.to_string(), report_b.to_string());
  EXPECT_EQ(outputs_a, outputs_b);
}

// Losing every post must not wedge the vote: players that find an empty
// billboard are flagged orphaned and keep their own best effort.
TEST(FaultTolerance, TotalPostLossOrphansButDoesNotThrow) {
  rng::Rng gen(17);
  auto inst = matrix::planted_community(64, 64, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  FaultInjector injector(FaultPlan::parse("seed=1,drop=1"), inst.matrix.players());
  oracle.set_fault_injector(&injector);

  const auto res = core::find_preferences(oracle, &board, 0.5, 0, core::Params::practical(),
                                          rng::Rng(18));
  ASSERT_EQ(res.outputs.size(), 64u);
  const auto report = injector.report();
  EXPECT_GT(report.posts_dropped, 0u);
  EXPECT_FALSE(report.orphaned.empty());
}

// No-fault invariant: an attached injector with an empty plan changes
// nothing — outputs and accounting are byte-identical to no injector.
TEST(FaultTolerance, EmptyPlanIsByteIdenticalToNoInjector) {
  rng::Rng gen(19);
  auto inst = matrix::planted_community(96, 96, {0.5, 2}, gen);

  billboard::ProbeOracle plain(inst.matrix);
  const auto base = core::find_preferences(plain, nullptr, 0.5, 3, core::Params::practical(),
                                           rng::Rng(20));

  billboard::ProbeOracle oracle(inst.matrix);
  FaultInjector injector(FaultPlan::none(), inst.matrix.players());
  oracle.set_fault_injector(&injector);
  const auto res = core::find_preferences(oracle, nullptr, 0.5, 3, core::Params::practical(),
                                          rng::Rng(20));

  EXPECT_EQ(res.outputs, base.outputs);
  EXPECT_EQ(res.rounds, base.rounds);
  EXPECT_EQ(oracle.total_invocations(), plain.total_invocations());
  EXPECT_EQ(injector.report(), faults::FaultInjector(FaultPlan::none(), 96).report());
}

// --- RoundScheduler under faults -----------------------------------

TEST(SchedulerFaults, CrashWindowWithRecoveryCostsExactlyItsRounds) {
  rng::Rng gen(23);
  auto inst = matrix::uniform_random(4, 16, gen);
  billboard::ProbeOracle oracle(inst.matrix);

  FaultPlan plan;
  plan.explicit_crashes.push_back({2, {5, 10}});  // down rounds [5, 10)
  FaultInjector injector(plan, 4);
  oracle.set_fault_injector(&injector);

  billboard::RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  std::vector<billboard::SoloStrategy*> solos;
  for (int p = 0; p < 4; ++p) {
    auto s = std::make_unique<billboard::SoloStrategy>(16);
    solos.push_back(s.get());
    strategies.push_back(std::move(s));
  }
  const auto res = sched.run(strategies, 1000);

  EXPECT_TRUE(res.all_done);
  EXPECT_EQ(res.crash_skips, 5u);
  EXPECT_EQ(res.rounds, 21u);  // 16 probes + the 5 lost rounds
  EXPECT_EQ(oracle.invocations(2), 16u);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(solos[p]->estimate(), inst.matrix.row(p));
  }
  const auto report = injector.report();
  EXPECT_EQ(report.crashed, std::vector<matrix::PlayerId>{2});
  EXPECT_EQ(report.recovered, std::vector<matrix::PlayerId>{2});
}

TEST(SchedulerFaults, PermanentCrashDoesNotWedgeTheRun) {
  rng::Rng gen(29);
  auto inst = matrix::uniform_random(3, 8, gen);
  billboard::ProbeOracle oracle(inst.matrix);

  FaultPlan plan;
  plan.explicit_crashes.push_back({0, {2, kNever}});
  FaultInjector injector(plan, 3);
  oracle.set_fault_injector(&injector);

  billboard::RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  for (int p = 0; p < 3; ++p) {
    strategies.push_back(std::make_unique<billboard::SoloStrategy>(8));
  }
  const auto res = sched.run(strategies, 1000);

  // The dead player cannot finish, but the run ends as soon as the
  // survivors do instead of spinning to the round cap.
  EXPECT_FALSE(res.all_done);
  EXPECT_EQ(res.rounds, 8u);
  EXPECT_EQ(oracle.invocations(0), 2u);
  EXPECT_EQ(oracle.invocations(1), 8u);
}

TEST(SchedulerFaults, ProbeFailuresStallButDoNotCorruptSoloPlayers) {
  rng::Rng gen(31);
  auto inst = matrix::uniform_random(6, 32, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  FaultInjector injector(FaultPlan::parse("seed=3,probe=0.2,retry=2"), 6);
  oracle.set_fault_injector(&injector);

  billboard::RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  std::vector<billboard::SoloStrategy*> solos;
  for (int p = 0; p < 6; ++p) {
    auto s = std::make_unique<billboard::SoloStrategy>(32);
    solos.push_back(s.get());
    strategies.push_back(std::move(s));
  }
  const auto res = sched.run(strategies, 10000);

  EXPECT_TRUE(res.all_done);
  EXPECT_GT(res.probe_failures, 0u);
  for (int p = 0; p < 6; ++p) {
    // Failures cost rounds and invocations but never a wrong value.
    EXPECT_EQ(solos[p]->estimate(), inst.matrix.row(p));
    EXPECT_GE(oracle.invocations(p), 32u);
  }
}

/// Posts one vector per round on a fixed channel, probing in order.
class ChattyStrategy final : public billboard::PlayerStrategy {
 public:
  explicit ChattyStrategy(std::size_t objects) : estimate_(objects) {}
  std::optional<billboard::ObjectId> next_probe(const billboard::RoundView&) override {
    if (done()) return std::nullopt;
    return static_cast<billboard::ObjectId>(next_);
  }
  void on_result(billboard::ObjectId o, bool value) override {
    estimate_.set(o, value);
    ++next_;
  }
  std::vector<billboard::PendingPost> posts() override {
    return {{"chat", estimate_}};
  }
  [[nodiscard]] bool done() const override { return next_ >= estimate_.size(); }

 private:
  bits::BitVector estimate_;
  std::size_t next_ = 0;
};

TEST(SchedulerFaults, DelayedPostsLandLateButLand) {
  rng::Rng gen(37);
  auto inst = matrix::uniform_random(2, 8, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  FaultInjector injector(FaultPlan::parse("seed=2,delay=1@3"), 2);
  oracle.set_fault_injector(&injector);

  billboard::RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  strategies.push_back(std::make_unique<ChattyStrategy>(8));
  strategies.push_back(std::make_unique<ChattyStrategy>(8));
  const auto res = sched.run(strategies, 100);

  EXPECT_TRUE(res.all_done);
  EXPECT_EQ(res.posts_delayed, 16u);  // every post of both players
  // Nothing vanished: both players' posts eventually reached the board.
  EXPECT_EQ(sched.board().posters("chat"), 2u);
}

TEST(SchedulerFaults, DroppedPostsNeverReachTheBoard) {
  rng::Rng gen(41);
  auto inst = matrix::uniform_random(2, 4, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  FaultInjector injector(FaultPlan::parse("seed=2,drop=1"), 2);
  oracle.set_fault_injector(&injector);

  billboard::RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  strategies.push_back(std::make_unique<ChattyStrategy>(4));
  strategies.push_back(std::make_unique<ChattyStrategy>(4));
  const auto res = sched.run(strategies, 100);

  EXPECT_TRUE(res.all_done);
  EXPECT_EQ(res.posts_dropped, 8u);
  EXPECT_EQ(sched.board().posters("chat"), 0u);
}

}  // namespace
}  // namespace tmwia
