// Integration tests for Algorithm Large Radius (Fig. 5 / Theorem 5.4):
// O(D/alpha) output error for planted communities of large diameter,
// agreement of typical players, and cost scaling.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/large_radius.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

std::vector<PlayerId> iota_players(std::size_t n) {
  std::vector<PlayerId> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

std::vector<std::uint32_t> iota_objects(std::size_t m) {
  std::vector<std::uint32_t> o(m);
  std::iota(o.begin(), o.end(), 0u);
  return o;
}

TEST(LargeRadius, RejectsBadAlpha) {
  matrix::PreferenceMatrix mat(4, 4);
  billboard::ProbeOracle oracle(mat);
  EXPECT_THROW(large_radius(oracle, nullptr, iota_players(4), iota_objects(4), 1.5, 8,
                            Params::practical(), rng::Rng(1)),
               std::invalid_argument);
}

struct LrCase {
  std::size_t n;
  std::size_t m;
  double alpha;
  std::size_t radius;
  double error_factor;  // allowed multiple of D on the output error
  std::uint64_t seed;
};

class LargeRadiusGuarantee : public ::testing::TestWithParam<LrCase> {};

TEST_P(LargeRadiusGuarantee, OutputWithinConstantTimesDOverAlpha) {
  const auto [n, m, alpha, radius, error_factor, seed] = GetParam();
  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, m, {alpha, radius}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);
  ASSERT_GT(D, 0u);

  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  const auto res = large_radius(oracle, &board, iota_players(n), iota_objects(m), alpha, D,
                                Params::practical(), rng::Rng(seed ^ 0x717));

  const auto bound = static_cast<std::size_t>(
      error_factor * static_cast<double>(D) / alpha);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_LE(res.outputs[p].hamming(inst.matrix.row(p)), bound) << "player " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LargeRadiusGuarantee,
                         ::testing::Values(LrCase{256, 512, 0.5, 16, 4.0, 71},
                                           LrCase{256, 512, 0.5, 24, 4.0, 72},
                                           LrCase{512, 1024, 0.5, 32, 4.0, 73},
                                           LrCase{512, 1024, 0.25, 24, 4.0, 74}));

TEST(LargeRadius, TypicalPlayersAgreeOnOutput) {
  // Step 4 ends with all typical players adopting identical candidate
  // indices, so their final vectors coincide w.h.p.
  const std::size_t n = 256;
  const std::size_t m = 512;
  rng::Rng gen(81);
  auto inst = matrix::planted_community(n, m, {0.5, 16}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = large_radius(oracle, nullptr, iota_players(n), iota_objects(m), 0.5, D,
                                Params::practical(), rng::Rng(82));

  const auto& first = res.outputs[inst.communities[0][0]];
  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(res.outputs[p], first) << "player " << p;
  }
}

TEST(LargeRadius, DiagnosticsPopulated) {
  const std::size_t n = 256;
  rng::Rng gen(91);
  auto inst = matrix::planted_community(n, n, {0.5, 20}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = large_radius(oracle, nullptr, iota_players(n), iota_objects(n), 0.5, D,
                                Params::practical(), rng::Rng(92));
  EXPECT_GE(res.parts, 1u);
  EXPECT_GE(res.lambda, 1u);
  EXPECT_GE(res.max_candidates, 1u);
  EXPECT_GE(res.player_copies, 1u);
}

TEST(LargeRadius, DeterministicGivenSeed) {
  const std::size_t n = 128;
  rng::Rng gen(95);
  auto inst = matrix::planted_community(n, n, {0.5, 12}, gen);

  billboard::ProbeOracle o1(inst.matrix);
  billboard::ProbeOracle o2(inst.matrix);
  const auto r1 = large_radius(o1, nullptr, iota_players(n), iota_objects(n), 0.5, 24,
                               Params::practical(), rng::Rng(96));
  const auto r2 = large_radius(o2, nullptr, iota_players(n), iota_objects(n), 0.5, 24,
                               Params::practical(), rng::Rng(96));
  EXPECT_EQ(r1.outputs, r2.outputs);
}

}  // namespace
}  // namespace tmwia::core
