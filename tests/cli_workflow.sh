#!/usr/bin/env bash
# End-to-end smoke test of the tmwia_cli workflow: gen -> info -> run
# (two algorithms) -> eval. Usage: cli_workflow.sh <path-to-tmwia_cli>
set -euo pipefail

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" gen --kind=planted --n=128 --m=128 --alpha=0.5 --radius=1 --seed=4 \
       --out="$DIR/world.tmw" | grep -q "wrote planted instance"

"$CLI" info --in="$DIR/world.tmw" | tee "$DIR/info.txt"
grep -q "players: 128" "$DIR/info.txt"
grep -q "communities: 1" "$DIR/info.txt"

"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=5 \
       --out="$DIR/est.txt" | grep -q "rounds"
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/est.txt" | tee "$DIR/eval.txt"
grep -q "overall mean error" "$DIR/eval.txt"

# Solo must be exact: stretch column all zeros.
"$CLI" run --in="$DIR/world.tmw" --algo=solo --seed=6 --out="$DIR/solo.txt" >/dev/null
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/solo.txt" | grep -q "0.00"

# Bad inputs fail cleanly.
if "$CLI" run --in="$DIR/world.tmw" --algo=nonsense --out=/dev/null 2>/dev/null; then
  echo "expected failure for unknown algo" >&2
  exit 1
fi
if "$CLI" info --in="$DIR/missing.tmw" 2>/dev/null; then
  echo "expected failure for missing file" >&2
  exit 1
fi

echo "cli workflow OK"
