#!/usr/bin/env bash
# End-to-end smoke test of the tmwia_cli workflow: gen -> info -> run
# (two algorithms) -> eval. Usage: cli_workflow.sh <path-to-tmwia_cli>
#
# CLI output always goes to a file first and is grepped from there:
# piping straight into `grep -q` lets grep exit at the first match and
# kill the CLI with SIGPIPE mid-write, which `set -o pipefail` then
# reports as a (flaky) failure.
set -euo pipefail

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" gen --kind=planted --n=128 --m=128 --alpha=0.5 --radius=1 --seed=4 \
       --out="$DIR/world.tmw" >"$DIR/gen.txt"
grep -q "wrote planted instance" "$DIR/gen.txt"

"$CLI" info --in="$DIR/world.tmw" >"$DIR/info.txt"
grep -q "players: 128" "$DIR/info.txt"
grep -q "communities: 1" "$DIR/info.txt"

"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=5 \
       --out="$DIR/est.txt" >"$DIR/run.txt"
grep -q "rounds" "$DIR/run.txt"
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/est.txt" >"$DIR/eval.txt"
grep -q "overall mean error" "$DIR/eval.txt"

# Solo must be exact: zero overall error.
"$CLI" run --in="$DIR/world.tmw" --algo=solo --seed=6 --out="$DIR/solo.txt" >/dev/null
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/solo.txt" >"$DIR/solo_eval.txt"
grep -q "overall mean error: 0 /" "$DIR/solo_eval.txt"

# A faulty run degrades gracefully and prints its fault report.
"$CLI" run --in="$DIR/world.tmw" --algo=small --d=2 --alpha=0.5 --seed=7 \
       --faults=seed=3,crash=0.1@40-200,probe=0.05,retry=3 \
       --out="$DIR/faulty.txt" >"$DIR/faulty_run.txt"
grep -q "fault report:" "$DIR/faulty_run.txt"
grep -q "probe_failures:" "$DIR/faulty_run.txt"

# Observability: --metrics/--trace emit machine-readable artifacts, and
# a fixed seed gives byte-identical artifacts across --threads.
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=1 --metrics="$DIR/m1.json" --trace="$DIR/t1.jsonl" \
       --out="$DIR/obs1.txt" >/dev/null
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=4 --metrics="$DIR/m4.json" --trace="$DIR/t4.jsonl" \
       --out="$DIR/obs4.txt" >/dev/null
cmp "$DIR/m1.json" "$DIR/m4.json"
cmp "$DIR/t1.jsonl" "$DIR/t4.jsonl"
cmp "$DIR/obs1.txt" "$DIR/obs4.txt"
if command -v jq >/dev/null 2>&1; then
  jq -e '.counters and .gauges and .histograms' "$DIR/m1.json" >/dev/null
  jq -es 'length > 0' "$DIR/t1.jsonl" >/dev/null
fi
grep -q '"t":0' "$DIR/t1.jsonl"

# Flight recorder: --record logs the run as an event stream, and a
# fixed seed gives a byte-identical log across --threads.
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=1 --record="$DIR/r1.jsonl" --report="$DIR/report1.json" \
       --out="$DIR/rec1.txt" >/dev/null
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=4 --record="$DIR/r4.jsonl" --report="$DIR/report4.json" \
       --out="$DIR/rec4.txt" >/dev/null
cmp "$DIR/r1.jsonl" "$DIR/r4.jsonl"
cmp "$DIR/report1.json" "$DIR/report4.json"
if command -v jq >/dev/null 2>&1; then
  # Well-formed JSONL, opened by run_begin, closed by run_end, every
  # record carrying the logical clock.
  jq -es 'length > 2 and .[0].ev == "run_begin" and .[-1].ev == "run_end"
          and all(has("t"))' "$DIR/r1.jsonl" >/dev/null
  jq -e '.algo == "unknown_d" and (.timeline | length > 0)' \
    "$DIR/report1.json" >/dev/null
fi

# inspect renders the timeline; replay reconstructs the billboard from
# the log and cross-checks it against the recorded totals.
"$CLI" inspect --log="$DIR/r1.jsonl" >"$DIR/inspect.txt"
grep -q "run timeline" "$DIR/inspect.txt"
grep -q "probe cost:" "$DIR/inspect.txt"
"$CLI" replay --log="$DIR/r1.jsonl" >"$DIR/replay.txt"
grep -q "replay clean" "$DIR/replay.txt"

# Same for a faulted scheduler-free run: record, then replay, with the
# fault overlay visible in inspect.
"$CLI" run --in="$DIR/world.tmw" --algo=small --d=2 --alpha=0.5 --seed=7 \
       --faults=seed=3,crash=0.1@40-200,probe=0.05,retry=3 \
       --record="$DIR/rf.jsonl" --out=/dev/null >/dev/null
"$CLI" inspect --log="$DIR/rf.jsonl" >"$DIR/inspect_f.txt"
grep -q "fault overlay" "$DIR/inspect_f.txt"
"$CLI" replay --log="$DIR/rf.jsonl" >"$DIR/replay_f.txt"
grep -q "replay clean" "$DIR/replay_f.txt"

# The binary framing replays identically.
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --record="$DIR/r.bin" --record-format=binary --out=/dev/null >/dev/null
"$CLI" replay --log="$DIR/r.bin" >"$DIR/replay_bin.txt"
grep -q "replay clean" "$DIR/replay_bin.txt"

# Generated --help comes from the flag table; unknown flags are rejected.
"$CLI" --help >"$DIR/help.txt"
grep -q -- "--metrics=FILE" "$DIR/help.txt"
grep -q -- "--faults=SPEC" "$DIR/help.txt"
if "$CLI" run --in="$DIR/world.tmw" --algo=solo --bogus=1 \
     --out=/dev/null 2>"$DIR/badflag.txt"; then
  echo "expected failure for unknown flag" >&2
  exit 1
fi
grep -q "unknown flag --bogus" "$DIR/badflag.txt"

# Bad inputs fail cleanly.
if "$CLI" run --in="$DIR/world.tmw" --algo=nonsense --out=/dev/null 2>/dev/null; then
  echo "expected failure for unknown algo" >&2
  exit 1
fi
if "$CLI" info --in="$DIR/missing.tmw" 2>/dev/null; then
  echo "expected failure for missing file" >&2
  exit 1
fi
if "$CLI" run --in="$DIR/world.tmw" --algo=solo --faults=warp=0.5 \
     --out=/dev/null 2>/dev/null; then
  echo "expected failure for malformed fault plan" >&2
  exit 1
fi

# --- Exit codes are a documented contract (run `tmwia_cli --help`). ---
# 0 ok, 1 runtime error, 2 usage, 3 audit failure, 4 degraded run,
# 5 corrupt checkpoint. Assert each one.
expect_exit() {
  local want="$1"
  shift
  local got=0
  "$@" >/dev/null 2>&1 || got=$?
  if [ "$got" -ne "$want" ]; then
    echo "expected exit $want, got $got: $*" >&2
    exit 1
  fi
}

expect_exit 2 "$CLI"
expect_exit 2 "$CLI" frobnicate
expect_exit 2 "$CLI" run --in="$DIR/world.tmw" --algo=solo --bogus=1 --out=/dev/null
expect_exit 2 "$CLI" run --in="$DIR/world.tmw" --algo=nonsense --out=/dev/null
expect_exit 1 "$CLI" info --in="$DIR/missing.tmw"

# 3: replay audit failure. Tamper the recorded run_end totals; the
# replayer's cross-check must notice.
sed '$s/"a":[0-9][0-9]*/"a":999999999/' "$DIR/r1.jsonl" >"$DIR/r1_tampered.jsonl"
expect_exit 3 "$CLI" replay --log="$DIR/r1_tampered.jsonl"

# --- Durability: checkpoint, SIGKILL, resume, byte-identical splice. ---
"$CLI" gen --kind=planted --n=64 --m=128 --alpha=0.5 --radius=1 --seed=7 \
       --out="$DIR/w2.tmw" >/dev/null

# Reference: the uninterrupted run, checkpointing on the same cadence
# (and under the same fault seed) so its event stream is comparable.
"$CLI" run --in="$DIR/w2.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
       --checkpoint-every=50 --faults=seed=1 --record="$DIR/ref.jsonl" \
       --report="$DIR/ref_report.json" --out="$DIR/ref_out.txt" >/dev/null
grep -q '"label":"ckpt"' "$DIR/ref.jsonl"

# Same run, but the fault plan SIGKILLs the process mid-phase (137 =
# 128 + SIGKILL). The cadence guarantees a resumable file exists.
expect_exit 137 "$CLI" run --in="$DIR/w2.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
       --checkpoint="$DIR/ck.tmw" --checkpoint-every=50 \
       --faults=seed=1,kill=2000 --record="$DIR/dead.jsonl" --out=/dev/null
test -s "$DIR/ck.tmw"

# Resume picks up from the snapshot and finishes the run.
"$CLI" resume --checkpoint="$DIR/ck.tmw" --in="$DIR/w2.tmw" \
       --record="$DIR/res.jsonl" --report="$DIR/res_report.json" \
       --out="$DIR/res_out.txt" >"$DIR/resume.txt"
grep -q "resumed from checkpoint seq" "$DIR/resume.txt"

# Tentpole property: outputs and report match the uninterrupted run,
# and the reference log equals [prefix up to the snapshot's ckpt note]
# + [resumed log] byte for byte.
cmp "$DIR/ref_out.txt" "$DIR/res_out.txt"
cmp "$DIR/ref_report.json" "$DIR/res_report.json"
SEQ="$(sed -n 's/.*resumed from checkpoint seq \([0-9][0-9]*\).*/\1/p' "$DIR/resume.txt")"
CUT="$(grep -n "\"label\":\"ckpt\"" "$DIR/ref.jsonl" | awk -F: -v seq="$SEQ" \
  '$0 ~ "\"a\":" seq "," {print $1; exit}')"
test -n "$CUT"
head -n "$CUT" "$DIR/ref.jsonl" >"$DIR/spliced.jsonl"
cat "$DIR/res.jsonl" >>"$DIR/spliced.jsonl"
cmp "$DIR/ref.jsonl" "$DIR/spliced.jsonl"

# 5: a corrupt checkpoint is rejected whole — truncated or bit-flipped,
# never a partial load.
head -c 100 "$DIR/ck.tmw" >"$DIR/ck_trunc.tmw"
expect_exit 5 "$CLI" resume --checkpoint="$DIR/ck_trunc.tmw" --in="$DIR/w2.tmw" --out=/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$DIR/ck.tmw" "$DIR/ck_flip.tmw" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[len(data) // 2] ^= 0xFF
open(sys.argv[2], 'wb').write(bytes(data))
EOF
  expect_exit 5 "$CLI" resume --checkpoint="$DIR/ck_flip.tmw" --in="$DIR/w2.tmw" --out=/dev/null
fi
# --checkpoint without a cadence is a usage error, not a silent no-op.
expect_exit 2 "$CLI" run --in="$DIR/w2.tmw" --algo=unknown_d --alpha=0.5 --seed=11 \
       --checkpoint="$DIR/nope.tmw" --out=/dev/null

# --- Supervised (mimic) runs: healthy = 0, quarantine degrades to 4. ---
"$CLI" run --in="$DIR/w2.tmw" --algo=mimic --seed=5 --phase-rounds=900,900 \
       --out=/dev/null --report="$DIR/mimic.json" >"$DIR/mimic.txt"
grep -q "supervisor:" "$DIR/mimic.txt"
expect_exit 4 "$CLI" run --in="$DIR/w2.tmw" --algo=mimic --seed=5 --faults=seed=2 \
       --sabotage=3 --phase-rounds=200 --report="$DIR/mimic_deg.json" --out=/dev/null
if command -v jq >/dev/null 2>&1; then
  jq -e '.degraded.quarantined == [3]' "$DIR/mimic_deg.json" >/dev/null
fi

echo "cli workflow OK"
