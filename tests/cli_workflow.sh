#!/usr/bin/env bash
# End-to-end smoke test of the tmwia_cli workflow: gen -> info -> run
# (two algorithms) -> eval. Usage: cli_workflow.sh <path-to-tmwia_cli>
#
# CLI output always goes to a file first and is grepped from there:
# piping straight into `grep -q` lets grep exit at the first match and
# kill the CLI with SIGPIPE mid-write, which `set -o pipefail` then
# reports as a (flaky) failure.
set -euo pipefail

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" gen --kind=planted --n=128 --m=128 --alpha=0.5 --radius=1 --seed=4 \
       --out="$DIR/world.tmw" >"$DIR/gen.txt"
grep -q "wrote planted instance" "$DIR/gen.txt"

"$CLI" info --in="$DIR/world.tmw" >"$DIR/info.txt"
grep -q "players: 128" "$DIR/info.txt"
grep -q "communities: 1" "$DIR/info.txt"

"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=5 \
       --out="$DIR/est.txt" >"$DIR/run.txt"
grep -q "rounds" "$DIR/run.txt"
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/est.txt" >"$DIR/eval.txt"
grep -q "overall mean error" "$DIR/eval.txt"

# Solo must be exact: zero overall error.
"$CLI" run --in="$DIR/world.tmw" --algo=solo --seed=6 --out="$DIR/solo.txt" >/dev/null
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/solo.txt" >"$DIR/solo_eval.txt"
grep -q "overall mean error: 0 /" "$DIR/solo_eval.txt"

# A faulty run degrades gracefully and prints its fault report.
"$CLI" run --in="$DIR/world.tmw" --algo=small --d=2 --alpha=0.5 --seed=7 \
       --faults=seed=3,crash=0.1@40-200,probe=0.05,retry=3 \
       --out="$DIR/faulty.txt" >"$DIR/faulty_run.txt"
grep -q "fault report:" "$DIR/faulty_run.txt"
grep -q "probe_failures:" "$DIR/faulty_run.txt"

# Observability: --metrics/--trace emit machine-readable artifacts, and
# a fixed seed gives byte-identical artifacts across --threads.
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=1 --metrics="$DIR/m1.json" --trace="$DIR/t1.jsonl" \
       --out="$DIR/obs1.txt" >/dev/null
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=4 --metrics="$DIR/m4.json" --trace="$DIR/t4.jsonl" \
       --out="$DIR/obs4.txt" >/dev/null
cmp "$DIR/m1.json" "$DIR/m4.json"
cmp "$DIR/t1.jsonl" "$DIR/t4.jsonl"
cmp "$DIR/obs1.txt" "$DIR/obs4.txt"
if command -v jq >/dev/null 2>&1; then
  jq -e '.counters and .gauges and .histograms' "$DIR/m1.json" >/dev/null
  jq -es 'length > 0' "$DIR/t1.jsonl" >/dev/null
fi
grep -q '"t":0' "$DIR/t1.jsonl"

# Flight recorder: --record logs the run as an event stream, and a
# fixed seed gives a byte-identical log across --threads.
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=1 --record="$DIR/r1.jsonl" --report="$DIR/report1.json" \
       --out="$DIR/rec1.txt" >/dev/null
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --threads=4 --record="$DIR/r4.jsonl" --report="$DIR/report4.json" \
       --out="$DIR/rec4.txt" >/dev/null
cmp "$DIR/r1.jsonl" "$DIR/r4.jsonl"
cmp "$DIR/report1.json" "$DIR/report4.json"
if command -v jq >/dev/null 2>&1; then
  # Well-formed JSONL, opened by run_begin, closed by run_end, every
  # record carrying the logical clock.
  jq -es 'length > 2 and .[0].ev == "run_begin" and .[-1].ev == "run_end"
          and all(has("t"))' "$DIR/r1.jsonl" >/dev/null
  jq -e '.algo == "unknown_d" and (.timeline | length > 0)' \
    "$DIR/report1.json" >/dev/null
fi

# inspect renders the timeline; replay reconstructs the billboard from
# the log and cross-checks it against the recorded totals.
"$CLI" inspect --log="$DIR/r1.jsonl" >"$DIR/inspect.txt"
grep -q "run timeline" "$DIR/inspect.txt"
grep -q "probe cost:" "$DIR/inspect.txt"
"$CLI" replay --log="$DIR/r1.jsonl" >"$DIR/replay.txt"
grep -q "replay clean" "$DIR/replay.txt"

# Same for a faulted scheduler-free run: record, then replay, with the
# fault overlay visible in inspect.
"$CLI" run --in="$DIR/world.tmw" --algo=small --d=2 --alpha=0.5 --seed=7 \
       --faults=seed=3,crash=0.1@40-200,probe=0.05,retry=3 \
       --record="$DIR/rf.jsonl" --out=/dev/null >/dev/null
"$CLI" inspect --log="$DIR/rf.jsonl" >"$DIR/inspect_f.txt"
grep -q "fault overlay" "$DIR/inspect_f.txt"
"$CLI" replay --log="$DIR/rf.jsonl" >"$DIR/replay_f.txt"
grep -q "replay clean" "$DIR/replay_f.txt"

# The binary framing replays identically.
"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=9 \
       --record="$DIR/r.bin" --record-format=binary --out=/dev/null >/dev/null
"$CLI" replay --log="$DIR/r.bin" >"$DIR/replay_bin.txt"
grep -q "replay clean" "$DIR/replay_bin.txt"

# Generated --help comes from the flag table; unknown flags are rejected.
"$CLI" --help >"$DIR/help.txt"
grep -q -- "--metrics=FILE" "$DIR/help.txt"
grep -q -- "--faults=SPEC" "$DIR/help.txt"
if "$CLI" run --in="$DIR/world.tmw" --algo=solo --bogus=1 \
     --out=/dev/null 2>"$DIR/badflag.txt"; then
  echo "expected failure for unknown flag" >&2
  exit 1
fi
grep -q "unknown flag --bogus" "$DIR/badflag.txt"

# Bad inputs fail cleanly.
if "$CLI" run --in="$DIR/world.tmw" --algo=nonsense --out=/dev/null 2>/dev/null; then
  echo "expected failure for unknown algo" >&2
  exit 1
fi
if "$CLI" info --in="$DIR/missing.tmw" 2>/dev/null; then
  echo "expected failure for missing file" >&2
  exit 1
fi
if "$CLI" run --in="$DIR/world.tmw" --algo=solo --faults=warp=0.5 \
     --out=/dev/null 2>/dev/null; then
  echo "expected failure for malformed fault plan" >&2
  exit 1
fi

echo "cli workflow OK"
