#!/usr/bin/env bash
# End-to-end smoke test of the tmwia_cli workflow: gen -> info -> run
# (two algorithms) -> eval. Usage: cli_workflow.sh <path-to-tmwia_cli>
#
# CLI output always goes to a file first and is grepped from there:
# piping straight into `grep -q` lets grep exit at the first match and
# kill the CLI with SIGPIPE mid-write, which `set -o pipefail` then
# reports as a (flaky) failure.
set -euo pipefail

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" gen --kind=planted --n=128 --m=128 --alpha=0.5 --radius=1 --seed=4 \
       --out="$DIR/world.tmw" >"$DIR/gen.txt"
grep -q "wrote planted instance" "$DIR/gen.txt"

"$CLI" info --in="$DIR/world.tmw" >"$DIR/info.txt"
grep -q "players: 128" "$DIR/info.txt"
grep -q "communities: 1" "$DIR/info.txt"

"$CLI" run --in="$DIR/world.tmw" --algo=unknown_d --alpha=0.5 --seed=5 \
       --out="$DIR/est.txt" >"$DIR/run.txt"
grep -q "rounds" "$DIR/run.txt"
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/est.txt" >"$DIR/eval.txt"
grep -q "overall mean error" "$DIR/eval.txt"

# Solo must be exact: zero overall error.
"$CLI" run --in="$DIR/world.tmw" --algo=solo --seed=6 --out="$DIR/solo.txt" >/dev/null
"$CLI" eval --in="$DIR/world.tmw" --outputs="$DIR/solo.txt" >"$DIR/solo_eval.txt"
grep -q "overall mean error: 0 /" "$DIR/solo_eval.txt"

# A faulty run degrades gracefully and prints its fault report.
"$CLI" run --in="$DIR/world.tmw" --algo=small --d=2 --alpha=0.5 --seed=7 \
       --faults=seed=3,crash=0.1@40-200,probe=0.05,retry=3 \
       --out="$DIR/faulty.txt" >"$DIR/faulty_run.txt"
grep -q "fault report:" "$DIR/faulty_run.txt"
grep -q "probe_failures:" "$DIR/faulty_run.txt"

# Bad inputs fail cleanly.
if "$CLI" run --in="$DIR/world.tmw" --algo=nonsense --out=/dev/null 2>/dev/null; then
  echo "expected failure for unknown algo" >&2
  exit 1
fi
if "$CLI" info --in="$DIR/missing.tmw" 2>/dev/null; then
  echo "expected failure for missing file" >&2
  exit 1
fi
if "$CLI" run --in="$DIR/world.tmw" --algo=solo --faults=warp=0.5 \
     --out=/dev/null 2>/dev/null; then
  echo "expected failure for malformed fault plan" >&2
  exit 1
fi

echo "cli workflow OK"
