// Tests for the Section 6 budget-to-alpha machinery: monotonicity of
// the cost model, the budget search, and (the contract that matters)
// the estimate genuinely upper-bounding the measured cost of the
// implementation it models. Plus the distributed Byzantine wrapper.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/core/budget.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/zero_radius_strategy.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

TEST(Budget, CostsIncreaseAsAlphaShrinks) {
  const auto params = Params::practical();
  for (std::size_t n : {256, 1024}) {
    double prev = 0.0;
    for (double alpha : {1.0, 0.5, 0.25, 0.125}) {
      const double c = estimated_unknown_d_rounds(alpha, n, n, params);
      EXPECT_GE(c, prev) << "alpha " << alpha;
      prev = c;
    }
  }
}

TEST(Budget, ComponentsArePositiveAndOrdered) {
  const auto params = Params::practical();
  const double zr = estimated_zero_radius_rounds(0.5, 512, 512, params);
  const double sr = estimated_small_radius_rounds(0.5, 4, 512, 512, params);
  EXPECT_GT(zr, 0.0);
  // Small Radius repeats Zero Radius K*s times; it must dominate.
  EXPECT_GT(sr, zr);
}

TEST(Budget, SmallestAlphaForBudgetBasics) {
  const auto params = Params::practical();
  const std::size_t n = 512;
  // A giant budget admits the smallest representable alpha (1/n) —
  // note the model is deliberately pessimistic (costs ~ 1/alpha^2), so
  // "giant" really means giant.
  const auto huge = smallest_alpha_for_budget(1ull << 44, n, n, params);
  ASSERT_TRUE(huge.has_value());
  EXPECT_LE(*huge, 2.0 / static_cast<double>(n));
  // A zero budget admits nothing.
  EXPECT_FALSE(smallest_alpha_for_budget(0, n, n, params).has_value());
}

TEST(Budget, ReturnedAlphaRespectsBudget) {
  const auto params = Params::practical();
  const std::size_t n = 512;
  for (std::uint64_t budget : {5000u, 20000u, 100000u}) {
    const auto alpha = smallest_alpha_for_budget(budget, n, n, params);
    if (!alpha.has_value()) continue;
    EXPECT_LE(estimated_unknown_d_rounds(*alpha, n, n, params),
              static_cast<double>(budget));
    // And halving once more would blow it (it is the smallest).
    if (*alpha / 2.0 * static_cast<double>(n) >= 1.0) {
      EXPECT_GT(estimated_unknown_d_rounds(*alpha / 2.0, n, n, params),
                static_cast<double>(budget));
    }
  }
}

TEST(Budget, EstimateUpperBoundsMeasuredCost) {
  // The whole point of the over-counting model: a run with the chosen
  // alpha must not exceed the estimate.
  const std::size_t n = 256;
  const double alpha = 0.5;
  const auto params = Params::practical();
  rng::Rng gen(1);
  auto inst = matrix::planted_community(n, n, {alpha, 2}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = find_preferences_unknown_d(oracle, nullptr, alpha, params, rng::Rng(2));
  EXPECT_LE(static_cast<double>(res.rounds),
            estimated_unknown_d_rounds(alpha, n, n, params));
}

// --- the distributed Byzantine wrapper -----------------------------------

TEST(ForgingStrategy, HonestPeersSurviveProtocolLevelForgery) {
  const std::size_t n = 128;
  const double alpha = 0.5;
  rng::Rng gen(3);
  auto inst = matrix::planted_community(n, n, {alpha, 0}, gen);
  const rng::Rng coins(4);
  const auto params = Params::practical();

  std::vector<PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(n);
  std::iota(objects.begin(), objects.end(), 0u);

  // A fifth of the outsiders run the forging wrapper.
  const auto outsiders = inst.outsiders();
  std::vector<bool> is_liar(n, false);
  for (std::size_t i = 0; i < outsiders.size() / 3; ++i) is_liar[outsiders[i]] = true;
  const bits::BitVector forged = inst.centers[0] ^ bits::BitVector(n, true);

  billboard::ProbeOracle oracle(inst.matrix);
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  std::vector<ZeroRadiusStrategy*> honest(n, nullptr);
  for (PlayerId p = 0; p < n; ++p) {
    ZeroRadiusStrategy inner(p, players, objects, alpha, params, coins);
    if (is_liar[p]) {
      strategies.push_back(
          std::make_unique<ForgingZeroRadiusStrategy>(std::move(inner), forged));
    } else {
      auto s = std::make_unique<ZeroRadiusStrategy>(std::move(inner));
      honest[p] = s.get();
      strategies.push_back(std::move(s));
    }
  }

  billboard::RoundScheduler sched(oracle);
  const auto res = sched.run(strategies, 16 * n);
  ASSERT_TRUE(res.all_done);

  for (auto p : inst.communities[0]) {
    ASSERT_NE(honest[p], nullptr);
    EXPECT_EQ(honest[p]->output(), inst.centers[0]) << "player " << p;
  }
}

}  // namespace
}  // namespace tmwia::core
