// Cross-feature integration tests: multiple communities through Large
// Radius, the full unknown-D driver under probe noise, noise+Byzantine
// combined, and serialization round-trips of algorithm outputs.
#include <gtest/gtest.h>

#include <sstream>

#include "tmwia/core/tmwia.hpp"
#include "tmwia/io/serialize.hpp"

namespace tmwia::core {
namespace {

TEST(Integration, TwoLargeDiameterCommunitiesViaUnknownD) {
  // Two communities with D >> log n active simultaneously: Coalesce
  // must keep their candidates separate per group and the virtual Zero
  // Radius must serve both at once.
  const std::size_t n = 512;
  const std::size_t m = 1024;
  rng::Rng gen(1);
  auto inst = matrix::planted_communities(n, m, {{0.4, 16}, {0.4, 24}}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = find_preferences_unknown_d(oracle, nullptr, 0.4, Params::practical(),
                                              rng::Rng(2));
  for (std::size_t c = 0; c < 2; ++c) {
    const auto D = inst.matrix.subset_diameter(inst.communities[c]);
    const auto disc = inst.matrix.discrepancy(res.outputs, inst.communities[c]);
    EXPECT_LE(disc, 6 * D) << "community " << c;
  }
}

TEST(Integration, UnknownDUnderStickyNoise) {
  // End-to-end with noisy reads: the unknown-D search should simply
  // settle on a larger effective D and keep the error at the
  // noise-inflated scale.
  const std::size_t n = 256;
  const double eps = 0.01;
  rng::Rng gen(3);
  auto inst = matrix::planted_community(n, n, {0.5, 1}, gen);

  billboard::ProbeOracle oracle(inst.matrix, billboard::NoiseModel::sticky(eps, 99));
  const auto res = find_preferences_unknown_d(oracle, nullptr, 0.5, Params::practical(),
                                              rng::Rng(4));
  const auto d_eff = static_cast<std::size_t>(
      2 + 4.0 * eps * static_cast<double>(n));  // planted + noise inflation
  const auto disc = inst.matrix.discrepancy(res.outputs, inst.communities[0]);
  EXPECT_LE(disc, 6 * d_eff);
}

TEST(Integration, NoisePlusByzantineIsADocumentedBoundary) {
  // Both failure sources at once expose a real boundary of Zero
  // Radius's Byzantine resilience: sticky read noise makes every honest
  // player's posted vector slightly different, fragmenting the honest
  // vote below the popularity threshold, while the liars' coordinated
  // forgery stays identical — so the forgery can become the ONLY
  // popular candidate, and a singleton candidate is adopted without any
  // probing (Select has no distinguishing coordinates to check). The
  // probing defense (byzantine_test.cpp) therefore requires the exact
  // agreement ZeroRadius assumes; under noise the right tool is Small
  // Radius with the noise-inflated D (noise_test.cpp, bench e13), whose
  // per-part exact-agreement structure Lemma 4.1 restores.
  const std::size_t n = 256;
  const double eps = 0.005;
  rng::Rng gen(5);
  auto inst = matrix::planted_community(n, n, {0.5, 0}, gen);

  billboard::ProbeOracle oracle(inst.matrix, billboard::NoiseModel::sticky(eps, 7));
  BitSpace space(oracle, nullptr);
  const auto outsiders = inst.outsiders();
  std::vector<PlayerId> liars(outsiders.begin(),
                              outsiders.begin() + static_cast<std::ptrdiff_t>(n / 5));
  space.set_byzantine(liars, inst.centers[0] ^ bits::BitVector(n, true));

  std::vector<PlayerId> players(n);
  std::vector<std::uint32_t> objects(n);
  for (std::size_t i = 0; i < n; ++i) {
    players[i] = static_cast<PlayerId>(i);
    objects[i] = static_cast<std::uint32_t>(i);
  }
  const auto raw =
      zero_radius(space, players, objects, 0.5, Params::practical(), rng::Rng(6), n);

  std::size_t worst = 0;
  for (auto p : inst.communities[0]) {
    worst = std::max(worst, raw[p].hamming(inst.matrix.row(p)));
  }
  // The attack lands: some community member adopts forged halves.
  EXPECT_GT(worst, n / 8);
}

TEST(Integration, OutputsSurviveSerializationAndReEvaluation) {
  const std::size_t n = 128;
  rng::Rng gen(7);
  auto inst = matrix::planted_community(n, n, {0.5, 1}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences(oracle, nullptr, 0.5, 2, Params::practical(), rng::Rng(8));

  std::stringstream ss;
  io::save_instance(inst, ss);
  io::save_outputs(res.outputs, ss);

  const auto inst2 = io::load_instance(ss);
  const auto outs2 = io::load_outputs(ss);
  EXPECT_EQ(inst2.matrix.discrepancy(outs2, inst2.communities[0]),
            inst.matrix.discrepancy(res.outputs, inst.communities[0]));
}

TEST(Integration, NormalizedWideMatrixThroughSmallRadius) {
  // m >> n with a small-diameter community, end to end through the
  // reduction: normalize, run Small Radius on the square instance,
  // denormalize, check the 5D guarantee against the real rows.
  const std::size_t n = 64;
  const std::size_t m = 250;
  rng::Rng gen(9);
  auto inst = matrix::planted_community(n, m, {0.5, 1}, gen);
  const auto norm = normalize(inst.matrix);

  billboard::ProbeOracle oracle(norm.expanded);
  std::vector<PlayerId> players(norm.expanded.players());
  std::vector<std::uint32_t> objects(norm.expanded.objects());
  for (std::size_t i = 0; i < players.size(); ++i) players[i] = static_cast<PlayerId>(i);
  for (std::size_t i = 0; i < objects.size(); ++i) objects[i] = static_cast<std::uint32_t>(i);

  const auto sr = small_radius(oracle, nullptr, players, objects, 0.5, 2,
                               Params::practical(), rng::Rng(10), players.size());
  const auto real = denormalize_outputs(norm, sr.outputs);
  for (auto p : inst.communities[0]) {
    EXPECT_LE(real[p].hamming(inst.matrix.row(p)), 10u);
  }
}

}  // namespace
}  // namespace tmwia::core
