// Cross-cutting property and differential tests:
//  * Select vs a brute-force oracle on TriVector candidates (random ?
//    patterns) — the Theorem 3.2 exactness under the bound;
//  * Coalesce structural invariants under fuzzed inputs;
//  * Zero Radius over a *custom* value space (4-valued), the genericity
//    Large Radius's virtual objects depend on;
//  * drift() preserving planted structure;
//  * the paper-constants profile staying correct (its costs degenerate
//    to probe-everything at small n, its guarantees must not).
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/bits/hamming.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/coalesce.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/core/zero_radius.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

using bits::BitVector;
using bits::Tri;
using bits::TriVector;

TriVector random_tri(std::size_t m, double unknown_prob, rng::Rng& rng) {
  TriVector t(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (rng.bernoulli(unknown_prob)) {
      t.set(i, Tri::kUnknown);
    } else {
      t.set_bit(i, rng.coin());
    }
  }
  return t;
}

class SelectDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectDifferential, MatchesBruteForceClosestUnderBound) {
  rng::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m = 64 + rng.uniform(128);
    const std::size_t k = 2 + rng.uniform(10);
    const std::size_t D = rng.uniform(12);
    const auto truth = matrix::random_vector(m, rng);

    std::vector<TriVector> cands;
    // Planted candidate within D under dtilde: copy the truth, flip at
    // most D coordinates, replace some others with '?'.
    {
      TriVector planted = TriVector::from_bits(matrix::flip_random(truth, rng.uniform(D + 1), rng));
      for (std::size_t i = 0; i < m; ++i) {
        if (rng.bernoulli(0.1) && planted.get(i) != Tri::kUnknown &&
            planted.get(i) == (truth.get(i) ? Tri::kOne : Tri::kZero)) {
          planted.set(i, Tri::kUnknown);  // only erase agreements: dtilde intact
        }
      }
      cands.push_back(std::move(planted));
    }
    for (std::size_t i = 1; i < k; ++i) {
      cands.push_back(random_tri(m, 0.15, rng));
    }

    const auto res = select_closest(cands, D, [&](std::uint32_t j) { return truth.get(j); });

    std::size_t best = m + 1;
    for (const auto& c : cands) best = std::min(best, c.dtilde(truth));
    ASSERT_LE(best, D);
    EXPECT_EQ(cands[res.index].dtilde(truth), best) << "trial " << trial;
    EXPECT_LE(res.probes, k * (D + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectDifferential, ::testing::Values(101u, 202u, 303u, 404u));

class CoalesceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoalesceFuzz, StructuralInvariantsHold) {
  rng::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 64 + rng.uniform(64);
    const std::size_t n = 20 + rng.uniform(60);
    const std::size_t D = 1 + rng.uniform(10);
    const std::size_t min_ball = 2 + rng.uniform(n / 3);

    std::vector<BitVector> vs;
    // A few random cluster seeds with varying populations + loose noise.
    const std::size_t clusters = 1 + rng.uniform(4);
    std::vector<BitVector> seeds;
    for (std::size_t c = 0; c < clusters; ++c) {
      seeds.push_back(matrix::random_vector(m, rng));
    }
    while (vs.size() < n) {
      if (rng.bernoulli(0.7)) {
        const auto& s = seeds[rng.uniform(seeds.size())];
        vs.push_back(matrix::flip_random(s, rng.uniform(D + 1), rng));
      } else {
        vs.push_back(matrix::random_vector(m, rng));
      }
    }

    const auto res = coalesce(vs, D, min_ball);

    // Invariant 1: candidate count bounded by how many disjoint balls
    // of >= min_ball vectors can fit.
    EXPECT_LE(res.candidates.size(), n / min_ball + 1);
    EXPECT_LE(res.candidates.size(), res.pre_merge_count);

    // Invariant 2: pairwise dtilde of outputs exceeds the merge bound.
    for (std::size_t i = 0; i < res.candidates.size(); ++i) {
      for (std::size_t j = i + 1; j < res.candidates.size(); ++j) {
        EXPECT_GT(res.candidates[i].dtilde(res.candidates[j]), 5 * D);
      }
    }

    // Invariant 3: determinism.
    const auto res2 = coalesce(vs, D, min_ball);
    EXPECT_EQ(res.candidates, res2.candidates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalesceFuzz, ::testing::Values(11u, 22u, 33u));

// --- Zero Radius over a custom 4-valued space -----------------------------

/// A space whose objects carry values in {0,1,2,3}: grades per (player,
/// object) from a fixed table, probes counted per player. Exercises the
/// genericity Large Radius's virtual objects rely on.
struct QuadSpace {
  using Value = std::uint8_t;

  std::vector<std::vector<Value>> table;  // player x object
  std::vector<std::size_t> probes;

  Value probe(PlayerId p, std::uint32_t o) {
    ++probes[p];
    return table[p][o];
  }
};

TEST(ZeroRadiusGeneric, FourValuedSpaceReconstructsCommunity) {
  const std::size_t n = 128;
  const std::size_t m = 128;
  rng::Rng rng(77);

  QuadSpace space;
  space.probes.assign(n, 0);
  space.table.assign(n, std::vector<std::uint8_t>(m));
  // Half the players share one 4-valued row; the rest are random.
  std::vector<std::uint8_t> shared(m);
  for (auto& v : shared) v = static_cast<std::uint8_t>(rng.uniform(4));
  for (std::size_t p = 0; p < n; ++p) {
    if (p % 2 == 0) {
      space.table[p] = shared;
    } else {
      for (auto& v : space.table[p]) v = static_cast<std::uint8_t>(rng.uniform(4));
    }
  }

  std::vector<PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(m);
  std::iota(objects.begin(), objects.end(), 0u);

  const auto out =
      zero_radius(space, players, objects, 0.5, Params::practical(), rng::Rng(78), n);
  for (std::size_t p = 0; p < n; p += 2) {
    EXPECT_EQ(out[p], shared) << "player " << p;
  }
  // Cost is shared: members probe far fewer than m objects.
  std::size_t max_probes = 0;
  for (std::size_t p = 0; p < n; ++p) max_probes = std::max(max_probes, space.probes[p]);
  EXPECT_LT(max_probes, m);
}

// --- drift() ----------------------------------------------------------------

TEST(Drift, BlockDriftPreservesDiameter) {
  rng::Rng rng(91);
  auto inst = matrix::planted_community(64, 128, {0.5, 2}, rng);
  const auto before = inst.matrix.subset_diameter(inst.communities[0]);
  matrix::drift(inst, 10, 0, rng);
  EXPECT_EQ(inst.matrix.subset_diameter(inst.communities[0]), before);
  // Members moved with the center.
  for (auto p : inst.communities[0]) {
    EXPECT_LE(inst.matrix.row(p).hamming(inst.centers[0]), 2u);
  }
}

TEST(Drift, JitterGrowsDiameterBoundedly) {
  rng::Rng rng(92);
  auto inst = matrix::planted_community(64, 128, {0.5, 0}, rng);
  matrix::drift(inst, 0, 3, rng);
  const auto d = inst.matrix.subset_diameter(inst.communities[0]);
  EXPECT_GT(d, 0u);
  EXPECT_LE(d, 6u);  // 2 * player_flips
}

TEST(Drift, CenterActuallyMoves) {
  rng::Rng rng(93);
  auto inst = matrix::planted_community(32, 64, {1.0, 0}, rng);
  const auto before = inst.centers[0];
  matrix::drift(inst, 8, 0, rng);
  EXPECT_EQ(inst.centers[0].hamming(before), 8u);
}

// --- the paper-constants profile ----------------------------------------

TEST(PaperProfile, ZeroRadiusStillExactJustExpensive) {
  const std::size_t n = 256;
  rng::Rng gen(95);
  auto inst = matrix::planted_community(n, n, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  std::vector<PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(n);
  std::iota(objects.begin(), objects.end(), 0u);

  const auto out = zero_radius_bits(oracle, nullptr, players, objects, 0.5,
                                    Params::paper(), rng::Rng(96));
  for (auto p : inst.communities[0]) {
    EXPECT_EQ(out[p], inst.centers[0]);
  }
  // The paper leaf threshold 8c ln n / alpha ~ 89 stops the recursion
  // two levels down: leaves of ~64 objects, i.e. each player pays about
  // a quarter of m — safe constants, little sharing at this size.
  const auto leaf = zero_radius_leaf_threshold(n, 0.5, Params::paper());
  EXPECT_GE(oracle.max_invocations(), leaf / 2);
  EXPECT_LE(oracle.max_invocations(), n);
}

}  // namespace
}  // namespace tmwia::core
