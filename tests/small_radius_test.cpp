// Integration tests for Algorithm Small Radius (Fig. 4 / Theorem 4.4):
// the 5D output guarantee for planted (alpha, D) communities and the
// sublinearity of the probing cost.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/small_radius.hpp"
#include "tmwia/core/zero_radius.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

std::vector<PlayerId> iota_players(std::size_t n) {
  std::vector<PlayerId> p(n);
  std::iota(p.begin(), p.end(), 0u);
  return p;
}

std::vector<std::uint32_t> iota_objects(std::size_t m) {
  std::vector<std::uint32_t> o(m);
  std::iota(o.begin(), o.end(), 0u);
  return o;
}

TEST(SmallRadiusParts, ScalesAsDToTheThreeHalves) {
  Params p;  // paper constants: 100 * D^1.5
  EXPECT_EQ(small_radius_parts(0, p), 1u);
  EXPECT_EQ(small_radius_parts(1, p), 100u);
  EXPECT_EQ(small_radius_parts(4, p), 800u);
  Params q = Params::practical();  // 2 * D^1.5
  EXPECT_EQ(small_radius_parts(4, q), 16u);
}

TEST(SmallRadius, RejectsBadAlpha) {
  matrix::PreferenceMatrix mat(4, 4);
  billboard::ProbeOracle oracle(mat);
  EXPECT_THROW(small_radius(oracle, nullptr, iota_players(4), iota_objects(4), 0.0, 1,
                            Params::practical(), rng::Rng(1), 4),
               std::invalid_argument);
}

TEST(SmallRadius, DZeroEquivalentToZeroRadiusPlusSelect) {
  // With D = 0 there is one part per iteration and the guarantee
  // degenerates to exact reconstruction for the community.
  const std::size_t n = 256;
  rng::Rng gen(21);
  auto inst = matrix::planted_community(n, n, {0.5, 0}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = small_radius(oracle, nullptr, iota_players(n), iota_objects(n), 0.5, 0,
                                Params::practical(), rng::Rng(22), n);
  EXPECT_EQ(res.parts, 1u);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(res.outputs[p], inst.centers[0]);
  }
}

struct SrCase {
  std::size_t n;
  std::size_t m;
  double alpha;
  std::size_t radius;  // members flip `radius` coords; diameter <= 2*radius
  std::uint64_t seed;
};

class SmallRadiusGuarantee : public ::testing::TestWithParam<SrCase> {};

TEST_P(SmallRadiusGuarantee, OutputWithinFiveDOfTruth) {
  const auto [n, m, alpha, radius, seed] = GetParam();
  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, m, {alpha, radius}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);
  ASSERT_LE(D, 2 * radius);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = small_radius(oracle, nullptr, iota_players(n), iota_objects(m), alpha,
                                std::max<std::size_t>(D, 1), Params::practical(),
                                rng::Rng(seed ^ 0xabc), n);

  const auto bound = 5 * std::max<std::size_t>(D, 1);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_LE(res.outputs[p].hamming(inst.matrix.row(p)), bound) << "player " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SmallRadiusGuarantee,
                         ::testing::Values(SrCase{128, 512, 0.5, 1, 31},
                                           SrCase{128, 512, 0.5, 2, 32},
                                           SrCase{256, 1024, 0.5, 3, 33},
                                           SrCase{256, 1024, 0.25, 2, 34},
                                           SrCase{256, 2048, 0.5, 4, 35}));

TEST(SmallRadius, CostMatchesTheoremBoundShape) {
  // Theorem 4.4: the probing rounds are O(K * s * (D + leaf)) where
  // s = Theta(D^{3/2}) and leaf = Theta(log n / (alpha/5)) is the Zero
  // Radius leaf threshold at the reduced frequency. Check the explicit
  // bound with a small constant — this is the m-independent part; the
  // m/n >= 1 regime additionally pays the paper's "factor of m/n".
  const std::size_t n = 512;
  const std::size_t m = 512;
  const double alpha = 0.5;
  const std::size_t radius = 2;
  rng::Rng gen(41);
  auto inst = matrix::planted_community(n, m, {alpha, radius}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto params = Params::practical();
  const auto D = std::max<std::size_t>(1, inst.matrix.subset_diameter(inst.communities[0]));
  const auto res = small_radius(oracle, nullptr, iota_players(n), iota_objects(m), alpha, D,
                                params, rng::Rng(42), n);

  const auto leaf = zero_radius_leaf_threshold(n, alpha / params.sr_vote_div, params);
  const auto bound = 4 * res.iterations * res.parts * (D + leaf);
  EXPECT_LT(oracle.max_invocations(), bound);
}

TEST(SmallRadius, CheaperThanSoloWhenCommunityIsLarge) {
  // The collaborative win at laptop scale needs a large community
  // (alpha = 1 keeps the alpha/5 leaf threshold small) and tiny D.
  const std::size_t n = 4096;
  const std::size_t m = 4096;
  rng::Rng gen(43);
  auto inst = matrix::planted_community(n, m, {1.0, 1}, gen);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto D = std::max<std::size_t>(1, inst.matrix.subset_diameter(inst.communities[0]));
  (void)small_radius(oracle, nullptr, iota_players(n), iota_objects(m), 1.0, D,
                     Params::practical(), rng::Rng(44), n);
  // At n = 4096 the crossover has happened but the margin is modest
  // (approximately 1.6x here); the gap widens with n since the cost is
  // polylog while solo is linear (see bench/e4_small_radius).
  EXPECT_LT(oracle.max_invocations(), 3 * m / 4) << "collaboration should beat solo probing";
}

TEST(SmallRadius, DeterministicGivenSeed) {
  const std::size_t n = 128;
  rng::Rng gen(51);
  auto inst = matrix::planted_community(n, 256, {0.5, 2}, gen);

  billboard::ProbeOracle o1(inst.matrix);
  billboard::ProbeOracle o2(inst.matrix);
  const auto r1 = small_radius(o1, nullptr, iota_players(n), iota_objects(256), 0.5, 4,
                               Params::practical(), rng::Rng(52), n);
  const auto r2 = small_radius(o2, nullptr, iota_players(n), iota_objects(256), 0.5, 4,
                               Params::practical(), rng::Rng(52), n);
  EXPECT_EQ(r1.outputs, r2.outputs);
}

TEST(SmallRadius, WorksOnObjectSubset) {
  const std::size_t n = 128;
  const std::size_t m = 512;
  rng::Rng gen(61);
  auto inst = matrix::planted_community(n, m, {0.5, 1}, gen);

  std::vector<std::uint32_t> objects;
  for (std::uint32_t o = 0; o < 300; o += 2) objects.push_back(o);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = small_radius(oracle, nullptr, iota_players(n), objects, 0.5, 2,
                                Params::practical(), rng::Rng(62), n);

  for (PlayerId p : inst.communities[0]) {
    const auto truth = inst.matrix.row(p).project(objects);
    EXPECT_LE(res.outputs[p].hamming(truth), 10u);
  }
}

}  // namespace
}  // namespace tmwia::core
