// ProtocolAuditor: (a) each seeded violation class is caught, (b) the
// real algorithm tower — Select, RSelect, Zero/Small/Large Radius,
// FindPreferences, scheduler runs, fault-injected runs — audits clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/billboard/protocol_auditor.hpp"
#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/billboard/strategies.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/rselect.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/rng.hpp"

namespace {

using namespace tmwia;
using billboard::AuditViolation;
using billboard::ProtocolAuditor;

std::size_t count_kind(const billboard::AuditReport& report, AuditViolation::Kind kind) {
  return static_cast<std::size_t>(
      std::count_if(report.violations.begin(), report.violations.end(),
                    [&](const AuditViolation& v) { return v.kind == kind; }));
}

/// A protocol-breaking strategy: every time it gets a result it
/// immediately probes a SECOND object in the same round, bypassing the
/// scheduler's one-probe budget by talking to the oracle directly.
class DoubleProbeStrategy final : public billboard::PlayerStrategy {
 public:
  DoubleProbeStrategy(billboard::ProbeOracle& oracle, matrix::PlayerId self,
                      std::size_t objects)
      : oracle_(&oracle), self_(self), objects_(objects) {}

  std::optional<billboard::ObjectId> next_probe(const billboard::RoundView&) override {
    return next_ < objects_ ? std::optional<billboard::ObjectId>(next_) : std::nullopt;
  }
  void on_result(billboard::ObjectId, bool) override {
    const auto extra = (next_ + 1) % objects_;
    (void)oracle_->probe(self_, static_cast<billboard::ObjectId>(extra));  // the cheat
    ++next_;
  }
  [[nodiscard]] bool done() const override { return next_ >= objects_; }

 private:
  billboard::ProbeOracle* oracle_;
  matrix::PlayerId self_;
  std::size_t objects_;
  std::size_t next_ = 0;
};

/// A snooping strategy: reads player 0's result for the object player 0
/// probes THIS round (SoloStrategy probes object r in round r), before
/// the round ends and the result is posted.
class SnoopStrategy final : public billboard::PlayerStrategy {
 public:
  SnoopStrategy(billboard::ProbeOracle& oracle, std::size_t objects)
      : oracle_(&oracle), objects_(objects) {}

  std::optional<billboard::ObjectId> next_probe(const billboard::RoundView& view) override {
    const auto target = static_cast<billboard::ObjectId>(view.round());
    if (target < objects_ && oracle_->is_probed(0, target)) {
      (void)oracle_->probed_value(0, target);  // the leak
    }
    return next_ < objects_ ? std::optional<billboard::ObjectId>(next_) : std::nullopt;
  }
  void on_result(billboard::ObjectId, bool) override { ++next_; }
  [[nodiscard]] bool done() const override { return next_ >= objects_; }

 private:
  billboard::ProbeOracle* oracle_;
  std::size_t objects_;
  std::size_t next_ = 0;
};

matrix::Instance small_instance(std::size_t n, std::uint64_t seed, double frac = 0.5,
                                std::size_t d = 0) {
  rng::Rng gen(seed);
  return matrix::planted_community(n, n, {frac, d}, gen);
}

TEST(ProtocolAuditor, CatchesDoubleProbeInOneRound) {
  auto inst = small_instance(8, 1);
  billboard::ProbeOracle oracle(inst.matrix);
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies(8);
  strategies[0] = std::make_unique<DoubleProbeStrategy>(oracle, 0, 8);
  billboard::RoundScheduler sched(oracle);
  sched.run(strategies, 16);

  const auto report = auditor.report();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_kind(report, AuditViolation::Kind::kDoubleProbe), 1u);
  EXPECT_EQ(count_kind(report, AuditViolation::Kind::kReadBeforePost), 0u);
}

TEST(ProtocolAuditor, CatchesReadBeforePost) {
  auto inst = small_instance(8, 2);
  billboard::ProbeOracle oracle(inst.matrix);
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  // Player 0 probes object r in round r; player 1 snoops it in-round.
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies(8);
  strategies[0] = std::make_unique<billboard::SoloStrategy>(8);
  strategies[1] = std::make_unique<SnoopStrategy>(oracle, 8);
  billboard::RoundScheduler sched(oracle);
  sched.run(strategies, 16);

  const auto report = auditor.report();
  EXPECT_FALSE(report.clean());
  EXPECT_GE(count_kind(report, AuditViolation::Kind::kReadBeforePost), 1u);
  EXPECT_EQ(count_kind(report, AuditViolation::Kind::kDoubleProbe), 0u);
}

TEST(ProtocolAuditor, CatchesPhantomPost) {
  ProtocolAuditor auditor(4, 4);
  auditor.begin_round(0);
  auditor.on_post(2, 3);  // a post with no probe behind it
  auditor.end_round();

  const auto report = auditor.report();
  EXPECT_EQ(count_kind(report, AuditViolation::Kind::kPhantomPost), 1u);
  EXPECT_EQ(report.violations[0].player, 2u);
  EXPECT_EQ(report.violations[0].object, 3u);
}

TEST(ProtocolAuditor, CatchesCostAccountingMismatch) {
  auto inst = small_instance(8, 3);
  billboard::ProbeOracle oracle(inst.matrix);
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  for (matrix::PlayerId p = 0; p < 8; ++p) {
    for (matrix::ObjectId o = 0; o < 4; ++o) (void)oracle.probe(p, o);
  }

  // Straight ledgers agree ...
  auditor.verify_invocations(oracle.snapshot());
  auditor.verify_totals(oracle.total_invocations(), oracle.max_invocations());
  EXPECT_TRUE(auditor.report().clean());

  // ... a tampered per-player ledger is caught ...
  auto cooked = oracle.snapshot();
  cooked[3] += 2;
  auditor.verify_invocations(cooked);
  EXPECT_EQ(count_kind(auditor.report(), AuditViolation::Kind::kCostMismatch), 1u);

  // ... and so is a report whose totals hide probe spend.
  auditor.verify_totals(oracle.total_invocations() - 1, oracle.max_invocations());
  EXPECT_EQ(count_kind(auditor.report(), AuditViolation::Kind::kCostMismatch), 2u);
}

TEST(ProtocolAuditor, ReportJsonIsStructured) {
  ProtocolAuditor auditor(2, 2);
  auditor.begin_round(0);
  auditor.on_post(1, 1);
  auditor.end_round();
  const auto json = auditor.report().to_json();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"phantom_post\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\":["), std::string::npos);
}

// ---- clean audits over the real tower -------------------------------

/// Attach a fresh auditor, run `body(oracle)`, cross-check every cost
/// ledger, and assert a clean report.
template <typename Body>
void expect_clean_audit(billboard::ProbeOracle& oracle, Body body) {
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);
  body();
  auditor.verify_invocations(oracle.snapshot());
  const auto report = auditor.report();
  EXPECT_TRUE(report.clean()) << report.to_json();
  oracle.set_auditor(nullptr);
}

TEST(ProtocolAuditor, SelectAndRSelectAuditClean) {
  auto inst = small_instance(32, 4);
  billboard::ProbeOracle oracle(inst.matrix);
  expect_clean_audit(oracle, [&] {
    std::vector<bits::BitVector> cands{inst.matrix.row(0), inst.matrix.row(31)};
    const auto params = core::Params::practical();
    for (matrix::PlayerId p = 0; p < 4; ++p) {
      (void)core::select_closest(cands, 0,
                                 [&](std::uint32_t j) { return oracle.probe(p, j); });
      rng::Rng prng = rng::Rng(4).split(p);
      (void)core::rselect_closest(
          cands, 32, [&](std::uint32_t j) { return oracle.probe(p, j); }, prng, params);
    }
  });
}

TEST(ProtocolAuditor, ZeroRadiusAuditsCleanWithReportTotals) {
  auto inst = small_instance(64, 5);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  const auto players = [&] {
    std::vector<matrix::PlayerId> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<matrix::PlayerId>(i);
    return v;
  }();
  std::vector<std::uint32_t> objects(64);
  for (std::size_t i = 0; i < objects.size(); ++i) objects[i] = static_cast<std::uint32_t>(i);

  (void)core::zero_radius_bits(oracle, &board, players, objects, 0.5,
                               core::Params::practical(), rng::Rng(5));
  auditor.verify_invocations(oracle.snapshot());
  auditor.verify_totals(oracle.total_invocations(), oracle.max_invocations());
  const auto report = auditor.report();
  EXPECT_TRUE(report.clean()) << report.to_json();
  EXPECT_GT(report.probes_audited, 0u);
}

TEST(ProtocolAuditor, FindPreferencesTowerAuditsClean) {
  // D=0 -> Zero Radius, D=2 -> Small Radius, D=16 -> Large Radius: all
  // three Fig. 1 branches run under audit with RunReport cross-checks.
  for (const std::size_t D : {std::size_t{0}, std::size_t{2}, std::size_t{16}}) {
    auto inst = small_instance(128, 6 + D, 0.5, D / 2);
    billboard::ProbeOracle oracle(inst.matrix);
    billboard::Billboard board;
    ProtocolAuditor auditor(oracle.players(), oracle.objects());
    oracle.set_auditor(&auditor);

    const auto report =
        core::find_preferences(oracle, &board, 0.5, D, core::Params::practical(),
                               rng::Rng(6 + D));
    auditor.verify_invocations(oracle.snapshot());
    auditor.verify_totals(report.total_probes, report.rounds);
    const auto audit = auditor.report();
    EXPECT_TRUE(audit.clean()) << "D=" << D << ": " << audit.to_json();
  }
}

TEST(ProtocolAuditor, UnknownDAuditsClean) {
  auto inst = small_instance(48, 7, 0.5, 1);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  const auto report = core::find_preferences_unknown_d(oracle, &board, 0.5,
                                                       core::Params::practical(), rng::Rng(7));
  auditor.verify_invocations(oracle.snapshot());
  auditor.verify_totals(report.total_probes, report.rounds);
  const auto audit = auditor.report();
  EXPECT_TRUE(audit.clean()) << audit.to_json();
}

TEST(ProtocolAuditor, FindPreferencesWithFaultPlanAuditsClean) {
  // The satellite case: the full algorithm under an active fault plan
  // (transient probe failures + post drops) still satisfies every
  // audited invariant — retries are charged, nothing double-probes,
  // and the RunReport totals stay honest.
  auto inst = small_instance(64, 8);
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  faults::FaultInjector injector(
      faults::FaultPlan::parse("seed=11,probe=0.05,retry=3,drop=0.05,crash=0.05@40"),
      oracle.players());
  oracle.set_fault_injector(&injector);
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  const auto report = core::find_preferences_unknown_d(oracle, &board, 0.5,
                                                       core::Params::practical(), rng::Rng(8));
  auditor.verify_invocations(oracle.snapshot());
  auditor.verify_totals(report.total_probes, report.rounds);
  const auto audit = auditor.report();
  EXPECT_TRUE(audit.clean()) << audit.to_json();
  EXPECT_GT(report.outputs.size(), 0u);
}

TEST(ProtocolAuditor, ScheduledRunAuditsClean) {
  auto inst = small_instance(16, 9);
  billboard::ProbeOracle oracle(inst.matrix);
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  strategies.reserve(16);
  for (matrix::PlayerId p = 0; p < 16; ++p) {
    if (p % 2 == 0) {
      strategies.push_back(std::make_unique<billboard::SoloStrategy>(16));
    } else {
      strategies.push_back(std::make_unique<billboard::MimicStrategy>(
          p, 16, 6, 4, rng::Rng(9).split(p), 8));
    }
  }
  billboard::RoundScheduler sched(oracle);
  const auto res = sched.run(strategies, 64);
  auditor.verify_invocations(oracle.snapshot());
  const auto report = auditor.report();
  EXPECT_TRUE(report.clean()) << report.to_json();
  EXPECT_GT(report.rounds_audited, 0u);
  EXPECT_GT(report.posts_audited, 0u);
  EXPECT_TRUE(res.all_done);
}

TEST(ProtocolAuditor, ScheduledRunWithFaultsAuditsClean) {
  auto inst = small_instance(16, 10);
  billboard::ProbeOracle oracle(inst.matrix);
  faults::FaultInjector injector(
      faults::FaultPlan::parse("seed=3,crash=0.2@4-12,recover=6,probe=0.1,retry=2,drop=0.1"),
      oracle.players());
  oracle.set_fault_injector(&injector);
  ProtocolAuditor auditor(oracle.players(), oracle.objects());
  oracle.set_auditor(&auditor);

  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  strategies.reserve(16);
  for (matrix::PlayerId p = 0; p < 16; ++p) {
    strategies.push_back(std::make_unique<billboard::SoloStrategy>(16));
  }
  billboard::RoundScheduler sched(oracle);
  (void)sched.run(strategies, 128);
  auditor.verify_invocations(oracle.snapshot());
  const auto report = auditor.report();
  EXPECT_TRUE(report.clean()) << report.to_json();
}

}  // namespace
