// Tests for the synchronous RoundScheduler and the reference
// strategies — the executable form of the paper's "in each round, each
// player reads the billboard, probes one object, and writes the result"
// model.
#include <gtest/gtest.h>

#include <memory>

#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/billboard/strategies.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::billboard {
namespace {

TEST(RoundScheduler, RejectsWrongStrategyCount) {
  matrix::PreferenceMatrix mat(3, 4);
  ProbeOracle oracle(mat);
  RoundScheduler sched(oracle);
  std::vector<std::unique_ptr<PlayerStrategy>> strategies(2);
  EXPECT_THROW(sched.run(strategies, 10), std::invalid_argument);
}

TEST(RoundScheduler, SoloStrategiesFinishInExactlyMRounds) {
  rng::Rng rng(1);
  auto inst = matrix::uniform_random(8, 32, rng);
  ProbeOracle oracle(inst.matrix);
  RoundScheduler sched(oracle);

  std::vector<std::unique_ptr<PlayerStrategy>> strategies;
  std::vector<SoloStrategy*> solos;
  for (int p = 0; p < 8; ++p) {
    auto s = std::make_unique<SoloStrategy>(32);
    solos.push_back(s.get());
    strategies.push_back(std::move(s));
  }
  const auto res = sched.run(strategies, 1000);
  EXPECT_TRUE(res.all_done);
  EXPECT_EQ(res.rounds, 32u);
  EXPECT_EQ(oracle.max_invocations(), 32u);  // 1 probe/round, lockstep
  for (matrix::PlayerId p = 0; p < 8; ++p) {
    EXPECT_EQ(solos[p]->estimate(), inst.matrix.row(p));
  }
}

TEST(RoundScheduler, OneProbePerPlayerPerRound) {
  rng::Rng rng(2);
  auto inst = matrix::uniform_random(4, 16, rng);
  ProbeOracle oracle(inst.matrix);
  RoundScheduler sched(oracle);

  std::vector<std::unique_ptr<PlayerStrategy>> strategies;
  for (int p = 0; p < 4; ++p) strategies.push_back(std::make_unique<SoloStrategy>(16));
  const auto res = sched.run(strategies, 7);  // stop early
  EXPECT_EQ(res.rounds, 7u);
  EXPECT_FALSE(res.all_done);
  for (matrix::PlayerId p = 0; p < 4; ++p) {
    EXPECT_EQ(oracle.invocations(p), 7u);
  }
}

TEST(RoundScheduler, NullStrategiesIdle) {
  rng::Rng rng(3);
  auto inst = matrix::uniform_random(3, 8, rng);
  ProbeOracle oracle(inst.matrix);
  RoundScheduler sched(oracle);

  std::vector<std::unique_ptr<PlayerStrategy>> strategies(3);
  strategies[1] = std::make_unique<SoloStrategy>(8);
  const auto res = sched.run(strategies, 100);
  EXPECT_TRUE(res.all_done);
  EXPECT_EQ(oracle.invocations(0), 0u);
  EXPECT_EQ(oracle.invocations(1), 8u);
  EXPECT_EQ(oracle.invocations(2), 0u);
}

// A strategy that records whether it ever saw a same-round post — the
// lockstep-visibility invariant (reads expose only earlier rounds).
class SpyStrategy final : public PlayerStrategy {
 public:
  SpyStrategy(PlayerId peer, std::size_t objects) : peer_(peer), objects_(objects) {}

  std::optional<ObjectId> next_probe(const RoundView& view) override {
    // The peer probes object r in round r (SoloStrategy order); its
    // post must only be visible from round r+1 on.
    if (view.round() > 0 && view.is_posted(peer_, static_cast<ObjectId>(view.round() - 1))) {
      saw_previous_round_ = true;
    }
    if (view.is_posted(peer_, static_cast<ObjectId>(view.round()))) {
      saw_same_round_ = true;  // must never happen
    }
    if (next_ >= objects_) return std::nullopt;
    return static_cast<ObjectId>(next_);
  }
  void on_result(ObjectId, bool) override { ++next_; }
  [[nodiscard]] bool done() const override { return next_ >= objects_; }

  bool saw_same_round_ = false;
  bool saw_previous_round_ = false;

 private:
  PlayerId peer_;
  std::size_t objects_;
  std::size_t next_ = 0;
};

TEST(RoundScheduler, InRoundPostsInvisibleUntilNextRound) {
  rng::Rng rng(4);
  auto inst = matrix::uniform_random(2, 16, rng);
  ProbeOracle oracle(inst.matrix);
  RoundScheduler sched(oracle);

  std::vector<std::unique_ptr<PlayerStrategy>> strategies;
  auto spy = std::make_unique<SpyStrategy>(/*peer=*/1, 16);
  auto* spy_ptr = spy.get();
  strategies.push_back(std::move(spy));
  strategies.push_back(std::make_unique<SoloStrategy>(16));

  (void)sched.run(strategies, 100);
  EXPECT_FALSE(spy_ptr->saw_same_round_);
  EXPECT_TRUE(spy_ptr->saw_previous_round_);
}

TEST(Mimic, CopiesCommunityMemberAndGetsItRight) {
  // One exact community covering everyone: a mimic with a small budget
  // reconstructs nearly the whole row from a solo player's posts.
  const std::size_t n = 8;
  const std::size_t m = 128;
  rng::Rng rng(5);
  auto inst = matrix::planted_community(n, m, {1.0, 0}, rng);
  ProbeOracle oracle(inst.matrix);
  RoundScheduler sched(oracle);

  std::vector<std::unique_ptr<PlayerStrategy>> strategies;
  auto mimic = std::make_unique<MimicStrategy>(0, m, /*sample=*/16, /*checks=*/8,
                                               rng::Rng(6), /*patience=*/m + 16);
  auto* mimic_ptr = mimic.get();
  strategies.push_back(std::move(mimic));
  for (std::size_t p = 1; p < n; ++p) {
    strategies.push_back(std::make_unique<SoloStrategy>(m));
  }
  const auto res = sched.run(strategies, 3 * m);
  EXPECT_TRUE(res.all_done);
  ASSERT_TRUE(mimic_ptr->adopted_from().has_value());
  // Mimic used far fewer probes than solo while matching the row.
  EXPECT_LE(oracle.invocations(0), 16u + 8u);
  EXPECT_LE(mimic_ptr->estimate().hamming(inst.matrix.row(0)), 8u);
}

TEST(Mimic, LonerFallsBackToOwnProbes) {
  // No community: the mimic should not adopt anyone (agreement stays
  // near 50%) and its estimate equals its own probes.
  const std::size_t n = 4;
  const std::size_t m = 256;
  rng::Rng rng(7);
  auto inst = matrix::uniform_random(n, m, rng);
  ProbeOracle oracle(inst.matrix);
  RoundScheduler sched(oracle);

  std::vector<std::unique_ptr<PlayerStrategy>> strategies;
  auto mimic = std::make_unique<MimicStrategy>(0, m, 32, 8, rng::Rng(8));
  auto* mimic_ptr = mimic.get();
  strategies.push_back(std::move(mimic));
  for (std::size_t p = 1; p < n; ++p) {
    strategies.push_back(std::make_unique<SoloStrategy>(m));
  }
  (void)sched.run(strategies, 2 * m);
  // Adoption may trigger on a lucky coin-match, but the estimate on the
  // probed set must be exact regardless.
  std::size_t err_on_probed = 0;
  for (ObjectId o = 0; o < m; ++o) {
    if (oracle.is_probed(0, o) &&
        mimic_ptr->estimate().get(o) != inst.matrix.value(0, o)) {
      ++err_on_probed;
    }
  }
  EXPECT_EQ(err_on_probed, 0u);
}

/// Misbehaves on demand: throws out of next_probe (or on_result) at a
/// chosen round to exercise the scheduler's strategy isolation.
class ThrowingStrategy final : public PlayerStrategy {
 public:
  ThrowingStrategy(std::size_t objects, std::size_t throw_round, bool from_on_result)
      : estimate_(objects), throw_round_(throw_round), from_on_result_(from_on_result) {}

  std::optional<ObjectId> next_probe(const RoundView& view) override {
    if (!from_on_result_ && view.round() == throw_round_) {
      throw std::runtime_error("strategy bug: next_probe");
    }
    return static_cast<ObjectId>(next_);
  }
  void on_result(ObjectId o, bool value) override {
    if (from_on_result_ && next_ == throw_round_) {
      throw std::runtime_error("strategy bug: on_result");
    }
    estimate_.set(o, value);
    ++next_;
  }
  [[nodiscard]] bool done() const override { return next_ >= estimate_.size(); }

 private:
  bits::BitVector estimate_;
  std::size_t throw_round_;
  bool from_on_result_;
  std::size_t next_ = 0;
};

TEST(RoundScheduler, ThrowingStrategyIsIsolated) {
  for (const bool from_on_result : {false, true}) {
    rng::Rng rng(11);
    auto inst = matrix::uniform_random(4, 16, rng);
    ProbeOracle oracle(inst.matrix);
    RoundScheduler sched(oracle);

    std::vector<std::unique_ptr<PlayerStrategy>> strategies;
    std::vector<SoloStrategy*> solos;
    strategies.push_back(std::make_unique<ThrowingStrategy>(16, 3, from_on_result));
    for (int p = 1; p < 4; ++p) {
      auto s = std::make_unique<SoloStrategy>(16);
      solos.push_back(s.get());
      strategies.push_back(std::move(s));
    }

    const auto res = sched.run(strategies, 1000);

    // The buggy player is marked failed and the run is not all-done...
    EXPECT_EQ(res.failed_strategies, std::vector<PlayerId>{0});
    EXPECT_FALSE(res.all_done);
    // ...but everyone else finished their full 16 probes, unharmed.
    EXPECT_EQ(res.rounds, 16u);
    for (auto* s : solos) {
      EXPECT_TRUE(s->done());
    }
    for (PlayerId p = 1; p < 4; ++p) {
      EXPECT_EQ(oracle.invocations(p), 16u);
    }
    // The thrower stopped being driven after the bad round.
    EXPECT_LE(oracle.invocations(0), 4u);
  }
}

}  // namespace
}  // namespace tmwia::billboard
