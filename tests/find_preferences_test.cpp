// End-to-end tests for the main algorithm (Fig. 1), the unknown-D
// search and the anytime driver (Section 6) — i.e. Theorem 1.1: after
// polylog rounds every typical player has constant-stretch output.
#include <gtest/gtest.h>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

TEST(FindPreferences, DispatchZeroRadius) {
  rng::Rng gen(1);
  auto inst = matrix::planted_community(128, 128, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences(oracle, nullptr, 0.5, 0, Params::practical(), rng::Rng(2));
  EXPECT_EQ(res.branch, Branch::kZeroRadius);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(res.outputs[p], inst.centers[0]);
  }
  EXPECT_GT(res.rounds, 0u);
  EXPECT_GT(res.total_probes, 0u);
}

TEST(FindPreferences, DispatchSmallRadius) {
  rng::Rng gen(3);
  auto inst = matrix::planted_community(256, 256, {0.5, 2}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences(oracle, nullptr, 0.5, 4, Params::practical(), rng::Rng(4));
  EXPECT_EQ(res.branch, Branch::kSmallRadius);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_LE(res.outputs[p].hamming(inst.matrix.row(p)), 20u);
  }
}

TEST(FindPreferences, DispatchLargeRadius) {
  rng::Rng gen(5);
  auto inst = matrix::planted_community(256, 512, {0.5, 24}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);
  ASSERT_GT(D, 8u);  // must exceed the small-radius cutoff at n = 256
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences(oracle, nullptr, 0.5, D, Params::practical(), rng::Rng(6));
  EXPECT_EQ(res.branch, Branch::kLargeRadius);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_LE(res.outputs[p].hamming(inst.matrix.row(p)), 4 * D);
  }
}

struct UnknownDCase {
  std::size_t n;
  std::size_t m;
  double alpha;
  std::size_t radius;
  double stretch_bound;
  std::uint64_t seed;
};

class UnknownD : public ::testing::TestWithParam<UnknownDCase> {};

TEST_P(UnknownD, ConstantStretchWithoutKnowingD) {
  const auto [n, m, alpha, radius, stretch_bound, seed] = GetParam();
  rng::Rng gen(seed);
  auto inst = matrix::planted_community(n, m, {alpha, radius}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);

  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences_unknown_d(oracle, nullptr, alpha, Params::practical(), rng::Rng(seed));

  ASSERT_EQ(res.outputs.size(), n);
  const double stretch = inst.matrix.stretch(res.outputs, inst.communities[0]);
  EXPECT_LE(stretch, stretch_bound)
      << "discrepancy " << inst.matrix.discrepancy(res.outputs, inst.communities[0])
      << " over diameter " << D;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnknownD,
                         ::testing::Values(UnknownDCase{128, 128, 0.5, 2, 6.0, 201},
                                           UnknownDCase{256, 256, 0.5, 4, 6.0, 202},
                                           UnknownDCase{256, 256, 0.5, 16, 6.0, 203},
                                           UnknownDCase{256, 512, 0.25, 8, 8.0, 204}));

TEST(UnknownDDetail, GuessesAreGeometric) {
  rng::Rng gen(7);
  auto inst = matrix::planted_community(64, 64, {1.0, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences_unknown_d(oracle, nullptr, 1.0, Params::practical(), rng::Rng(8));
  ASSERT_GE(res.guesses.size(), 3u);
  EXPECT_EQ(res.guesses[0], 0u);
  EXPECT_EQ(res.guesses[1], 1u);
  for (std::size_t i = 2; i < res.guesses.size(); ++i) {
    EXPECT_EQ(res.guesses[i], res.guesses[i - 1] * 2);
  }
  EXPECT_LT(res.guesses.back(), 64u);
}

TEST(UnknownDDetail, ChosenDRecorded) {
  rng::Rng gen(9);
  auto inst = matrix::planted_community(128, 128, {1.0, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences_unknown_d(oracle, nullptr, 1.0, Params::practical(), rng::Rng(10));
  ASSERT_EQ(res.chosen_d.size(), 128u);
  // With an exact-agreement community, the D = 0 version is already
  // perfect, so the chosen D should be small for community members.
  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(res.outputs[p], inst.centers[0]);
  }
}

TEST(Anytime, PhasesProgressAndRespectBudget) {
  rng::Rng gen(11);
  auto inst = matrix::planted_community(128, 128, {0.5, 2}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = anytime(oracle, nullptr, /*round_budget=*/2000, Params::practical(),
                           rng::Rng(12));
  ASSERT_FALSE(res.phases.empty());
  // Phases run alpha = 1/2, 1/4, ... and cumulative cost increases.
  EXPECT_DOUBLE_EQ(res.phases[0].alpha, 0.5);
  for (std::size_t i = 1; i < res.phases.size(); ++i) {
    EXPECT_DOUBLE_EQ(res.phases[i].alpha, res.phases[i - 1].alpha / 2);
    EXPECT_GE(res.phases[i].rounds, res.phases[i - 1].rounds);
  }
}

TEST(Anytime, QualityReasonableAfterEnoughPhases) {
  rng::Rng gen(13);
  auto inst = matrix::planted_community(128, 128, {0.5, 2}, gen);
  const auto D = inst.matrix.subset_diameter(inst.communities[0]);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      anytime(oracle, nullptr, /*round_budget=*/100000, Params::practical(), rng::Rng(14));
  const auto disc = inst.matrix.discrepancy(res.outputs, inst.communities[0]);
  EXPECT_LE(disc, 6 * std::max<std::size_t>(D, 1));
}

TEST(FindPreferences, RoundsPolylogWhileSoloIsLinear) {
  // Theorem 1.1 shape at a fixed size: the whole unknown-D stack costs
  // far fewer rounds than the m rounds of solo probing.
  const std::size_t n = 1024;
  rng::Rng gen(15);
  auto inst = matrix::planted_community(n, n, {0.5, 0}, gen);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res =
      find_preferences(oracle, nullptr, 0.5, 0, Params::practical(), rng::Rng(16));
  EXPECT_LT(res.rounds, n / 8);
}

}  // namespace
}  // namespace tmwia::core
