// Tests for the linalg substrate: DenseMatrix ops and the truncated SVD
// the non-interactive baseline depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "tmwia/linalg/dense_matrix.hpp"

namespace tmwia::linalg {
namespace {

TEST(DenseMatrix, ConstructAndIndex) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrix, MatvecKnown) {
  DenseMatrix m(2, 3);
  // [1 2 3; 4 5 6]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  std::vector<double> x{1, 0, -1}, y(2);
  m.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  std::vector<double> u{1, 1}, v(3);
  m.matvec_t(u, v);
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  EXPECT_DOUBLE_EQ(v[2], 9.0);
}

TEST(DenseMatrix, MatvecDimensionChecks) {
  DenseMatrix m(2, 3);
  std::vector<double> x(2), y(2);
  EXPECT_THROW(m.matvec(x, y), std::invalid_argument);
  std::vector<double> u(3), v(3);
  EXPECT_THROW(m.matvec_t(u, v), std::invalid_argument);
}

TEST(DenseMatrix, FrobeniusAndTranspose) {
  DenseMatrix m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.frobenius(), 5.0);
  const auto t = m.transpose();
  EXPECT_DOUBLE_EQ(t(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 4.0);
  m(0, 1) = 7;
  EXPECT_DOUBLE_EQ(m.transpose()(1, 0), 7.0);
}

DenseMatrix rank_k_matrix(std::size_t n, std::size_t m, std::size_t k,
                          const std::vector<double>& sigmas) {
  // Build sum sigma_i * u_i v_i^T with orthogonal-ish indicator blocks.
  DenseMatrix a(n, m);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t r = i * (n / k); r < (i + 1) * (n / k); ++r) {
      for (std::size_t c = i * (m / k); c < (i + 1) * (m / k); ++c) {
        a(r, c) = sigmas[i] / std::sqrt(static_cast<double>((n / k) * (m / k)));
      }
    }
  }
  return a;
}

TEST(Svd, RecoversRankOne) {
  const auto a = rank_k_matrix(16, 16, 1, {10.0});
  const auto svd = truncated_svd(a, 1);
  EXPECT_NEAR(svd.sigma[0], 10.0, 1e-6);
  const auto r = reconstruct(svd);
  double err = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      err = std::max(err, std::abs(r(i, j) - a(i, j)));
    }
  }
  EXPECT_LT(err, 1e-6);
}

TEST(Svd, SigmasSortedAndAccurate) {
  const auto a = rank_k_matrix(24, 24, 3, {9.0, 5.0, 2.0});
  const auto svd = truncated_svd(a, 3);
  ASSERT_EQ(svd.sigma.size(), 3u);
  EXPECT_NEAR(svd.sigma[0], 9.0, 1e-5);
  EXPECT_NEAR(svd.sigma[1], 5.0, 1e-5);
  EXPECT_NEAR(svd.sigma[2], 2.0, 1e-5);
}

TEST(Svd, RankKReconstructionExactForRankKInput) {
  const auto a = rank_k_matrix(20, 40, 2, {7.0, 3.0});
  const auto svd = truncated_svd(a, 2);
  const auto r = reconstruct(svd);
  double err = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      err = std::max(err, std::abs(r(i, j) - a(i, j)));
    }
  }
  EXPECT_LT(err, 1e-6);
}

TEST(Svd, SingularVectorsOrthonormal) {
  const auto a = rank_k_matrix(24, 24, 3, {9.0, 5.0, 2.0});
  const auto svd = truncated_svd(a, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double dot_v = 0;
      for (std::size_t c = 0; c < 24; ++c) dot_v += svd.v(c, i) * svd.v(c, j);
      EXPECT_NEAR(dot_v, i == j ? 1.0 : 0.0, 1e-8) << "v" << i << "." << j;
    }
  }
}

TEST(Svd, RejectsBadRank) {
  DenseMatrix a(4, 4);
  EXPECT_THROW(truncated_svd(a, 0), std::invalid_argument);
  EXPECT_THROW(truncated_svd(a, 5), std::invalid_argument);
}

TEST(Svd, DeterministicGivenSeed) {
  const auto a = rank_k_matrix(16, 16, 2, {4.0, 2.0});
  const auto s1 = truncated_svd(a, 2, 40, 999);
  const auto s2 = truncated_svd(a, 2, 40, 999);
  EXPECT_EQ(s1.sigma, s2.sigma);
  EXPECT_EQ(s1.u, s2.u);
}

TEST(Svd, HandlesZeroMatrix) {
  DenseMatrix a(8, 8);
  const auto svd = truncated_svd(a, 2);
  EXPECT_NEAR(svd.sigma[0], 0.0, 1e-9);
  EXPECT_NEAR(svd.sigma[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace tmwia::linalg
