// Tests for the execution engine: thread pool lifecycle, parallel_for
// coverage, exception propagation, determinism of result placement.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "tmwia/engine/thread_pool.hpp"

namespace tmwia::engine {
namespace {

TEST(ThreadPool, ConstructsWithRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndSingleton) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, OffsetRange) {
  std::atomic<std::size_t> sum{0};
  parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(i); }, 8);
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 500,
                   [](std::size_t i) {
                     if (i == 250) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsIndependentOfGrain) {
  std::vector<int> a(512), b(512);
  parallel_for(0, 512, [&](std::size_t i) { a[i] = static_cast<int>(i * i % 97); }, 1);
  parallel_for(0, 512, [&](std::size_t i) { b[i] = static_cast<int>(i * i % 97); }, 200);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, SmallRangeRunsSerial) {
  // Under the grain threshold the body runs on the calling thread, so
  // thread-unsafe captures are fine.
  std::vector<int> order;
  parallel_for(0, 10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 64);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace tmwia::engine
