// Tests for the stats module: summaries, Wilson intervals, regression
// fits (used by the benches to report empirical scaling exponents).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tmwia/stats/summary.hpp"

namespace tmwia::stats {
namespace {

TEST(Summary, EmptyBehaviour) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.percentile(0.5), std::logic_error);
}

TEST(Summary, MomentsKnownValues) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.5);
}

TEST(Summary, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_THROW(s.percentile(1.5), std::invalid_argument);
}

TEST(Summary, PercentileThenAddStillWorks) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Wilson, ZeroTrials) {
  const auto p = wilson_interval(0, 0);
  EXPECT_EQ(p.estimate, 0.0);
  EXPECT_EQ(p.lo, 0.0);
  EXPECT_EQ(p.hi, 1.0);
}

TEST(Wilson, AllSuccesses) {
  const auto p = wilson_interval(50, 50);
  EXPECT_DOUBLE_EQ(p.estimate, 1.0);
  EXPECT_GT(p.lo, 0.9);
  EXPECT_DOUBLE_EQ(p.hi, 1.0);
}

TEST(Wilson, HalfAndHalfCentered) {
  const auto p = wilson_interval(500, 1000);
  EXPECT_DOUBLE_EQ(p.estimate, 0.5);
  EXPECT_NEAR(p.lo, 0.469, 0.005);
  EXPECT_NEAR(p.hi, 0.531, 0.005);
}

TEST(Wilson, IntervalShrinksWithSamples) {
  const auto small = wilson_interval(5, 10);
  const auto big = wilson_interval(500, 1000);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

TEST(Fit, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Fit, RejectsDegenerateInput) {
  std::vector<double> xs{1};
  std::vector<double> ys{2};
  EXPECT_THROW(fit_line(xs, ys), std::invalid_argument);
  std::vector<double> xs2{1, 2};
  std::vector<double> ys2{1, 2, 3};
  EXPECT_THROW(fit_line(xs2, ys2), std::invalid_argument);
}

TEST(Fit, ConstantXGivesZeroSlope) {
  std::vector<double> xs{2, 2, 2};
  std::vector<double> ys{1, 2, 3};
  const auto f = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(Fit, LogLogRecoversPolynomialDegree) {
  std::vector<double> xs, ys;
  for (double x : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);  // degree 2
  }
  const auto f = fit_loglog(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
}

TEST(Fit, LogLogOnLogarithmicDataHasSmallSlope) {
  // y = log2(x): the log-log slope over a dyadic range is well under 1
  // (that is the signature a bench uses to call a curve "polylog").
  std::vector<double> xs, ys;
  for (double x : {256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
    xs.push_back(x);
    ys.push_back(std::log2(x));
  }
  const auto f = fit_loglog(xs, ys);
  EXPECT_LT(f.slope, 0.25);
}

TEST(Fit, LogLogRejectsNonPositive) {
  std::vector<double> xs{1, 2};
  std::vector<double> ys{0, 1};
  EXPECT_THROW(fit_loglog(xs, ys), std::invalid_argument);
}

TEST(Fit, SemilogRecoversLogCurve) {
  std::vector<double> xs, ys;
  for (double x : {16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(5.0 + 3.0 * std::log2(x));
  }
  const auto f = fit_semilog(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 5.0, 1e-9);
}

}  // namespace
}  // namespace tmwia::stats
