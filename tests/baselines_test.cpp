// Tests for the comparator algorithms (experiment E9's cast): cost
// accounting and the regimes where each baseline is expected to work or
// fail — the failures are part of the paper's story (Section 2).
#include <gtest/gtest.h>

#include "tmwia/baselines/baselines.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::baselines {
namespace {

std::size_t mean_error(const BaselineResult& res, const matrix::Instance& inst,
                       const std::vector<matrix::PlayerId>& ids) {
  std::size_t total = 0;
  for (auto p : ids) total += res.outputs[p].hamming(inst.matrix.row(p));
  return total / ids.size();
}

TEST(Solo, ExactAndCostsM) {
  rng::Rng rng(1);
  const auto inst = matrix::uniform_random(16, 64, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = solo_probing(oracle);
  EXPECT_EQ(res.rounds, 64u);
  EXPECT_EQ(res.total_probes, 16u * 64u);
  for (matrix::PlayerId p = 0; p < 16; ++p) {
    EXPECT_EQ(res.outputs[p], inst.matrix.row(p));
  }
}

TEST(Knn, RoundsEqualSampleBudget) {
  rng::Rng rng(2);
  const auto inst = matrix::uniform_random(32, 256, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  KnnParams p;
  p.probes_per_player = 40;
  const auto res = sampled_knn(oracle, p, rng::Rng(3));
  EXPECT_EQ(res.rounds, 40u);
  EXPECT_EQ(res.total_probes, 32u * 40u);
}

TEST(Knn, RecoversZeroRadiusCommunityWithEnoughSamples) {
  rng::Rng rng(4);
  const auto inst = matrix::planted_community(128, 256, {0.5, 0}, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  KnnParams p;
  p.probes_per_player = 96;
  p.neighbours = 12;
  const auto res = sampled_knn(oracle, p, rng::Rng(5));
  // With 96/256 samples, similarity estimates are reliable and the
  // community majority fills in the gaps.
  EXPECT_LE(mean_error(res, inst, inst.communities[0]), 20u);
}

TEST(Knn, FailsWithFewSamples) {
  rng::Rng rng(6);
  const auto inst = matrix::planted_community(128, 1024, {0.5, 0}, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  KnnParams p;
  p.probes_per_player = 8;  // overlaps are ~8*8/1024 < 1: no signal
  const auto res = sampled_knn(oracle, p, rng::Rng(7));
  // Near half the unseen coordinates end up wrong.
  EXPECT_GE(mean_error(res, inst, inst.communities[0]), 1024u / 5);
}

TEST(Knn, SampleBudgetClampedToM) {
  rng::Rng rng(8);
  const auto inst = matrix::uniform_random(8, 16, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  KnnParams p;
  p.probes_per_player = 100;
  const auto res = sampled_knn(oracle, p, rng::Rng(9));
  EXPECT_EQ(res.rounds, 16u);
  // Full sampling: everyone exact.
  for (matrix::PlayerId q = 0; q < 8; ++q) {
    EXPECT_EQ(res.outputs[q], inst.matrix.row(q));
  }
}

TEST(Svd, ReconstructsLowRankInput) {
  rng::Rng rng(10);
  const auto inst = matrix::low_rank_model(128, 256, 3, 0.0, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  SvdParams p;
  p.sample_rate = 0.3;
  p.rank = 3;
  const auto res = svd_recommender(oracle, p, rng::Rng(11));
  // The SVD-friendly control: rank-3 matrix, clean types.
  std::size_t worst_mean = 0;
  for (const auto& c : inst.communities) {
    if (c.empty()) continue;
    worst_mean = std::max(worst_mean, mean_error(res, inst, c));
  }
  EXPECT_LE(worst_mean, 30u);
}

TEST(Svd, DegradesOnAdversarialDiversity) {
  rng::Rng rng(12);
  // 16 types + per-user noise: flat spectrum, rank-4 projection is far
  // from the truth.
  const auto inst = matrix::adversarial_diversity(128, 256, 16, 8, 0.25, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  SvdParams p;
  p.sample_rate = 0.3;
  p.rank = 4;
  const auto res = svd_recommender(oracle, p, rng::Rng(13));
  std::size_t worst_mean = 0;
  for (const auto& c : inst.communities) {
    if (c.empty()) continue;
    worst_mean = std::max(worst_mean, mean_error(res, inst, c));
  }
  EXPECT_GE(worst_mean, 40u);  // the headline failure E9 quantifies
}

TEST(Svd, CostMatchesSampleRate) {
  rng::Rng rng(14);
  const auto inst = matrix::uniform_random(64, 512, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  SvdParams p;
  p.sample_rate = 0.1;
  const auto res = svd_recommender(oracle, p, rng::Rng(15));
  EXPECT_NEAR(static_cast<double>(res.total_probes), 0.1 * 64 * 512, 600.0);
}

TEST(Majority, AllPlayersGetSameVector) {
  rng::Rng rng(16);
  const auto inst = matrix::planted_community(64, 128, {1.0, 0}, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = global_majority(oracle, 32, rng::Rng(17));
  for (matrix::PlayerId p = 1; p < 64; ++p) {
    EXPECT_EQ(res.outputs[p], res.outputs[0]);
  }
  // With a single zero-radius community covering everyone, the majority
  // vector is nearly the center.
  EXPECT_LE(res.outputs[0].hamming(inst.centers[0]), 12u);
}

TEST(Majority, ErrorFloorWithTwoCommunities) {
  rng::Rng rng(18);
  const auto inst = matrix::planted_communities(64, 256, {{0.5, 0}, {0.5, 0}}, rng);
  billboard::ProbeOracle oracle(inst.matrix);
  const auto res = global_majority(oracle, 64, rng::Rng(19));
  // One vector cannot satisfy two random centers ~128 apart: someone
  // eats ~ half that distance.
  const auto d0 = res.outputs[0].hamming(inst.centers[0]);
  const auto d1 = res.outputs[0].hamming(inst.centers[1]);
  EXPECT_GE(d0 + d1, 90u);
}

}  // namespace
}  // namespace tmwia::baselines
