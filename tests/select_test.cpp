// Tests for Select (Fig. 3 / Theorem 3.2) and RSelect (Fig. 7 /
// Theorem 6.1). The probe side is a counting closure over an explicit
// truth vector, so we verify both correctness (closest candidate,
// lexicographic ties) and the probe bound k(D+1).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/core/rselect.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {
namespace {

using bits::BitVector;
using bits::TriVector;

// Returns the closure itself (not a ProbeFn): ProbeFn is a non-owning
// view, so the callable must outlive the select call it is passed to.
auto probe_of(const BitVector& truth, std::size_t* counter = nullptr) {
  return [&truth, counter](std::uint32_t j) {
    if (counter != nullptr) ++*counter;
    return truth.get(j);
  };
}

TEST(Select, SingleCandidateNoProbes) {
  const auto truth = BitVector::from_string("0101");
  std::vector<BitVector> cands{BitVector::from_string("1111")};
  const auto res = select_closest(cands, 0, probe_of(truth));
  EXPECT_EQ(res.index, 0u);
  EXPECT_EQ(res.probes, 0u);
}

TEST(Select, PicksExactMatchWithBoundZero) {
  const auto truth = BitVector::from_string("0101");
  std::vector<BitVector> cands{BitVector::from_string("0001"), BitVector::from_string("0101"),
                               BitVector::from_string("1101")};
  const auto res = select_closest(cands, 0, probe_of(truth));
  EXPECT_EQ(res.index, 1u);
  EXPECT_EQ(res.observed_disagreements, 0u);
}

TEST(Select, PicksClosestWithinBound) {
  const auto truth = BitVector::from_string("00000000");
  std::vector<BitVector> cands{
      BitVector::from_string("00000011"),  // dist 2
      BitVector::from_string("00000001"),  // dist 1  <- closest
      BitVector::from_string("01111111"),  // dist 7
  };
  const auto res = select_closest(cands, 2, probe_of(truth));
  EXPECT_EQ(res.index, 1u);
}

TEST(Select, LexicographicTieBreak) {
  const auto truth = BitVector::from_string("0011");
  // Both candidates at distance 1; "0001" < "0111" lexicographically.
  std::vector<BitVector> cands{BitVector::from_string("0111"), BitVector::from_string("0001")};
  const auto res = select_closest(cands, 1, probe_of(truth));
  EXPECT_EQ(res.index, 1u);
}

TEST(Select, IdenticalCandidatesNoProbes) {
  const auto truth = BitVector::from_string("0011");
  std::vector<BitVector> cands{BitVector::from_string("0101"), BitVector::from_string("0101")};
  const auto res = select_closest(cands, 3, probe_of(truth));
  EXPECT_EQ(res.probes, 0u);  // no distinguishing coordinates
}

TEST(Select, SomeCandidateAlwaysSurvives) {
  // Even with every candidate far from the truth and bound 0, the
  // probed bit always matches one side of a distinguishing coordinate,
  // so Select still returns the best-effort candidate (here: the one
  // agreeing with the truth on the coordinates where the candidates
  // disagree with each other).
  const auto truth = BitVector::from_string("00000000");
  std::vector<BitVector> cands{BitVector::from_string("11111111"),
                               BitVector::from_string("11110000")};
  const auto res = select_closest(cands, 0, probe_of(truth));
  EXPECT_EQ(res.index, 1u);
  EXPECT_EQ(res.observed_disagreements, 0u);  // invisible disagreements at 0-3
}

TEST(Select, EmptyCandidatesThrow) {
  std::vector<BitVector> cands;
  EXPECT_THROW(select_closest(cands, 0, probe_of(BitVector(4))), std::invalid_argument);
}

TEST(Select, RaggedCandidatesThrow) {
  std::vector<BitVector> cands{BitVector(4), BitVector(5)};
  EXPECT_THROW(select_closest(cands, 0, probe_of(BitVector(4))), std::invalid_argument);
}

TEST(Select, UnknownEntriesNeverDistinguish) {
  const auto truth = BitVector::from_string("0000");
  std::vector<TriVector> cands{TriVector::from_string("0?00"), TriVector::from_string("0?00")};
  std::size_t probes = 0;
  const auto res = select_closest(cands, 1, probe_of(truth, &probes));
  EXPECT_EQ(probes, 0u);
  EXPECT_EQ(res.probes, 0u);
}

TEST(Select, DtildeSemanticsWithUnknowns) {
  const auto truth = BitVector::from_string("0011");
  std::vector<TriVector> cands{
      TriVector::from_string("??11"),  // dtilde to truth: 0
      TriVector::from_string("0000"),  // dtilde to truth: 2
  };
  const auto res = select_closest(cands, 2, probe_of(truth));
  EXPECT_EQ(res.index, 0u);
}

// Property sweep: Theorem 3.2's probe bound k(D+1) and exactness, over
// random candidate sets.
struct SelectSweep {
  std::size_t k;
  std::size_t D;
};

class SelectProperty : public ::testing::TestWithParam<SelectSweep> {};

TEST_P(SelectProperty, ProbeBoundAndExactness) {
  const auto [k, D] = GetParam();
  const std::size_t m = 256;
  rng::Rng rng(1000 + k * 31 + D);

  for (int trial = 0; trial < 20; ++trial) {
    const auto truth = matrix::random_vector(m, rng);
    std::vector<BitVector> cands;
    // Plant one candidate within D, the rest random.
    cands.push_back(matrix::flip_random(truth, rng.uniform(D + 1), rng));
    for (std::size_t i = 1; i < k; ++i) {
      cands.push_back(matrix::random_vector(m, rng));
    }

    std::size_t probes = 0;
    const auto res = select_closest(cands, D, probe_of(truth, &probes));

    // Theorem 3.2: probe bound.
    EXPECT_LE(res.probes, k * (D + 1));
    EXPECT_EQ(res.probes, probes);
    EXPECT_LE(res.observed_disagreements, D);

    // Output is a genuinely closest candidate.
    std::size_t best = truth.hamming(cands[0]);
    for (const auto& c : cands) best = std::min(best, truth.hamming(c));
    EXPECT_EQ(truth.hamming(cands[res.index]), best);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SelectProperty,
                         ::testing::Values(SelectSweep{2, 0}, SelectSweep{2, 4},
                                           SelectSweep{4, 1}, SelectSweep{8, 8},
                                           SelectSweep{16, 2}, SelectSweep{16, 16},
                                           SelectSweep{32, 5}, SelectSweep{64, 3}));

// ------------------------------------------------------------------ RSelect

TEST(RSelect, SingleCandidateTrivial) {
  std::vector<BitVector> cands{BitVector::from_string("0101")};
  rng::Rng rng(7);
  const auto res = rselect_closest(cands, 64, probe_of(BitVector(4)), rng);
  EXPECT_EQ(res.index, 0u);
  EXPECT_EQ(res.probes, 0u);
}

TEST(RSelect, PicksFarBetterCandidate) {
  const std::size_t m = 512;
  rng::Rng rng(11);
  const auto truth = matrix::random_vector(m, rng);
  std::vector<BitVector> cands{
      matrix::flip_random(truth, 4, rng),    // close
      matrix::flip_random(truth, 200, rng),  // far
  };
  rng::Rng prng(13);
  const auto res = rselect_closest(cands, 512, probe_of(truth), prng);
  EXPECT_EQ(res.index, 0u);
}

TEST(RSelect, ProbeBudgetQuadraticInCandidates) {
  const std::size_t m = 512;
  const std::size_t n = 512;
  rng::Rng rng(17);
  const auto truth = matrix::random_vector(m, rng);
  std::vector<BitVector> cands;
  for (int i = 0; i < 8; ++i) cands.push_back(matrix::random_vector(m, rng));

  Params params;
  rng::Rng prng(19);
  const auto res = rselect_closest(cands, n, probe_of(truth), prng, params);
  const auto per_pair = static_cast<std::size_t>(
      std::ceil(params.rs_c * std::log2(static_cast<double>(n))));
  EXPECT_LE(res.probes, cands.size() * (cands.size() - 1) / 2 * per_pair);
}

TEST(RSelect, OutputWithinConstantFactorOfBest) {
  const std::size_t m = 1024;
  rng::Rng rng(23);
  int failures = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto truth = matrix::random_vector(m, rng);
    std::vector<BitVector> cands;
    const std::size_t best_d = 8;
    cands.push_back(matrix::flip_random(truth, best_d, rng));
    for (int i = 0; i < 6; ++i) {
      cands.push_back(matrix::flip_random(truth, 16 + rng.uniform(400), rng));
    }
    rng::Rng prng(1700 + trial);
    const auto res = rselect_closest(cands, 1024, probe_of(truth), prng);
    // Theorem 6.1: output within O(D) of the best. Use factor 8 as the
    // concrete constant for this configuration.
    if (truth.hamming(cands[res.index]) > 8 * best_d) ++failures;
  }
  EXPECT_LE(failures, 1);
}

TEST(RSelect, IdenticalCandidatesAnyIsFine) {
  std::vector<BitVector> cands{BitVector::from_string("0101"), BitVector::from_string("0101")};
  rng::Rng rng(29);
  const auto res = rselect_closest(cands, 64, probe_of(BitVector::from_string("0101")), rng);
  EXPECT_EQ(res.probes, 0u);
  EXPECT_EQ(cands[res.index].to_string(), "0101");
}

TEST(RSelect, EmptyThrows) {
  std::vector<BitVector> cands;
  rng::Rng rng(31);
  EXPECT_THROW(rselect_closest(cands, 64, probe_of(BitVector(4)), rng), std::invalid_argument);
}

}  // namespace
}  // namespace tmwia::core
