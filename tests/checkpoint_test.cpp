// Tests for the durability layer: wire helpers, the CRC-guarded
// sectioned container (corruption must reject the whole file, never
// load partially), atomic file replacement, RunReport/RunCheckpoint
// serialization round-trips, and the tentpole property — a run resumed
// from a mid-run checkpoint is byte-identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/checkpoint.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/faults/fault_plan.hpp"
#include "tmwia/io/checkpoint.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/metrics.hpp"

namespace tmwia {
namespace {

TEST(BinWire, RoundTripsEveryType) {
  io::BinWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello \0 world");  // NOLINT(bugprone-string-literal-with-embedded-nul)
  bits::BitVector v(131);
  v.set(0, true);
  v.set(64, true);
  v.set(130, true);
  w.bitvec(v);

  io::BinReader r(w.bytes(), "test");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), std::string("hello "));  // literal truncates at NUL
  const auto back = r.bitvec();
  EXPECT_EQ(back.size(), 131u);
  EXPECT_TRUE(back.get(0));
  EXPECT_TRUE(back.get(64));
  EXPECT_TRUE(back.get(130));
  EXPECT_FALSE(back.get(1));
  EXPECT_TRUE(r.at_end());
}

TEST(BinWire, ReaderThrowsOnTruncation) {
  io::BinWriter w;
  w.u64(7);
  const auto bytes = w.bytes().substr(0, 3);
  io::BinReader r(bytes, "trunc");
  EXPECT_THROW(r.u64(), io::CheckpointError);
}

TEST(Crc32, MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(io::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_NE(io::crc32("123456788", 9), io::crc32("123456789", 9));
}

TEST(AtomicWrite, ReplacesFileAndLeavesNoTmp) {
  const std::string path = testing::TempDir() + "atomic_write_test.bin";
  io::atomic_write_file(path, "first");
  io::atomic_write_file(path, "second");
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(CheckpointContainer, RoundTripsSections) {
  io::Checkpoint cp;
  cp.set("alpha", "payload-a");
  cp.set("beta", std::string("\0\x01\x02", 3));
  cp.set("gamma", "");
  const auto bytes = cp.encode();

  const auto back = io::Checkpoint::decode(bytes);
  EXPECT_EQ(back.names(), (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(back.require("alpha"), "payload-a");
  EXPECT_EQ(back.require("beta"), std::string("\0\x01\x02", 3));
  EXPECT_EQ(back.require("gamma"), "");
  EXPECT_TRUE(back.has("alpha"));
  EXPECT_FALSE(back.has("delta"));
  EXPECT_THROW(back.require("delta"), io::CheckpointError);
}

TEST(CheckpointContainer, RejectsCorruptionWhole) {
  io::Checkpoint cp;
  cp.set("state", std::string(1000, 'x'));
  cp.set("meta", "m");
  const auto bytes = cp.encode();

  // Truncation at every structural boundary region: never a partial load.
  for (const std::size_t cut : {0ul, 7ul, 11ul, 20ul, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(io::Checkpoint::decode(bytes.substr(0, cut)), io::CheckpointError)
        << "cut at " << cut;
  }
  // A flipped byte anywhere must fail the footer or section CRC.
  for (const std::size_t pos : {0ul, 8ul, 16ul, bytes.size() / 2, bytes.size() - 2}) {
    auto bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0xFF);
    EXPECT_THROW(io::Checkpoint::decode(bad), io::CheckpointError) << "flip at " << pos;
  }
  // Wrong magic.
  auto wrong = bytes;
  wrong[0] = 'X';
  EXPECT_THROW(io::Checkpoint::decode(wrong), io::CheckpointError);
  // Trailing garbage.
  EXPECT_THROW(io::Checkpoint::decode(bytes + "junk"), io::CheckpointError);
}

TEST(CheckpointContainer, SaveLoadRoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "container_test.tmw";
  io::Checkpoint cp;
  cp.set("only", "section");
  cp.save(path);
  const auto back = io::Checkpoint::load(path);
  EXPECT_EQ(back.require("only"), "section");

  // Corrupt the file on disk: load throws, nothing partial comes back.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\x7F');
  }
  EXPECT_THROW(io::Checkpoint::load(path), io::CheckpointError);
  EXPECT_THROW(io::Checkpoint::load(path + ".does-not-exist"), io::CheckpointError);
  std::remove(path.c_str());
}

core::RunReport sample_report() {
  core::RunReport rep;
  rep.algo = core::RunReport::Algo::kUnknownD;
  rep.outputs = {bits::BitVector(17), bits::BitVector(17)};
  rep.outputs[0].set(3, true);
  rep.outputs[1].set(16, true);
  rep.rounds = 123;
  rep.total_probes = 456;
  rep.chosen_d = {0, 2};
  rep.guesses = {0, 1, 2, 4};
  rep.timeline.push_back({"guess:d=0", 10, 20, -1.0, -1.0});
  rep.timeline.push_back({"guess:d=1", 30, 60, 2.0, 0.5});
  rep.degraded.quarantined = {1};
  rep.degraded.unmet_phases = {"phase:0"};
  rep.metrics.counters["core.probes"] = 456;
  obs::HistogramData h;
  h.bounds = {1, 2, 4};
  h.buckets = {3, 2, 1, 0};
  h.count = 6;
  h.sum = 9;
  rep.metrics.histograms["core.guess_rounds"] = h;
  rep.metrics.gauges["oracle.total"] = -5;
  return rep;
}

TEST(RunReportWire, RoundTripsIncludingHistogramsAndDegraded) {
  const auto rep = sample_report();
  io::BinWriter w;
  core::write_run_report(w, rep);
  io::BinReader r(w.bytes(), "report");
  const auto back = core::read_run_report(r);
  EXPECT_TRUE(r.at_end());

  EXPECT_EQ(back.algo, rep.algo);
  ASSERT_EQ(back.outputs.size(), 2u);
  EXPECT_TRUE(back.outputs[0].get(3));
  EXPECT_TRUE(back.outputs[1].get(16));
  EXPECT_EQ(back.rounds, rep.rounds);
  EXPECT_EQ(back.total_probes, rep.total_probes);
  EXPECT_EQ(back.chosen_d, rep.chosen_d);
  EXPECT_EQ(back.guesses, rep.guesses);
  EXPECT_EQ(back.degraded, rep.degraded);
  EXPECT_EQ(back.metrics.counters.at("core.probes"), 456u);
  const auto& hb = back.metrics.histograms.at("core.guess_rounds");
  EXPECT_EQ(hb.bounds, (std::vector<std::uint64_t>{1, 2, 4}));
  EXPECT_EQ(hb.buckets, (std::vector<std::uint64_t>{3, 2, 1, 0}));
  EXPECT_EQ(hb.sum, 9u);
  EXPECT_EQ(back.metrics.gauges.at("oracle.total"), -5);
  // The JSON projection agrees too (includes the degraded section).
  EXPECT_EQ(back.to_json(), rep.to_json());
  EXPECT_NE(rep.to_json().find("\"degraded\""), std::string::npos);
}

TEST(RunCheckpointWire, RoundTripsFullState) {
  core::RunCheckpoint ck;
  ck.alpha = 0.25;
  ck.players = 2;
  ck.objects = 17;
  ck.seq = 3;
  ck.cum_rounds = 99;
  ck.recorder_clock = 12345;
  ck.next_guess = 2;
  ck.versions = {{bits::BitVector(17), bits::BitVector(17)}};
  ck.versions[0][1].set(5, true);
  ck.partial = sample_report();
  ck.before = {7, 8};
  ck.probes_before = 15;
  ck.rng_state = {1, 2, 3, 4};
  ck.oracle.invocations = {10, 20};
  ck.oracle.charged = {9, 19};
  ck.oracle.probed = {bits::BitVector(17), bits::BitVector(17)};
  ck.oracle.values = {bits::BitVector(17), bits::BitVector(17)};
  ck.oracle.probed[0].set(2, true);
  ck.oracle.values[0].set(2, true);
  ck.board.push_back({"votes", {{0, bits::BitVector(17)}}});
  ck.has_injector = true;
  ck.injector.attempts = {4, 5};
  ck.injector.post_seq = {1, 0};
  ck.injector.down = {0, 1};
  ck.injector.degraded = {0, 0};
  ck.injector.orphaned = {1, 0};
  ck.injector.was_crashed = {0, 1};
  ck.injector.was_recovered = {0, 0};
  ck.injector.retries = 2;
  ck.metrics_enabled = false;
  ck.harness = {{"faults", "seed=1"}, {"profile", "practical"}};

  const auto bytes = core::encode_run_checkpoint(ck);
  const auto back = core::decode_run_checkpoint(bytes);
  EXPECT_EQ(back.algo, "unknown_d");
  EXPECT_DOUBLE_EQ(back.alpha, 0.25);
  EXPECT_EQ(back.players, 2u);
  EXPECT_EQ(back.objects, 17u);
  EXPECT_EQ(back.seq, 3u);
  EXPECT_EQ(back.cum_rounds, 99u);
  EXPECT_EQ(back.recorder_clock, 12345u);
  EXPECT_EQ(back.next_guess, 2u);
  ASSERT_EQ(back.versions.size(), 1u);
  EXPECT_TRUE(back.versions[0][1].get(5));
  EXPECT_EQ(back.partial.to_json(), ck.partial.to_json());
  EXPECT_EQ(back.before, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(back.probes_before, 15u);
  EXPECT_EQ(back.rng_state, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_EQ(back.oracle.invocations, (std::vector<std::uint64_t>{10, 20}));
  EXPECT_TRUE(back.oracle.probed[0].get(2));
  ASSERT_EQ(back.board.size(), 1u);
  EXPECT_EQ(back.board[0].channel, "votes");
  EXPECT_TRUE(back.has_injector);
  EXPECT_EQ(back.injector.attempts, (std::vector<std::uint64_t>{4, 5}));
  EXPECT_EQ(back.injector.down, (std::vector<std::uint8_t>{0, 1}));
  EXPECT_EQ(back.injector.retries, 2u);
  EXPECT_EQ(back.harness_value("faults"), "seed=1");
  EXPECT_EQ(back.harness_value("profile"), "practical");
  EXPECT_EQ(back.harness_value("absent"), "");

  // Corruption of the container is rejected whole.
  auto bad = bytes;
  bad[bytes.size() / 2] = static_cast<char>(bad[bytes.size() / 2] ^ 0x40);
  EXPECT_THROW(core::decode_run_checkpoint(bad), io::CheckpointError);
}

// The tentpole: cut checkpoints mid-run, then resume each one in a
// fresh world — every resumed run must match the uninterrupted run
// byte-for-byte (outputs and report JSON).
TEST(CheckpointResume, ResumedRunIsByteIdentical) {
  rng::Rng gen(21);
  const auto inst = matrix::planted_community(24, 48, {0.5, 1}, gen);
  const auto params = core::Params::practical();
  const double alpha = 0.5;

  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  std::vector<core::RunCheckpoint> cuts;
  core::CheckpointPolicy policy;
  policy.every_rounds = 40;
  policy.sink = [&cuts](const core::RunCheckpoint& ck) { cuts.push_back(ck); };
  const auto reference = core::find_preferences_unknown_d(oracle, &board, alpha, params,
                                                          rng::Rng(31), policy);
  ASSERT_GE(cuts.size(), 2u) << "cadence produced too few checkpoints to test";

  for (const auto& cut : cuts) {
    billboard::ProbeOracle oracle2(inst.matrix);
    billboard::Billboard board2;
    core::CheckpointPolicy resume_policy;
    resume_policy.every_rounds = policy.every_rounds;
    const auto resumed =
        core::resume_unknown_d(oracle2, &board2, params, cut, resume_policy);
    EXPECT_EQ(resumed.to_json(), reference.to_json()) << "cut seq " << cut.seq;
    ASSERT_EQ(resumed.outputs.size(), reference.outputs.size());
    for (std::size_t p = 0; p < reference.outputs.size(); ++p) {
      EXPECT_EQ(resumed.outputs[p].hash(), reference.outputs[p].hash())
          << "cut seq " << cut.seq << " player " << p;
    }
    EXPECT_EQ(oracle2.total_invocations(), oracle.total_invocations());
    EXPECT_EQ(oracle2.max_invocations(), oracle.max_invocations());
  }
}

// Same property with a fault plan attached: the injector state travels
// through the checkpoint.
TEST(CheckpointResume, ResumesUnderFaults) {
  rng::Rng gen(22);
  const auto inst = matrix::planted_community(24, 48, {0.5, 1}, gen);
  const auto params = core::Params::practical();
  const auto plan = faults::FaultPlan::parse("seed=5,probe=0.05,retry=2");

  billboard::ProbeOracle oracle(inst.matrix);
  faults::FaultInjector injector(plan, inst.matrix.players());
  oracle.set_fault_injector(&injector);
  billboard::Billboard board;
  std::vector<core::RunCheckpoint> cuts;
  core::CheckpointPolicy policy;
  policy.every_rounds = 60;
  policy.sink = [&cuts](const core::RunCheckpoint& ck) { cuts.push_back(ck); };
  const auto reference =
      core::find_preferences_unknown_d(oracle, &board, 0.5, params, rng::Rng(33), policy);
  ASSERT_GE(cuts.size(), 1u);

  const auto& cut = cuts[cuts.size() / 2];
  EXPECT_TRUE(cut.has_injector);
  billboard::ProbeOracle oracle2(inst.matrix);
  faults::FaultInjector injector2(plan, inst.matrix.players());
  oracle2.set_fault_injector(&injector2);
  billboard::Billboard board2;
  core::CheckpointPolicy resume_policy;
  resume_policy.every_rounds = policy.every_rounds;
  const auto resumed = core::resume_unknown_d(oracle2, &board2, params, cut, resume_policy);
  EXPECT_EQ(resumed.to_json(), reference.to_json());

  // Resuming without the injector the checkpoint expects is an error.
  billboard::ProbeOracle oracle3(inst.matrix);
  billboard::Billboard board3;
  EXPECT_THROW(core::resume_unknown_d(oracle3, &board3, params, cut, resume_policy),
               std::invalid_argument);
}

TEST(CheckpointResume, RejectsShapeMismatch) {
  rng::Rng gen(23);
  const auto inst = matrix::planted_community(16, 32, {0.5, 0}, gen);
  const auto params = core::Params::practical();
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  std::vector<core::RunCheckpoint> cuts;
  core::CheckpointPolicy policy;
  policy.every_rounds = 20;
  policy.sink = [&cuts](const core::RunCheckpoint& ck) { cuts.push_back(ck); };
  (void)core::find_preferences_unknown_d(oracle, &board, 0.5, params, rng::Rng(41), policy);
  ASSERT_GE(cuts.size(), 1u);

  rng::Rng gen2(24);
  const auto other = matrix::planted_community(8, 32, {0.5, 0}, gen2);
  billboard::ProbeOracle wrong(other.matrix);
  billboard::Billboard wb;
  EXPECT_THROW(core::resume_unknown_d(wrong, &wb, params, cuts[0], policy),
               std::invalid_argument);

  auto tampered = cuts[0];
  tampered.algo = "anytime";
  EXPECT_THROW(core::resume_unknown_d(oracle, &board, params, tampered, policy),
               std::invalid_argument);
}

TEST(CheckpointResume, FileRoundTripPreservesResume) {
  rng::Rng gen(25);
  const auto inst = matrix::planted_community(16, 32, {0.5, 0}, gen);
  const auto params = core::Params::practical();
  billboard::ProbeOracle oracle(inst.matrix);
  billboard::Billboard board;
  const std::string path = testing::TempDir() + "resume_file_test.tmw";
  core::CheckpointPolicy policy;
  policy.every_rounds = 30;
  policy.sink = [&path](const core::RunCheckpoint& ck) {
    core::save_run_checkpoint(path, ck);
  };
  const auto reference =
      core::find_preferences_unknown_d(oracle, &board, 0.5, params, rng::Rng(51), policy);

  const auto loaded = core::load_run_checkpoint(path);
  billboard::ProbeOracle oracle2(inst.matrix);
  billboard::Billboard board2;
  core::CheckpointPolicy resume_policy;
  resume_policy.every_rounds = policy.every_rounds;
  const auto resumed =
      core::resume_unknown_d(oracle2, &board2, params, loaded, resume_policy);
  EXPECT_EQ(resumed.to_json(), reference.to_json());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tmwia
