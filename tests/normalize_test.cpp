// Tests for the m = Theta(n) reduction (Section 3's "without loss of
// generality" remark): dummy objects for m < n, virtual players for
// m > n, and end-to-end correctness through the reduction.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/normalize.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::core {
namespace {

TEST(Normalize, SquareInputPassesThrough) {
  rng::Rng rng(1);
  const auto inst = matrix::uniform_random(16, 16, rng);
  const auto norm = normalize(inst.matrix);
  EXPECT_EQ(norm.virtual_per_real, 1u);
  EXPECT_EQ(norm.expanded.players(), 16u);
  EXPECT_EQ(norm.expanded.objects(), 16u);
  for (matrix::PlayerId p = 0; p < 16; ++p) {
    EXPECT_EQ(norm.expanded.row(p), inst.matrix.row(p));
    EXPECT_EQ(norm.owner[p], p);
  }
}

TEST(Normalize, FewObjectsGetDummies) {
  rng::Rng rng(2);
  const auto inst = matrix::uniform_random(32, 8, rng);  // m < n
  const auto norm = normalize(inst.matrix);
  EXPECT_EQ(norm.virtual_per_real, 1u);
  EXPECT_EQ(norm.expanded.players(), 32u);
  EXPECT_EQ(norm.expanded.objects(), 32u);
  for (matrix::PlayerId p = 0; p < 32; ++p) {
    // Real prefix preserved, dummies all 0.
    for (matrix::ObjectId o = 0; o < 8; ++o) {
      EXPECT_EQ(norm.expanded.value(p, o), inst.matrix.value(p, o));
    }
    for (matrix::ObjectId o = 8; o < 32; ++o) {
      EXPECT_FALSE(norm.expanded.value(p, o));
    }
  }
}

TEST(Normalize, ManyObjectsGetVirtualPlayers) {
  rng::Rng rng(3);
  const auto inst = matrix::uniform_random(8, 31, rng);  // m > n
  const auto norm = normalize(inst.matrix);
  EXPECT_EQ(norm.virtual_per_real, 4u);  // ceil(31/8)
  EXPECT_EQ(norm.expanded.players(), 32u);
  EXPECT_EQ(norm.expanded.objects(), 32u);
  // Each real player owns 4 identical rows.
  for (std::size_t r = 0; r < 32; ++r) {
    EXPECT_EQ(norm.owner[r], r % 8);
    EXPECT_EQ(norm.expanded.row(static_cast<matrix::PlayerId>(r)),
              norm.expanded.row(norm.owner[r]));
  }
  EXPECT_EQ(norm.real_rounds(10), 40u);  // the paper's m/n factor
}

TEST(Normalize, DummyObjectsDoNotInflateDiameter) {
  rng::Rng rng(4);
  const auto inst = matrix::planted_community(32, 8, {0.5, 1}, rng);
  const auto norm = normalize(inst.matrix);
  EXPECT_EQ(norm.expanded.subset_diameter(inst.communities[0]),
            inst.matrix.subset_diameter(inst.communities[0]));
}

TEST(Normalize, VirtualCommunityScalesWithCopies) {
  // A community of alpha*n real players becomes alpha fraction of the
  // expanded instance too (copies preserve fractions).
  rng::Rng rng(5);
  const auto inst = matrix::planted_community(16, 61, {0.5, 0}, rng);
  const auto norm = normalize(inst.matrix);
  std::size_t virt_members = 0;
  for (std::size_t r = 0; r < norm.expanded.players(); ++r) {
    if (norm.expanded.row(static_cast<matrix::PlayerId>(r))
            .project(std::vector<std::uint32_t>{0, 1, 2, 3}) ==
        inst.centers[0].project(std::vector<std::uint32_t>{0, 1, 2, 3})) {
      // loose membership check via prefix match; exact below
    }
    if (norm.owner[r] < 16 &&
        inst.matrix.row(norm.owner[r]) == inst.centers[0]) {
      ++virt_members;
    }
  }
  EXPECT_EQ(virt_members, inst.communities[0].size() * norm.virtual_per_real);
}

TEST(Normalize, DenormalizeRoundTrip) {
  rng::Rng rng(6);
  const auto inst = matrix::uniform_random(8, 31, rng);
  const auto norm = normalize(inst.matrix);
  // Feed the expanded truth back: denormalization must recover the
  // original rows exactly.
  std::vector<bits::BitVector> expanded;
  for (std::size_t r = 0; r < norm.expanded.players(); ++r) {
    expanded.push_back(norm.expanded.row(static_cast<matrix::PlayerId>(r)));
  }
  const auto real = denormalize_outputs(norm, expanded);
  ASSERT_EQ(real.size(), 8u);
  for (matrix::PlayerId p = 0; p < 8; ++p) {
    EXPECT_EQ(real[p], inst.matrix.row(p));
  }
}

TEST(Normalize, EndToEndThroughZeroRadius) {
  // A zero-radius community in a wide matrix (m >> n): normalize, run
  // Zero Radius on the expanded instance, denormalize, and check the
  // community is exact on the real objects.
  rng::Rng rng(7);
  const auto inst = matrix::planted_community(64, 250, {0.5, 0}, rng);
  const auto norm = normalize(inst.matrix);
  ASSERT_EQ(norm.expanded.players(), norm.expanded.objects());

  billboard::ProbeOracle oracle(norm.expanded);
  std::vector<PlayerId> players(norm.expanded.players());
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(norm.expanded.objects());
  std::iota(objects.begin(), objects.end(), 0u);

  const auto expanded_out = zero_radius_bits(oracle, nullptr, players, objects, 0.5,
                                             Params::practical(), rng::Rng(8));
  const auto real_out = denormalize_outputs(norm, expanded_out);
  for (auto p : inst.communities[0]) {
    EXPECT_EQ(real_out[p], inst.centers[0]) << "player " << p;
  }
  // Cost translation: the expanded rounds times ceil(m/n).
  EXPECT_EQ(norm.virtual_per_real, 4u);
  EXPECT_GT(norm.real_rounds(oracle.max_invocations()), oracle.max_invocations());
}

TEST(Normalize, RejectsEmpty) {
  matrix::PreferenceMatrix empty;
  EXPECT_THROW(normalize(empty), std::invalid_argument);
}

}  // namespace
}  // namespace tmwia::core
