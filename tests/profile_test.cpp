// tmwia-lint: allow-file(sink-registration) obs unit tests construct the sinks under test.
// obs:: profiler + SLO watchdog + telemetry exporter.
//
// Contract coverage:
//   * ProfileZone trees: nesting via the thread-local current zone,
//     self-cost deposits, name-sorted children, exact JSON shape;
//   * byte-determinism: the same logical workload run serially and
//     across writer threads produces byte-identical attribution JSON
//     (the owner-write shard merge commutes, report() re-keys by name);
//   * ambient-zone propagation: a worker thread handed the caller's
//     zone via swap_current_zone attributes into the caller's subtree;
//   * wall sampling: opt-in, and omitted from the default export;
//   * SloSpec parsing, the watchdog's rolling-window objectives
//     (exact-order-statistic p99, degraded count, cumulative audit),
//     sticky breach, and the alert/report JSON shapes;
//   * TelemetryExporter: count-based tick cadence, record kinds in the
//     JSONL stream, Prometheus exposition sidecar, alert pass-through,
//     tracer exemplar spans, finish() idempotence.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/profile.hpp"
#include "tmwia/obs/slo.hpp"
#include "tmwia/obs/telemetry.hpp"
#include "tmwia/obs/trace.hpp"

namespace {

using namespace tmwia;

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "profile_" + tag + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".tmp";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const obs::ProfileNode* find_child(const obs::ProfileNode& node, const std::string& name) {
  for (const auto& c : node.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

// ---- profiler --------------------------------------------------------

TEST(Profile, CostNamesAreStableJsonKeys) {
  EXPECT_EQ(obs::cost_name(obs::Cost::kProbes), "probes");
  EXPECT_EQ(obs::cost_name(obs::Cost::kKernelBytes), "kernel_bytes");
  EXPECT_EQ(obs::cost_name(obs::Cost::kRankQueries), "rank_queries");
  EXPECT_EQ(obs::cost_name(obs::Cost::kLocks), "locks");
  EXPECT_EQ(obs::cost_name(obs::Cost::kRounds), "rounds");
  EXPECT_EQ(obs::cost_name(obs::Cost::kCalls), "calls");
  EXPECT_EQ(obs::cost_name(obs::Cost::kWallUs), "wall_us");
}

TEST(Profile, ZoneTreeNestsAndRendersExactJson) {
  obs::Profiler prof(true);
  {
    obs::ProfileZone outer("outer", prof);
    outer.add(obs::Cost::kProbes, 5);
    {
      obs::ProfileZone inner("inner", prof);
      inner.add(obs::Cost::kRounds, 2);
    }
  }
  const auto rep = prof.report();
  ASSERT_EQ(rep.root.name, "root");
  const auto* outer = find_child(rep.root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->cost(obs::Cost::kProbes), 5u);
  EXPECT_EQ(outer->cost(obs::Cost::kCalls), 1u);
  const auto* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->cost(obs::Cost::kRounds), 2u);
  // total() = self + descendants.
  EXPECT_EQ(outer->total(obs::Cost::kCalls), 2u);
  EXPECT_EQ(rep.root.total(obs::Cost::kProbes), 5u);
  // Exact export bytes: only nonzero axes, fixed axis order, no wall.
  EXPECT_EQ(rep.to_json(),
            "{\"name\":\"root\",\"costs\":{},\"children\":["
            "{\"name\":\"outer\",\"costs\":{\"probes\":5,\"calls\":1},\"children\":["
            "{\"name\":\"inner\",\"costs\":{\"rounds\":2,\"calls\":1},\"children\":[]}"
            "]}]}");
  // Flamegraph export: one axis, self costs as "value".
  EXPECT_EQ(rep.flamegraph_json(obs::Cost::kCalls),
            "{\"name\":\"root\",\"value\":0,\"children\":["
            "{\"name\":\"outer\",\"value\":1,\"children\":["
            "{\"name\":\"inner\",\"value\":1,\"children\":[]}"
            "]}]}");
}

/// Interning order must not leak into exports: zones opened b-then-a
/// still render a-then-b (children sorted by name).
TEST(Profile, ChildrenSortedByNameNotInterningOrder) {
  obs::Profiler prof(true);
  { obs::ProfileZone z("b", prof); }
  { obs::ProfileZone z("a", prof); }
  const auto json = prof.report().to_json();
  const auto pos_a = json.find("\"name\":\"a\"");
  const auto pos_b = json.find("\"name\":\"b\"");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
}

/// The determinism contract behind RunReport::profile: equal logical
/// work deposits the same tree bytes no matter how many writer threads
/// carried it (shard merge is a sum; report() re-keys by name).
TEST(Profile, ByteIdenticalAcrossWriterThreadCounts) {
  const auto work = [](obs::Profiler& prof, std::uint64_t salt) {
    obs::ProfileZone phase("phase", prof);
    phase.add(obs::Cost::kProbes, 100 + salt);
    obs::ProfileZone kernel("kernel", prof);
    kernel.add(obs::Cost::kKernelBytes, 64 * (salt + 1));
  };

  obs::Profiler serial(true);
  for (std::uint64_t t = 0; t < 4; ++t) work(serial, t);

  obs::Profiler threaded(true);
  std::vector<std::thread> pool;
  for (std::uint64_t t = 0; t < 4; ++t) {
    pool.emplace_back([&threaded, t, &work] { work(threaded, t); });
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(serial.report().to_json(), threaded.report().to_json());
  EXPECT_NE(serial.report().to_json().find("\"probes\":406"), std::string::npos);
}

/// What engine::parallel_for does for pool workers: install the
/// caller's zone with swap_current_zone, and the worker's deposits
/// land in the caller's subtree instead of under root.
TEST(Profile, AmbientZonePropagatesToWorkerThreads) {
  obs::Profiler prof(true);
  {
    obs::ProfileZone parent("parent", prof);
    const auto parent_id = parent.id();
    std::thread worker([&prof, parent_id] {
      const auto prev = obs::Profiler::swap_current_zone(parent_id);
      {
        obs::ProfileZone child("child", prof);
        child.add(obs::Cost::kRankQueries, 3);
      }
      obs::Profiler::swap_current_zone(prev);
    });
    worker.join();
  }
  const auto rep = prof.report();
  const auto* parent = find_child(rep.root, "parent");
  ASSERT_NE(parent, nullptr);
  const auto* child = find_child(*parent, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->cost(obs::Cost::kRankQueries), 3u);
  EXPECT_EQ(find_child(rep.root, "child"), nullptr);
}

TEST(Profile, DisabledProfilerIsANoOp) {
  obs::Profiler prof(false);
  {
    obs::ProfileZone z("ghost", prof);
    z.add(obs::Cost::kProbes, 99);
  }
  obs::profile_cost(obs::Cost::kProbes, 1);  // global() is disabled by default too
  EXPECT_TRUE(prof.report().root.children.empty());
  EXPECT_FALSE(obs::Profiler::global().enabled());
}

/// reset() zeroes the slots but keeps interned ids valid — the
/// pre-interned hot-path handles (serve request zones) survive.
TEST(Profile, ResetKeepsInternedZoneIdsValid) {
  obs::Profiler prof(true);
  const auto id = prof.intern(obs::Profiler::kRoot, "hot");
  {
    obs::ProfileZone z(id, prof);
    z.add(obs::Cost::kLocks, 7);
  }
  const auto rep_before = prof.report();
  const auto* before = find_child(rep_before.root, "hot");
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->cost(obs::Cost::kLocks), 7u);

  prof.reset();
  const auto rep_zeroed = prof.report();
  const auto* zeroed = find_child(rep_zeroed.root, "hot");
  ASSERT_NE(zeroed, nullptr);  // zone survives, costs are gone
  EXPECT_EQ(zeroed->cost(obs::Cost::kLocks), 0u);

  {
    obs::ProfileZone z(id, prof);  // the cached id still deposits correctly
    z.add(obs::Cost::kLocks, 2);
  }
  const auto rep_after = prof.report();
  const auto* after = find_child(rep_after.root, "hot");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->cost(obs::Cost::kLocks), 2u);
  EXPECT_EQ(after->cost(obs::Cost::kCalls), 1u);
}

/// Wall sampling is opt-in and quarantined from the deterministic
/// export: deposits appear under include_wall=true only.
TEST(Profile, WallSamplingIsOptInAndOmittedByDefault) {
  obs::Profiler prof(true);
  prof.set_wall_sampling(true);
  {
    obs::ProfileZone z("timed", prof);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto rep = prof.report();
  const auto* timed = find_child(rep.root, "timed");
  ASSERT_NE(timed, nullptr);
  EXPECT_GE(timed->cost(obs::Cost::kWallUs), 1000u);
  EXPECT_EQ(rep.to_json(false).find("wall_us"), std::string::npos);
  EXPECT_NE(rep.to_json(true).find("\"wall_us\":"), std::string::npos);
}

// ---- SLO watchdog ----------------------------------------------------

TEST(Slo, SpecParsesDeclaredObjectivesAndRejectsJunk) {
  const auto spec = obs::SloSpec::parse("p99_us=5000,staleness=4,degraded=0,audit=1,window=32");
  EXPECT_DOUBLE_EQ(spec.p99_us, 5000.0);
  EXPECT_EQ(spec.staleness, 4);
  EXPECT_EQ(spec.degraded, 0);
  EXPECT_EQ(spec.audit, 1);
  EXPECT_EQ(spec.window, 32u);
  EXPECT_TRUE(spec.any());

  // Absent keys leave objectives disabled; the empty spec enables none.
  const auto empty = obs::SloSpec::parse("");
  EXPECT_FALSE(empty.any());
  EXPECT_EQ(empty.window, 256u);
  const auto partial = obs::SloSpec::parse("degraded=0");
  EXPECT_TRUE(partial.any());
  EXPECT_LT(partial.p99_us, 0.0);

  EXPECT_THROW((void)obs::SloSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)obs::SloSpec::parse("p99_us=abc"), std::invalid_argument);
  EXPECT_THROW((void)obs::SloSpec::parse("p99_us"), std::invalid_argument);
  EXPECT_THROW((void)obs::SloSpec::parse("window=0"), std::invalid_argument);
  EXPECT_THROW((void)obs::SloSpec::parse("degraded=-1"), std::invalid_argument);
}

TEST(Slo, DegradedObjectiveAlertsAndBreachIsSticky) {
  obs::SloWatchdog dog(obs::SloSpec::parse("degraded=0,window=8"));
  dog.observe_request(100, 0, false);
  EXPECT_TRUE(dog.evaluate(1).empty());
  EXPECT_FALSE(dog.breached());

  dog.observe_request(100, 0, true);
  const auto alerts = dog.evaluate(2);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].objective, "degraded");
  EXPECT_DOUBLE_EQ(alerts[0].observed, 1.0);
  EXPECT_DOUBLE_EQ(alerts[0].threshold, 0.0);
  EXPECT_EQ(alerts[0].window_count, 2u);
  EXPECT_EQ(alerts[0].to_json(),
            "{\"kind\":\"alert\",\"seq\":2,\"objective\":\"degraded\","
            "\"observed\":1,\"threshold\":0,\"window\":2}");
  EXPECT_TRUE(dog.breached());

  // The breach outlives the offending window: after `window` clean
  // requests evaluate() stops alerting, but breached() stays true.
  for (int i = 0; i < 8; ++i) dog.observe_request(100, 0, false);
  EXPECT_TRUE(dog.evaluate(3).empty());
  EXPECT_TRUE(dog.breached());

  const auto rep = dog.report();
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.evaluations, 3u);
  ASSERT_EQ(rep.objectives.size(), 1u);
  EXPECT_EQ(rep.objectives[0].name, "degraded");
  EXPECT_EQ(rep.objectives[0].breaches, 1u);
  EXPECT_FALSE(rep.objectives[0].ok);
  EXPECT_NE(rep.to_json().find("\"ok\":false,\"evaluations\":3"), std::string::npos);
}

/// p99 is the exact order statistic over the rolling window, not a
/// bucketed estimate: with ten samples the rank-9 latency decides.
TEST(Slo, P99IsExactOrderStatisticOverWindow) {
  obs::SloWatchdog dog(obs::SloSpec::parse("p99_us=500,window=16"));
  for (std::uint64_t i = 1; i <= 10; ++i) dog.observe_request(i * 100, 0, false);
  const auto alerts = dog.evaluate(1);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].objective, "p99_us");
  EXPECT_DOUBLE_EQ(alerts[0].observed, 1000.0);  // max of 100..1000

  // At threshold == worst there is no breach (strict >).
  obs::SloWatchdog lenient(obs::SloSpec::parse("p99_us=1000,window=16"));
  for (std::uint64_t i = 1; i <= 10; ++i) lenient.observe_request(i * 100, 0, false);
  EXPECT_TRUE(lenient.evaluate(1).empty());
  EXPECT_FALSE(lenient.breached());
}

/// The audit objective is cumulative (not windowed) and evaluates even
/// before any request arrives.
TEST(Slo, AuditViolationsAreCumulative) {
  obs::SloWatchdog dog(obs::SloSpec::parse("audit=0,window=4"));
  EXPECT_TRUE(dog.evaluate(1).empty());
  dog.observe_audit_violations(2);
  const auto alerts = dog.evaluate(2);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].objective, "audit");
  EXPECT_DOUBLE_EQ(alerts[0].observed, 2.0);
  // Violations never age out of a window.
  EXPECT_EQ(dog.evaluate(3).size(), 1u);
}

// ---- telemetry exporter ----------------------------------------------

/// Count kind-prefixes per line of a JSONL stream.
std::map<std::string, int> kind_counts(const std::string& text) {
  std::map<std::string, int> counts;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string prefix = "{\"kind\":\"";
    EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
    const auto end = line.find('"', prefix.size());
    counts[line.substr(prefix.size(), end - prefix.size())]++;
  }
  return counts;
}

TEST(Telemetry, CountBasedCadenceAndRecordKinds) {
  const std::string path = temp_path("stream");
  obs::MetricsRegistry reg;
  reg.counter("req.count").inc();
  obs::Profiler prof(true);
  {
    obs::ProfileZone z("phase", prof);
    z.add(obs::Cost::kProbes, 11);
  }
  obs::SloWatchdog dog(obs::SloSpec::parse("degraded=0,window=8"));

  obs::TelemetryConfig cfg;
  cfg.path = path;
  cfg.every = 2;
  obs::TelemetryExporter exporter(cfg, reg, &prof, &dog);
  for (int i = 0; i < 5; ++i) {
    exporter.observe_request("t0", "recommend", 100 + i, 0, false);
  }
  EXPECT_EQ(exporter.ticks(), 2u);  // requests 2 and 4 closed ticks
  exporter.finish();
  EXPECT_EQ(exporter.ticks(), 3u);  // final tick over the odd request
  EXPECT_EQ(exporter.alerts_written(), 0u);

  const auto text = slurp(path);
  const auto counts = kind_counts(text);
  EXPECT_EQ(counts.at("snapshot"), 3);
  EXPECT_EQ(counts.at("exemplar"), 5);  // 2 + 2 + 1, every request is a tail exemplar here
  EXPECT_EQ(counts.at("slo_report"), 1);
  EXPECT_EQ(counts.count("alert"), 0u);
  std::uint64_t total = 0;
  for (const auto& [kind, n] : counts) total += static_cast<std::uint64_t>(n);
  EXPECT_EQ(exporter.records_written(), total);
  // Snapshots embed the metrics and the profiler tree; the stream ends
  // with the SLO verdict.
  EXPECT_NE(text.find("\"metrics\":{\"counters\":{\"req.count\":1}"), std::string::npos);
  EXPECT_NE(text.find("\"profile\":{\"name\":\"root\""), std::string::npos);
  EXPECT_NE(text.rfind("{\"kind\":\"slo_report\""), std::string::npos);
  EXPECT_NE(text.find("\"report\":{\"ok\":true"), std::string::npos);

  // The Prometheus exposition sidecar carries the same series under
  // the tmwia_ prefix with dots mapped to underscores.
  const auto prom = slurp(path + ".prom");
  EXPECT_NE(prom.find("tmwia_req_count 1"), std::string::npos);

  // finish() is idempotent, and late observations are dropped.
  const auto records = exporter.records_written();
  exporter.finish();
  exporter.observe_request("t0", "recommend", 1, 0, false);
  EXPECT_EQ(exporter.records_written(), records);

  std::remove(path.c_str());
  std::remove((path + ".prom").c_str());
}

TEST(Telemetry, AlertsFlowIntoStreamAndExemplarsIntoTracer) {
  const std::string path = temp_path("alerts");
  obs::MetricsRegistry reg;
  obs::SloWatchdog dog(obs::SloSpec::parse("degraded=0,window=8"));
  std::ostringstream trace_out;
  obs::Tracer tracer(trace_out);

  obs::TelemetryConfig cfg;
  cfg.path = path;
  cfg.every = 1;  // tick per request
  obs::TelemetryExporter exporter(cfg, reg, nullptr, &dog, &tracer);
  // The service feeds the watchdog and the exporter side by side
  // (serve::RecommendationService::observe); mirror that here.
  dog.observe_request(250, 2, true);
  exporter.observe_request("sab", "recommend", 250, 2, true);
  exporter.finish();
  tracer.flush();

  // Level-triggered: the request's tick alerts, and finish()'s final
  // tick re-evaluates the still-degraded window and alerts again.
  EXPECT_EQ(exporter.alerts_written(), 2u);
  EXPECT_TRUE(dog.breached());
  const auto text = slurp(path);
  EXPECT_NE(text.find("{\"kind\":\"alert\",\"seq\":1,\"objective\":\"degraded\""),
            std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"exemplar\",\"seq\":1,\"tenant\":\"sab\""),
            std::string::npos);
  EXPECT_NE(text.find("\"report\":{\"ok\":false"), std::string::npos);
  // The slow-tail exemplar also became a trace span.
  const auto spans = trace_out.str();
  EXPECT_NE(spans.find("\"name\":\"serve.exemplar\""), std::string::npos);
  EXPECT_NE(spans.find("\"latency_us\":250"), std::string::npos);

  std::remove(path.c_str());
  std::remove((path + ".prom").c_str());
}

TEST(Telemetry, ThrowsWhenStreamPathCannotOpen) {
  obs::MetricsRegistry reg;
  obs::TelemetryConfig cfg;
  cfg.path = testing::TempDir() + "no-such-dir-tmwia/stream.jsonl";
  EXPECT_THROW(obs::TelemetryExporter(cfg, reg), std::runtime_error);
}

}  // namespace
