// Tests for the matrix module: the PreferenceMatrix audit helpers and
// every workload generator's advertised structure (community sizes,
// planted diameters, type counts).
#include <gtest/gtest.h>

#include <set>

#include "tmwia/matrix/generators.hpp"
#include "tmwia/matrix/preference_matrix.hpp"

namespace tmwia::matrix {
namespace {

TEST(PreferenceMatrix, ConstructAndAccess) {
  PreferenceMatrix m(3, 5);
  EXPECT_EQ(m.players(), 3u);
  EXPECT_EQ(m.objects(), 5u);
  EXPECT_FALSE(m.value(1, 2));
  m.set_value(1, 2, true);
  EXPECT_TRUE(m.value(1, 2));
  EXPECT_TRUE(m.row(1).get(2));
}

TEST(PreferenceMatrix, FromRowsValidatesShape) {
  std::vector<bits::BitVector> rows{bits::BitVector(4), bits::BitVector(5)};
  EXPECT_THROW(PreferenceMatrix{rows}, std::invalid_argument);
}

TEST(PreferenceMatrix, SubsetDiameter) {
  PreferenceMatrix m(3, 4);
  m.row(0) = bits::BitVector::from_string("0000");
  m.row(1) = bits::BitVector::from_string("0011");
  m.row(2) = bits::BitVector::from_string("1111");
  const std::vector<PlayerId> all{0, 1, 2};
  EXPECT_EQ(m.subset_diameter(all), 4u);
  const std::vector<PlayerId> pair{0, 1};
  EXPECT_EQ(m.subset_diameter(pair), 2u);
}

TEST(PreferenceMatrix, IsTypicalChecksBothConditions) {
  PreferenceMatrix m(4, 4);
  m.row(0) = bits::BitVector::from_string("0000");
  m.row(1) = bits::BitVector::from_string("0001");
  m.row(2) = bits::BitVector::from_string("1111");
  m.row(3) = bits::BitVector::from_string("1110");
  const std::vector<PlayerId> half{0, 1};
  EXPECT_TRUE(m.is_typical(half, 0.5, 1));
  EXPECT_FALSE(m.is_typical(half, 0.75, 1));  // too small
  EXPECT_FALSE(m.is_typical(half, 0.5, 0));   // diameter 1 > 0
}

TEST(PreferenceMatrix, DiscrepancyAndStretch) {
  PreferenceMatrix m(2, 4);
  m.row(0) = bits::BitVector::from_string("0000");
  m.row(1) = bits::BitVector::from_string("0011");
  std::vector<bits::BitVector> out{bits::BitVector::from_string("0001"),
                                   bits::BitVector::from_string("0011")};
  const std::vector<PlayerId> ids{0, 1};
  EXPECT_EQ(m.discrepancy(out, ids), 1u);  // player 0 off by 1
  EXPECT_DOUBLE_EQ(m.stretch(out, ids), 0.5);
}

TEST(PreferenceMatrix, StretchWithZeroDiameter) {
  PreferenceMatrix m(2, 4);
  std::vector<bits::BitVector> exact{bits::BitVector(4), bits::BitVector(4)};
  std::vector<bits::BitVector> off{bits::BitVector::from_string("1000"), bits::BitVector(4)};
  const std::vector<PlayerId> ids{0, 1};
  EXPECT_DOUBLE_EQ(m.stretch(exact, ids), 0.0);
  EXPECT_DOUBLE_EQ(m.stretch(off, ids), 1.0);  // convention: Delta itself
}

// ----------------------------------------------------------------- generators

TEST(Generators, RandomVectorIsBalanced) {
  rng::Rng rng(1);
  const auto v = random_vector(10000, rng);
  EXPECT_NEAR(static_cast<double>(v.count_ones()), 5000.0, 300.0);
}

TEST(Generators, FlipRandomExactCount) {
  rng::Rng rng(2);
  const auto v = random_vector(500, rng);
  for (std::size_t flips : {0u, 1u, 7u, 100u}) {
    const auto w = flip_random(v, flips, rng);
    EXPECT_EQ(v.hamming(w), flips);
  }
  EXPECT_THROW(flip_random(v, 501, rng), std::invalid_argument);
}

TEST(Generators, PlantedCommunitySizeAndDiameter) {
  rng::Rng rng(3);
  const auto inst = planted_community(200, 300, {0.4, 3}, rng);
  ASSERT_EQ(inst.communities.size(), 1u);
  EXPECT_EQ(inst.communities[0].size(), 80u);
  EXPECT_LE(inst.matrix.subset_diameter(inst.communities[0]), 6u);
  // Members are within `radius` of the center.
  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(inst.matrix.row(p).hamming(inst.centers[0]), 3u);
  }
  EXPECT_EQ(inst.outsiders().size(), 120u);
}

TEST(Generators, PlantedCommunityZeroRadiusIdenticalRows) {
  rng::Rng rng(4);
  const auto inst = planted_community(50, 64, {0.5, 0}, rng);
  for (PlayerId p : inst.communities[0]) {
    EXPECT_EQ(inst.matrix.row(p), inst.centers[0]);
  }
  EXPECT_EQ(inst.matrix.subset_diameter(inst.communities[0]), 0u);
}

TEST(Generators, PlantedCommunitiesDisjoint) {
  rng::Rng rng(5);
  const auto inst =
      planted_communities(100, 128, {{0.3, 1}, {0.3, 2}, {0.2, 0}}, rng);
  ASSERT_EQ(inst.communities.size(), 3u);
  std::set<PlayerId> seen;
  for (const auto& c : inst.communities) {
    for (PlayerId p : c) {
      EXPECT_TRUE(seen.insert(p).second) << "player in two communities";
    }
  }
  EXPECT_EQ(inst.communities[0].size(), 30u);
  EXPECT_EQ(inst.communities[2].size(), 20u);
}

TEST(Generators, PlantedCommunitiesRejectAlphaOverflow) {
  rng::Rng rng(6);
  EXPECT_THROW(planted_communities(100, 128, {{0.7, 0}, {0.5, 0}}, rng),
               std::invalid_argument);
}

TEST(Generators, AdversarialDiversityStructure) {
  rng::Rng rng(7);
  const auto inst = adversarial_diversity(200, 256, 4, 2, 0.2, rng);
  ASSERT_EQ(inst.communities.size(), 4u);
  std::size_t structured = 0;
  for (const auto& c : inst.communities) {
    structured += c.size();
    EXPECT_LE(inst.matrix.subset_diameter(c), 4u);
  }
  EXPECT_EQ(structured, 160u);  // 20% noise
}

TEST(Generators, MarkovTypeModelCoversAllPlayers) {
  rng::Rng rng(8);
  const auto inst = markov_type_model(300, 128, 5, 0.1, rng);
  ASSERT_EQ(inst.communities.size(), 5u);
  std::size_t total = 0;
  for (const auto& c : inst.communities) total += c.size();
  EXPECT_EQ(total, 300u);
  // With p0 = 0.1, players are close to their type's tendency vector:
  // expected distance = 0.1 * 128 = 12.8.
  for (std::size_t t = 0; t < 5; ++t) {
    for (PlayerId p : inst.communities[t]) {
      EXPECT_LE(inst.matrix.row(p).hamming(inst.centers[t]), 35u);
    }
  }
}

TEST(Generators, LowRankModelTinyNoise) {
  rng::Rng rng(9);
  const auto inst = low_rank_model(200, 256, 3, 0.01, rng);
  for (std::size_t t = 0; t < 3; ++t) {
    for (PlayerId p : inst.communities[t]) {
      EXPECT_LE(inst.matrix.row(p).hamming(inst.centers[t]), 15u);
    }
  }
}

TEST(Generators, UniformRandomHasNoCommunities) {
  rng::Rng rng(10);
  const auto inst = uniform_random(50, 512, rng);
  EXPECT_TRUE(inst.communities.empty());
  // Rows are pairwise far (~256).
  EXPECT_GT(inst.matrix.row(0).hamming(inst.matrix.row(1)), 180u);
}

TEST(Generators, DeterministicGivenSeed) {
  rng::Rng r1(99), r2(99);
  const auto a = planted_community(64, 64, {0.5, 2}, r1);
  const auto b = planted_community(64, 64, {0.5, 2}, r2);
  EXPECT_EQ(a.matrix.rows().size(), b.matrix.rows().size());
  for (PlayerId p = 0; p < 64; ++p) {
    EXPECT_EQ(a.matrix.row(p), b.matrix.row(p));
  }
  EXPECT_EQ(a.communities, b.communities);
}

}  // namespace
}  // namespace tmwia::matrix
