// Tests for the probe-noise models and the algorithms' behaviour under
// them. Sticky noise effectively perturbs each player's vector (an
// (alpha, D) community becomes an (alpha, D + ~2*eps*m) community), so
// the distance-bounded machinery absorbs it; fresh noise additionally
// makes re-probes inconsistent, which Select's local memoization must
// tolerate without crashing.
#include <gtest/gtest.h>

#include <numeric>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/small_radius.hpp"
#include "tmwia/matrix/generators.hpp"

namespace tmwia::billboard {
namespace {

matrix::PreferenceMatrix zeros(std::size_t n, std::size_t m) {
  return matrix::PreferenceMatrix(n, m);
}

TEST(Noise, NoneIsExact) {
  const auto mat = zeros(4, 64);
  ProbeOracle o(mat, NoiseModel::none());
  for (ObjectId j = 0; j < 64; ++j) EXPECT_FALSE(o.probe(0, j));
}

TEST(Noise, StickyFlipsApproxEpsilonFraction) {
  const auto mat = zeros(8, 4096);
  ProbeOracle o(mat, NoiseModel::sticky(0.1, 99));
  std::size_t flips = 0;
  for (ObjectId j = 0; j < 4096; ++j) {
    if (o.probe(3, j)) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / 4096.0, 0.1, 0.02);
}

TEST(Noise, StickyIsConsistentAcrossReprobes) {
  const auto mat = zeros(2, 512);
  ProbeOracle o(mat, NoiseModel::sticky(0.3, 7));
  std::vector<bool> first;
  for (ObjectId j = 0; j < 512; ++j) first.push_back(o.probe(0, j));
  for (ObjectId j = 0; j < 512; ++j) {
    EXPECT_EQ(o.probe(0, j), first[j]) << "object " << j;
  }
}

TEST(Noise, StickyDiffersAcrossPlayers) {
  const auto mat = zeros(2, 2048);
  ProbeOracle o(mat, NoiseModel::sticky(0.2, 7));
  std::size_t differ = 0;
  for (ObjectId j = 0; j < 2048; ++j) {
    if (o.probe(0, j) != o.probe(1, j)) ++differ;
  }
  // Independent 20% flips disagree on ~2*0.2*0.8 = 32% of coordinates.
  EXPECT_NEAR(static_cast<double>(differ) / 2048.0, 0.32, 0.05);
}

TEST(Noise, FreshCanDisagreeAcrossReprobes) {
  const auto mat = zeros(1, 2048);
  ProbeOracle o(mat, NoiseModel::fresh(0.25, 11));
  std::size_t disagreements = 0;
  for (ObjectId j = 0; j < 2048; ++j) {
    const bool a = o.probe(0, j);
    const bool b = o.probe(0, j);
    if (a != b) ++disagreements;
  }
  EXPECT_GT(disagreements, 400u);  // ~2*eps*(1-eps)*2048 ~ 768
  EXPECT_LT(disagreements, 1100u);
}

TEST(Noise, ProbedValueReflectsLatestPost) {
  const auto mat = zeros(1, 64);
  ProbeOracle o(mat, NoiseModel::fresh(0.5, 13));
  for (int trial = 0; trial < 64; ++trial) {
    const bool read = o.probe(0, 5);
    EXPECT_EQ(o.probed_value(0, 5), read);
  }
}

TEST(Noise, ZeroEpsilonIsEquivalentToNone) {
  // eps = 0 must be bit-for-bit kNone under every kind, not merely
  // "unlikely to flip": bernoulli_hash draws in [0, 1), so a threshold
  // of 0 can never fire.
  rng::Rng gen(41);
  const auto inst = matrix::uniform_random(4, 256, gen);
  ProbeOracle plain(inst.matrix, NoiseModel::none());
  ProbeOracle sticky(inst.matrix, NoiseModel::sticky(0.0, 99));
  ProbeOracle fresh(inst.matrix, NoiseModel::fresh(0.0, 99));
  for (matrix::PlayerId p = 0; p < 4; ++p) {
    for (ObjectId j = 0; j < 256; ++j) {
      const bool truth = plain.probe(p, j);
      EXPECT_EQ(sticky.probe(p, j), truth);
      EXPECT_EQ(fresh.probe(p, j), truth);
    }
  }
}

TEST(Noise, FullEpsilonStickyIsDeterministicComplement) {
  // eps = 1 flips every read, deterministically: probes always return
  // the complement of the truth, and re-probes agree with themselves.
  rng::Rng gen(43);
  const auto inst = matrix::uniform_random(2, 256, gen);
  ProbeOracle o(inst.matrix, NoiseModel::sticky(1.0, 7));
  for (matrix::PlayerId p = 0; p < 2; ++p) {
    for (ObjectId j = 0; j < 256; ++j) {
      const bool read = o.probe(p, j);
      EXPECT_NE(read, inst.matrix.value(p, j));
      EXPECT_EQ(o.probe(p, j), read);
    }
  }
}

TEST(Noise, FreshReprobeCanContradictThePostedValue) {
  // Under fresh noise the billboard carries the *latest* read: a
  // re-probe may disagree with what was posted before, and when it does
  // the posted value must follow the new read.
  const auto mat = zeros(1, 4096);
  ProbeOracle o(mat, NoiseModel::fresh(0.3, 17));
  std::size_t contradictions = 0;
  for (ObjectId j = 0; j < 4096; ++j) {
    const bool posted_before = o.probe(0, j);
    ASSERT_EQ(o.probed_value(0, j), posted_before);
    const bool reread = o.probe(0, j);
    if (reread != posted_before) {
      ++contradictions;
      EXPECT_EQ(o.probed_value(0, j), reread);
    }
  }
  // ~2*eps*(1-eps) = 42% of re-probes contradict the posted value.
  EXPECT_GT(contradictions, 1400u);
  EXPECT_LT(contradictions, 2100u);
}

TEST(Noise, ZeroRadiusDegradesGracefullyUnderStickyNoise) {
  // An exact-agreement community read through sticky eps-noise is an
  // (alpha, ~2*eps*m) community of the *read* vectors; Zero Radius
  // (which assumes D = 0) fragments, but each player's output must stay
  // within O(eps*m) of its own noisy view rather than collapse.
  const std::size_t n = 256;
  const double eps = 0.01;
  rng::Rng gen(21);
  auto inst = matrix::planted_community(n, n, {1.0, 0}, gen);
  ProbeOracle oracle(inst.matrix, NoiseModel::sticky(eps, 5));

  std::vector<matrix::PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(n);
  std::iota(objects.begin(), objects.end(), 0u);

  const auto outputs = core::zero_radius_bits(oracle, nullptr, players, objects, 1.0,
                                              core::Params::practical(), rng::Rng(22));
  // ~eps*n expected read-flips per player; allow generous head room for
  // adopted popular vectors carrying other players' flips.
  std::size_t worst = 0;
  for (matrix::PlayerId p = 0; p < n; ++p) {
    worst = std::max(worst, outputs[p].hamming(inst.matrix.row(p)));
  }
  EXPECT_LT(worst, static_cast<std::size_t>(12 * eps * static_cast<double>(n)) + 4);
}

TEST(Noise, SmallRadiusAbsorbsStickyNoiseIntoD) {
  // Feeding the *noise-inflated* D to Small Radius restores the 5D
  // guarantee with respect to the players' noisy views — noise is just
  // extra diversity, the exact point of the paper's D-parameterized
  // guarantee.
  const std::size_t n = 128;
  const std::size_t m = 256;
  const double eps = 0.01;
  rng::Rng gen(31);
  auto inst = matrix::planted_community(n, m, {1.0, 1}, gen);
  ProbeOracle oracle(inst.matrix, NoiseModel::sticky(eps, 17));

  std::vector<matrix::PlayerId> players(n);
  std::iota(players.begin(), players.end(), 0u);
  std::vector<std::uint32_t> objects(m);
  std::iota(objects.begin(), objects.end(), 0u);

  const auto noisy_D = static_cast<std::size_t>(
      2 + 4.0 * eps * static_cast<double>(m));  // planted 2 + noise inflation
  const auto res =
      core::small_radius(oracle, nullptr, players, objects, 1.0, noisy_D,
                         core::Params::practical(), rng::Rng(32), n);
  std::size_t worst = 0;
  for (matrix::PlayerId p = 0; p < n; ++p) {
    worst = std::max(worst, res.outputs[p].hamming(inst.matrix.row(p)));
  }
  EXPECT_LE(worst, 5 * noisy_D);
}

}  // namespace
}  // namespace tmwia::billboard
