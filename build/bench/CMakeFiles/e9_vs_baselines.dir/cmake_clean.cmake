file(REMOVE_RECURSE
  "CMakeFiles/e9_vs_baselines.dir/e9_vs_baselines.cpp.o"
  "CMakeFiles/e9_vs_baselines.dir/e9_vs_baselines.cpp.o.d"
  "e9_vs_baselines"
  "e9_vs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
