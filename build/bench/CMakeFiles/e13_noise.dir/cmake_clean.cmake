file(REMOVE_RECURSE
  "CMakeFiles/e13_noise.dir/e13_noise.cpp.o"
  "CMakeFiles/e13_noise.dir/e13_noise.cpp.o.d"
  "e13_noise"
  "e13_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
