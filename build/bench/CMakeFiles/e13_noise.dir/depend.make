# Empty dependencies file for e13_noise.
# This may be replaced when dependencies are built.
