file(REMOVE_RECURSE
  "CMakeFiles/e8_main_theorem.dir/e8_main_theorem.cpp.o"
  "CMakeFiles/e8_main_theorem.dir/e8_main_theorem.cpp.o.d"
  "e8_main_theorem"
  "e8_main_theorem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_main_theorem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
