# Empty dependencies file for e8_main_theorem.
# This may be replaced when dependencies are built.
