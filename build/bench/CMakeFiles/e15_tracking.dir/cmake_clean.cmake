file(REMOVE_RECURSE
  "CMakeFiles/e15_tracking.dir/e15_tracking.cpp.o"
  "CMakeFiles/e15_tracking.dir/e15_tracking.cpp.o.d"
  "e15_tracking"
  "e15_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
