# Empty dependencies file for e15_tracking.
# This may be replaced when dependencies are built.
