# Empty compiler generated dependencies file for e3_partition_lemma.
# This may be replaced when dependencies are built.
