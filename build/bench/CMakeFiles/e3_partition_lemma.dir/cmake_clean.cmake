file(REMOVE_RECURSE
  "CMakeFiles/e3_partition_lemma.dir/e3_partition_lemma.cpp.o"
  "CMakeFiles/e3_partition_lemma.dir/e3_partition_lemma.cpp.o.d"
  "e3_partition_lemma"
  "e3_partition_lemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_partition_lemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
