file(REMOVE_RECURSE
  "CMakeFiles/e5_coalesce.dir/e5_coalesce.cpp.o"
  "CMakeFiles/e5_coalesce.dir/e5_coalesce.cpp.o.d"
  "e5_coalesce"
  "e5_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
