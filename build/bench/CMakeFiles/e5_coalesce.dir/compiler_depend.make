# Empty compiler generated dependencies file for e5_coalesce.
# This may be replaced when dependencies are built.
