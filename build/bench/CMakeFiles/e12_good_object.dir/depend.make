# Empty dependencies file for e12_good_object.
# This may be replaced when dependencies are built.
