file(REMOVE_RECURSE
  "CMakeFiles/e12_good_object.dir/e12_good_object.cpp.o"
  "CMakeFiles/e12_good_object.dir/e12_good_object.cpp.o.d"
  "e12_good_object"
  "e12_good_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_good_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
