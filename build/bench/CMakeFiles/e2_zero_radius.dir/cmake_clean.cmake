file(REMOVE_RECURSE
  "CMakeFiles/e2_zero_radius.dir/e2_zero_radius.cpp.o"
  "CMakeFiles/e2_zero_radius.dir/e2_zero_radius.cpp.o.d"
  "e2_zero_radius"
  "e2_zero_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_zero_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
