# Empty dependencies file for e2_zero_radius.
# This may be replaced when dependencies are built.
