file(REMOVE_RECURSE
  "CMakeFiles/e6_large_radius.dir/e6_large_radius.cpp.o"
  "CMakeFiles/e6_large_radius.dir/e6_large_radius.cpp.o.d"
  "e6_large_radius"
  "e6_large_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_large_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
