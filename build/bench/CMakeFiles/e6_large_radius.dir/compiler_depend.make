# Empty compiler generated dependencies file for e6_large_radius.
# This may be replaced when dependencies are built.
