file(REMOVE_RECURSE
  "CMakeFiles/e11_micro.dir/e11_micro.cpp.o"
  "CMakeFiles/e11_micro.dir/e11_micro.cpp.o.d"
  "e11_micro"
  "e11_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
