# Empty dependencies file for e11_micro.
# This may be replaced when dependencies are built.
