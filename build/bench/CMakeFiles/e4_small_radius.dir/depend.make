# Empty dependencies file for e4_small_radius.
# This may be replaced when dependencies are built.
