file(REMOVE_RECURSE
  "CMakeFiles/e4_small_radius.dir/e4_small_radius.cpp.o"
  "CMakeFiles/e4_small_radius.dir/e4_small_radius.cpp.o.d"
  "e4_small_radius"
  "e4_small_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_small_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
