file(REMOVE_RECURSE
  "CMakeFiles/e1_select.dir/e1_select.cpp.o"
  "CMakeFiles/e1_select.dir/e1_select.cpp.o.d"
  "e1_select"
  "e1_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
