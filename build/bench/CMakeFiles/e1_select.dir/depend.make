# Empty dependencies file for e1_select.
# This may be replaced when dependencies are built.
