# Empty dependencies file for e10_anytime.
# This may be replaced when dependencies are built.
