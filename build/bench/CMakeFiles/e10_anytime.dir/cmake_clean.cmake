file(REMOVE_RECURSE
  "CMakeFiles/e10_anytime.dir/e10_anytime.cpp.o"
  "CMakeFiles/e10_anytime.dir/e10_anytime.cpp.o.d"
  "e10_anytime"
  "e10_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
