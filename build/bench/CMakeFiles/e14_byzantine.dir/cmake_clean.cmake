file(REMOVE_RECURSE
  "CMakeFiles/e14_byzantine.dir/e14_byzantine.cpp.o"
  "CMakeFiles/e14_byzantine.dir/e14_byzantine.cpp.o.d"
  "e14_byzantine"
  "e14_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
