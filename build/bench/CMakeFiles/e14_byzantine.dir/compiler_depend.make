# Empty compiler generated dependencies file for e14_byzantine.
# This may be replaced when dependencies are built.
