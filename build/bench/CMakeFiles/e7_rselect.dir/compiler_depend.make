# Empty compiler generated dependencies file for e7_rselect.
# This may be replaced when dependencies are built.
