file(REMOVE_RECURSE
  "CMakeFiles/e7_rselect.dir/e7_rselect.cpp.o"
  "CMakeFiles/e7_rselect.dir/e7_rselect.cpp.o.d"
  "e7_rselect"
  "e7_rselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_rselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
