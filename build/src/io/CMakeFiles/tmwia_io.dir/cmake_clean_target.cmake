file(REMOVE_RECURSE
  "libtmwia_io.a"
)
