file(REMOVE_RECURSE
  "CMakeFiles/tmwia_io.dir/args.cpp.o"
  "CMakeFiles/tmwia_io.dir/args.cpp.o.d"
  "CMakeFiles/tmwia_io.dir/serialize.cpp.o"
  "CMakeFiles/tmwia_io.dir/serialize.cpp.o.d"
  "CMakeFiles/tmwia_io.dir/table.cpp.o"
  "CMakeFiles/tmwia_io.dir/table.cpp.o.d"
  "libtmwia_io.a"
  "libtmwia_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
