
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/args.cpp" "src/io/CMakeFiles/tmwia_io.dir/args.cpp.o" "gcc" "src/io/CMakeFiles/tmwia_io.dir/args.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/io/CMakeFiles/tmwia_io.dir/serialize.cpp.o" "gcc" "src/io/CMakeFiles/tmwia_io.dir/serialize.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/io/CMakeFiles/tmwia_io.dir/table.cpp.o" "gcc" "src/io/CMakeFiles/tmwia_io.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/tmwia_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tmwia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/tmwia_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
