# Empty dependencies file for tmwia_io.
# This may be replaced when dependencies are built.
