# Empty compiler generated dependencies file for tmwia_linalg.
# This may be replaced when dependencies are built.
