file(REMOVE_RECURSE
  "libtmwia_linalg.a"
)
