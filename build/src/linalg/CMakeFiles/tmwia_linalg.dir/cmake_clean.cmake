file(REMOVE_RECURSE
  "CMakeFiles/tmwia_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/tmwia_linalg.dir/dense_matrix.cpp.o.d"
  "libtmwia_linalg.a"
  "libtmwia_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
