
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bit_space.cpp" "src/core/CMakeFiles/tmwia_core.dir/bit_space.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/bit_space.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/core/CMakeFiles/tmwia_core.dir/budget.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/budget.cpp.o.d"
  "/root/repo/src/core/coalesce.cpp" "src/core/CMakeFiles/tmwia_core.dir/coalesce.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/coalesce.cpp.o.d"
  "/root/repo/src/core/find_preferences.cpp" "src/core/CMakeFiles/tmwia_core.dir/find_preferences.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/find_preferences.cpp.o.d"
  "/root/repo/src/core/good_object.cpp" "src/core/CMakeFiles/tmwia_core.dir/good_object.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/good_object.cpp.o.d"
  "/root/repo/src/core/large_radius.cpp" "src/core/CMakeFiles/tmwia_core.dir/large_radius.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/large_radius.cpp.o.d"
  "/root/repo/src/core/normalize.cpp" "src/core/CMakeFiles/tmwia_core.dir/normalize.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/normalize.cpp.o.d"
  "/root/repo/src/core/rselect.cpp" "src/core/CMakeFiles/tmwia_core.dir/rselect.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/rselect.cpp.o.d"
  "/root/repo/src/core/select.cpp" "src/core/CMakeFiles/tmwia_core.dir/select.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/select.cpp.o.d"
  "/root/repo/src/core/small_radius.cpp" "src/core/CMakeFiles/tmwia_core.dir/small_radius.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/small_radius.cpp.o.d"
  "/root/repo/src/core/zero_radius_strategy.cpp" "src/core/CMakeFiles/tmwia_core.dir/zero_radius_strategy.cpp.o" "gcc" "src/core/CMakeFiles/tmwia_core.dir/zero_radius_strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/tmwia_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/tmwia_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tmwia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/billboard/CMakeFiles/tmwia_billboard.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/tmwia_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
