# Empty dependencies file for tmwia_core.
# This may be replaced when dependencies are built.
