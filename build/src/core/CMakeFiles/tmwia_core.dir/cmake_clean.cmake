file(REMOVE_RECURSE
  "CMakeFiles/tmwia_core.dir/bit_space.cpp.o"
  "CMakeFiles/tmwia_core.dir/bit_space.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/budget.cpp.o"
  "CMakeFiles/tmwia_core.dir/budget.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/coalesce.cpp.o"
  "CMakeFiles/tmwia_core.dir/coalesce.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/find_preferences.cpp.o"
  "CMakeFiles/tmwia_core.dir/find_preferences.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/good_object.cpp.o"
  "CMakeFiles/tmwia_core.dir/good_object.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/large_radius.cpp.o"
  "CMakeFiles/tmwia_core.dir/large_radius.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/normalize.cpp.o"
  "CMakeFiles/tmwia_core.dir/normalize.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/rselect.cpp.o"
  "CMakeFiles/tmwia_core.dir/rselect.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/select.cpp.o"
  "CMakeFiles/tmwia_core.dir/select.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/small_radius.cpp.o"
  "CMakeFiles/tmwia_core.dir/small_radius.cpp.o.d"
  "CMakeFiles/tmwia_core.dir/zero_radius_strategy.cpp.o"
  "CMakeFiles/tmwia_core.dir/zero_radius_strategy.cpp.o.d"
  "libtmwia_core.a"
  "libtmwia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
