file(REMOVE_RECURSE
  "libtmwia_core.a"
)
