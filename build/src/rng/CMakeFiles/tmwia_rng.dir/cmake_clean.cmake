file(REMOVE_RECURSE
  "CMakeFiles/tmwia_rng.dir/partition.cpp.o"
  "CMakeFiles/tmwia_rng.dir/partition.cpp.o.d"
  "CMakeFiles/tmwia_rng.dir/rng.cpp.o"
  "CMakeFiles/tmwia_rng.dir/rng.cpp.o.d"
  "libtmwia_rng.a"
  "libtmwia_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
