file(REMOVE_RECURSE
  "libtmwia_rng.a"
)
