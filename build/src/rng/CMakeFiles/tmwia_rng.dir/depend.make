# Empty dependencies file for tmwia_rng.
# This may be replaced when dependencies are built.
