file(REMOVE_RECURSE
  "libtmwia_bits.a"
)
