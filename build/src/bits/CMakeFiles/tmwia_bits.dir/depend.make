# Empty dependencies file for tmwia_bits.
# This may be replaced when dependencies are built.
