file(REMOVE_RECURSE
  "CMakeFiles/tmwia_bits.dir/bitvector.cpp.o"
  "CMakeFiles/tmwia_bits.dir/bitvector.cpp.o.d"
  "CMakeFiles/tmwia_bits.dir/hamming.cpp.o"
  "CMakeFiles/tmwia_bits.dir/hamming.cpp.o.d"
  "CMakeFiles/tmwia_bits.dir/trivector.cpp.o"
  "CMakeFiles/tmwia_bits.dir/trivector.cpp.o.d"
  "libtmwia_bits.a"
  "libtmwia_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
