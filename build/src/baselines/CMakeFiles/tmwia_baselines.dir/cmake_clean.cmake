file(REMOVE_RECURSE
  "CMakeFiles/tmwia_baselines.dir/baselines.cpp.o"
  "CMakeFiles/tmwia_baselines.dir/baselines.cpp.o.d"
  "libtmwia_baselines.a"
  "libtmwia_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
