# Empty dependencies file for tmwia_baselines.
# This may be replaced when dependencies are built.
