file(REMOVE_RECURSE
  "libtmwia_baselines.a"
)
