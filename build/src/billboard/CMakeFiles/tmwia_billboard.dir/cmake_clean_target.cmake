file(REMOVE_RECURSE
  "libtmwia_billboard.a"
)
