file(REMOVE_RECURSE
  "CMakeFiles/tmwia_billboard.dir/billboard.cpp.o"
  "CMakeFiles/tmwia_billboard.dir/billboard.cpp.o.d"
  "CMakeFiles/tmwia_billboard.dir/probe_oracle.cpp.o"
  "CMakeFiles/tmwia_billboard.dir/probe_oracle.cpp.o.d"
  "CMakeFiles/tmwia_billboard.dir/round_scheduler.cpp.o"
  "CMakeFiles/tmwia_billboard.dir/round_scheduler.cpp.o.d"
  "CMakeFiles/tmwia_billboard.dir/strategies.cpp.o"
  "CMakeFiles/tmwia_billboard.dir/strategies.cpp.o.d"
  "libtmwia_billboard.a"
  "libtmwia_billboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_billboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
