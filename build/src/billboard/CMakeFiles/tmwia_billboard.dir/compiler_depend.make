# Empty compiler generated dependencies file for tmwia_billboard.
# This may be replaced when dependencies are built.
