
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/billboard/billboard.cpp" "src/billboard/CMakeFiles/tmwia_billboard.dir/billboard.cpp.o" "gcc" "src/billboard/CMakeFiles/tmwia_billboard.dir/billboard.cpp.o.d"
  "/root/repo/src/billboard/probe_oracle.cpp" "src/billboard/CMakeFiles/tmwia_billboard.dir/probe_oracle.cpp.o" "gcc" "src/billboard/CMakeFiles/tmwia_billboard.dir/probe_oracle.cpp.o.d"
  "/root/repo/src/billboard/round_scheduler.cpp" "src/billboard/CMakeFiles/tmwia_billboard.dir/round_scheduler.cpp.o" "gcc" "src/billboard/CMakeFiles/tmwia_billboard.dir/round_scheduler.cpp.o.d"
  "/root/repo/src/billboard/strategies.cpp" "src/billboard/CMakeFiles/tmwia_billboard.dir/strategies.cpp.o" "gcc" "src/billboard/CMakeFiles/tmwia_billboard.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/tmwia_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tmwia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/tmwia_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
