file(REMOVE_RECURSE
  "libtmwia_matrix.a"
)
