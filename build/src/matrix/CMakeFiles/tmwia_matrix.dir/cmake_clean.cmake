file(REMOVE_RECURSE
  "CMakeFiles/tmwia_matrix.dir/generators.cpp.o"
  "CMakeFiles/tmwia_matrix.dir/generators.cpp.o.d"
  "CMakeFiles/tmwia_matrix.dir/preference_matrix.cpp.o"
  "CMakeFiles/tmwia_matrix.dir/preference_matrix.cpp.o.d"
  "libtmwia_matrix.a"
  "libtmwia_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
