# Empty dependencies file for tmwia_matrix.
# This may be replaced when dependencies are built.
