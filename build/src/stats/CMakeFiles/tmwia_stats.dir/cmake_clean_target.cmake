file(REMOVE_RECURSE
  "libtmwia_stats.a"
)
