file(REMOVE_RECURSE
  "CMakeFiles/tmwia_stats.dir/summary.cpp.o"
  "CMakeFiles/tmwia_stats.dir/summary.cpp.o.d"
  "libtmwia_stats.a"
  "libtmwia_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
