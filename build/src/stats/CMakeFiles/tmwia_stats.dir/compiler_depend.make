# Empty compiler generated dependencies file for tmwia_stats.
# This may be replaced when dependencies are built.
