# Empty compiler generated dependencies file for tmwia_engine.
# This may be replaced when dependencies are built.
