file(REMOVE_RECURSE
  "CMakeFiles/tmwia_engine.dir/thread_pool.cpp.o"
  "CMakeFiles/tmwia_engine.dir/thread_pool.cpp.o.d"
  "libtmwia_engine.a"
  "libtmwia_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
