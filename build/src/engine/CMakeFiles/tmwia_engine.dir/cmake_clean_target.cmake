file(REMOVE_RECURSE
  "libtmwia_engine.a"
)
