file(REMOVE_RECURSE
  "CMakeFiles/movie_night.dir/movie_night.cpp.o"
  "CMakeFiles/movie_night.dir/movie_night.cpp.o.d"
  "movie_night"
  "movie_night.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_night.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
