# Empty compiler generated dependencies file for ad_placement.
# This may be replaced when dependencies are built.
