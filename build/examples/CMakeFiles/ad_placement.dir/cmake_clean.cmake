file(REMOVE_RECURSE
  "CMakeFiles/ad_placement.dir/ad_placement.cpp.o"
  "CMakeFiles/ad_placement.dir/ad_placement.cpp.o.d"
  "ad_placement"
  "ad_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
