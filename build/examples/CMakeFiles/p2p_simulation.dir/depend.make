# Empty dependencies file for p2p_simulation.
# This may be replaced when dependencies are built.
