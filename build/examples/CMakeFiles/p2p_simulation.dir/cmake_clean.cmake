file(REMOVE_RECURSE
  "CMakeFiles/p2p_simulation.dir/p2p_simulation.cpp.o"
  "CMakeFiles/p2p_simulation.dir/p2p_simulation.cpp.o.d"
  "p2p_simulation"
  "p2p_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
