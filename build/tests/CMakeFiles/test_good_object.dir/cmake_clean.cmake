file(REMOVE_RECURSE
  "CMakeFiles/test_good_object.dir/good_object_test.cpp.o"
  "CMakeFiles/test_good_object.dir/good_object_test.cpp.o.d"
  "test_good_object"
  "test_good_object.pdb"
  "test_good_object[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_good_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
