file(REMOVE_RECURSE
  "CMakeFiles/test_round_scheduler.dir/round_scheduler_test.cpp.o"
  "CMakeFiles/test_round_scheduler.dir/round_scheduler_test.cpp.o.d"
  "test_round_scheduler"
  "test_round_scheduler.pdb"
  "test_round_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_round_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
