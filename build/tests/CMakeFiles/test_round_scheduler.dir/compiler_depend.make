# Empty compiler generated dependencies file for test_round_scheduler.
# This may be replaced when dependencies are built.
