
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/select_test.cpp" "tests/CMakeFiles/test_select.dir/select_test.cpp.o" "gcc" "tests/CMakeFiles/test_select.dir/select_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tmwia_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/tmwia_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tmwia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tmwia_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tmwia_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/tmwia_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/billboard/CMakeFiles/tmwia_billboard.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/tmwia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/bits/CMakeFiles/tmwia_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/tmwia_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
