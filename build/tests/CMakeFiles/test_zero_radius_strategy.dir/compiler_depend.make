# Empty compiler generated dependencies file for test_zero_radius_strategy.
# This may be replaced when dependencies are built.
