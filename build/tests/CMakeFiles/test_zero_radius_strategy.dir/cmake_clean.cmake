file(REMOVE_RECURSE
  "CMakeFiles/test_zero_radius_strategy.dir/zero_radius_strategy_test.cpp.o"
  "CMakeFiles/test_zero_radius_strategy.dir/zero_radius_strategy_test.cpp.o.d"
  "test_zero_radius_strategy"
  "test_zero_radius_strategy.pdb"
  "test_zero_radius_strategy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_radius_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
