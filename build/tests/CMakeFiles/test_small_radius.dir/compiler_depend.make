# Empty compiler generated dependencies file for test_small_radius.
# This may be replaced when dependencies are built.
