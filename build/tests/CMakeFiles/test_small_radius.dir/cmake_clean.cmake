file(REMOVE_RECURSE
  "CMakeFiles/test_small_radius.dir/small_radius_test.cpp.o"
  "CMakeFiles/test_small_radius.dir/small_radius_test.cpp.o.d"
  "test_small_radius"
  "test_small_radius.pdb"
  "test_small_radius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_small_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
