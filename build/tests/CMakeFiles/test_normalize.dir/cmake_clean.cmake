file(REMOVE_RECURSE
  "CMakeFiles/test_normalize.dir/normalize_test.cpp.o"
  "CMakeFiles/test_normalize.dir/normalize_test.cpp.o.d"
  "test_normalize"
  "test_normalize.pdb"
  "test_normalize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
