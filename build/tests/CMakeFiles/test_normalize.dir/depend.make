# Empty dependencies file for test_normalize.
# This may be replaced when dependencies are built.
