# Empty dependencies file for test_zero_radius.
# This may be replaced when dependencies are built.
