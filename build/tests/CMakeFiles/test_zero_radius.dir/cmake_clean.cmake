file(REMOVE_RECURSE
  "CMakeFiles/test_zero_radius.dir/zero_radius_test.cpp.o"
  "CMakeFiles/test_zero_radius.dir/zero_radius_test.cpp.o.d"
  "test_zero_radius"
  "test_zero_radius.pdb"
  "test_zero_radius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
