file(REMOVE_RECURSE
  "CMakeFiles/test_large_radius.dir/large_radius_test.cpp.o"
  "CMakeFiles/test_large_radius.dir/large_radius_test.cpp.o.d"
  "test_large_radius"
  "test_large_radius.pdb"
  "test_large_radius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_large_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
