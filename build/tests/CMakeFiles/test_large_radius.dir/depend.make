# Empty dependencies file for test_large_radius.
# This may be replaced when dependencies are built.
