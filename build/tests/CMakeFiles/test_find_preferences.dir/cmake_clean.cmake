file(REMOVE_RECURSE
  "CMakeFiles/test_find_preferences.dir/find_preferences_test.cpp.o"
  "CMakeFiles/test_find_preferences.dir/find_preferences_test.cpp.o.d"
  "test_find_preferences"
  "test_find_preferences.pdb"
  "test_find_preferences[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_find_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
