# Empty dependencies file for test_find_preferences.
# This may be replaced when dependencies are built.
