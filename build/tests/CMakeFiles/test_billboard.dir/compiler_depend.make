# Empty compiler generated dependencies file for test_billboard.
# This may be replaced when dependencies are built.
