file(REMOVE_RECURSE
  "CMakeFiles/test_billboard.dir/billboard_test.cpp.o"
  "CMakeFiles/test_billboard.dir/billboard_test.cpp.o.d"
  "test_billboard"
  "test_billboard.pdb"
  "test_billboard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_billboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
