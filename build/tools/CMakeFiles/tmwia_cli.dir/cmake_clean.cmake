file(REMOVE_RECURSE
  "CMakeFiles/tmwia_cli.dir/tmwia_cli.cpp.o"
  "CMakeFiles/tmwia_cli.dir/tmwia_cli.cpp.o.d"
  "tmwia_cli"
  "tmwia_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmwia_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
