# Empty dependencies file for tmwia_cli.
# This may be replaced when dependencies are built.
