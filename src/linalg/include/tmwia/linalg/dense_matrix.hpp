// Dense linear algebra substrate for the non-interactive SVD baseline
// (Section 2 "non-interactive model": the Drineas/Azar/Papadimitriou
// line of work reconstructs the preference matrix from sparse samples
// via a low-rank projection). We implement exactly the pieces that
// baseline needs: a row-major dense matrix and a block-power-iteration
// truncated SVD.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tmwia::linalg {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A * x. Requires x.size() == cols(); y.size() == rows().
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// y = A^T * x. Requires x.size() == rows(); y.size() == cols().
  void matvec_t(std::span<const double> x, std::span<double> y) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius() const;

  [[nodiscard]] DenseMatrix transpose() const;

  bool operator==(const DenseMatrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Truncated SVD A ~= U * diag(sigma) * V^T with k factors.
struct Svd {
  DenseMatrix u;              // rows x k
  std::vector<double> sigma;  // k, non-increasing
  DenseMatrix v;              // cols x k
};

/// Top-k SVD by block power (orthogonal) iteration on A^T A with
/// Gram-Schmidt re-orthogonalization. Deterministic given `seed`.
/// `iters` sweeps are plenty for the well-separated spectra the SVD
/// baseline assumes (and its failure on flat spectra is exactly the
/// phenomenon experiment E9 demonstrates).
Svd truncated_svd(const DenseMatrix& a, std::size_t k, std::size_t iters = 60,
                  std::uint64_t seed = 12345);

/// Rank-k reconstruction U * diag(sigma) * V^T.
DenseMatrix reconstruct(const Svd& svd);

}  // namespace tmwia::linalg
