#include "tmwia/linalg/dense_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace tmwia::linalg {
namespace {

// Local SplitMix64 so linalg does not depend on tmwia_rng.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (auto& v : x) v *= alpha;
}

}  // namespace

void DenseMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_) {
    throw std::invalid_argument("DenseMatrix::matvec: dimension mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    y[r] = dot(row(r), x);
  }
}

void DenseMatrix::matvec_t(std::span<const double> x, std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_) {
    throw std::invalid_argument("DenseMatrix::matvec_t: dimension mismatch");
  }
  for (auto& v : y) v = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    axpy(x[r], row(r), y);
  }
}

double DenseMatrix::frobenius() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Svd truncated_svd(const DenseMatrix& a, std::size_t k, std::size_t iters, std::uint64_t seed) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  if (k == 0 || k > std::min(n, m)) {
    throw std::invalid_argument("truncated_svd: k out of range");
  }

  // Right singular block V: m x k, random init, orthonormalized.
  std::vector<std::vector<double>> v(k, std::vector<double>(m));
  std::uint64_t st = seed;
  for (auto& col : v) {
    for (auto& x : col) x = static_cast<double>(mix64(st) >> 11) * 0x1.0p-53 - 0.5;
  }

  std::vector<double> tmp_n(n);
  std::vector<double> tmp_m(m);

  auto orthonormalize = [&]() {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        const double c = dot(v[i], v[j]);
        axpy(-c, v[j], v[i]);
      }
      const double nv = norm2(v[i]);
      if (nv > 1e-12) {
        scale(v[i], 1.0 / nv);
      } else {
        // Degenerate direction: re-randomize to keep the block full rank.
        for (auto& x : v[i]) x = static_cast<double>(mix64(st) >> 11) * 0x1.0p-53 - 0.5;
        const double n2 = norm2(v[i]);
        scale(v[i], 1.0 / n2);
      }
    }
  };

  orthonormalize();
  for (std::size_t it = 0; it < iters; ++it) {
    // v_i <- A^T (A v_i), then re-orthonormalize the block.
    for (std::size_t i = 0; i < k; ++i) {
      a.matvec(v[i], tmp_n);
      a.matvec_t(tmp_n, tmp_m);
      v[i] = tmp_m;
    }
    orthonormalize();
  }

  Svd out;
  out.v = DenseMatrix(m, k);
  out.u = DenseMatrix(n, k);
  out.sigma.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    a.matvec(v[i], tmp_n);
    const double s = norm2(tmp_n);
    out.sigma[i] = s;
    for (std::size_t r = 0; r < n; ++r) {
      out.u(r, i) = s > 1e-12 ? tmp_n[r] / s : 0.0;
    }
    for (std::size_t c = 0; c < m; ++c) {
      out.v(c, i) = v[i][c];
    }
  }

  // Sort factors by non-increasing sigma (power iteration usually
  // delivers them sorted, but Gram-Schmidt order is not guaranteed).
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return out.sigma[x] > out.sigma[y]; });
  Svd sorted;
  sorted.u = DenseMatrix(n, k);
  sorted.v = DenseMatrix(m, k);
  sorted.sigma.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    sorted.sigma[i] = out.sigma[order[i]];
    for (std::size_t r = 0; r < n; ++r) sorted.u(r, i) = out.u(r, order[i]);
    for (std::size_t c = 0; c < m; ++c) sorted.v(c, i) = out.v(c, order[i]);
  }
  return sorted;
}

DenseMatrix reconstruct(const Svd& svd) {
  const std::size_t n = svd.u.rows();
  const std::size_t m = svd.v.rows();
  const std::size_t k = svd.sigma.size();
  DenseMatrix a(n, m);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < k; ++i) {
      const double coef = svd.u(r, i) * svd.sigma[i];
      if (coef == 0.0) continue;
      auto out = a.row(r);
      for (std::size_t c = 0; c < m; ++c) {
        out[c] += coef * svd.v(c, i);
      }
    }
  }
  return a;
}

}  // namespace tmwia::linalg
