// bits/kernels: the batched distance-kernel layer.
//
// Every algorithm in the tower (Select/RSelect, Zero/Small/Large
// Radius, Coalesce) ultimately reduces to Hamming arithmetic over
// packed 64-bit words. This module is the single home of that
// arithmetic: word-span popcount primitives at the bottom, batched
// collection operations (one-vs-many distance, argmin, balls,
// diameters) on top, all behind a process-global KernelBackend chosen
// by runtime CPU dispatch (scalar | AVX2 | AVX-512 | auto).
//
// Determinism contract: every backend computes the SAME integers —
// popcounts are exact, accumulation order never affects the result,
// and index-returning operations (argmin, ball membership) break ties
// toward the LOWEST index. Switching backends must never change a
// run's output, its RunReport, or a flight-recorder log byte; the
// kernel parity suite (tests/kernels_test.cpp) enforces this for every
// supported backend on randomized sizes including non-word-aligned
// tails and TriVector '?' masks.
//
// The one-pair free functions of hamming.hpp are thin (deprecated)
// forwards into this layer; new call sites in src/core and
// src/billboard use the batched API directly so per-pair call overhead
// is paid once per collection, not once per element.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/trivector.hpp"

namespace tmwia::bits {

/// Which word-kernel implementation services distance calls.
///  * kScalar — portable C++ (std::popcount), the reference backend;
///  * kAvx2   — 256-bit XOR/AND + pshufb nibble popcount;
///  * kAvx512 — 512-bit lanes with VPOPCNTQ (requires AVX-512 F/BW/VL
///              + VPOPCNTDQ);
///  * kAuto   — resolve to the widest backend this CPU supports.
enum class KernelBackend : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kAuto = 3 };

namespace kernels {

/// Canonical lowercase name ("scalar", "avx2", "avx512", "auto").
std::string_view backend_name(KernelBackend b);

/// Inverse of backend_name; nullopt for anything else.
std::optional<KernelBackend> parse_backend(std::string_view name);

/// Is this backend executable on the current CPU? (kScalar and kAuto
/// are always supported.)
bool backend_supported(KernelBackend b);

/// Resolve kAuto to the widest supported backend; identity otherwise.
KernelBackend resolve_backend(KernelBackend b);

/// Select the process-global backend. kAuto (the default) defers to
/// CPU detection; the TMWIA_KERNEL environment variable, when set to a
/// backend name, overrides the initial default. Throws
/// std::invalid_argument for a backend this CPU cannot run.
///
/// Thread safety: the dispatch state is a pair of atomics (requested
/// backend word + vtable pointer, release-published and
/// acquire-consumed), so selection never tears a concurrent distance
/// call. Changing the backend while engine threads are executing a
/// parallel phase is still a protocol error — different workers could
/// service one batch with different (identical-result but
/// different-cost) kernels — so set_backend throws std::logic_error
/// while any ParallelPhaseGuard is open. Select the backend from
/// serial setup code (Session::kernel + build, the CLI --kernel flag,
/// bench setup); between phases the pool is idle and reselection is
/// legal (the kernel parity suites switch backends run-to-run).
void set_backend(KernelBackend b);

/// RAII gate the execution engine opens around every pooled parallel
/// phase (engine::detail::parallel_for_chunks); set_backend refuses
/// with std::logic_error while any gate is open. Not for general use.
class ParallelPhaseGuard {
 public:
  ParallelPhaseGuard();
  ~ParallelPhaseGuard();
  ParallelPhaseGuard(const ParallelPhaseGuard&) = delete;
  ParallelPhaseGuard& operator=(const ParallelPhaseGuard&) = delete;
};

/// Open ParallelPhaseGuard count (engine parallel phases in flight).
std::size_t parallel_phases_active();

/// The backend as requested (may be kAuto).
KernelBackend requested_backend();

/// The backend actually servicing calls (never kAuto).
KernelBackend active_backend();

// ---------------------------------------------------------------------
// Word-span primitives. `n` is the word count; all spans must hold at
// least n words. These are the only functions the SIMD translation
// units implement — everything else is built from them.
// ---------------------------------------------------------------------

/// popcount(a)
std::uint64_t popcount_words(const std::uint64_t* a, std::size_t n);
/// popcount(a ^ b) — plain Hamming distance over words.
std::uint64_t xor_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n);
/// popcount((a ^ b) & m) — Hamming distance under one mask (d-tilde
/// against a fully-known vector).
std::uint64_t xor_and_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* m, std::size_t n);
/// popcount((a ^ b) & m1 & m2) — Hamming distance under two masks
/// (d-tilde between two TriVectors).
std::uint64_t xor_and2_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                      const std::uint64_t* m1, const std::uint64_t* m2,
                                      std::size_t n);
/// popcount(a & b)
std::uint64_t and_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n);

inline std::uint64_t popcount_words(std::span<const std::uint64_t> a) {
  return popcount_words(a.data(), a.size());
}

// ---------------------------------------------------------------------
// One-pair distances (the primitives BitVector::hamming / dtilde
// forward to; kept here so every distance flows through one dispatch).
// Sizes must match; unused tail bits are zero by class invariant.
// ---------------------------------------------------------------------

std::size_t dist(const BitVector& a, const BitVector& b);
std::size_t dtilde(const TriVector& a, const TriVector& b);
std::size_t dtilde(const TriVector& a, const BitVector& b);

/// The disagreement set (a.value ^ b.value) & a.known & b.known as a
/// BitVector — the coordinates where two TriVectors are both known and
/// differ (RSelect's X set), materialized word-parallel.
BitVector known_diff(const TriVector& a, const TriVector& b);

/// Ascending coordinates of the disagreement set, appended into a
/// caller-owned (cleared) buffer — the allocation-free form of
/// known_diff().one_positions() for RSelect's per-pair loop.
void known_diff_positions(const TriVector& a, const TriVector& b,
                          std::vector<std::uint32_t>& out);

// ---------------------------------------------------------------------
// Batched collection operations. All of them iterate the collection in
// index order, so ties resolve to the lowest index on every backend.
// ---------------------------------------------------------------------

/// One-vs-many distance into a caller-provided buffer:
/// out[i] = dist(target, vs[i]). out.size() must be >= vs.size().
void dist_many(const BitVector& target, std::span<const BitVector> vs,
               std::span<std::uint32_t> out);

/// d-tilde one-vs-many: out[i] = dtilde(center, vs[i]).
void dtilde_many(const TriVector& center, std::span<const BitVector> vs,
                 std::span<std::uint32_t> out);

struct ArgminResult {
  std::size_t index = 0;  ///< lowest index attaining the minimum
  std::size_t dist = 0;   ///< the minimum distance
};

/// Index of the vector in `vs` closest to `target` (ties: lowest
/// index). Precondition: vs non-empty.
ArgminResult argmin_dist(std::span<const BitVector> vs, const BitVector& target);

/// |ball(center, D)| under d-tilde: members of `vs` within distance D
/// of `center` ignoring the center's '?' coordinates (Coalesce 2a).
std::size_t ball_size(std::span<const BitVector> vs, const TriVector& center,
                      std::size_t D);

/// Indices (ascending) of vs-members inside ball(center, D) under
/// d-tilde.
std::vector<std::size_t> ball_members(std::span<const BitVector> vs,
                                      const TriVector& center, std::size_t D);

/// Hamming ball over plain vectors: |{i : dist(center, vs[i]) <= D}|.
std::size_t ball_size(std::span<const BitVector> vs, const BitVector& center,
                      std::size_t D);

/// max over pairs of dist(vs[i], vs[j]); 0 for |vs| <= 1.
std::size_t pairwise_diameter(std::span<const BitVector> vs);

/// Pairwise diameter of the sub-multiset selected by `indices`.
std::size_t pairwise_diameter(std::span<const BitVector> vs,
                              std::span<const std::uint32_t> indices);

}  // namespace kernels
}  // namespace tmwia::bits
