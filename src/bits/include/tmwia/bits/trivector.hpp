// TriVector: a packed vector over {0, 1, ?}.
//
// The paper's Coalesce algorithm (Section 5.1) merges candidate vectors
// into vectors that may contain "don't care" (?) coordinates, and the
// distance measure d-tilde (Notation 3.2) counts disagreements only on
// coordinates where *both* vectors have non-? entries. TriVector stores
// two bit-planes: `known` (is the entry non-?) and `value` (the bit,
// meaningful only where known). d-tilde then reduces to
// popcount((a.value ^ b.value) & a.known & b.known).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "tmwia/bits/bitvector.hpp"

namespace tmwia::bits {

/// A coordinate value of a TriVector.
enum class Tri : std::uint8_t { kZero = 0, kOne = 1, kUnknown = 2 };

/// Fixed-length packed vector over {0,1,?} with value semantics.
class TriVector {
 public:
  TriVector() = default;

  /// Vector of `n` coordinates, all ?.
  explicit TriVector(std::size_t n) : value_(n), known_(n) {}

  /// Lift a fully-known BitVector into a TriVector (no ? entries).
  static TriVector from_bits(const BitVector& v) {
    TriVector t(v.size());
    t.value_ = v;
    t.known_ = BitVector(v.size(), true);
    return t;
  }

  /// Parse from a string over {'0','1','?'}.
  static TriVector from_string(const std::string& s);

  /// Render as a string over {'0','1','?'}.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t size() const { return value_.size(); }

  [[nodiscard]] Tri get(std::size_t i) const {
    if (!known_.get(i)) return Tri::kUnknown;
    return value_.get(i) ? Tri::kOne : Tri::kZero;
  }

  void set(std::size_t i, Tri v) {
    if (v == Tri::kUnknown) {
      known_.set(i, false);
      value_.set(i, false);
    } else {
      known_.set(i, true);
      value_.set(i, v == Tri::kOne);
    }
  }

  void set_bit(std::size_t i, bool v) { set(i, v ? Tri::kOne : Tri::kZero); }

  [[nodiscard]] bool is_known(std::size_t i) const { return known_.get(i); }

  /// Number of ? coordinates (Theorem 5.3 bounds this by 5D/alpha).
  [[nodiscard]] std::size_t unknown_count() const { return size() - known_.count_ones(); }

  /// d-tilde(a, b): disagreements over coordinates known in both
  /// (Notation 3.2).
  [[nodiscard]] std::size_t dtilde(const TriVector& other) const;

  /// d-tilde against a fully-known vector: disagreements over this
  /// vector's known coordinates.
  [[nodiscard]] std::size_t dtilde(const BitVector& other) const;

  /// d-tilde restricted to coordinate subset `coords` (d-tilde_I).
  [[nodiscard]] std::size_t dtilde_on(const TriVector& other,
                                      std::span<const std::uint32_t> coords) const;

  /// Coalesce's merge (step 4a): coordinates where both operands are
  /// known and agree keep the common value; every other coordinate
  /// becomes ?. '?' is absorbing, which is what makes Lemma 5.1 hold
  /// transitively: a merged vector never *asserts* a value any of its
  /// merge-ancestors disagreed on.
  [[nodiscard]] TriVector merge(const TriVector& other) const;

  /// Projection onto a coordinate subset.
  [[nodiscard]] TriVector project(std::span<const std::uint32_t> coords) const;

  /// Materialize to a BitVector, filling ? coordinates with `fill`
  /// (the paper sets "don't care" entries to 0 at output time).
  [[nodiscard]] BitVector fill_unknown(bool fill = false) const;

  /// The two bit-planes (read-only).
  [[nodiscard]] const BitVector& value_plane() const { return value_; }
  [[nodiscard]] const BitVector& known_plane() const { return known_; }

  /// Packed word spans of the two planes, for the kernel layer. Both
  /// spans have the same length and zeroed tail bits (BitVector
  /// invariant), so masked popcounts need no tail handling.
  [[nodiscard]] std::span<const std::uint64_t> value_words() const {
    return value_.words();
  }
  [[nodiscard]] std::span<const std::uint64_t> known_words() const {
    return known_.words();
  }

  /// Lexicographic order with '0' < '1' < '?', coordinate 0 first.
  [[nodiscard]] int lex_compare(const TriVector& other) const;

  bool operator==(const TriVector& other) const = default;

 private:
  BitVector value_;  // bit meaningful only where known_
  BitVector known_;  // 1 = entry is 0/1, 0 = entry is ?
};

}  // namespace tmwia::bits
