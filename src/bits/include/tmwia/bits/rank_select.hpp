// RankSelect: a succinct rank/select directory over an immutable
// BitVector snapshot (rank9 layout: one absolute count per 512-bit
// basic block plus seven 9-bit within-block prefix counts packed into
// a single word — 25% space overhead, two memory touches per rank).
//
// The billboard's posted-probe index builds one of these per channel
// epoch: rank1 answers "how many players posted before id p" and
// membership in O(1), select1 enumerates the k-th poster without
// scanning the post map. Build is O(words); the structure is
// immutable — rebuild on the next epoch rather than update in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tmwia/bits/bitvector.hpp"

namespace tmwia::bits {

class RankSelect {
 public:
  RankSelect() = default;

  /// Snapshot `bits` and build the directory. The source BitVector is
  /// copied; later mutation of it does not affect this index.
  explicit RankSelect(const BitVector& bits);

  /// Number of positions covered.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Total number of set positions.
  [[nodiscard]] std::size_t ones() const { return ones_; }

  /// The underlying bit at position i.
  [[nodiscard]] bool get(std::size_t i) const {
    return ((words_[i / 64] >> (i % 64)) & 1u) != 0;
  }

  /// rank1(i) = number of set positions strictly below i. i may equal
  /// size() (returns ones()).
  [[nodiscard]] std::size_t rank1(std::size_t i) const;

  /// Position of the k-th set bit (k in [0, ones())). Precondition:
  /// k < ones().
  [[nodiscard]] std::size_t select1(std::size_t k) const;

  /// All set positions in ascending order (select1 over the range —
  /// convenience for poster enumeration).
  [[nodiscard]] std::vector<std::uint32_t> one_positions() const;

 private:
  static constexpr std::size_t kBlockWords = 8;  // 512-bit basic blocks

  std::vector<std::uint64_t> words_;
  // Per block: [0] absolute rank at block start, [1] seven 9-bit
  // cumulative counts for word boundaries 1..7 within the block.
  std::vector<std::uint64_t> block_rank_;
  std::vector<std::uint64_t> sub_rank_;
  std::size_t size_ = 0;
  std::size_t ones_ = 0;
};

}  // namespace tmwia::bits
