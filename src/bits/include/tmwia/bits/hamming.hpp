// Free functions over collections of bit vectors: the distance
// aggregates the paper's definitions are phrased in (diameter D(P*),
// discrepancy, balls).
//
// DEPRECATED SURFACE: the collection operations here are thin forwards
// into the batched kernel layer (tmwia/bits/kernels.hpp), kept so old
// call sites and tests keep compiling. New code — in particular every
// hot loop in src/core and src/billboard — should call the kernels::
// API directly, which amortizes backend dispatch per collection and
// runs SIMD word-parallel. Only `dist()` remains a first-class alias:
// tests and audit paths lean on it as the one-pair reference.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/bits/trivector.hpp"

namespace tmwia::bits {

/// dist(x, y): plain Hamming distance (Definition 1.1). Forwards to the
/// kernel layer so even one-pair audit calls use the active backend.
inline std::size_t dist(const BitVector& a, const BitVector& b) {
  return kernels::dist(a, b);
}

/// Hamming diameter D(V) = max over pairs. Returns 0 for |V| <= 1.
[[deprecated("use kernels::pairwise_diameter")]] inline std::size_t diameter(
    std::span<const BitVector> vs) {
  return kernels::pairwise_diameter(vs);
}

/// Hamming diameter of the sub-multiset given by `indices`.
[[deprecated("use kernels::pairwise_diameter")]] inline std::size_t diameter(
    std::span<const BitVector> vs, std::span<const std::uint32_t> indices) {
  return kernels::pairwise_diameter(vs, indices);
}

/// Index of the vector in `vs` closest to `target` (ties: lowest index).
/// Precondition: vs non-empty.
[[deprecated("use kernels::argmin_dist")]] inline std::size_t argmin_dist(
    std::span<const BitVector> vs, const BitVector& target) {
  return kernels::argmin_dist(vs, target).index;
}

/// |ball(v, D)| under d-tilde: how many vectors of `vs` lie within
/// distance D of `v` ignoring ? coordinates (Coalesce step 2a).
[[deprecated("use kernels::ball_size")]] inline std::size_t ball_size(
    std::span<const BitVector> vs, const TriVector& v, std::size_t D) {
  return kernels::ball_size(vs, v, D);
}

/// Indices of vs-members inside ball(v, D) under d-tilde.
[[deprecated("use kernels::ball_members")]] inline std::vector<std::size_t>
ball_members(std::span<const BitVector> vs, const TriVector& v, std::size_t D) {
  return kernels::ball_members(vs, v, D);
}

}  // namespace tmwia::bits
