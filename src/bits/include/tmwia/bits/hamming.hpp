// Free functions over collections of bit vectors: the distance
// aggregates the paper's definitions are phrased in (diameter D(P*),
// discrepancy, balls).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/trivector.hpp"

namespace tmwia::bits {

/// dist(x, y): plain Hamming distance (Definition 1.1).
inline std::size_t dist(const BitVector& a, const BitVector& b) { return a.hamming(b); }

/// Hamming diameter D(V) = max over pairs. O(|V|^2) — audit tool, not a
/// hot path. Returns 0 for |V| <= 1.
std::size_t diameter(std::span<const BitVector> vs);

/// Hamming diameter of the sub-multiset given by `indices`.
std::size_t diameter(std::span<const BitVector> vs, std::span<const std::uint32_t> indices);

/// Index of the vector in `vs` closest to `target` (ties: lowest index).
/// Precondition: vs non-empty.
std::size_t argmin_dist(std::span<const BitVector> vs, const BitVector& target);

/// |ball(v, D)| under d-tilde: how many vectors of `vs` lie within
/// distance D of `v` ignoring ? coordinates (Coalesce step 2a).
std::size_t ball_size(std::span<const BitVector> vs, const TriVector& v, std::size_t D);

/// Indices of vs-members inside ball(v, D) under d-tilde.
std::vector<std::size_t> ball_members(std::span<const BitVector> vs, const TriVector& v,
                                      std::size_t D);

}  // namespace tmwia::bits
