// BitVector: a packed, fixed-length vector over {0,1}.
//
// This is the fundamental value type of the library: every preference
// vector v(p) in the paper is a BitVector, and Hamming distance between
// BitVectors is the paper's dist(.,.) (Definition 1.1). Storage is one
// bit per coordinate in 64-bit words, so distance computations reduce to
// XOR + popcount over words.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tmwia::bits {

/// Fixed-length packed bit vector with value semantics.
///
/// Coordinates are indexed 0..size()-1. Unused high bits of the last
/// word are kept zero as a class invariant, which lets popcount-based
/// operations run over whole words without masking.
///
/// Storage is small-buffer optimized: vectors of up to 128 coordinates
/// (2 words) live inline with no heap allocation. The recursion leaves
/// of Zero Radius produce millions of sub-128-bit rows per run, and the
/// allocator round-trips dominated their cost before the inline buffer.
class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  /// Empty vector (size 0).
  BitVector() = default;

  /// Vector of `n` coordinates, all zero.
  explicit BitVector(std::size_t n) : size_(n), nwords_(word_count(n)) {
    if (nwords_ > kInlineWords) data_ = new Word[nwords_]();
  }

  /// Vector of `n` coordinates, all set to `fill`.
  BitVector(std::size_t n, bool fill) : BitVector(n) {
    if (fill) {
      for (std::size_t i = 0; i < nwords_; ++i) data_[i] = ~Word{0};
      clear_tail();
    }
  }

  BitVector(const BitVector& other) : size_(other.size_), nwords_(other.nwords_) {
    if (nwords_ > kInlineWords) data_ = new Word[nwords_];
    std::copy_n(other.data_, nwords_, data_);
  }

  BitVector(BitVector&& other) noexcept : size_(other.size_), nwords_(other.nwords_) {
    if (other.on_heap()) {
      data_ = other.data_;
      other.data_ = other.inline_;
    } else {
      inline_[0] = other.inline_[0];
      inline_[1] = other.inline_[1];
    }
    other.size_ = 0;
    other.nwords_ = 0;
  }

  BitVector& operator=(const BitVector& other) {
    if (this == &other) return *this;
    if (nwords_ != other.nwords_) {
      Word* fresh = other.nwords_ > kInlineWords ? new Word[other.nwords_] : inline_;
      if (on_heap()) delete[] data_;
      data_ = fresh;
    }
    size_ = other.size_;
    nwords_ = other.nwords_;
    std::copy_n(other.data_, nwords_, data_);
    return *this;
  }

  BitVector& operator=(BitVector&& other) noexcept {
    if (this == &other) return *this;
    if (on_heap()) delete[] data_;
    size_ = other.size_;
    nwords_ = other.nwords_;
    if (other.on_heap()) {
      data_ = other.data_;
      other.data_ = other.inline_;
    } else {
      data_ = inline_;
      inline_[0] = other.inline_[0];
      inline_[1] = other.inline_[1];
    }
    other.size_ = 0;
    other.nwords_ = 0;
    return *this;
  }

  ~BitVector() {
    if (on_heap()) delete[] data_;
  }

  /// Parse from a string of '0'/'1' characters; index 0 is the first char.
  static BitVector from_string(const std::string& s);

  /// Render as a string of '0'/'1' characters.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    return (data_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i, bool v) {
    const Word mask = Word{1} << (i % kWordBits);
    if (v) {
      data_[i / kWordBits] |= mask;
    } else {
      data_[i / kWordBits] &= ~mask;
    }
  }

  void flip(std::size_t i) { data_[i / kWordBits] ^= Word{1} << (i % kWordBits); }

  /// Number of 1-coordinates.
  [[nodiscard]] std::size_t count_ones() const;

  /// Hamming distance to `other`. Requires equal sizes.
  [[nodiscard]] std::size_t hamming(const BitVector& other) const;

  /// Hamming distance restricted to the coordinate subset `coords`
  /// (dist|_S in Notation 4.1). Coordinates must be < size().
  [[nodiscard]] std::size_t hamming_on(const BitVector& other,
                                       std::span<const std::uint32_t> coords) const;

  /// Projection v|_S : the |S|-coordinate vector whose i-th entry is
  /// this->get(coords[i]) (Notation 4.1).
  [[nodiscard]] BitVector project(std::span<const std::uint32_t> coords) const;

  /// Inverse of project: write the entries of `piece` back into `*this`
  /// at positions `coords`. Used to stitch per-part outputs (Small
  /// Radius step 1c, Large Radius step 4).
  void scatter(const BitVector& piece, std::span<const std::uint32_t> coords);

  /// scatter() with the positions given as a set: bit i of `piece`
  /// lands at the i-th 1-position of `mask` (mask.size() == size(),
  /// piece.size() == mask.count_ones()). One word-parallel deposit per
  /// destination word instead of a read-modify-write per coordinate —
  /// callers that scatter many pieces through the same position set
  /// (Zero Radius halving, Small Radius parts) build the mask once and
  /// amortize it across every row.
  void scatter_masked(const BitVector& piece, const BitVector& mask);

  /// Lexicographic comparison by coordinate order (coordinate 0 most
  /// significant), as required by Select's tie-breaking rule (Thm 3.2:
  /// "outputs the lexicographically first vector").
  [[nodiscard]] int lex_compare(const BitVector& other) const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && std::equal(data_, data_ + nwords_, other.data_);
  }

  /// In-place XOR; requires equal sizes. Useful to materialize the
  /// disagreement set between two vectors.
  BitVector& operator^=(const BitVector& other);
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  BitVector& operator&=(const BitVector& other);
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }

  BitVector& operator|=(const BitVector& other);
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }

  /// Fill the storage from successive 64-bit draws of `gen` (low word
  /// first, one draw per word); tail bits beyond size() are re-masked.
  /// Lets generators produce 64 coordinates per draw instead of one.
  template <typename Gen>
  void fill_words(Gen&& gen) {
    for (std::size_t i = 0; i < nwords_; ++i) data_[i] = gen();
    clear_tail();
  }

  /// Overwrite word `w` wholesale (coordinates 64w .. 64w+63). Bits
  /// beyond size() in the final word are masked off to preserve the
  /// tail invariant. Lets bulk producers write 64 coordinates with one
  /// store instead of 64 read-modify-writes.
  void set_word(std::size_t w, Word value) {
    data_[w] = value;
    if (w + 1 == nwords_) {
      const std::size_t rem = size_ % kWordBits;
      if (rem != 0) data_[w] &= (Word{1} << rem) - 1;
    }
  }

  /// Indices of the 1-coordinates, ascending.
  [[nodiscard]] std::vector<std::uint32_t> one_positions() const;

  /// Raw word storage (low word first). The tail invariant holds.
  [[nodiscard]] std::span<const Word> words() const { return {data_, nwords_}; }

  /// A 64-bit content hash (FNV-1a over words, mixed with the size).
  [[nodiscard]] std::uint64_t hash() const;

  static std::size_t word_count(std::size_t n) { return (n + kWordBits - 1) / kWordBits; }

 private:
  static constexpr std::size_t kInlineWords = 2;

  [[nodiscard]] bool on_heap() const { return data_ != inline_; }
  void clear_tail();

  std::size_t size_ = 0;
  std::size_t nwords_ = 0;
  Word* data_ = inline_;  // inline_ or a heap block of nwords_ words
  Word inline_[kInlineWords] = {0, 0};
};

}  // namespace tmwia::bits
