// BitVector: a packed, fixed-length vector over {0,1}.
//
// This is the fundamental value type of the library: every preference
// vector v(p) in the paper is a BitVector, and Hamming distance between
// BitVectors is the paper's dist(.,.) (Definition 1.1). Storage is one
// bit per coordinate in 64-bit words, so distance computations reduce to
// XOR + popcount over words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tmwia::bits {

/// Fixed-length packed bit vector with value semantics.
///
/// Coordinates are indexed 0..size()-1. Unused high bits of the last
/// word are kept zero as a class invariant, which lets popcount-based
/// operations run over whole words without masking.
class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  /// Empty vector (size 0).
  BitVector() = default;

  /// Vector of `n` coordinates, all zero.
  explicit BitVector(std::size_t n) : size_(n), words_(word_count(n), 0) {}

  /// Vector of `n` coordinates, all set to `fill`.
  BitVector(std::size_t n, bool fill) : BitVector(n) {
    if (fill) {
      for (auto& w : words_) w = ~Word{0};
      clear_tail();
    }
  }

  /// Parse from a string of '0'/'1' characters; index 0 is the first char.
  static BitVector from_string(const std::string& s);

  /// Render as a string of '0'/'1' characters.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i, bool v) {
    const Word mask = Word{1} << (i % kWordBits);
    if (v) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }

  void flip(std::size_t i) { words_[i / kWordBits] ^= Word{1} << (i % kWordBits); }

  /// Number of 1-coordinates.
  [[nodiscard]] std::size_t count_ones() const;

  /// Hamming distance to `other`. Requires equal sizes.
  [[nodiscard]] std::size_t hamming(const BitVector& other) const;

  /// Hamming distance restricted to the coordinate subset `coords`
  /// (dist|_S in Notation 4.1). Coordinates must be < size().
  [[nodiscard]] std::size_t hamming_on(const BitVector& other,
                                       std::span<const std::uint32_t> coords) const;

  /// Projection v|_S : the |S|-coordinate vector whose i-th entry is
  /// this->get(coords[i]) (Notation 4.1).
  [[nodiscard]] BitVector project(std::span<const std::uint32_t> coords) const;

  /// Inverse of project: write the entries of `piece` back into `*this`
  /// at positions `coords`. Used to stitch per-part outputs (Small
  /// Radius step 1c, Large Radius step 4).
  void scatter(const BitVector& piece, std::span<const std::uint32_t> coords);

  /// Lexicographic comparison by coordinate order (coordinate 0 most
  /// significant), as required by Select's tie-breaking rule (Thm 3.2:
  /// "outputs the lexicographically first vector").
  [[nodiscard]] int lex_compare(const BitVector& other) const;

  bool operator==(const BitVector& other) const = default;

  /// In-place XOR; requires equal sizes. Useful to materialize the
  /// disagreement set between two vectors.
  BitVector& operator^=(const BitVector& other);
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  BitVector& operator&=(const BitVector& other);
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }

  BitVector& operator|=(const BitVector& other);
  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }

  /// Indices of the 1-coordinates, ascending.
  [[nodiscard]] std::vector<std::uint32_t> one_positions() const;

  /// Raw word storage (low word first). The tail invariant holds.
  [[nodiscard]] std::span<const Word> words() const { return words_; }

  /// A 64-bit content hash (FNV-1a over words, mixed with the size).
  [[nodiscard]] std::uint64_t hash() const;

  static std::size_t word_count(std::size_t n) { return (n + kWordBits - 1) / kWordBits; }

 private:
  void clear_tail();

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

}  // namespace tmwia::bits
