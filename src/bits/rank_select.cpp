#include "tmwia/bits/rank_select.hpp"

#include <bit>
#include <stdexcept>

namespace tmwia::bits {

RankSelect::RankSelect(const BitVector& bits)
    : words_(bits.words().begin(), bits.words().end()), size_(bits.size()) {
  const std::size_t n_blocks = (words_.size() + kBlockWords - 1) / kBlockWords;
  block_rank_.resize(n_blocks + 1, 0);
  sub_rank_.resize(n_blocks, 0);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    block_rank_[b] = running;
    std::uint64_t within = 0;
    std::uint64_t packed = 0;
    for (std::size_t w = 0; w < kBlockWords; ++w) {
      const std::size_t idx = b * kBlockWords + w;
      if (w > 0) packed |= within << (9 * (w - 1));
      if (idx < words_.size()) {
        within += static_cast<std::uint64_t>(std::popcount(words_[idx]));
      }
    }
    sub_rank_[b] = packed;
    running += within;
  }
  block_rank_[n_blocks] = running;
  ones_ = static_cast<std::size_t>(running);
}

std::size_t RankSelect::rank1(std::size_t i) const {
  if (i >= size_) return ones_;
  const std::size_t w = i / 64;
  const std::size_t b = w / kBlockWords;
  const std::size_t sub = w % kBlockWords;
  std::uint64_t r = block_rank_[b];
  if (sub > 0) r += (sub_rank_[b] >> (9 * (sub - 1))) & 0x1ff;
  const std::size_t bit = i % 64;
  if (bit > 0) {
    r += static_cast<std::uint64_t>(
        std::popcount(words_[w] & ((std::uint64_t{1} << bit) - 1)));
  }
  return static_cast<std::size_t>(r);
}

std::size_t RankSelect::select1(std::size_t k) const {
  if (k >= ones_) {
    throw std::out_of_range("RankSelect::select1: k >= ones()");
  }
  // Binary search the block directory, then walk the (at most eight)
  // words of the block.
  std::size_t lo = 0;
  std::size_t hi = block_rank_.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (block_rank_[mid] <= k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::uint64_t remaining = k - block_rank_[lo];
  for (std::size_t w = lo * kBlockWords; w < words_.size(); ++w) {
    const auto c = static_cast<std::uint64_t>(std::popcount(words_[w]));
    if (remaining < c) {
      // k-th one is in this word: peel (remaining) low set bits.
      std::uint64_t x = words_[w];
      for (std::uint64_t j = 0; j < remaining; ++j) x &= x - 1;
      return w * 64 + static_cast<std::size_t>(std::countr_zero(x));
    }
    remaining -= c;
  }
  throw std::logic_error("RankSelect::select1: directory corrupt");
}

std::vector<std::uint32_t> RankSelect::one_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(ones_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t x = words_[w];
    while (x != 0) {
      out.push_back(static_cast<std::uint32_t>(w * 64 +
                                               static_cast<std::size_t>(std::countr_zero(x))));
      x &= x - 1;
    }
  }
  return out;
}

}  // namespace tmwia::bits
