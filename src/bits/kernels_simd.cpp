// AVX2 / AVX-512 backends for the kernel vtable. This TU compiles on
// any x86-64 GCC/Clang via per-function target attributes — no special
// compiler flags — and each vtable getter returns nullptr when the
// running CPU lacks the ISA, so dispatch stays a pure runtime decision.
//
// AVX2 popcount is the Mula pshufb nibble-LUT reduced through
// _mm256_sad_epu8; AVX-512 uses VPOPCNTDQ directly. Both accumulate
// exact 64-bit integer popcounts, so results are bit-identical to the
// scalar backend by construction.
#include "kernels_detail.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TMWIA_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace tmwia::bits::kernels::detail {

#if TMWIA_KERNELS_X86

namespace {

#define TMWIA_AVX2 __attribute__((target("avx2,popcnt")))
#define TMWIA_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vl,avx512vpopcntdq")))

// --- AVX2 ---------------------------------------------------------------

/// Per-byte popcount of a 256-bit lane (Mula's pshufb nibble LUT).
TMWIA_AVX2 inline __m256i avx2_popcnt_bytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
                                       3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3,
                                       2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

/// Horizontal sum of four 64-bit lanes.
TMWIA_AVX2 inline std::uint64_t avx2_hsum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

TMWIA_AVX2 std::uint64_t avx2_popcnt(const std::uint64_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(avx2_popcnt_bytes(v),
                                                _mm256_setzero_si256()));
  }
  std::uint64_t c = avx2_hsum(acc);
  for (; i < n; ++i) c += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i]));
  return c;
}

TMWIA_AVX2 std::uint64_t avx2_xor_popcnt(const std::uint64_t* a,
                                         const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(avx2_popcnt_bytes(v),
                                                _mm256_setzero_si256()));
  }
  std::uint64_t c = avx2_hsum(acc);
  for (; i < n; ++i) c += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] ^ b[i]));
  return c;
}

TMWIA_AVX2 std::uint64_t avx2_xor_and_popcnt(const std::uint64_t* a,
                                             const std::uint64_t* b,
                                             const std::uint64_t* m, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + i)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(avx2_popcnt_bytes(v),
                                                _mm256_setzero_si256()));
  }
  std::uint64_t c = avx2_hsum(acc);
  for (; i < n; ++i) {
    c += static_cast<std::uint64_t>(_mm_popcnt_u64((a[i] ^ b[i]) & m[i]));
  }
  return c;
}

TMWIA_AVX2 std::uint64_t avx2_xor_and2_popcnt(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              const std::uint64_t* m1,
                                              const std::uint64_t* m2,
                                              std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i mask = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m1 + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m2 + i)));
    const __m256i v = _mm256_and_si256(
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))),
        mask);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(avx2_popcnt_bytes(v),
                                                _mm256_setzero_si256()));
  }
  std::uint64_t c = avx2_hsum(acc);
  for (; i < n; ++i) {
    c += static_cast<std::uint64_t>(_mm_popcnt_u64((a[i] ^ b[i]) & m1[i] & m2[i]));
  }
  return c;
}

TMWIA_AVX2 std::uint64_t avx2_and_popcnt(const std::uint64_t* a,
                                         const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(avx2_popcnt_bytes(v),
                                                _mm256_setzero_si256()));
  }
  std::uint64_t c = avx2_hsum(acc);
  for (; i < n; ++i) c += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] & b[i]));
  return c;
}

// --- AVX-512 ------------------------------------------------------------

/// Horizontal sum of eight 64-bit lanes. A plain store+add: GCC's
/// _mm512_reduce_add_epi64 goes through _mm256_undefined_si256 and
/// trips -Wuninitialized; this runs once per call, so it is not hot.
TMWIA_AVX512 inline std::uint64_t avx512_hsum(__m512i acc) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

TMWIA_AVX512 std::uint64_t avx512_popcnt(const std::uint64_t* a, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  std::uint64_t c = avx512_hsum(acc);
  for (; i < n; ++i) c += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i]));
  return c;
}

TMWIA_AVX512 std::uint64_t avx512_xor_popcnt(const std::uint64_t* a,
                                             const std::uint64_t* b,
                                             std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_xor_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t c = avx512_hsum(acc);
  for (; i < n; ++i) c += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] ^ b[i]));
  return c;
}

TMWIA_AVX512 std::uint64_t avx512_xor_and_popcnt(const std::uint64_t* a,
                                                 const std::uint64_t* b,
                                                 const std::uint64_t* m,
                                                 std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vpternlogq 0x28 = (a ^ b) & m in a single op.
    const __m512i v = _mm512_ternarylogic_epi64(
        _mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i),
        _mm512_loadu_si512(m + i), 0x28);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t c = avx512_hsum(acc);
  for (; i < n; ++i) {
    c += static_cast<std::uint64_t>(_mm_popcnt_u64((a[i] ^ b[i]) & m[i]));
  }
  return c;
}

TMWIA_AVX512 std::uint64_t avx512_xor_and2_popcnt(const std::uint64_t* a,
                                                  const std::uint64_t* b,
                                                  const std::uint64_t* m1,
                                                  const std::uint64_t* m2,
                                                  std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_ternarylogic_epi64(
        _mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i),
        _mm512_and_si512(_mm512_loadu_si512(m1 + i), _mm512_loadu_si512(m2 + i)),
        0x28);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t c = avx512_hsum(acc);
  for (; i < n; ++i) {
    c += static_cast<std::uint64_t>(_mm_popcnt_u64((a[i] ^ b[i]) & m1[i] & m2[i]));
  }
  return c;
}

TMWIA_AVX512 std::uint64_t avx512_and_popcnt(const std::uint64_t* a,
                                             const std::uint64_t* b,
                                             std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::uint64_t c = avx512_hsum(acc);
  for (; i < n; ++i) c += static_cast<std::uint64_t>(_mm_popcnt_u64(a[i] & b[i]));
  return c;
}

#undef TMWIA_AVX2
#undef TMWIA_AVX512

bool cpu_has_avx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
}

bool cpu_has_avx512() {
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512vpopcntdq");
}

}  // namespace

const KernelVTable* avx2_vtable() {
  static const KernelVTable table{avx2_popcnt, avx2_xor_popcnt, avx2_xor_and_popcnt,
                                  avx2_xor_and2_popcnt, avx2_and_popcnt};
  static const bool ok = cpu_has_avx2();
  return ok ? &table : nullptr;
}

const KernelVTable* avx512_vtable() {
  static const KernelVTable table{avx512_popcnt, avx512_xor_popcnt,
                                  avx512_xor_and_popcnt, avx512_xor_and2_popcnt,
                                  avx512_and_popcnt};
  static const bool ok = cpu_has_avx512();
  return ok ? &table : nullptr;
}

#else  // !TMWIA_KERNELS_X86

const KernelVTable* avx2_vtable() { return nullptr; }
const KernelVTable* avx512_vtable() { return nullptr; }

#endif

}  // namespace tmwia::bits::kernels::detail
