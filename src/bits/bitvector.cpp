#include "tmwia/bits/bitvector.hpp"

#include <bit>
#include <stdexcept>

#include "tmwia/bits/kernels.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace tmwia::bits {
namespace {

using Word = BitVector::Word;

// Deposit the low popcount(mask) bits of `bits` at the 1-positions of
// `mask`. BMI2 pdep does this in one instruction; the portable loop
// walks the mask's set bits. Selected once per process.
#if defined(__x86_64__) || defined(_M_X64)
__attribute__((target("bmi2"))) Word deposit_bmi2(Word bits, Word mask) {
  return _pdep_u64(bits, mask);
}
#endif

Word deposit_portable(Word bits, Word mask) {
  Word out = 0;
  while (mask != 0) {
    const Word low = mask & (~mask + 1);
    if (bits & 1u) out |= low;
    bits >>= 1;
    mask &= mask - 1;
  }
  return out;
}

Word (*resolve_deposit())(Word, Word) {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("bmi2")) return deposit_bmi2;
#endif
  return deposit_portable;
}

Word deposit(Word bits, Word mask) {
  static Word (*const fn)(Word, Word) = resolve_deposit();
  return fn(bits, mask);
}

}  // namespace

BitVector BitVector::from_string(const std::string& s) {
  BitVector v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      v.set(i, true);
    } else if (s[i] != '0') {
      throw std::invalid_argument("BitVector::from_string: expected '0' or '1'");
    }
  }
  return v;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

std::size_t BitVector::count_ones() const {
  return static_cast<std::size_t>(kernels::popcount_words(data_, nwords_));
}

std::size_t BitVector::hamming(const BitVector& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::hamming: size mismatch");
  }
  return static_cast<std::size_t>(
      kernels::xor_popcount_words(data_, other.data_, nwords_));
}

std::size_t BitVector::hamming_on(const BitVector& other,
                                  std::span<const std::uint32_t> coords) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::hamming_on: size mismatch");
  }
  std::size_t c = 0;
  for (std::uint32_t j : coords) {
    c += static_cast<std::size_t>(get(j) != other.get(j));
  }
  return c;
}

BitVector BitVector::project(std::span<const std::uint32_t> coords) const {
  BitVector out(coords.size());
  // Destination bits are written in order: accumulate each output word
  // in a register and store it once.
  Word acc = 0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const std::uint32_t c = coords[i];
    acc |= ((data_[c / kWordBits] >> (c % kWordBits)) & Word{1}) << (i % kWordBits);
    if (i % kWordBits == kWordBits - 1) {
      out.data_[i / kWordBits] = acc;
      acc = 0;
    }
  }
  if (coords.size() % kWordBits != 0) out.data_[coords.size() / kWordBits] = acc;
  return out;
}

void BitVector::scatter(const BitVector& piece, std::span<const std::uint32_t> coords) {
  if (piece.size() != coords.size()) {
    throw std::invalid_argument("BitVector::scatter: piece/coords size mismatch");
  }
  // Branchless bit move: clear the target bit, OR in the source bit.
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const std::uint32_t c = coords[i];
    const Word bit = (piece.data_[i / kWordBits] >> (i % kWordBits)) & Word{1};
    Word& w = data_[c / kWordBits];
    w = (w & ~(Word{1} << (c % kWordBits))) | (bit << (c % kWordBits));
  }
}

void BitVector::scatter_masked(const BitVector& piece, const BitVector& mask) {
  if (mask.size() != size_) {
    throw std::invalid_argument("BitVector::scatter_masked: mask/destination size mismatch");
  }
  const Word* pw = piece.data_;
  std::size_t src_pos = 0;  // bit cursor into piece
  for (std::size_t w = 0; w < nwords_; ++w) {
    const Word mw = mask.data_[w];
    if (mw == 0) continue;
    const auto cnt = static_cast<std::size_t>(std::popcount(mw));
    // Gather the next cnt source bits (may straddle a word boundary).
    const std::size_t sw = src_pos / kWordBits;
    const std::size_t sb = src_pos % kWordBits;
    if (src_pos + cnt > piece.size()) {
      throw std::invalid_argument("BitVector::scatter_masked: piece/mask size mismatch");
    }
    Word bits = pw[sw] >> sb;
    if (sb != 0 && sw + 1 < piece.nwords_) bits |= pw[sw + 1] << (kWordBits - sb);
    data_[w] = (data_[w] & ~mw) | deposit(bits, mw);
    src_pos += cnt;
  }
  if (src_pos != piece.size()) {
    throw std::invalid_argument("BitVector::scatter_masked: piece/mask size mismatch");
  }
}

int BitVector::lex_compare(const BitVector& other) const {
  // Coordinate 0 is the most significant position of the lexicographic
  // order, but it is stored in the *low* bit of the low word; compare
  // word by word after bit-reversal would be wasteful, so we locate the
  // first differing coordinate instead.
  const std::size_t nw = std::min(nwords_, other.nwords_);
  for (std::size_t w = 0; w < nw; ++w) {
    const Word diff = data_[w] ^ other.data_[w];
    if (diff != 0) {
      const int bit = std::countr_zero(diff);
      const bool mine = (data_[w] >> bit) & 1u;
      // '0' sorts before '1' at the first differing coordinate.
      return mine ? 1 : -1;
    }
  }
  if (size_ != other.size_) return size_ < other.size_ ? -1 : 1;
  return 0;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator^=: size mismatch");
  }
  for (std::size_t i = 0; i < nwords_; ++i) data_[i] ^= other.data_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator&=: size mismatch");
  }
  for (std::size_t i = 0; i < nwords_; ++i) data_[i] &= other.data_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator|=: size mismatch");
  }
  for (std::size_t i = 0; i < nwords_; ++i) data_[i] |= other.data_[i];
  return *this;
}

std::vector<std::uint32_t> BitVector::one_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(count_ones());
  for (std::size_t w = 0; w < nwords_; ++w) {
    Word x = data_[w];
    while (x != 0) {
      const int bit = std::countr_zero(x);
      out.push_back(static_cast<std::uint32_t>(w * kWordBits + static_cast<std::size_t>(bit)));
      x &= x - 1;
    }
  }
  return out;
}

std::uint64_t BitVector::hash() const {
  std::uint64_t h = 1469598103934665603ull ^ (size_ * 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < nwords_; ++i) {
    h ^= data_[i];
    h *= 1099511628211ull;
  }
  return h;
}

void BitVector::clear_tail() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && nwords_ != 0) {
    data_[nwords_ - 1] &= (Word{1} << rem) - 1;
  }
}

}  // namespace tmwia::bits
