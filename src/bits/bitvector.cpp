#include "tmwia/bits/bitvector.hpp"

#include <bit>
#include <stdexcept>

namespace tmwia::bits {

BitVector BitVector::from_string(const std::string& s) {
  BitVector v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      v.set(i, true);
    } else if (s[i] != '0') {
      throw std::invalid_argument("BitVector::from_string: expected '0' or '1'");
    }
  }
  return v;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

std::size_t BitVector::count_ones() const {
  std::size_t c = 0;
  for (Word w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

std::size_t BitVector::hamming(const BitVector& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::hamming: size mismatch");
  }
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    c += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return c;
}

std::size_t BitVector::hamming_on(const BitVector& other,
                                  std::span<const std::uint32_t> coords) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::hamming_on: size mismatch");
  }
  std::size_t c = 0;
  for (std::uint32_t j : coords) {
    c += static_cast<std::size_t>(get(j) != other.get(j));
  }
  return c;
}

BitVector BitVector::project(std::span<const std::uint32_t> coords) const {
  BitVector out(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (get(coords[i])) out.set(i, true);
  }
  return out;
}

void BitVector::scatter(const BitVector& piece, std::span<const std::uint32_t> coords) {
  if (piece.size() != coords.size()) {
    throw std::invalid_argument("BitVector::scatter: piece/coords size mismatch");
  }
  for (std::size_t i = 0; i < coords.size(); ++i) {
    set(coords[i], piece.get(i));
  }
}

int BitVector::lex_compare(const BitVector& other) const {
  // Coordinate 0 is the most significant position of the lexicographic
  // order, but it is stored in the *low* bit of the low word; compare
  // word by word after bit-reversal would be wasteful, so we locate the
  // first differing coordinate instead.
  const std::size_t nw = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < nw; ++w) {
    const Word diff = words_[w] ^ other.words_[w];
    if (diff != 0) {
      const int bit = std::countr_zero(diff);
      const bool mine = (words_[w] >> bit) & 1u;
      // '0' sorts before '1' at the first differing coordinate.
      return mine ? 1 : -1;
    }
  }
  if (size_ != other.size_) return size_ < other.size_ ? -1 : 1;
  return 0;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator^=: size mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator&=: size mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::operator|=: size mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

std::vector<std::uint32_t> BitVector::one_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(count_ones());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    Word x = words_[w];
    while (x != 0) {
      const int bit = std::countr_zero(x);
      out.push_back(static_cast<std::uint32_t>(w * kWordBits + static_cast<std::size_t>(bit)));
      x &= x - 1;
    }
  }
  return out;
}

std::uint64_t BitVector::hash() const {
  std::uint64_t h = 1469598103934665603ull ^ (size_ * 0x9e3779b97f4a7c15ull);
  for (Word w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

void BitVector::clear_tail() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

}  // namespace tmwia::bits
