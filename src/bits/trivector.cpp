#include "tmwia/bits/trivector.hpp"

#include <bit>
#include <stdexcept>

#include "tmwia/bits/kernels.hpp"

namespace tmwia::bits {

TriVector TriVector::from_string(const std::string& s) {
  TriVector t(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    switch (s[i]) {
      case '0':
        t.set(i, Tri::kZero);
        break;
      case '1':
        t.set(i, Tri::kOne);
        break;
      case '?':
        t.set(i, Tri::kUnknown);
        break;
      default:
        throw std::invalid_argument("TriVector::from_string: expected '0', '1' or '?'");
    }
  }
  return t;
}

std::string TriVector::to_string() const {
  std::string s(size(), '?');
  for (std::size_t i = 0; i < size(); ++i) {
    switch (get(i)) {
      case Tri::kZero:
        s[i] = '0';
        break;
      case Tri::kOne:
        s[i] = '1';
        break;
      case Tri::kUnknown:
        break;
    }
  }
  return s;
}

std::size_t TriVector::dtilde(const TriVector& other) const {
  if (size() != other.size()) {
    throw std::invalid_argument("TriVector::dtilde: size mismatch");
  }
  const auto va = value_.words();
  return static_cast<std::size_t>(kernels::xor_and2_popcount_words(
      va.data(), other.value_.words().data(), known_.words().data(),
      other.known_.words().data(), va.size()));
}

std::size_t TriVector::dtilde(const BitVector& other) const {
  if (size() != other.size()) {
    throw std::invalid_argument("TriVector::dtilde: size mismatch");
  }
  const auto va = value_.words();
  return static_cast<std::size_t>(kernels::xor_and_popcount_words(
      va.data(), other.words().data(), known_.words().data(), va.size()));
}

std::size_t TriVector::dtilde_on(const TriVector& other,
                                 std::span<const std::uint32_t> coords) const {
  std::size_t c = 0;
  for (std::uint32_t j : coords) {
    const Tri a = get(j);
    const Tri b = other.get(j);
    if (a != Tri::kUnknown && b != Tri::kUnknown && a != b) ++c;
  }
  return c;
}

TriVector TriVector::merge(const TriVector& other) const {
  if (size() != other.size()) {
    throw std::invalid_argument("TriVector::merge: size mismatch");
  }
  TriVector out(size());
  // Known in the result iff known in both AND the values agree; where
  // the result is known its value equals either operand's value.
  BitVector differ = value_ ^ other.value_;     // 1 where value bits differ
  out.known_ = known_ & other.known_;
  out.known_ ^= differ & out.known_;            // drop both-known disagreements
  out.value_ = value_ & out.known_;
  return out;
}

TriVector TriVector::project(std::span<const std::uint32_t> coords) const {
  TriVector out(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    out.set(i, get(coords[i]));
  }
  return out;
}

BitVector TriVector::fill_unknown(bool fill) const {
  if (!fill) {
    return value_ & known_;
  }
  BitVector unknown = known_;
  // complement of known within the size: use XOR against all-ones
  BitVector ones(size(), true);
  unknown ^= ones;  // 1 where ?
  return (value_ & known_) | unknown;
}

int TriVector::lex_compare(const TriVector& other) const {
  const std::size_t n = std::min(size(), other.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::uint8_t>(get(i));
    const auto b = static_cast<std::uint8_t>(other.get(i));
    if (a != b) return a < b ? -1 : 1;
  }
  if (size() != other.size()) return size() < other.size() ? -1 : 1;
  return 0;
}

}  // namespace tmwia::bits
