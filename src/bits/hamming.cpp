#include "tmwia/bits/hamming.hpp"

namespace tmwia::bits {

std::size_t diameter(std::span<const BitVector> vs) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      d = std::max(d, vs[i].hamming(vs[j]));
    }
  }
  return d;
}

std::size_t diameter(std::span<const BitVector> vs, std::span<const std::uint32_t> indices) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    for (std::size_t j = i + 1; j < indices.size(); ++j) {
      d = std::max(d, vs[indices[i]].hamming(vs[indices[j]]));
    }
  }
  return d;
}

std::size_t argmin_dist(std::span<const BitVector> vs, const BitVector& target) {
  std::size_t best = 0;
  std::size_t best_d = vs[0].hamming(target);
  for (std::size_t i = 1; i < vs.size(); ++i) {
    const std::size_t d = vs[i].hamming(target);
    if (d < best_d) {
      best = i;
      best_d = d;
    }
  }
  return best;
}

std::size_t ball_size(std::span<const BitVector> vs, const TriVector& v, std::size_t D) {
  std::size_t c = 0;
  for (const auto& u : vs) {
    if (v.dtilde(u) <= D) ++c;
  }
  return c;
}

std::vector<std::size_t> ball_members(std::span<const BitVector> vs, const TriVector& v,
                                      std::size_t D) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (v.dtilde(vs[i]) <= D) out.push_back(i);
  }
  return out;
}

}  // namespace tmwia::bits
