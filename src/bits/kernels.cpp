#include "tmwia/bits/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "kernels_detail.hpp"

namespace tmwia::bits::kernels {
namespace {

using detail::KernelVTable;

// --- scalar reference backend -----------------------------------------

std::uint64_t scalar_popcnt(const std::uint64_t* a, std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += static_cast<std::uint64_t>(std::popcount(a[i]));
  return c;
}

std::uint64_t scalar_xor_popcnt(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return c;
}

std::uint64_t scalar_xor_and_popcnt(const std::uint64_t* a, const std::uint64_t* b,
                                    const std::uint64_t* m, std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::uint64_t>(std::popcount((a[i] ^ b[i]) & m[i]));
  }
  return c;
}

std::uint64_t scalar_xor_and2_popcnt(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* m1, const std::uint64_t* m2,
                                     std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::uint64_t>(std::popcount((a[i] ^ b[i]) & m1[i] & m2[i]));
  }
  return c;
}

std::uint64_t scalar_and_popcnt(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return c;
}

// --- dispatch ----------------------------------------------------------

const KernelVTable* table_for(KernelBackend b) {
  switch (b) {
    case KernelBackend::kScalar: return &detail::scalar_vtable();
    case KernelBackend::kAvx2: return detail::avx2_vtable();
    case KernelBackend::kAvx512: return detail::avx512_vtable();
    case KernelBackend::kAuto: break;
  }
  if (const auto* t = detail::avx512_vtable()) return t;
  if (const auto* t = detail::avx2_vtable()) return t;
  return &detail::scalar_vtable();
}

KernelBackend initial_backend() {
  if (const char* env = std::getenv("TMWIA_KERNEL"); env != nullptr && env[0] != '\0') {
    if (const auto parsed = parse_backend(env);
        parsed.has_value() && backend_supported(*parsed)) {
      return *parsed;
    }
    // Unknown or unsupported name: fall through to auto rather than
    // abort a run over an env var typo; the CLI flag validates loudly.
  }
  return KernelBackend::kAuto;
}

// Process-global dispatch words. `requested`/`table` are written only
// by set_backend (serial setup by contract, atomics so a misuse can
// never tear) and read on every distance call; `busy` counts engine
// parallel phases in flight and turns mid-phase reselection into a
// loud std::logic_error instead of a silent race.
struct Dispatch {
  std::atomic<std::uint8_t> requested;
  std::atomic<const KernelVTable*> table;
  std::atomic<std::size_t> busy{0};

  Dispatch() {
    const KernelBackend b = initial_backend();
    requested.store(static_cast<std::uint8_t>(b), std::memory_order_relaxed);
    table.store(table_for(b), std::memory_order_release);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

const KernelVTable& ops() {
  // Acquire pairs with set_backend's release store: a thread that sees
  // the new pointer sees a fully-published vtable. On x86 this is the
  // same plain load the hot path always paid.
  return *dispatch().table.load(std::memory_order_acquire);
}

void check_pair(const BitVector& a, const BitVector& b, const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  }
}

}  // namespace

std::string_view backend_name(KernelBackend b) {
  switch (b) {
    case KernelBackend::kScalar: return "scalar";
    case KernelBackend::kAvx2: return "avx2";
    case KernelBackend::kAvx512: return "avx512";
    case KernelBackend::kAuto: return "auto";
  }
  return "?";
}

std::optional<KernelBackend> parse_backend(std::string_view name) {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "avx2") return KernelBackend::kAvx2;
  if (name == "avx512") return KernelBackend::kAvx512;
  if (name == "auto") return KernelBackend::kAuto;
  return std::nullopt;
}

bool backend_supported(KernelBackend b) { return table_for(b) != nullptr; }

KernelBackend resolve_backend(KernelBackend b) {
  if (b != KernelBackend::kAuto) return b;
  if (detail::avx512_vtable() != nullptr) return KernelBackend::kAvx512;
  if (detail::avx2_vtable() != nullptr) return KernelBackend::kAvx2;
  return KernelBackend::kScalar;
}

void set_backend(KernelBackend b) {
  const KernelVTable* t = table_for(b);
  if (t == nullptr) {
    throw std::invalid_argument("kernels::set_backend: backend '" +
                                std::string(backend_name(b)) +
                                "' is not supported on this CPU");
  }
  auto& d = dispatch();
  if (d.busy.load(std::memory_order_acquire) != 0) {
    throw std::logic_error(
        "kernels::set_backend: engine threads are executing a parallel "
        "phase; select the backend from serial setup code (Session::kernel, "
        "--kernel=, TMWIA_KERNEL) before dispatching parallel work");
  }
  d.requested.store(static_cast<std::uint8_t>(b), std::memory_order_relaxed);
  d.table.store(t, std::memory_order_release);
}

ParallelPhaseGuard::ParallelPhaseGuard() {
  dispatch().busy.fetch_add(1, std::memory_order_acq_rel);
}

ParallelPhaseGuard::~ParallelPhaseGuard() {
  dispatch().busy.fetch_sub(1, std::memory_order_acq_rel);
}

std::size_t parallel_phases_active() {
  return dispatch().busy.load(std::memory_order_acquire);
}

KernelBackend requested_backend() {
  return static_cast<KernelBackend>(dispatch().requested.load(std::memory_order_relaxed));
}

KernelBackend active_backend() { return resolve_backend(requested_backend()); }

std::uint64_t popcount_words(const std::uint64_t* a, std::size_t n) {
  return ops().popcnt(a, n);
}

std::uint64_t xor_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  return ops().xor_popcnt(a, b, n);
}

std::uint64_t xor_and_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                     const std::uint64_t* m, std::size_t n) {
  return ops().xor_and_popcnt(a, b, m, n);
}

std::uint64_t xor_and2_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                      const std::uint64_t* m1, const std::uint64_t* m2,
                                      std::size_t n) {
  return ops().xor_and2_popcnt(a, b, m1, m2, n);
}

std::uint64_t and_popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) {
  return ops().and_popcnt(a, b, n);
}

std::size_t dist(const BitVector& a, const BitVector& b) {
  check_pair(a, b, "kernels::dist");
  return static_cast<std::size_t>(
      ops().xor_popcnt(a.words().data(), b.words().data(), a.words().size()));
}

std::size_t dtilde(const TriVector& a, const TriVector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("kernels::dtilde: size mismatch");
  }
  return static_cast<std::size_t>(ops().xor_and2_popcnt(
      a.value_words().data(), b.value_words().data(), a.known_words().data(),
      b.known_words().data(), a.value_words().size()));
}

std::size_t dtilde(const TriVector& a, const BitVector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("kernels::dtilde: size mismatch");
  }
  return static_cast<std::size_t>(
      ops().xor_and_popcnt(a.value_words().data(), b.words().data(),
                           a.known_words().data(), a.value_words().size()));
}

BitVector known_diff(const TriVector& a, const TriVector& b) {
  BitVector d = a.value_plane() ^ b.value_plane();
  d &= a.known_plane();
  d &= b.known_plane();
  return d;
}

void known_diff_positions(const TriVector& a, const TriVector& b,
                          std::vector<std::uint32_t>& out) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("kernels::known_diff_positions: size mismatch");
  }
  out.clear();
  const std::uint64_t* va = a.value_words().data();
  const std::uint64_t* vb = b.value_words().data();
  const std::uint64_t* ka = a.known_words().data();
  const std::uint64_t* kb = b.known_words().data();
  const std::size_t nw = a.value_words().size();
  for (std::size_t w = 0; w < nw; ++w) {
    std::uint64_t bits = (va[w] ^ vb[w]) & ka[w] & kb[w];
    while (bits != 0) {
      const auto tz = static_cast<std::uint32_t>(std::countr_zero(bits));
      out.push_back(static_cast<std::uint32_t>(w * 64) + tz);
      bits &= bits - 1;
    }
  }
}

void dist_many(const BitVector& target, std::span<const BitVector> vs,
               std::span<std::uint32_t> out) {
  if (out.size() < vs.size()) {
    throw std::invalid_argument("kernels::dist_many: output buffer too small");
  }
  const auto& t = ops();
  const std::uint64_t* tw = target.words().data();
  const std::size_t nw = target.words().size();
  for (std::size_t i = 0; i < vs.size(); ++i) {
    check_pair(target, vs[i], "kernels::dist_many");
    out[i] = static_cast<std::uint32_t>(t.xor_popcnt(tw, vs[i].words().data(), nw));
  }
}

void dtilde_many(const TriVector& center, std::span<const BitVector> vs,
                 std::span<std::uint32_t> out) {
  if (out.size() < vs.size()) {
    throw std::invalid_argument("kernels::dtilde_many: output buffer too small");
  }
  const auto& t = ops();
  const std::uint64_t* cv = center.value_words().data();
  const std::uint64_t* ck = center.known_words().data();
  const std::size_t nw = center.value_words().size();
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (vs[i].size() != center.size()) {
      throw std::invalid_argument("kernels::dtilde_many: size mismatch");
    }
    out[i] =
        static_cast<std::uint32_t>(t.xor_and_popcnt(cv, vs[i].words().data(), ck, nw));
  }
}

ArgminResult argmin_dist(std::span<const BitVector> vs, const BitVector& target) {
  if (vs.empty()) {
    throw std::invalid_argument("kernels::argmin_dist: empty collection");
  }
  const auto& t = ops();
  const std::uint64_t* tw = target.words().data();
  const std::size_t nw = target.words().size();
  ArgminResult best;
  check_pair(target, vs[0], "kernels::argmin_dist");
  best.dist = static_cast<std::size_t>(t.xor_popcnt(tw, vs[0].words().data(), nw));
  for (std::size_t i = 1; i < vs.size(); ++i) {
    check_pair(target, vs[i], "kernels::argmin_dist");
    const auto d = static_cast<std::size_t>(t.xor_popcnt(tw, vs[i].words().data(), nw));
    if (d < best.dist) {
      best.index = i;
      best.dist = d;
    }
  }
  return best;
}

std::size_t ball_size(std::span<const BitVector> vs, const TriVector& center,
                      std::size_t D) {
  const auto& t = ops();
  const std::uint64_t* cv = center.value_words().data();
  const std::uint64_t* ck = center.known_words().data();
  const std::size_t nw = center.value_words().size();
  std::size_t c = 0;
  for (const auto& v : vs) {
    if (v.size() != center.size()) {
      throw std::invalid_argument("kernels::ball_size: size mismatch");
    }
    if (t.xor_and_popcnt(cv, v.words().data(), ck, nw) <= D) ++c;
  }
  return c;
}

std::vector<std::size_t> ball_members(std::span<const BitVector> vs,
                                      const TriVector& center, std::size_t D) {
  const auto& t = ops();
  const std::uint64_t* cv = center.value_words().data();
  const std::uint64_t* ck = center.known_words().data();
  const std::size_t nw = center.value_words().size();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (vs[i].size() != center.size()) {
      throw std::invalid_argument("kernels::ball_members: size mismatch");
    }
    if (t.xor_and_popcnt(cv, vs[i].words().data(), ck, nw) <= D) out.push_back(i);
  }
  return out;
}

std::size_t ball_size(std::span<const BitVector> vs, const BitVector& center,
                      std::size_t D) {
  const auto& t = ops();
  const std::uint64_t* cw = center.words().data();
  const std::size_t nw = center.words().size();
  std::size_t c = 0;
  for (const auto& v : vs) {
    check_pair(center, v, "kernels::ball_size");
    if (t.xor_popcnt(cw, v.words().data(), nw) <= D) ++c;
  }
  return c;
}

std::size_t pairwise_diameter(std::span<const BitVector> vs) {
  const auto& t = ops();
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const std::uint64_t* wi = vs[i].words().data();
    const std::size_t nw = vs[i].words().size();
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      check_pair(vs[i], vs[j], "kernels::pairwise_diameter");
      const auto dij = t.xor_popcnt(wi, vs[j].words().data(), nw);
      if (dij > d) d = dij;
    }
  }
  return static_cast<std::size_t>(d);
}

std::size_t pairwise_diameter(std::span<const BitVector> vs,
                              std::span<const std::uint32_t> indices) {
  const auto& t = ops();
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto& vi = vs[indices[i]];
    for (std::size_t j = i + 1; j < indices.size(); ++j) {
      const auto& vj = vs[indices[j]];
      check_pair(vi, vj, "kernels::pairwise_diameter");
      const auto dij = t.xor_popcnt(vi.words().data(), vj.words().data(),
                                    vi.words().size());
      if (dij > d) d = dij;
    }
  }
  return static_cast<std::size_t>(d);
}

namespace detail {

const KernelVTable& scalar_vtable() {
  static constexpr KernelVTable table{scalar_popcnt, scalar_xor_popcnt,
                                      scalar_xor_and_popcnt, scalar_xor_and2_popcnt,
                                      scalar_and_popcnt};
  return table;
}

}  // namespace detail
}  // namespace tmwia::bits::kernels
