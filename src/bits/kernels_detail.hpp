// Internal contract between kernels.cpp (dispatch + batched ops) and
// the SIMD translation units (kernels_simd.cpp). Not installed; the
// public surface is tmwia/bits/kernels.hpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tmwia::bits::kernels::detail {

/// The word-level kernel ABI: one table per backend. Every function
/// returns an exact popcount, so backends are interchangeable bit for
/// bit; only throughput differs.
struct KernelVTable {
  std::uint64_t (*popcnt)(const std::uint64_t* a, std::size_t n);
  std::uint64_t (*xor_popcnt)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
  std::uint64_t (*xor_and_popcnt)(const std::uint64_t* a, const std::uint64_t* b,
                                  const std::uint64_t* m, std::size_t n);
  std::uint64_t (*xor_and2_popcnt)(const std::uint64_t* a, const std::uint64_t* b,
                                   const std::uint64_t* m1, const std::uint64_t* m2,
                                   std::size_t n);
  std::uint64_t (*and_popcnt)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
};

/// Always available.
const KernelVTable& scalar_vtable();

/// nullptr when the build target or the running CPU lacks the ISA.
const KernelVTable* avx2_vtable();
const KernelVTable* avx512_vtable();

}  // namespace tmwia::bits::kernels::detail
