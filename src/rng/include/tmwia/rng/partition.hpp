// Random partitions — the combinatorial workhorses of the paper.
//
// * `random_partition(n, s)`: each coordinate/object independently and
//   uniformly lands in one of s parts. This is exactly the partition of
//   Lemma 4.1 (Small Radius step 1a) and of Large Radius step 1.
// * `random_half_split(ids)`: a uniformly random half/half split, used
//   by Zero Radius step 2 to halve both the players and the objects.
// * `assign_to_parts(...)`: the Large Radius step 1 *player* assignment,
//   where each player joins `copies` uniformly chosen parts so that all
//   parts receive enough players (Lemma 5.5).
#pragma once

#include <cstdint>
#include <vector>

#include "tmwia/rng/rng.hpp"

namespace tmwia::rng {

/// Result of an s-way partition of items 0..n-1: `parts[i]` lists the
/// items of part i in ascending order.
struct Partition {
  std::vector<std::vector<std::uint32_t>> parts;

  [[nodiscard]] std::size_t count() const { return parts.size(); }
};

/// i.i.d.-uniform s-way partition of the items in `ids` (Lemma 4.1).
/// Parts may be empty; that is faithful to the lemma's model.
Partition random_partition(const std::vector<std::uint32_t>& ids, std::size_t s, Rng& rng);

/// Convenience overload partitioning 0..n-1.
Partition random_partition(std::size_t n, std::size_t s, Rng& rng);

/// Uniformly random split of `ids` into two halves (sizes differ by at
/// most 1), preserving ascending order inside each half. Zero Radius
/// step 2.
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> random_half_split(
    const std::vector<std::uint32_t>& ids, Rng& rng);

/// Assign each of the items in `ids` to `copies` distinct parts chosen
/// uniformly among s parts (Large Radius step 1 player assignment).
/// Returns per-part member lists; an item appears in `copies` parts.
Partition assign_to_parts(const std::vector<std::uint32_t>& ids, std::size_t s,
                          std::size_t copies, Rng& rng);

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// `k` distinct indices sampled uniformly from 0..n-1 (ascending order).
/// Used by RSelect's coordinate sampling. Requires k <= n.
std::vector<std::uint32_t> sample_without_replacement(std::size_t n, std::size_t k, Rng& rng);

}  // namespace tmwia::rng
