// Deterministic, splittable random number generation.
//
// The paper's algorithms use *shared* randomness (random partitions of
// players and objects are common knowledge via the billboard) as well as
// per-player randomness (RSelect's coordinate sampling). To make every
// simulation bitwise reproducible — including under thread-parallel
// player execution — all randomness flows from a root seed through
// `Rng::split(tag...)`, which derives statistically independent child
// streams keyed by structural position (phase id, iteration, player id)
// instead of by call order.
//
// Engine: xoshiro256**, seeded via SplitMix64 (Blackman & Vigna). Both
// are implemented here so the library has no dependency on the quality
// or stability of std::mt19937_64 across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace tmwia::rng {

/// SplitMix64 step: the recommended seeding/stream-derivation mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with splittable sub-stream derivation.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream keyed by up to three structural
  /// tags. Does NOT advance this stream: splitting is a pure function of
  /// (current state, tags), so sibling splits with distinct tags are
  /// independent and reproducible regardless of evaluation order.
  [[nodiscard]] Rng split(std::uint64_t tag0, std::uint64_t tag1 = 0,
                          std::uint64_t tag2 = 0) const {
    std::uint64_t sm = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^ rotl(state_[3], 43);
    sm ^= 0xd1b54a32d192ed03ull + tag0;
    (void)splitmix64(sm);
    sm ^= 0x8cb92ba72f3d8dd7ull + tag1;
    (void)splitmix64(sm);
    sm ^= 0x9e6c63d0a9964f91ull + tag2;
    Rng child{splitmix64(sm)};
    return child;
  }

  /// Uniform integer in [0, bound). Requires bound >= 1. Uses Lemire's
  /// nearly-divisionless rejection method — unbiased. Inline: partition
  /// and sampling loops draw millions of values per run, and the call
  /// overhead rivals the multiply itself.
  std::uint64_t uniform(std::uint64_t bound) {
    // Lemire 2019, "Fast Random Integer Generation in an Interval".
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) [[unlikely]] {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform01() < p; }

  /// Fair coin.
  bool coin() { return (next() >> 63) != 0; }

  /// The raw engine state, for checkpointing. Restoring via
  /// from_state() resumes the stream exactly where state() froze it.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }

  /// Rebuild a generator from a state() snapshot.
  static Rng from_state(const std::array<std::uint64_t, 4>& s) {
    Rng r;
    r.state_ = s;
    return r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tmwia::rng
