#include "tmwia/rng/rng.hpp"

// Rng is header-only for speed (uniform() sits in partition/sampling
// hot loops); this TU remains as the library's anchor.

namespace tmwia::rng {}  // namespace tmwia::rng
