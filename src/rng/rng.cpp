#include "tmwia/rng/rng.hpp"

namespace tmwia::rng {

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace tmwia::rng
