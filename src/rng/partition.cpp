#include "tmwia/rng/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tmwia::rng {

Partition random_partition(const std::vector<std::uint32_t>& ids, std::size_t s, Rng& rng) {
  if (s == 0) throw std::invalid_argument("random_partition: s must be >= 1");
  Partition p;
  p.parts.resize(s);
  for (std::uint32_t id : ids) {
    p.parts[rng.uniform(s)].push_back(id);
  }
  return p;
}

Partition random_partition(std::size_t n, std::size_t s, Rng& rng) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  return random_partition(ids, s, rng);
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> random_half_split(
    const std::vector<std::uint32_t>& ids, Rng& rng) {
  std::vector<std::uint32_t> perm = ids;
  shuffle(perm, rng);
  const std::size_t half = ids.size() / 2;
  std::vector<std::uint32_t> a(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::uint32_t> b(perm.begin() + static_cast<std::ptrdiff_t>(half), perm.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return {std::move(a), std::move(b)};
}

Partition assign_to_parts(const std::vector<std::uint32_t>& ids, std::size_t s,
                          std::size_t copies, Rng& rng) {
  if (s == 0) throw std::invalid_argument("assign_to_parts: s must be >= 1");
  if (copies > s) copies = s;
  Partition p;
  p.parts.resize(s);
  std::vector<std::uint32_t> chosen;
  for (std::uint32_t id : ids) {
    chosen.clear();
    // copies << s in all our uses, so rejection sampling is cheap.
    while (chosen.size() < copies) {
      const auto part = static_cast<std::uint32_t>(rng.uniform(s));
      if (std::find(chosen.begin(), chosen.end(), part) == chosen.end()) {
        chosen.push_back(part);
      }
    }
    for (std::uint32_t part : chosen) p.parts[part].push_back(id);
  }
  return p;
}

std::vector<std::uint32_t> sample_without_replacement(std::size_t n, std::size_t k, Rng& rng) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Floyd's algorithm: k uniform draws. Membership is checked against a
  // packed bitmap rather than a linear scan of the output — the draw
  // sequence (and therefore the sample) is unchanged, but the loop is
  // O(k) instead of O(k^2); RSelect calls this once per candidate pair.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  // Generation-stamped membership: stamp[t] == gen means "t already
  // chosen this call", so successive calls share the scratch without
  // clearing it.
  static thread_local std::vector<std::uint32_t> stamp;
  static thread_local std::uint32_t gen = 0;
  if (stamp.size() < n) stamp.resize(n, 0);
  if (++gen == 0) {
    std::fill(stamp.begin(), stamp.end(), 0);
    gen = 1;
  }
  for (std::size_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(rng.uniform(j + 1));
    if (stamp[t] == gen) t = static_cast<std::uint32_t>(j);
    stamp[t] = gen;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tmwia::rng
