// Thread-safety capability annotations + annotated locking primitives.
//
// Wraps Clang's Thread Safety Analysis attributes (-Wthread-safety) so
// the repo's lock and ownership discipline is *statically checkable*
// instead of resting on comments and TSan runs. Under any compiler
// without the attributes (GCC) every macro expands to nothing, so the
// annotations are free documentation there and enforced contracts under
// Clang (wired up as -DTMWIA_THREAD_SAFETY=ON, the default when the
// compiler supports -Wthread-safety).
//
// Vocabulary (names follow the canonical Clang mock header so the
// attributes read like the upstream documentation):
//   TMWIA_CAPABILITY(x)        class is a capability (a lock)
//   TMWIA_SCOPED_CAPABILITY    RAII type that acquires in ctor/releases in dtor
//   TMWIA_GUARDED_BY(mu)       member may only be touched holding mu
//   TMWIA_PT_GUARDED_BY(mu)    pointee may only be touched holding mu
//   TMWIA_REQUIRES(mu)         function must be called with mu held
//   TMWIA_ACQUIRE(...)/TMWIA_RELEASE(...)   lock/unlock side effects
//   TMWIA_TRY_ACQUIRE(b, ...)  try_lock returning `b` on success
//   TMWIA_EXCLUDES(mu)         function must NOT be called with mu held
//   TMWIA_ASSERT_CAPABILITY(mu)  runtime assertion that mu is held
//   TMWIA_RETURN_CAPABILITY(mu)  function returns a reference to mu
//   TMWIA_NO_THREAD_SAFETY_ANALYSIS  opt a function body out entirely
//
// std::mutex is not an annotated capability in libstdc++, so guarded
// members would be uncheckable through it. Concurrent code in this repo
// therefore uses the annotated wrappers below:
//   support::Mutex      an annotated std::mutex (a TMWIA_CAPABILITY)
//   support::MutexLock  scoped lock over a Mutex (RAII, condition-wait ready)
//   support::CondVar    condition variable waiting on a MutexLock
//
// Condition waits and the analysis: Clang analyzes lambda bodies
// without knowing the enclosing lock is held, so predicate-lambda waits
// (`cv.wait(lk, [&]{ return guarded_; })`) do not typecheck against
// guarded state. Write the explicit loop instead — it is equivalent and
// analyzable:
//   support::MutexLock lk(mu_);
//   while (!guarded_ready_) cv_.wait(lk);
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define TMWIA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TMWIA_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

#define TMWIA_CAPABILITY(x) TMWIA_THREAD_ANNOTATION(capability(x))
#define TMWIA_SCOPED_CAPABILITY TMWIA_THREAD_ANNOTATION(scoped_lockable)
#define TMWIA_GUARDED_BY(x) TMWIA_THREAD_ANNOTATION(guarded_by(x))
#define TMWIA_PT_GUARDED_BY(x) TMWIA_THREAD_ANNOTATION(pt_guarded_by(x))
#define TMWIA_REQUIRES(...) TMWIA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TMWIA_ACQUIRE(...) TMWIA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TMWIA_RELEASE(...) TMWIA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TMWIA_TRY_ACQUIRE(...) TMWIA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TMWIA_EXCLUDES(...) TMWIA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TMWIA_ASSERT_CAPABILITY(x) TMWIA_THREAD_ANNOTATION(assert_capability(x))
#define TMWIA_RETURN_CAPABILITY(x) TMWIA_THREAD_ANNOTATION(lock_returned(x))
#define TMWIA_NO_THREAD_SAFETY_ANALYSIS TMWIA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tmwia::support {

class CondVar;
class MutexLock;

/// std::mutex as a Clang thread-safety capability. Same cost, same
/// semantics; the only addition is that GUARDED_BY members become
/// checkable. Lock it through MutexLock — the manual-lock lint rule
/// flags raw .lock()/.unlock() pairs outside this header.
class TMWIA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TMWIA_ACQUIRE() { mu_.lock(); }
  void unlock() TMWIA_RELEASE() { mu_.unlock(); }
  bool try_lock() TMWIA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over a Mutex (the annotated lock_guard). Holds a
/// std::unique_lock internally so CondVar can wait on it.
class TMWIA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TMWIA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() TMWIA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with support::Mutex. wait() takes the
/// MutexLock by reference; write waits as explicit while-loops over the
/// guarded predicate (see the header comment) so the analysis can see
/// the lock is held when the predicate reads guarded state.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lk) { cv_.wait(lk.lock_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tmwia::support
