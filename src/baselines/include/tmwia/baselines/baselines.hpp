// Comparator algorithms for experiment E9 (and the paper's Section 2
// positioning):
//
//  * SoloProbing      — "go it alone": every player probes every object.
//    Exact, but m rounds; the trivial upper bound the interactive model
//    is trying to beat.
//  * SampledKnn       — interactive but assumption-free in the naive
//    way: sample R random probes per player, estimate pairwise
//    similarity from co-probed objects, predict by k-nearest-neighbour
//    majority. Represents the "polynomial overhead" regime: accuracy
//    needs R = Omega(poly) samples because similarities must be
//    estimated pairwise.
//  * SvdRecommender   — the non-interactive low-rank approach ([5, 6,
//    14, 15]): observe each entry i.i.d. with probability q, rescale,
//    take a rank-k SVD and round. Provably good under a spectral gap
//    and near-orthogonal types; E9 shows it degrading on adversarial
//    diversity while tmwia does not.
//  * GlobalMajority   — one vector for everyone (the degenerate
//    "community of all players"): the error floor any non-personalized
//    scheme hits.
//
// All baselines run against the same ProbeOracle so probe accounting is
// directly comparable with the main algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/bits/bitvector.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::baselines {

using matrix::PlayerId;

struct BaselineResult {
  std::vector<bits::BitVector> outputs;  ///< per player, all objects
  std::uint64_t rounds = 0;              ///< max probes per player
  std::uint64_t total_probes = 0;
};

/// Every player probes every object. Exact output, m rounds.
BaselineResult solo_probing(billboard::ProbeOracle& oracle);

struct KnnParams {
  std::size_t probes_per_player = 64;  ///< R random probes each
  std::size_t neighbours = 8;          ///< k
  /// Minimum co-probed objects before a similarity estimate counts.
  std::size_t min_overlap = 4;
};

/// Random sampling + k-nearest-neighbour majority prediction.
BaselineResult sampled_knn(billboard::ProbeOracle& oracle, const KnnParams& params,
                           rng::Rng rng);

struct SvdParams {
  double sample_rate = 0.1;  ///< q: per-entry observation probability
  std::size_t rank = 4;      ///< k factors kept
  std::size_t power_iters = 40;
};

/// Non-interactive low-rank reconstruction from i.i.d. samples.
BaselineResult svd_recommender(billboard::ProbeOracle& oracle, const SvdParams& params,
                               rng::Rng rng);

/// Majority vote per object over `probes_per_player` random probes per
/// player; every player outputs the same vector.
BaselineResult global_majority(billboard::ProbeOracle& oracle, std::size_t probes_per_player,
                               rng::Rng rng);

}  // namespace tmwia::baselines
