#include "tmwia/baselines/baselines.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/linalg/dense_matrix.hpp"
#include "tmwia/rng/partition.hpp"

namespace tmwia::baselines {
namespace {

BaselineResult finish(billboard::ProbeOracle& oracle,
                      const std::vector<std::uint64_t>& before, std::uint64_t probes_before,
                      std::vector<bits::BitVector> outputs) {
  BaselineResult res;
  res.outputs = std::move(outputs);
  res.rounds = oracle.rounds_since(before);
  res.total_probes = oracle.total_invocations() - probes_before;
  return res;
}

}  // namespace

BaselineResult solo_probing(billboard::ProbeOracle& oracle) {
  const std::size_t n = oracle.players();
  const std::size_t m = oracle.objects();
  const auto before = oracle.snapshot();
  const auto probes_before = oracle.total_invocations();

  std::vector<bits::BitVector> outputs(n, bits::BitVector(m));
  engine::parallel_for(0, n, [&](std::size_t p) {
    for (std::uint32_t o = 0; o < m; ++o) {
      if (oracle.probe_resilient(static_cast<PlayerId>(p), o)) outputs[p].set(o, true);
    }
  });
  return finish(oracle, before, probes_before, std::move(outputs));
}

BaselineResult sampled_knn(billboard::ProbeOracle& oracle, const KnnParams& params,
                           rng::Rng rng) {
  const std::size_t n = oracle.players();
  const std::size_t m = oracle.objects();
  const auto before = oracle.snapshot();
  const auto probes_before = oracle.total_invocations();

  const std::size_t R = std::min(params.probes_per_player, m);

  // Phase 1: everyone samples R random objects and posts the results
  // (the billboard is the oracle's public probe record).
  std::vector<std::vector<std::uint32_t>> sampled(n);
  std::vector<bits::BitVector> sample_vals(n, bits::BitVector(m));
  std::vector<bits::BitVector> sample_mask(n, bits::BitVector(m));
  engine::parallel_for(0, n, [&](std::size_t p) {
    rng::Rng prng = rng.split(0x6a3, p);
    sampled[p] = rng::sample_without_replacement(m, R, prng);
    for (std::uint32_t o : sampled[p]) {
      sample_mask[p].set(o, true);
      if (oracle.probe_resilient(static_cast<PlayerId>(p), o)) sample_vals[p].set(o, true);
    }
  });

  // Phase 2: similarity = agreement fraction on co-probed objects;
  // prediction = majority among the k most similar raters of each
  // object (billboard reads, no probing).
  std::vector<bits::BitVector> outputs(n, bits::BitVector(m));
  engine::parallel_for(0, n, [&](std::size_t p) {
    // Rank all other players by similarity to p.
    std::vector<std::pair<double, std::uint32_t>> sims;
    sims.reserve(n - 1);
    for (std::uint32_t q = 0; q < n; ++q) {
      if (q == p) continue;
      const bits::BitVector overlap = sample_mask[p] & sample_mask[q];
      const std::size_t co = overlap.count_ones();
      if (co < params.min_overlap) continue;
      const bits::BitVector disagree = (sample_vals[p] ^ sample_vals[q]) & overlap;
      const double agree = 1.0 - static_cast<double>(disagree.count_ones()) /
                                     static_cast<double>(co);
      sims.emplace_back(agree, q);
    }
    std::sort(sims.begin(), sims.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const std::size_t k = std::min(params.neighbours, sims.size());

    for (std::uint32_t o = 0; o < m; ++o) {
      if (sample_mask[p].get(o)) {  // own probe wins
        if (sample_vals[p].get(o)) outputs[p].set(o, true);
        continue;
      }
      // Majority among the k nearest neighbours who rated o; fall back
      // to the global majority of raters of o.
      int vote = 0;
      std::size_t used = 0;
      for (const auto& [sim, q] : sims) {
        if (used >= k) break;
        if (!sample_mask[q].get(o)) continue;
        vote += sample_vals[q].get(o) ? 1 : -1;
        ++used;
      }
      if (used == 0) {
        for (std::uint32_t q = 0; q < n; ++q) {
          if (q != p && sample_mask[q].get(o)) vote += sample_vals[q].get(o) ? 1 : -1;
        }
      }
      if (vote > 0) outputs[p].set(o, true);
    }
  });
  return finish(oracle, before, probes_before, std::move(outputs));
}

BaselineResult svd_recommender(billboard::ProbeOracle& oracle, const SvdParams& params,
                               rng::Rng rng) {
  const std::size_t n = oracle.players();
  const std::size_t m = oracle.objects();
  const auto before = oracle.snapshot();
  const auto probes_before = oracle.total_invocations();

  // Observe each entry independently with probability q; encode
  // like=+1 / dislike=-1 / unseen=0, rescaled by 1/q so the expectation
  // matches the full +/-1 matrix.
  linalg::DenseMatrix sampled(n, m);
  const double scale = 1.0 / params.sample_rate;
  engine::parallel_for(0, n, [&](std::size_t p) {
    rng::Rng prng = rng.split(0x57d, p);
    for (std::uint32_t o = 0; o < m; ++o) {
      if (prng.bernoulli(params.sample_rate)) {
        const bool v = oracle.probe_resilient(static_cast<PlayerId>(p), o);
        sampled(p, o) = (v ? 1.0 : -1.0) * scale;
      }
    }
  });

  const std::size_t k = std::min({params.rank, n, m});
  const auto svd = linalg::truncated_svd(sampled, k, params.power_iters);
  const auto approx = linalg::reconstruct(svd);

  std::vector<bits::BitVector> outputs(n, bits::BitVector(m));
  for (std::size_t p = 0; p < n; ++p) {
    for (std::uint32_t o = 0; o < m; ++o) {
      if (approx(p, o) > 0.0) outputs[p].set(o, true);
    }
  }
  return finish(oracle, before, probes_before, std::move(outputs));
}

BaselineResult global_majority(billboard::ProbeOracle& oracle, std::size_t probes_per_player,
                               rng::Rng rng) {
  const std::size_t n = oracle.players();
  const std::size_t m = oracle.objects();
  const auto before = oracle.snapshot();
  const auto probes_before = oracle.total_invocations();

  const std::size_t R = std::min(probes_per_player, m);
  std::vector<std::atomic<std::int32_t>> votes(m);

  engine::parallel_for(0, n, [&](std::size_t p) {
    rng::Rng prng = rng.split(0x93a, p);
    const auto objs = rng::sample_without_replacement(m, R, prng);
    for (std::uint32_t o : objs) {
      const bool v = oracle.probe_resilient(static_cast<PlayerId>(p), o);
      votes[o].fetch_add(v ? 1 : -1, std::memory_order_relaxed);
    }
  });

  bits::BitVector consensus(m);
  for (std::uint32_t o = 0; o < m; ++o) {
    if (votes[o].load(std::memory_order_relaxed) > 0) consensus.set(o, true);
  }
  std::vector<bits::BitVector> outputs(n, consensus);
  return finish(oracle, before, probes_before, std::move(outputs));
}

}  // namespace tmwia::baselines
