#include "tmwia/io/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tmwia::io {
namespace {

constexpr char kTextMagic[] = "TMWIA/1 text";
constexpr char kBinMagic[] = "TMWIA/1 bin";

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  if (!is) throw std::runtime_error("serialize: truncated binary input");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

std::string read_line(std::istream& is, const char* what) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error(std::string("serialize: missing ") + what);
  }
  return line;
}

}  // namespace

void save_matrix_text(const matrix::PreferenceMatrix& m, std::ostream& os) {
  os << kTextMagic << '\n' << m.players() << ' ' << m.objects() << '\n';
  for (matrix::PlayerId p = 0; p < m.players(); ++p) {
    os << m.row(p).to_string() << '\n';
  }
}

matrix::PreferenceMatrix load_matrix_text(std::istream& is) {
  if (read_line(is, "header") != kTextMagic) {
    throw std::runtime_error("serialize: bad text header");
  }
  std::istringstream dims(read_line(is, "dimensions"));
  std::size_t n = 0, m = 0;
  if (!(dims >> n >> m)) throw std::runtime_error("serialize: bad dimensions");

  matrix::PreferenceMatrix out(n, m);
  for (std::size_t p = 0; p < n; ++p) {
    const auto line = read_line(is, "row");
    if (line.size() != m) throw std::runtime_error("serialize: row length mismatch");
    out.row(static_cast<matrix::PlayerId>(p)) = bits::BitVector::from_string(line);
  }
  return out;
}

void save_matrix_binary(const matrix::PreferenceMatrix& m, std::ostream& os) {
  os.write(kBinMagic, static_cast<std::streamsize>(std::strlen(kBinMagic)));
  write_u64(os, m.players());
  write_u64(os, m.objects());
  for (matrix::PlayerId p = 0; p < m.players(); ++p) {
    for (auto w : m.row(p).words()) write_u64(os, w);
  }
}

matrix::PreferenceMatrix load_matrix_binary(std::istream& is) {
  char magic[sizeof(kBinMagic) - 1];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kBinMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("serialize: bad binary magic");
  }
  const auto n = read_u64(is);
  const auto m = read_u64(is);
  matrix::PreferenceMatrix out(n, m);
  const auto words = bits::BitVector::word_count(m);
  for (std::uint64_t p = 0; p < n; ++p) {
    auto& row = out.row(static_cast<matrix::PlayerId>(p));
    for (std::size_t w = 0; w < words; ++w) {
      const auto word = read_u64(is);
      for (int b = 0; b < 64; ++b) {
        const std::size_t o = w * 64 + static_cast<std::size_t>(b);
        if (o < m && ((word >> b) & 1u)) row.set(o, true);
      }
    }
  }
  return out;
}

void save_instance(const matrix::Instance& inst, std::ostream& os) {
  save_matrix_text(inst.matrix, os);
  os << "communities " << inst.communities.size() << '\n';
  for (const auto& c : inst.communities) {
    os << "community";
    for (auto p : c) os << ' ' << p;
    os << '\n';
  }
  for (const auto& ctr : inst.centers) {
    os << "center " << ctr.to_string() << '\n';
  }
}

matrix::Instance load_instance(std::istream& is) {
  matrix::Instance inst;
  inst.matrix = load_matrix_text(is);

  std::istringstream hdr(read_line(is, "communities header"));
  std::string word;
  std::size_t count = 0;
  if (!(hdr >> word >> count) || word != "communities") {
    throw std::runtime_error("serialize: bad communities header");
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::istringstream line(read_line(is, "community"));
    if (!(line >> word) || word != "community") {
      throw std::runtime_error("serialize: bad community line");
    }
    std::vector<matrix::PlayerId> ids;
    matrix::PlayerId p = 0;
    while (line >> p) ids.push_back(p);
    inst.communities.push_back(std::move(ids));
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::istringstream line(read_line(is, "center"));
    std::string bitstr;
    if (!(line >> word >> bitstr) || word != "center") {
      throw std::runtime_error("serialize: bad center line");
    }
    inst.centers.push_back(bits::BitVector::from_string(bitstr));
  }
  return inst;
}

void save_outputs(const std::vector<bits::BitVector>& outputs, std::ostream& os) {
  os << "outputs " << outputs.size() << '\n';
  for (const auto& v : outputs) os << v.to_string() << '\n';
}

std::vector<bits::BitVector> load_outputs(std::istream& is) {
  std::istringstream hdr(read_line(is, "outputs header"));
  std::string word;
  std::size_t count = 0;
  if (!(hdr >> word >> count) || word != "outputs") {
    throw std::runtime_error("serialize: bad outputs header");
  }
  std::vector<bits::BitVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(bits::BitVector::from_string(read_line(is, "output row")));
  }
  return out;
}

void save_matrix_file(const matrix::PreferenceMatrix& m, const std::string& path,
                      bool binary) {
  std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
  if (!os) throw std::runtime_error("serialize: cannot open " + path);
  if (binary) {
    save_matrix_binary(m, os);
  } else {
    save_matrix_text(m, os);
  }
}

matrix::PreferenceMatrix load_matrix_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("serialize: cannot open " + path);
  // Sniff the magic to pick the decoder.
  char c = 0;
  std::string head;
  while (is.get(c) && c != '\n' && head.size() < 16) head.push_back(c);
  is.seekg(0);
  if (head.rfind(kBinMagic, 0) == 0) return load_matrix_binary(is);
  return load_matrix_text(is);
}

void save_instance_file(const matrix::Instance& inst, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("serialize: cannot open " + path);
  save_instance(inst, os);
}

matrix::Instance load_instance_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("serialize: cannot open " + path);
  return load_instance(is);
}

}  // namespace tmwia::io
