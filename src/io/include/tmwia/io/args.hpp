// Minimal `--key=value` / `--flag` argument parser for the bench and
// example binaries, so every experiment is parameterizable from the
// command line without a dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace tmwia::io {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Value of --name=value, if present.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;
  /// --name (no value) or --name=true/1 => true.
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
};

}  // namespace tmwia::io
