// Minimal `--key=value` / `--flag` argument parser for the bench and
// example binaries, so every experiment is parameterizable from the
// command line without a dependency — plus a declarative FlagTable
// that generates --help text and rejects unknown flags from one spec.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tmwia::io {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Value of --name=value, if present.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;
  /// --name (no value) or --name=true/1 => true.
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] const std::string& program() const { return program_; }

  /// Every --key seen on the command line (sorted).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
};

/// One row of a FlagTable.
struct FlagSpec {
  std::string_view name;        ///< flag name, without the leading --
  std::string_view value_hint;  ///< e.g. "FILE", "N"; empty = boolean flag
  std::string_view help;        ///< one-line description
  /// Comma-separated subcommands the flag applies to; empty = all.
  std::string_view commands = {};
};

/// The single source of truth for a binary's flags: renders --help and
/// validates parsed Args against it, so the usage text can never drift
/// from what the parser accepts.
class FlagTable {
 public:
  FlagTable(std::string_view usage_head, std::initializer_list<FlagSpec> flags);

  /// Generated help text: the usage head, then one aligned row per
  /// flag applicable to `command` (empty = every flag, annotated with
  /// its subcommand list).
  [[nodiscard]] std::string help(std::string_view command = {}) const;

  /// Throws std::invalid_argument naming the first flag in `args` that
  /// the table does not declare for `command`.
  void validate(const Args& args, std::string_view command = {}) const;

  [[nodiscard]] bool knows(std::string_view name, std::string_view command = {}) const;

 private:
  std::string usage_head_;
  std::vector<FlagSpec> flags_;
};

}  // namespace tmwia::io
