#pragma once
// Crash-consistent durable artifacts: a little-endian wire format
// (BinWriter/BinReader), an atomic-write helper (tmp + fsync + rename),
// and a versioned, CRC-guarded sectioned container (Checkpoint).
//
// The container is the only sanctioned on-disk form for run snapshots:
// every section carries its own CRC32 and the file ends with a footer
// CRC over everything before it, so a torn write (the process may be
// SIGKILLed at any byte) is always *rejected whole* — load() either
// returns the exact bytes that were saved or throws CheckpointError.
// Partial loads do not exist.
//
// File layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "TMWIACP1"
//   8       4     format version (u32, currently 1)
//   12      4     section count (u32)
//   --- per section ---
//           4     name length (u32)
//           *     name bytes
//           8     payload length (u64)
//           4     payload CRC32
//           *     payload bytes
//   --- footer ---
//           4     CRC32 over every preceding byte
//
// Durable writes outside io:: are a lint finding (durable-write rule):
// route them through atomic_write_file so a crash never leaves a
// half-written artifact at the destination path.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/bits/bitvector.hpp"

namespace tmwia::io {

// Thrown on any structural problem with a checkpoint artifact:
// truncation, bad magic, unsupported version, CRC mismatch, missing
// section, or a reader running past the end of a section payload.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);
  void bitvec(const bits::BitVector& v);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class BinReader {
 public:
  // The reader borrows `bytes`; keep the buffer alive while reading.
  explicit BinReader(std::string_view bytes, std::string context = "checkpoint")
      : buf_(bytes), context_(std::move(context)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  bits::BitVector bitvec();

  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  const char* need(std::size_t n);  // throws CheckpointError on truncation

  std::string_view buf_;
  std::size_t pos_ = 0;
  std::string context_;
};

// ---------------------------------------------------------------------------
// Atomic file replacement
// ---------------------------------------------------------------------------

// Write `bytes` to `path` crash-atomically: the bytes go to a tmp file
// in the same directory, are fsync'd, and the tmp is rename(2)'d over
// `path`. Readers observe either the old file or the complete new one,
// never a prefix. Throws std::runtime_error on I/O failure (the tmp
// file is removed on the error path).
void atomic_write_file(const std::string& path, std::string_view bytes);

// ---------------------------------------------------------------------------
// Sectioned container
// ---------------------------------------------------------------------------

class Checkpoint {
 public:
  static constexpr std::uint32_t kVersion = 1;

  void set(const std::string& name, std::string bytes);
  bool has(const std::string& name) const;
  // Throws CheckpointError naming the section when absent.
  const std::string& require(const std::string& name) const;
  // Section names in sorted order (the on-disk order).
  std::vector<std::string> names() const;

  // Serialize to the container format / write it atomically to disk.
  std::string encode() const;
  void save(const std::string& path) const;

  // Parse/load; throws CheckpointError on any corruption.
  static Checkpoint decode(std::string_view bytes);
  static Checkpoint load(const std::string& path);

 private:
  std::map<std::string, std::string> sections_;
};

}  // namespace tmwia::io
