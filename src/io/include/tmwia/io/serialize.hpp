// Serialization of the library's value types: preference matrices,
// generated instances (matrix + planted community structure) and result
// vectors. Two interchangeable encodings:
//
//  * text  — line-oriented, human-inspectable ("TMWIA/1 text" header,
//            one '0'/'1' row per line), diff-friendly for goldens;
//  * binary — "TMWIA/1 bin" magic + little-endian u64 dims + packed row
//             words; loads back bit-exact.
//
// Both round-trip exactly; loaders validate headers and shapes and
// throw std::runtime_error on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/matrix/preference_matrix.hpp"

namespace tmwia::io {

// --- preference matrices -------------------------------------------------

void save_matrix_text(const matrix::PreferenceMatrix& m, std::ostream& os);
matrix::PreferenceMatrix load_matrix_text(std::istream& is);

void save_matrix_binary(const matrix::PreferenceMatrix& m, std::ostream& os);
matrix::PreferenceMatrix load_matrix_binary(std::istream& is);

// --- generated instances (matrix + community structure) ------------------

/// Text format: the matrix section followed by one line per community
/// ("community <id...>" ) and per center ("center <bits>").
void save_instance(const matrix::Instance& inst, std::ostream& os);
matrix::Instance load_instance(std::istream& is);

// --- output vectors -------------------------------------------------------

/// One row per player, text bits.
void save_outputs(const std::vector<bits::BitVector>& outputs, std::ostream& os);
std::vector<bits::BitVector> load_outputs(std::istream& is);

// --- file helpers ----------------------------------------------------------

void save_matrix_file(const matrix::PreferenceMatrix& m, const std::string& path,
                      bool binary = false);
matrix::PreferenceMatrix load_matrix_file(const std::string& path);
void save_instance_file(const matrix::Instance& inst, const std::string& path);
matrix::Instance load_instance_file(const std::string& path);

}  // namespace tmwia::io
