// FlatJson: a tiny parser/renderer for one-line *flat* JSON objects —
// string / number / bool / null values only, no nesting.
//
// This is the wire format of the serve request stream (one request per
// line, jq-able) and the mirror of Args for JSONL input: parse a line
// once, then read typed fields with defaults. Like io::FlagTable, the
// caller validates the parsed keys against a declarative per-op table
// and rejects anything unknown, so the accepted request grammar can
// never drift from what the handlers read.
//
// Deliberately NOT a general JSON parser: nested objects/arrays are a
// parse error. The library's emitted JSON (metrics snapshots,
// RunReport) stays write-only; this covers the one place we *read*
// JSON, with ~100 lines and no dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tmwia::io {

class FlatJson {
 public:
  /// Parse one flat JSON object. Throws std::invalid_argument (with the
  /// offending position/key) on malformed input, nesting, or duplicate
  /// keys.
  static FlatJson parse(std::string_view text);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed accessors with defaults. A present field of the wrong type
  /// throws std::invalid_argument naming the key.
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Every key present (sorted), for unknown-field validation.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kNull };
  struct Value {
    Kind kind;
    std::string text;  ///< unescaped string / number token / "true"/"false"
  };
  const Value* find(const std::string& key) const;

  std::map<std::string, Value> kv_;
};

/// Escape `s` for embedding in a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

}  // namespace tmwia::io
