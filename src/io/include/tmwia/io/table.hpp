// Fixed-width table printing for the bench harnesses: each experiment
// binary emits the rows of its "paper table" through this type, plus an
// optional CSV mirror for plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace tmwia::io {

/// A cell is a string, an integer, or a double (printed with fixed
/// precision chosen per column).
using Cell = std::variant<std::string, long long, double>;

/// Column spec: header text plus formatting for double cells.
struct Column {
  std::string header;
  int precision = 3;  // for double cells
};

/// Accumulates rows, then renders an aligned ASCII table and/or CSV.
class Table {
 public:
  explicit Table(std::string title, std::vector<Column> columns);

  /// Append one row; must have exactly one cell per column.
  void add_row(std::vector<Cell> cells);

  /// Render the aligned table (title, header rule, rows).
  void print(std::ostream& os) const;

  /// Write as CSV (header row then data rows); no title line.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }

 private:
  [[nodiscard]] std::string format_cell(const Cell& c, std::size_t col) const;

  std::string title_;
  std::vector<Column> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace tmwia::io
