#include "tmwia/io/flat_json.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace tmwia::io {
namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("flat json: " + what + " at offset " + std::to_string(pos));
}

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) ++i;
}

std::string parse_string(std::string_view s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') fail(i, "expected '\"'");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) fail(i, "truncated escape");
      const char e = s[i++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (i + 4 > s.size()) fail(i, "truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(i, "bad \\u escape");
          }
          // The request grammar is ASCII; anything else round-trips as
          // UTF-8 from the raw bytes, so only BMP<128 escapes decode.
          if (code > 0x7f) fail(i, "non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail(i, "unknown escape");
      }
    } else {
      out.push_back(c);
    }
  }
  if (i >= s.size()) fail(i, "unterminated string");
  ++i;  // closing quote
  return out;
}

}  // namespace

FlatJson FlatJson::parse(std::string_view text) {
  FlatJson out;
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') fail(i, "expected '{'");
  ++i;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(text, i);
      const std::string key = parse_string(text, i);
      skip_ws(text, i);
      if (i >= text.size() || text[i] != ':') fail(i, "expected ':' after key \"" + key + '"');
      ++i;
      skip_ws(text, i);
      if (i >= text.size()) fail(i, "missing value for key \"" + key + '"');
      Value v;
      const char c = text[i];
      if (c == '"') {
        v = {Kind::kString, parse_string(text, i)};
      } else if (c == '{' || c == '[') {
        fail(i, "nested value for key \"" + key + "\" (flat objects only)");
      } else if (text.substr(i, 4) == "true") {
        v = {Kind::kBool, "true"};
        i += 4;
      } else if (text.substr(i, 5) == "false") {
        v = {Kind::kBool, "false"};
        i += 5;
      } else if (text.substr(i, 4) == "null") {
        v = {Kind::kNull, ""};
        i += 4;
      } else {
        const std::size_t start = i;
        while (i < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[i])) != 0 || text[i] == '-' ||
                text[i] == '+' || text[i] == '.' || text[i] == 'e' || text[i] == 'E')) {
          ++i;
        }
        if (i == start) fail(i, "bad value for key \"" + key + '"');
        v = {Kind::kNumber, std::string(text.substr(start, i - start))};
      }
      if (!out.kv_.emplace(key, std::move(v)).second) {
        throw std::invalid_argument("flat json: duplicate key \"" + key + '"');
      }
      skip_ws(text, i);
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      fail(i, "expected ',' or '}'");
    }
  }
  skip_ws(text, i);
  if (i != text.size()) fail(i, "trailing bytes after object");
  return out;
}

const FlatJson::Value* FlatJson::find(const std::string& key) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? nullptr : &it->second;
}

bool FlatJson::has(const std::string& key) const { return find(key) != nullptr; }

std::string FlatJson::get_string(const std::string& key, const std::string& def) const {
  const auto* v = find(key);
  if (v == nullptr || v->kind == Kind::kNull) return def;
  if (v->kind != Kind::kString) {
    throw std::invalid_argument("flat json: field \"" + key + "\" is not a string");
  }
  return v->text;
}

std::int64_t FlatJson::get_int(const std::string& key, std::int64_t def) const {
  const auto* v = find(key);
  if (v == nullptr || v->kind == Kind::kNull) return def;
  if (v->kind != Kind::kNumber) {
    throw std::invalid_argument("flat json: field \"" + key + "\" is not a number");
  }
  std::size_t pos = 0;
  const auto parsed = std::stoll(v->text, &pos);
  if (pos != v->text.size()) {
    throw std::invalid_argument("flat json: field \"" + key + "\" is not an integer");
  }
  return parsed;
}

std::uint64_t FlatJson::get_u64(const std::string& key, std::uint64_t def) const {
  const auto* v = find(key);
  if (v == nullptr || v->kind == Kind::kNull) return def;
  if (v->kind != Kind::kNumber) {
    throw std::invalid_argument("flat json: field \"" + key + "\" is not a number");
  }
  std::size_t pos = 0;
  const auto parsed = std::stoull(v->text, &pos);
  if (pos != v->text.size()) {
    throw std::invalid_argument("flat json: field \"" + key + "\" is not an integer");
  }
  return parsed;
}

double FlatJson::get_double(const std::string& key, double def) const {
  const auto* v = find(key);
  if (v == nullptr || v->kind == Kind::kNull) return def;
  if (v->kind != Kind::kNumber) {
    throw std::invalid_argument("flat json: field \"" + key + "\" is not a number");
  }
  return std::stod(v->text);
}

bool FlatJson::get_bool(const std::string& key, bool def) const {
  const auto* v = find(key);
  if (v == nullptr || v->kind == Kind::kNull) return def;
  if (v->kind != Kind::kBool) {
    throw std::invalid_argument("flat json: field \"" + key + "\" is not a bool");
  }
  return v->text == "true";
}

std::vector<std::string> FlatJson::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.push_back(k);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace tmwia::io
