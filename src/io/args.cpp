#include "tmwia/io/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace tmwia::io {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw std::invalid_argument("Args: expected --key[=value], got '" + a + "'");
    }
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq == std::string::npos) {
      kv_[a] = "true";
    } else {
      kv_[a.substr(0, eq)] = a.substr(eq + 1);
    }
  }
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  const auto v = get(name);
  return v ? std::stoll(*v) : def;
}

double Args::get_double(const std::string& name, double def) const {
  const auto v = get(name);
  return v ? std::stod(*v) : def;
}

std::uint64_t Args::get_seed(const std::string& name, std::uint64_t def) const {
  const auto v = get(name);
  return v ? std::stoull(*v) : def;
}

bool Args::get_flag(const std::string& name) const {
  const auto v = get(name);
  return v && (*v == "true" || *v == "1");
}

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, v] : kv_) out.push_back(k);
  return out;
}

namespace {

/// Does the comma-separated `commands` list contain `command`?
bool applies_to(std::string_view commands, std::string_view command) {
  if (commands.empty() || command.empty()) return true;
  std::size_t pos = 0;
  while (pos <= commands.size()) {
    const auto comma = commands.find(',', pos);
    const auto token = commands.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    if (token == command) return true;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

FlagTable::FlagTable(std::string_view usage_head, std::initializer_list<FlagSpec> flags)
    : usage_head_(usage_head), flags_(flags) {}

std::string FlagTable::help(std::string_view command) const {
  std::string out(usage_head_);
  if (!out.empty() && out.back() != '\n') out.push_back('\n');

  std::size_t width = 0;
  auto rendered = [](const FlagSpec& f) {
    std::string s = "--";
    s += f.name;
    if (!f.value_hint.empty()) {
      s += "=";
      s += f.value_hint;
    }
    return s;
  };
  for (const auto& f : flags_) {
    if (!applies_to(f.commands, command)) continue;
    width = std::max(width, rendered(f).size());
  }
  for (const auto& f : flags_) {
    if (!applies_to(f.commands, command)) continue;
    std::string row = "  " + rendered(f);
    row.append(width + 2 - (row.size() - 2), ' ');
    row += f.help;
    if (command.empty() && !f.commands.empty()) {
      row += "  [";
      row += f.commands;
      row += "]";
    }
    row.push_back('\n');
    out += row;
  }
  return out;
}

bool FlagTable::knows(std::string_view name, std::string_view command) const {
  for (const auto& f : flags_) {
    if (f.name == name && applies_to(f.commands, command)) return true;
  }
  return false;
}

void FlagTable::validate(const Args& args, std::string_view command) const {
  for (const auto& key : args.keys()) {
    if (!knows(key, command)) {
      std::string msg = "unknown flag --" + key;
      if (!command.empty()) {
        msg += " for '";
        msg += command;
        msg += "'";
      }
      msg += " (see --help)";
      throw std::invalid_argument(msg);
    }
  }
}

}  // namespace tmwia::io
