#include "tmwia/io/args.hpp"

#include <stdexcept>

namespace tmwia::io {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw std::invalid_argument("Args: expected --key[=value], got '" + a + "'");
    }
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq == std::string::npos) {
      kv_[a] = "true";
    } else {
      kv_[a.substr(0, eq)] = a.substr(eq + 1);
    }
  }
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  const auto v = get(name);
  return v ? std::stoll(*v) : def;
}

double Args::get_double(const std::string& name, double def) const {
  const auto v = get(name);
  return v ? std::stod(*v) : def;
}

std::uint64_t Args::get_seed(const std::string& name, std::uint64_t def) const {
  const auto v = get(name);
  return v ? std::stoull(*v) : def;
}

bool Args::get_flag(const std::string& name) const {
  const auto v = get(name);
  return v && (*v == "true" || *v == "1");
}

}  // namespace tmwia::io
