#include "tmwia/io/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tmwia::io {

Table::Table(std::string title, std::vector<Column> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell count != column count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c, std::size_t col) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(columns_[col].precision) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].header.size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      r[c] = format_cell(row[c], c);
      widths[c] = std::max(widths[c], r[c].size());
    }
    rendered.push_back(std::move(r));
  }

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (const auto& col : columns_) headers.push_back(col.header);
  emit_row(headers);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rendered) emit_row(r);
  os.flush();
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << columns_[c].header;
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c == 0 ? "" : ",") << format_cell(row[c], c);
    }
    os << '\n';
  }
}

}  // namespace tmwia::io
