#include "tmwia/io/checkpoint.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace tmwia::io {

namespace {

constexpr char kMagic[8] = {'T', 'M', 'W', 'I', 'A', 'C', 'P', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[i] = c;
  }
  return table;
}

[[noreturn]] void fail(const std::string& what) { throw CheckpointError(what); }

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// BinWriter / BinReader
// ---------------------------------------------------------------------------

void BinWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void BinWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void BinWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void BinWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

void BinWriter::bitvec(const bits::BitVector& v) {
  u64(v.size());
  for (const auto w : v.words()) u64(w);
}

const char* BinReader::need(std::size_t n) {
  if (buf_.size() - pos_ < n) {
    fail(context_ + ": truncated (need " + std::to_string(n) + " bytes, have " +
         std::to_string(buf_.size() - pos_) + ")");
  }
  const char* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t BinReader::u8() { return static_cast<std::uint8_t>(*need(1)); }

std::uint32_t BinReader::u32() {
  const auto* p = reinterpret_cast<const unsigned char*>(need(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t BinReader::u64() {
  const auto* p = reinterpret_cast<const unsigned char*>(need(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double BinReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string BinReader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) fail(context_ + ": truncated string of length " + std::to_string(n));
  return std::string(need(static_cast<std::size_t>(n)), static_cast<std::size_t>(n));
}

bits::BitVector BinReader::bitvec() {
  const std::uint64_t n = u64();
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  if (words * 8 > remaining()) fail(context_ + ": truncated bit vector of size " + std::to_string(n));
  bits::BitVector v(static_cast<std::size_t>(n));
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t word = u64();
    for (std::size_t b = 0; b < 64; ++b) {
      const std::size_t i = w * 64 + b;
      if (i >= v.size()) break;
      if ((word >> b) & 1u) v.set(i, true);
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// atomic_write_file
// ---------------------------------------------------------------------------

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const auto slash = path.find_last_of('/');
  const std::string dir = (slash == std::string::npos) ? "." : path.substr(0, slash);
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("atomic_write_file: cannot create " + tmp + ": " +
                             std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("atomic_write_file: write to " + tmp + " failed: " +
                               std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  // The data must be durable *before* the rename publishes it, or a
  // crash could expose a renamed-but-empty file.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("atomic_write_file: fsync/close of " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw std::runtime_error("atomic_write_file: rename to " + path + " failed: " +
                             std::strerror(err));
  }
  // Best-effort directory sync so the rename itself is durable.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint container
// ---------------------------------------------------------------------------

void Checkpoint::set(const std::string& name, std::string bytes) {
  sections_[name] = std::move(bytes);
}

bool Checkpoint::has(const std::string& name) const { return sections_.count(name) > 0; }

const std::string& Checkpoint::require(const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) fail("checkpoint: missing section '" + name + "'");
  return it->second;
}

std::vector<std::string> Checkpoint::names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, bytes] : sections_) out.push_back(name);
  return out;
}

std::string Checkpoint::encode() const {
  std::string body(kMagic, sizeof(kMagic));
  {
    BinWriter w;
    w.u32(kVersion);
    w.u32(static_cast<std::uint32_t>(sections_.size()));
    body.append(w.bytes());
  }
  for (const auto& [name, bytes] : sections_) {
    BinWriter w;
    w.u32(static_cast<std::uint32_t>(name.size()));
    body.append(w.bytes());
    body.append(name);
    BinWriter tail;
    tail.u64(bytes.size());
    tail.u32(crc32(bytes.data(), bytes.size()));
    body.append(tail.bytes());
    body.append(bytes);
  }
  BinWriter footer;
  footer.u32(crc32(body.data(), body.size()));
  body.append(footer.bytes());
  return body;
}

void Checkpoint::save(const std::string& path) const { atomic_write_file(path, encode()); }

Checkpoint Checkpoint::decode(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 4 + 4) fail("checkpoint: file too short");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    fail("checkpoint: bad magic (not a TMWIACP1 file)");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  BinReader footer(bytes.substr(bytes.size() - 4), "checkpoint footer");
  const std::uint32_t want = footer.u32();
  const std::uint32_t got = crc32(body.data(), body.size());
  if (want != got) fail("checkpoint: file CRC mismatch (corrupt or torn write)");

  BinReader r(body.substr(sizeof(kMagic)), "checkpoint header");
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    fail("checkpoint: unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kVersion) + ")");
  }
  const std::uint32_t count = r.u32();
  Checkpoint cp;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = r.u32();
    if (name_len > r.remaining()) fail("checkpoint: truncated section name");
    std::string name;
    for (std::uint32_t k = 0; k < name_len; ++k) name.push_back(static_cast<char>(r.u8()));
    const std::uint64_t payload_len = r.u64();
    const std::uint32_t payload_crc = r.u32();
    if (payload_len > r.remaining()) {
      fail("checkpoint: truncated section '" + name + "'");
    }
    std::string payload;
    payload.reserve(static_cast<std::size_t>(payload_len));
    for (std::uint64_t k = 0; k < payload_len; ++k) payload.push_back(static_cast<char>(r.u8()));
    if (crc32(payload.data(), payload.size()) != payload_crc) {
      fail("checkpoint: section '" + name + "' CRC mismatch");
    }
    cp.sections_[name] = std::move(payload);
  }
  if (!r.at_end()) fail("checkpoint: trailing garbage after sections");
  return cp;
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) fail("checkpoint: cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) fail("checkpoint: read error on " + path);
  try {
    return decode(bytes);
  } catch (const CheckpointError& e) {
    fail(std::string(e.what()) + " [" + path + "]");
  }
}

}  // namespace tmwia::io
