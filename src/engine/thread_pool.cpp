#include "tmwia/engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace tmwia::engine {
namespace {

// tmwia-lint: allow(nonconst-global) registered singleton: global pool config
std::atomic<std::size_t> g_desired_threads{0};
// tmwia-lint: allow(nonconst-global) registered singleton: global pool latch
std::atomic<bool> g_global_started{false};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(g_desired_threads.load(std::memory_order_relaxed));
  g_global_started.store(true, std::memory_order_release);
  return pool;
}

bool ThreadPool::global_started() {
  return g_global_started.load(std::memory_order_acquire);
}

bool set_global_threads(std::size_t threads) {
  if (ThreadPool::global_started()) return false;
  g_desired_threads.store(threads, std::memory_order_relaxed);
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void detail::parallel_for_chunks(std::size_t begin, std::size_t end,
                                 const std::function<void(std::size_t)>& body,
                                 std::size_t grain) {
  const std::size_t n = end - begin;
  auto& pool = ThreadPool::global();
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex err_mu;

  const std::size_t chunks = (n + grain - 1) / grain;
  std::atomic<std::size_t> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    pool.submit([&, lo, hi] {
      try {
        if (!failed.load(std::memory_order_relaxed)) {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == chunks) {
        std::lock_guard<std::mutex> lk(done_mu);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&] { return done.load() == chunks; });
  if (failed.load() && first_error) std::rethrow_exception(first_error);
}

}  // namespace tmwia::engine
