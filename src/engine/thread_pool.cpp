#include "tmwia/engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "tmwia/bits/kernels.hpp"
#include "tmwia/obs/profile.hpp"

namespace tmwia::engine {
namespace {

// tmwia-lint: allow(nonconst-global) registered singleton: global pool config
std::atomic<std::size_t> g_desired_threads{0};
// tmwia-lint: allow(nonconst-global) registered singleton: global pool latch
std::atomic<bool> g_global_started{false};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lk(mu_);
  while (in_flight_ != 0) cv_idle_.wait(lk);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(g_desired_threads.load(std::memory_order_relaxed));
  g_global_started.store(true, std::memory_order_release);
  return pool;
}

bool ThreadPool::global_started() {
  return g_global_started.load(std::memory_order_acquire);
}

bool set_global_threads(std::size_t threads) {
  if (ThreadPool::global_started()) return false;
  g_desired_threads.store(threads, std::memory_order_relaxed);
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(lk);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lk(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void detail::parallel_for_chunks(std::size_t begin, std::size_t end,
                                 const std::function<void(std::size_t)>& body,
                                 std::size_t grain) {
  const std::size_t n = end - begin;
  auto& pool = ThreadPool::global();
  // Backend reselection during a phase would hand different workers
  // different kernel vtables; the gate turns that misuse into a loud
  // error at the set_backend call site.
  const bits::kernels::ParallelPhaseGuard kernel_gate;

  const std::size_t chunks = (n + grain - 1) / grain;
  // All join state lives behind one annotated mutex; the earlier
  // split (error mutex + bare-atomic completion count read outside any
  // lock) is exactly the shape the thread-safety analysis rejects.
  struct Join {
    Mutex mu;
    CondVar cv;
    std::size_t done TMWIA_GUARDED_BY(mu) = 0;
    std::exception_ptr first_error TMWIA_GUARDED_BY(mu);
  } join;
  std::atomic<bool> failed{false};  // advisory skip flag only

  // Ambient profile zone: costs deposited inside parallelized player
  // loops attribute to the phase that spawned them, not to an
  // anonymous worker root. Workers swap the caller's zone in for the
  // chunk and restore their own afterwards.
  const obs::Profiler::ZoneId ambient_zone = obs::Profiler::current_zone();

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    pool.submit([&, lo, hi, ambient_zone] {
      const obs::Profiler::ZoneId prev_zone = obs::Profiler::swap_current_zone(ambient_zone);
      std::exception_ptr err;
      try {
        if (!failed.load(std::memory_order_relaxed)) {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        err = std::current_exception();
      }
      obs::Profiler::swap_current_zone(prev_zone);
      MutexLock lk(join.mu);
      if (err && !join.first_error) join.first_error = err;
      if (++join.done == chunks) join.cv.notify_all();
    });
  }

  MutexLock lk(join.mu);
  while (join.done != chunks) join.cv.wait(lk);
  if (join.first_error) std::rethrow_exception(join.first_error);
}

}  // namespace tmwia::engine
