#include "tmwia/engine/supervisor.hpp"

#include <algorithm>
#include <utility>

#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/trace.hpp"

namespace tmwia::engine {
namespace {

struct SupervisorMetrics {
  obs::MetricsRegistry::Counter strikes =
      obs::MetricsRegistry::global().counter("supervisor.strikes");
  obs::MetricsRegistry::Counter quarantined =
      obs::MetricsRegistry::global().counter("supervisor.quarantined");
  obs::MetricsRegistry::Counter benched =
      obs::MetricsRegistry::global().counter("supervisor.benched_rounds");
  obs::MetricsRegistry::Counter unmet =
      obs::MetricsRegistry::global().counter("supervisor.unmet_phases");
};

const SupervisorMetrics& supervisor_metrics() {
  static const SupervisorMetrics m;
  return m;
}

/// The strike/backoff/quarantine decorator. Catches everything the
/// inner strategy throws *before* the scheduler's own catch would mark
/// the player permanently failed, and converts the failure into idle
/// rounds. Backoff windows are [strike round + 1, strike round + 1 +
/// bench) on the shared round clock — deterministic, no wall time.
class SupervisedStrategy final : public billboard::PlayerStrategy {
 public:
  SupervisedStrategy(std::unique_ptr<billboard::PlayerStrategy> inner,
                     const SupervisorConfig& cfg)
      : inner_(std::move(inner)), cfg_(&cfg) {}

  std::optional<billboard::ObjectId> next_probe(const billboard::RoundView& view) override {
    last_round_ = view.round();
    if (quarantined_) return std::nullopt;
    if (view.round() < bench_until_) {
      ++benched_rounds_;
      return std::nullopt;
    }
    try {
      return inner_->next_probe(view);
    } catch (...) {
      strike();
      return std::nullopt;
    }
  }

  void on_result(billboard::ObjectId o, bool value) override {
    if (quarantined_) return;
    try {
      inner_->on_result(o, value);
    } catch (...) {
      strike();
    }
  }

  std::vector<billboard::PendingPost> posts() override {
    if (quarantined_) return {};
    try {
      return inner_->posts();
    } catch (...) {
      strike();
      return {};
    }
  }

  [[nodiscard]] bool done() const override {
    // A quarantined strategy is "done" so it cannot stall the run; the
    // degradation is reported through SupervisorResult instead.
    if (quarantined_) return true;
    try {
      return inner_->done();
    } catch (...) {
      strike();  // strike state is mutable: done() must stay const
      return quarantined_;
    }
  }

  [[nodiscard]] bool quarantined() const { return quarantined_; }
  [[nodiscard]] std::uint64_t strikes() const { return strikes_; }
  [[nodiscard]] std::uint64_t benched_rounds() const { return benched_rounds_; }

  std::unique_ptr<billboard::PlayerStrategy> release_inner() { return std::move(inner_); }

 private:
  void strike() const {
    ++strikes_;
    supervisor_metrics().strikes.inc();
    if (strikes_ >= cfg_->max_strikes) {
      quarantined_ = true;
      return;
    }
    // Deterministic exponential backoff in round-clock units: base,
    // 2*base, 4*base, ... capped.
    const std::size_t shift = static_cast<std::size_t>(strikes_) - 1;
    std::size_t bench = cfg_->backoff_cap;
    if (shift < 8 * sizeof(std::size_t) &&
        (cfg_->backoff_base << shift) >> shift == cfg_->backoff_base) {
      bench = std::min(cfg_->backoff_base << shift, cfg_->backoff_cap);
    }
    bench_until_ = last_round_ + 1 + bench;
  }

  std::unique_ptr<billboard::PlayerStrategy> inner_;
  const SupervisorConfig* cfg_;
  // Mutable: done() is const but a throwing done() still earns a strike.
  mutable std::uint64_t strikes_ = 0;
  mutable std::uint64_t benched_rounds_ = 0;
  mutable std::size_t bench_until_ = 0;
  std::size_t last_round_ = 0;
  mutable bool quarantined_ = false;
};

}  // namespace

Supervisor::Supervisor(billboard::ProbeOracle& oracle, SupervisorConfig cfg)
    : oracle_(&oracle), cfg_(cfg), scheduler_(oracle) {}

SupervisorResult Supervisor::run(
    std::vector<std::unique_ptr<billboard::PlayerStrategy>>& strategies,
    const std::vector<PhaseSpec>& phases) {
  obs::Span span(obs::tracer(), "supervisor.run",
                 {{"players", strategies.size()}, {"phases", phases.size()}});
  const auto& metrics = supervisor_metrics();

  // Wrap every live strategy; handles keep typed access for the
  // post-run harvest (ownership returns to the caller on exit).
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> wrapped(strategies.size());
  std::vector<SupervisedStrategy*> handles(strategies.size(), nullptr);
  for (std::size_t p = 0; p < strategies.size(); ++p) {
    if (!strategies[p]) continue;
    auto sup = std::make_unique<SupervisedStrategy>(std::move(strategies[p]), cfg_);
    handles[p] = sup.get();
    wrapped[p] = std::move(sup);
  }

  SupervisorResult out;
  const auto probes_at_entry = oracle_->total_invocations();
  std::uint64_t cum_rounds = 0;
  for (const auto& phase : phases) {
    auto res = scheduler_.run(wrapped, phase.round_budget);
    const bool met = res.all_done;
    if (!met) {
      out.unmet_phases.push_back(phase.label);
      metrics.unmet.inc();
    }
    const bool stop = res.all_done;
    cum_rounds += res.rounds;
    out.phases.push_back({phase.label, std::move(res), met, cum_rounds,
                          oracle_->total_invocations() - probes_at_entry});
    if (stop) break;  // later deadlines are moot once everyone is done
  }

  auto* injector = oracle_->fault_injector();
  for (std::size_t p = 0; p < wrapped.size(); ++p) {
    auto* h = handles[p];
    if (h == nullptr) continue;
    out.strikes += h->strikes();
    out.benched_rounds += h->benched_rounds();
    if (h->quarantined()) {
      out.quarantined.push_back(static_cast<billboard::PlayerId>(p));
      metrics.quarantined.inc();
      if (injector != nullptr) {
        // Route the player through the existing degradation machinery:
        // excluded from votes, re-adopted by the orphan-rescue path.
        injector->mark_degraded(static_cast<billboard::PlayerId>(p));
        injector->note_orphan(static_cast<billboard::PlayerId>(p));
      }
    }
    strategies[p] = h->release_inner();
  }
  metrics.benched.add(out.benched_rounds);
  std::sort(out.quarantined.begin(), out.quarantined.end());

  span.end({{"strikes", out.strikes},
            {"quarantined", out.quarantined.size()},
            {"unmet_phases", out.unmet_phases.size()}});
  return out;
}

}  // namespace tmwia::engine
