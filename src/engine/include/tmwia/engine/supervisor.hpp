// Supervisor: supervised execution of round strategies with deadlines,
// backoff, and quarantine — the run degrades instead of aborting.
//
// The RoundScheduler already isolates a throwing strategy (it is marked
// failed and skipped forever). The Supervisor adds a second-chance
// policy in front of that: each strategy is wrapped in a decorator that
// catches its exceptions, benches the player for a deterministic
// exponential backoff (measured in lockstep rounds — never wall time),
// and only quarantines it for good after `max_strikes` failures. A
// quarantined player reports done() so it cannot stall the run; its
// community is later re-adopted through the existing orphan-rescue path
// (core::rescue_orphans via FaultInjector::note_orphan).
//
// Execution is phased: each PhaseSpec gives the whole strategy set a
// round budget (a deadline). A phase whose budget is exhausted before
// every strategy is done is recorded as unmet; the run continues into
// the next phase regardless. The final SupervisorResult — quarantined
// players, unmet phases — feeds core::RunReport::degraded, so a
// supervised run always produces a (possibly partial) report.
//
// Determinism: backoff lengths depend only on (strike count, config),
// bench windows on the shared round clock, and phases reuse one
// scheduler via its monotone round clock (resume_at/next_round), so a
// supervised run replays byte-identically under the flight recorder.
//
// Thread safety: like the RoundScheduler it drives, a Supervisor is
// single-threaded by contract (members unguarded, one driving thread);
// parallelism lives below it, inside phases.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tmwia/billboard/round_scheduler.hpp"

namespace tmwia::engine {

/// Retry/quarantine policy knobs. All units are lockstep rounds.
struct SupervisorConfig {
  /// Strikes (caught exceptions) before a strategy is quarantined.
  std::size_t max_strikes = 3;
  /// Rounds benched after the first strike; doubles per strike.
  std::size_t backoff_base = 1;
  /// Upper bound on one bench window.
  std::size_t backoff_cap = 64;
};

/// One deadline segment: the whole strategy set should be done within
/// `round_budget` lockstep rounds of the phase starting.
struct PhaseSpec {
  std::string label;
  std::size_t round_budget = 0;
};

/// What one phase did.
struct PhaseOutcome {
  std::string label;
  billboard::ScheduleResult result;
  bool met_deadline = false;  ///< every strategy done within the budget
  /// Cumulative cost at the end of the phase (rounds across phases,
  /// oracle invocations since run() started) — timeline material.
  std::uint64_t cum_rounds = 0;
  std::uint64_t cum_probes = 0;
};

struct SupervisorResult {
  std::vector<PhaseOutcome> phases;  ///< phases actually run (stops when all done)
  /// Players whose strategy struck out (sorted ascending). Their
  /// inner strategy is never called again.
  std::vector<billboard::PlayerId> quarantined;
  /// Labels of phases that exhausted their budget before completion.
  std::vector<std::string> unmet_phases;
  std::uint64_t strikes = 0;         ///< exceptions absorbed across all players
  std::uint64_t benched_rounds = 0;  ///< player-rounds idled in backoff windows
  /// The run gave something up (mirrors core::DegradedInfo::empty()).
  [[nodiscard]] bool degraded() const {
    return !quarantined.empty() || !unmet_phases.empty();
  }
};

/// Drives one strategy per player through the phase deadlines, wrapping
/// each in the strike/backoff/quarantine decorator. The caller's
/// strategy vector is intact after run() returns (ownership is borrowed
/// for the duration of the call).
class Supervisor {
 public:
  explicit Supervisor(billboard::ProbeOracle& oracle, SupervisorConfig cfg = {});

  SupervisorResult run(std::vector<std::unique_ptr<billboard::PlayerStrategy>>& strategies,
                       const std::vector<PhaseSpec>& phases);

  /// The underlying scheduler's vector-post surface.
  [[nodiscard]] const billboard::Billboard& board() const { return scheduler_.board(); }

  /// The shared monotone round clock (see RoundScheduler::next_round).
  [[nodiscard]] std::size_t next_round() const { return scheduler_.next_round(); }

 private:
  billboard::ProbeOracle* oracle_;
  SupervisorConfig cfg_;
  billboard::RoundScheduler scheduler_;
};

}  // namespace tmwia::engine
