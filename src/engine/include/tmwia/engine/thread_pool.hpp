// Execution engine for the synchronous-rounds simulation.
//
// The paper's model is n players acting in lockstep rounds. Inside one
// logical phase the players' computations are independent (they read
// the billboard snapshot from the previous phase, probe, and post), so
// we execute per-player work with a work-stealing-free static-chunked
// parallel_for over a shared thread pool. Determinism: the work
// function receives the player index and must draw randomness only from
// streams split by that index, so results are independent of thread
// scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::engine {

using support::CondVar;
using support::Mutex;
using support::MutexLock;

/// A fixed-size pool of worker threads executing submitted tasks.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (>= 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Submit a task; tasks may not submit nested parallel_for on the
  /// same pool (no re-entrancy needed in this codebase).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

  /// Has the global pool been constructed yet?
  static bool global_started();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  ///< written once in the ctor, then join-only
  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::queue<std::function<void()>> tasks_ TMWIA_GUARDED_BY(mu_);
  std::size_t in_flight_ TMWIA_GUARDED_BY(mu_) = 0;
  bool stop_ TMWIA_GUARDED_BY(mu_) = false;
};

/// Request a size for the process-global pool (0 = hardware
/// concurrency). Takes effect only if the pool has not been
/// constructed yet — call it before the first parallel_for (e.g. from
/// a --threads= CLI flag). Returns false (and changes nothing) if the
/// pool already exists.
bool set_global_threads(std::size_t threads);

namespace detail {

/// Chunked pool dispatch behind parallel_for; the type-erased body is
/// constructed once per parallel_for call (not per element).
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body, std::size_t grain);

}  // namespace detail

/// Run body(i) for i in [begin, end) across the pool in fixed chunks.
/// Blocks until complete. Exceptions in body are rethrown (first one
/// wins). Falls back to serial execution for tiny ranges and
/// single-thread pools — inlined here so the per-element calls carry no
/// type-erasure cost on that path (per-player loops run tens of
/// millions of elements).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 64) {
  if (end <= begin) return;
  if (end - begin <= grain || ThreadPool::global().thread_count() == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  detail::parallel_for_chunks(begin, end, body, grain);
}

}  // namespace tmwia::engine
