// tmwia-lint: allow-file(serve-matrix-isolation) harness side: see tenant.hpp.
// tmwia-lint: allow-file(sink-registration) the tenant is a sink owner: it installs its
// per-tenant flight recorder into the global slot for the duration of each epoch.
#include "tmwia/serve/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "tmwia/billboard/strategies.hpp"
#include "tmwia/core/coalesce.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/session.hpp"
#include "tmwia/engine/supervisor.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::serve {
namespace {

/// Swap the process-global recorder slot to this tenant's recorder for
/// one epoch, restoring whatever was installed before. Epochs are
/// serialized by the service, so the swap cannot race another tenant's.
class RecorderSwap {
 public:
  explicit RecorderSwap(obs::FlightRecorder* mine) : prev_(obs::recorder()) {
    if (mine != nullptr) obs::set_recorder(mine);
    else swapped_ = false;
  }
  ~RecorderSwap() {
    if (swapped_) obs::set_recorder(prev_);
  }
  RecorderSwap(const RecorderSwap&) = delete;
  RecorderSwap& operator=(const RecorderSwap&) = delete;

 private:
  obs::FlightRecorder* prev_;
  bool swapped_ = true;
};

/// Rebuild a TriVector from its two checkpointed planes.
bits::TriVector trivector_from_planes(const bits::BitVector& value,
                                      const bits::BitVector& known) {
  bits::TriVector t(value.size());
  for (const auto i : known.one_positions()) {
    t.set(i, value.get(i) ? bits::Tri::kOne : bits::Tri::kZero);
  }
  return t;
}

}  // namespace

Tenant::Tenant(TenantConfig cfg, matrix::Instance inst)
    : cfg_(std::move(cfg)), inst_(std::move(inst)), root_(cfg_.seed) {
  if (cfg_.algo != "unknown_d" && cfg_.algo != "mimic") {
    throw std::invalid_argument("Tenant: unknown refinement algo '" + cfg_.algo + "'");
  }
  const std::size_t n = inst_.matrix.players();
  const std::size_t m = inst_.matrix.objects();
  if (n == 0 || m == 0) throw std::invalid_argument("Tenant: empty instance");

  if (!cfg_.fault_spec.empty()) {
    injector_ = std::make_unique<faults::FaultInjector>(
        faults::FaultPlan::parse(cfg_.fault_spec), n);
  }
  oracle_ = std::make_unique<billboard::ProbeOracle>(inst_.matrix, cfg_.noise);
  if (injector_ != nullptr) oracle_->set_fault_injector(injector_.get());
  board_ = std::make_unique<billboard::Billboard>();
#if TMWIA_AUDIT
  // Attach before the first probe so the A4 cost ledgers line up.
  auditor_ = std::make_unique<billboard::ProtocolAuditor>(n, m);
  oracle_->set_auditor(auditor_.get());
#endif
  if (!cfg_.record_path.empty()) {
    record_out_.open(cfg_.record_path);
    if (!record_out_) {
      throw std::runtime_error("Tenant: cannot open record sink '" + cfg_.record_path + "'");
    }
    recorder_ = std::make_unique<obs::FlightRecorder>(record_out_);
    recorder_->set_output_evaluator(tmwia::make_truth_evaluator(inst_.matrix));
  }

  support::MutexLock lock(refine_mu_);
  estimates_.assign(n, bits::BitVector(m));
  audit_base_.assign(n, 0);
  // Epoch 0: the all-zero "know nothing" view, so the request path has
  // a version to serve before the first refinement completes.
  publish_current_locked(0, {});
}

Tenant::~Tenant() {
  if (recorder_ != nullptr) recorder_->flush();
}

std::shared_ptr<const CacheVersion> Tenant::refine_epoch() {
  support::MutexLock lock(refine_mu_);
  const std::uint64_t e = epochs_started_.fetch_add(1, std::memory_order_acq_rel) + 1;
  try {
    if (cfg_.sabotage_refine) {
      throw std::runtime_error("Tenant: refinement sabotaged (test hook)");
    }
    RecorderSwap swap(recorder_.get());
    if (cfg_.algo == "mimic") {
      refine_mimic_locked(e);
    } else {
      refine_unknown_d_locked(e);
    }
  } catch (...) {
    // Publish nothing: the cache keeps serving the last good version,
    // marked degraded on every response until a healthy epoch lands.
    degraded_.store(true, std::memory_order_release);
  }
  return cache_.current();
}

void Tenant::refine_unknown_d_locked(std::uint64_t epoch) {
  auto run = core::find_preferences_unknown_d(*oracle_, board_.get(), cfg_.alpha,
                                              cfg_.params, root_.split(0x5e17, epoch));
  if (epochs_published_.load(std::memory_order_acquire) == 0) {
    estimates_ = std::move(run.outputs);
  } else {
    core::keep_better_outputs(*oracle_, estimates_, run.outputs, epoch, cfg_.params, root_);
  }

  // Cluster the refined estimates with the largest D any player
  // adopted — the tightest radius the tower certified this epoch.
  std::size_t d = 0;
  for (const auto c : run.chosen_d) d = std::max(d, c);
  const auto min_ball = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(cfg_.alpha * static_cast<double>(players()))));
  auto clusters = core::coalesce(estimates_, d, min_ball);

  publish_current_locked(epoch, std::move(clusters.candidates));
  degraded_.store(false, std::memory_order_release);
}

void Tenant::refine_mimic_locked(std::uint64_t epoch) {
  const std::size_t n = players();
  const std::size_t m = objects();
  std::vector<std::unique_ptr<billboard::PlayerStrategy>> strategies;
  std::vector<billboard::MimicStrategy*> mimics;
  strategies.reserve(n);
  mimics.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    auto s = std::make_unique<billboard::MimicStrategy>(
        static_cast<billboard::PlayerId>(p), m, std::max<std::size_t>(m / 8, 4), 8,
        root_.split(0x31c, epoch, p), 16);
    mimics.push_back(s.get());
    strategies.push_back(std::move(s));
  }
  engine::Supervisor sup(*oracle_, {cfg_.max_strikes, 1, 64});
  const std::size_t budget = cfg_.mimic_phase_rounds != 0 ? cfg_.mimic_phase_rounds : 4 * m;
  const auto sres =
      sup.run(strategies, {engine::PhaseSpec{"epoch:" + std::to_string(epoch), budget}});
  if (sres.degraded()) {
    // Quarantined strategies / blown deadlines: this epoch's estimates
    // are not trustworthy enough to publish. Serve stale.
    degraded_.store(true, std::memory_order_release);
    return;
  }

  std::vector<bits::BitVector> challenger;
  challenger.reserve(n);
  for (const auto* mimic : mimics) challenger.push_back(mimic->estimate());
  if (epochs_published_.load(std::memory_order_acquire) == 0) {
    estimates_ = std::move(challenger);
  } else {
    core::keep_better_outputs(*oracle_, estimates_, challenger, epoch, cfg_.params, root_);
  }

  // Mimic certifies no radius, so cluster at D = 0: candidates are the
  // exact-duplicate adoption groups of at least ceil(alpha * n) players.
  const auto min_ball = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(cfg_.alpha * static_cast<double>(n))));
  auto clusters = core::coalesce(estimates_, 0, min_ball);

  publish_current_locked(epoch, std::move(clusters.candidates));
  degraded_.store(false, std::memory_order_release);
}

void Tenant::publish_current_locked(std::uint64_t epoch,
                                    std::vector<bits::TriVector> candidates) {
  const std::size_t n = players();
  std::vector<bits::BitVector> probed;
  probed.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    probed.push_back(oracle_->probed_mask(static_cast<billboard::PlayerId>(p)));
  }
  auto version = build_cache_version(epoch, estimates_, probed, std::move(candidates),
                                     cfg_.toplist_cap);
  // Ledger before visibility: once cache_.publish runs, a request
  // thread may serve this version, so its hash must already be
  // recorded wherever responses will be checked against.
  if (publish_hook_) publish_hook_(*version);
  cache_.publish(std::move(version));
  epochs_published_.store(epoch, std::memory_order_release);
}

billboard::AuditReport Tenant::audit() {
  support::MutexLock lock(refine_mu_);
#if TMWIA_AUDIT
  auto expected = oracle_->snapshot();
  for (std::size_t p = 0; p < expected.size(); ++p) expected[p] -= audit_base_[p];
  auditor_->verify_invocations(expected);
  return auditor_->report();
#else
  return {};
#endif
}

void Tenant::save_snapshot(const std::string& path) {
  support::MutexLock lock(refine_mu_);
  const auto cur = cache_.current();

  core::RunCheckpoint ckpt;
  ckpt.algo = "serve";
  ckpt.alpha = cfg_.alpha;
  ckpt.players = players();
  ckpt.objects = objects();
  ckpt.seq = cur->epoch;
  ckpt.cum_rounds = oracle_->max_invocations();
  ckpt.recorder_clock = recorder_ != nullptr ? recorder_->clock() : 0;
  // versions[0] = estimates; versions[1]/[2] = the serving candidate
  // set's value/known planes, so restore republishes the identical
  // (epoch, content_hash) version.
  ckpt.versions.resize(3);
  ckpt.versions[0] = estimates_;
  for (const auto& c : cur->candidates) {
    ckpt.versions[1].push_back(c.value_plane());
    ckpt.versions[2].push_back(c.known_plane());
  }
  ckpt.rng_state = root_.state();
  ckpt.oracle = oracle_->export_ledger();
  ckpt.board = board_->export_posts();
  ckpt.has_injector = injector_ != nullptr;
  if (injector_ != nullptr) ckpt.injector = injector_->export_state();
  ckpt.harness = {{"algo", cfg_.algo},
                  {"epochs_started", std::to_string(epochs_started())},
                  {"name", cfg_.name},
                  {"seed", std::to_string(cfg_.seed)},
                  {"toplist_cap", std::to_string(cfg_.toplist_cap)}};
  core::save_run_checkpoint(path, ckpt);
}

void Tenant::restore_snapshot(const std::string& path) {
  support::MutexLock lock(refine_mu_);
  if (epochs_started_.load(std::memory_order_acquire) != 0) {
    throw std::logic_error("Tenant::restore_snapshot: tenant has already refined");
  }
  const auto ckpt = core::load_run_checkpoint(path);
  if (ckpt.algo != "serve") {
    throw std::invalid_argument("Tenant::restore_snapshot: checkpoint algo '" + ckpt.algo +
                                "' is not a serve snapshot");
  }
  if (ckpt.players != players() || ckpt.objects != objects()) {
    throw std::invalid_argument("Tenant::restore_snapshot: instance shape mismatch");
  }
  if (ckpt.versions.size() != 3 || ckpt.versions[0].size() != players() ||
      ckpt.versions[1].size() != ckpt.versions[2].size()) {
    throw std::invalid_argument("Tenant::restore_snapshot: malformed estimate sections");
  }

  oracle_->restore_ledger(ckpt.oracle);
  board_->restore_posts(ckpt.board);
  if (ckpt.has_injector && injector_ != nullptr) injector_->restore_state(ckpt.injector);
  estimates_ = ckpt.versions[0];
  root_ = rng::Rng::from_state(ckpt.rng_state);
  if (recorder_ != nullptr) recorder_->resume_run(players(), ckpt.recorder_clock);
  // The restored ledger predates this tenant's auditor; rebase A4.
  audit_base_ = oracle_->snapshot();

  std::vector<bits::TriVector> candidates;
  candidates.reserve(ckpt.versions[1].size());
  for (std::size_t i = 0; i < ckpt.versions[1].size(); ++i) {
    candidates.push_back(trivector_from_planes(ckpt.versions[1][i], ckpt.versions[2][i]));
  }
  publish_current_locked(ckpt.seq, std::move(candidates));
  epochs_started_.store(ckpt.seq, std::memory_order_release);
}

}  // namespace tmwia::serve
