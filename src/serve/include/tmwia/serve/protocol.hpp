// serve request/response wire protocol: one flat JSON object per line.
//
// Requests are parsed with io::FlatJson and validated against a
// declarative per-op field table (the FlagTable discipline applied to
// JSONL): a field the op does not declare is a parse error, so the
// accepted grammar cannot drift from what the handlers read. Responses
// render to one JSON line with a fixed key order, so the stream is both
// jq-able and byte-diffable across runs.
//
// Ops:
//   add_tenant  tenant, [in | kind,n,m,radius], alpha, seed, algo,
//               faults, record, toplist_cap, sabotage
//   refine      tenant, epochs
//   recommend   tenant, player, k
//   estimate    tenant, player
//   stats       tenant
//   snapshot    tenant, path
//   restore     tenant, path
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tmwia::serve {

/// One parsed request line. Fields beyond the op's table keep their
/// defaults; parse_request rejects lines that set undeclared fields.
struct Request {
  std::string op;
  std::string tenant;
  std::uint32_t player = 0;
  std::size_t k = 8;             ///< recommend: max items returned
  std::uint64_t epochs = 1;      ///< refine: epochs to run
  std::string path;              ///< snapshot/restore: checkpoint file
  std::string in;                ///< add_tenant: instance file (overrides kind)
  std::string kind = "planted";  ///< add_tenant: generator (planted|uniform)
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t radius = 0;
  double alpha = 0.5;
  std::uint64_t seed = 1;
  std::string algo = "unknown_d";
  std::string faults;
  std::string record;
  std::size_t toplist_cap = 16;
  bool sabotage = false;  ///< test hook: tenant degrades every epoch
};

/// Parse one request line. Throws std::invalid_argument on malformed
/// JSON, an unknown op, an undeclared field, or a missing required one.
Request parse_request(std::string_view line);

/// One response line. `has_*` flags gate the optional blocks so every
/// op renders exactly the fields it answers with.
struct Response {
  std::string op;
  std::string tenant;
  bool ok = true;
  std::string error;  ///< rendered only when !ok

  /// Versioned-view block (recommend/estimate/refine/add_tenant/
  /// restore): which cache version answered, and how stale it is.
  bool has_view = false;
  std::uint64_t epoch = 0;
  std::uint64_t cache_hash = 0;  ///< rendered as "0x%016x" string
  bool degraded = false;
  std::uint64_t staleness = 0;  ///< refinement epochs behind (epochs-behind)

  bool has_items = false;
  std::vector<std::uint32_t> items;  ///< recommend: ranked object ids

  bool has_estimate = false;
  std::string estimate;  ///< estimate: w(p) as a 0/1 string

  std::string path;  ///< snapshot/restore: echoed checkpoint file

  /// stats: ordered (key, value) pairs rendered verbatim.
  std::vector<std::pair<std::string, std::uint64_t>> stats;

  std::uint64_t latency_us = 0;

  /// One JSON line, fixed key order, no trailing newline.
  [[nodiscard]] std::string to_json() const;
};

/// "0x" + 16 lowercase hex digits — cache hashes exceed JSON's exact
/// integer range, so they travel as strings.
std::string hash_to_hex(std::uint64_t h);

}  // namespace tmwia::serve
