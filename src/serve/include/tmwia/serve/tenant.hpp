// serve::Tenant — one long-lived world inside the RecommendationService.
//
// A tenant owns a hidden preference matrix, the ProbeOracle/Billboard
// pair in front of it, an optional fault injector, a ProtocolAuditor
// (attached before the first probe, so every refinement epoch's traffic
// is audited against the paper's billboard model), an optional
// per-tenant flight-recorder sink, and the published AnswerCache the
// request path reads. Refinement epochs re-drive the algorithm tower —
// the unknown-D algorithm of Theorem 1.1, or the mimic heuristic under
// engine::Supervisor — against the *same* oracle, so probe history
// accumulates across epochs exactly like consecutive phases of one
// deployment (the tmwia::Session contract, made permanent).
//
// Thread roles: refine_epoch()/save_snapshot()/restore_snapshot()/
// audit() belong to the single refiner thread (the service serializes
// them — also required because the process-global recorder slot is
// swapped per epoch); cache()/epochs_started()/epochs_published()/
// degraded() are safe from any request thread.
//
// Degradation contract: an epoch that throws, or whose supervised run
// quarantines strategies or blows its phase deadline, publishes
// *nothing* — the cache keeps serving the last good version and the
// tenant turns its `degraded` marker on, which every response carries.
// A later healthy epoch clears the marker.
//
// Harness side of the serve-matrix-isolation rule: the tenant holds the
// hidden truth only to construct the ProbeOracle and the recorder's
// truth evaluator (tenant.cpp carries the audited allow-file pragma);
// every answer is computed from the cache, fed exclusively through probes.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/billboard/protocol_auditor.hpp"
#include "tmwia/core/checkpoint.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/faults/fault_injector.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/serve/cache.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::serve {

struct TenantConfig {
  std::string name;
  /// Community fraction assumed by unknown-D refinement epochs.
  double alpha = 0.5;
  /// Master seed; epoch e draws from split(0x5E17, e)-style children.
  std::uint64_t seed = 1;
  /// Refinement algorithm: "unknown_d" (Theorem 1.1 tower + keep-better
  /// merge) or "mimic" (scheduler heuristic under engine::Supervisor).
  std::string algo = "unknown_d";
  core::Params params = core::Params::practical();
  /// Optional fault plan (faults::FaultPlan::parse grammar); empty = none.
  std::string fault_spec;
  billboard::NoiseModel noise;
  /// Max recommendations precomputed per player per version.
  std::size_t toplist_cap = 16;
  /// Per-tenant flight-recorder sink (JSONL); empty = no recording.
  std::string record_path;
  /// mimic: per-epoch phase round budget (0 = 4 * objects).
  std::size_t mimic_phase_rounds = 0;
  /// mimic: strikes before quarantine.
  std::size_t max_strikes = 3;
  /// Test hook: every refinement epoch throws, exercising the
  /// degraded-tenant (stale cache + marker) path deterministically.
  bool sabotage_refine = false;
};

class Tenant {
 public:
  /// Construct over a generated/loaded instance (the hidden truth moves
  /// in) and publish the empty epoch-0 cache version.
  Tenant(TenantConfig cfg, matrix::Instance inst);
  ~Tenant();

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] const TenantConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t players() const { return oracle_->players(); }
  [[nodiscard]] std::size_t objects() const { return oracle_->objects(); }

  // ---- request-path surface (any thread) ---------------------------

  [[nodiscard]] const AnswerCache& cache() const { return cache_; }
  [[nodiscard]] bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  /// Epochs the refiner has begun / successfully published. The gap
  /// between started and a served version's epoch is the cache
  /// staleness ("epochs-behind") the service reports per request.
  [[nodiscard]] std::uint64_t epochs_started() const {
    return epochs_started_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t epochs_published() const {
    return epochs_published_.load(std::memory_order_acquire);
  }

  // ---- refiner-thread surface (serialized by the service) ----------

  /// Run one refinement epoch and, if healthy, publish a new cache
  /// version. Returns the version now being served (the previous one
  /// when the epoch degraded).
  std::shared_ptr<const CacheVersion> refine_epoch();

  /// Install a callback invoked with each new version immediately
  /// *before* it becomes visible through cache() — the service uses it
  /// to enter (epoch, hash) into its publish ledger, so no reader can
  /// observe a version whose hash the ledger does not yet carry. Set
  /// once, before the tenant starts refining.
  void set_publish_hook(std::function<void(const CacheVersion&)> hook) {
    support::MutexLock lock(refine_mu_);
    publish_hook_ = std::move(hook);
  }

  /// Cumulative oracle cost, for stats responses.
  [[nodiscard]] std::uint64_t total_probes() const { return oracle_->total_invocations(); }
  [[nodiscard]] std::uint64_t rounds() const { return oracle_->max_invocations(); }

  /// Verify the auditor's cost ledger against the oracle (A4) and
  /// return the audit report accumulated over every epoch so far. With
  /// TMWIA_AUDIT compiled out the report is trivially clean.
  [[nodiscard]] billboard::AuditReport audit();

  /// Freeze the tenant (oracle ledgers, billboard, estimates, fault
  /// cursors, epoch counters) into a RunCheckpoint container with
  /// algo="serve" at `path`, via the atomic tmp+fsync+rename path.
  void save_snapshot(const std::string& path);

  /// Restore a snapshot cut by save_snapshot into this freshly
  /// constructed tenant (same shape, no epochs run yet). Throws
  /// std::invalid_argument on an algo/shape mismatch.
  void restore_snapshot(const std::string& path);

 private:
  void publish_current_locked(std::uint64_t epoch, std::vector<bits::TriVector> candidates)
      TMWIA_REQUIRES(refine_mu_);
  void refine_unknown_d_locked(std::uint64_t epoch) TMWIA_REQUIRES(refine_mu_);
  void refine_mimic_locked(std::uint64_t epoch) TMWIA_REQUIRES(refine_mu_);

  TenantConfig cfg_;
  matrix::Instance inst_;  ///< the hidden truth (harness side only)
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<billboard::ProbeOracle> oracle_;
  std::unique_ptr<billboard::Billboard> board_;
#if TMWIA_AUDIT
  std::unique_ptr<billboard::ProtocolAuditor> auditor_;
#endif
  rng::Rng root_;

  /// Serializes refinement/snapshot/audit; the request path never takes
  /// it (reads go through cache_ only).
  support::Mutex refine_mu_;
  std::vector<bits::BitVector> estimates_ TMWIA_GUARDED_BY(refine_mu_);
  /// Oracle invocation baseline for audit(): nonzero after a snapshot
  /// restore, where the restored ledger predates the auditor.
  std::vector<std::uint64_t> audit_base_ TMWIA_GUARDED_BY(refine_mu_);
  bool sabotaged_this_session_ TMWIA_GUARDED_BY(refine_mu_) = false;
  std::function<void(const CacheVersion&)> publish_hook_ TMWIA_GUARDED_BY(refine_mu_);

  // tmwia-lint: allow(durable-write) streaming per-tenant flight-log sink, not a one-shot artifact
  std::ofstream record_out_;
  std::unique_ptr<obs::FlightRecorder> recorder_;

  AnswerCache cache_;
  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> epochs_started_{0};
  std::atomic<std::uint64_t> epochs_published_{0};
};

}  // namespace tmwia::serve
