// serve::RecommendationService — long-lived multi-tenant front end over
// the algorithm tower.
//
// The service owns one Tenant per name and splits the work across two
// thread roles:
//
//  * Request threads answer recommend/estimate/stats synchronously from
//    each tenant's published AnswerCache: one acquire load of the
//    current version, then everything — items, epoch, content hash,
//    staleness — comes from that immutable object. A response can
//    therefore never mix two versions, which the per-epoch hash ledger
//    (published_hash) lets tests and the e17 harness verify response by
//    response.
//  * One refiner runs epochs. refine() and the background refiner
//    thread are serialized on a single service-wide mutex — epochs swap
//    the process-global flight-recorder slot and drive engine
//    parallel_for, so exactly one epoch may be in flight per process.
//    The background refiner is a dedicated std::thread (never a pool
//    task: pool tasks must not submit nested parallel_for) that
//    round-robins one epoch per tenant until stopped or every tenant
//    reaches its epoch cap.
//
// Request metrics land in the global MetricsRegistry under "serve.*"
// (request-latency and staleness histograms, request/degraded
// counters), plus per-tenant namespaced "serve.<name>.*" series.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/profile.hpp"
#include "tmwia/obs/slo.hpp"
#include "tmwia/obs/telemetry.hpp"
#include "tmwia/serve/protocol.hpp"
#include "tmwia/serve/tenant.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::serve {

class RecommendationService {
 public:
  RecommendationService();
  ~RecommendationService();  ///< stops the background refiner

  RecommendationService(const RecommendationService&) = delete;
  RecommendationService& operator=(const RecommendationService&) = delete;

  // ---- tenant management -------------------------------------------

  /// Register a tenant (throws std::invalid_argument on a duplicate
  /// name) and record its epoch-0 hash in the publish ledger.
  Tenant& add_tenant(TenantConfig cfg, matrix::Instance inst);
  [[nodiscard]] std::vector<std::string> tenant_names() const;
  /// nullptr when unknown. Tenants are never removed, so the pointer
  /// stays valid for the service's lifetime.
  [[nodiscard]] Tenant* tenant(const std::string& name);

  // ---- request path (any thread) -----------------------------------

  Response recommend(const std::string& tenant, std::uint32_t player, std::size_t k);
  Response estimate(const std::string& tenant, std::uint32_t player);
  Response stats(const std::string& tenant);

  /// Parse-free JSONL entry point: dispatch one request, never throws —
  /// failures come back as ok=false responses.
  Response handle(const Request& req);

  // ---- refinement (serialized service-wide) ------------------------

  /// Run one epoch for `tenant` and return the version now serving
  /// (the previous one if the epoch degraded). Throws
  /// std::invalid_argument for an unknown tenant.
  std::shared_ptr<const CacheVersion> refine(const std::string& tenant);

  /// Start the background refiner: round-robin one epoch per tenant
  /// until stop_refiner() or — with max_epochs_per_tenant != 0 — every
  /// tenant has started that many epochs. Throws std::logic_error if
  /// already running.
  void start_refiner(std::uint64_t max_epochs_per_tenant);
  /// Signal and join the refiner (no-op when not running).
  void stop_refiner();
  [[nodiscard]] bool refiner_running() const { return refiner_.joinable(); }

  // ---- verification surface ----------------------------------------

  /// The content hash recorded when `epoch` was published for `tenant`
  /// (0 when that epoch never published). Tests and bench/e17 check
  /// every response's (epoch, hash) pair against this ledger — a torn
  /// or mixed-version read could not match.
  [[nodiscard]] std::uint64_t published_hash(const std::string& tenant,
                                             std::uint64_t epoch) const;

  /// Any tenant currently serving degraded (stale-marked) answers?
  [[nodiscard]] bool any_degraded() const;

  // ---- observability hooks (install before serving) ----------------

  /// Attach a telemetry exporter: every answered request is forwarded
  /// (tenant, op, latency, staleness, degraded), driving the exporter's
  /// count-based tick cadence. Non-owning; nullptr detaches. Install
  /// before requests start flowing — the pointer is read unsynchronized
  /// on the request path.
  void set_telemetry(obs::TelemetryExporter* telemetry) { telemetry_ = telemetry; }

  /// Attach an SLO watchdog: every cache-backed response feeds its
  /// rolling window. Evaluation happens on the telemetry tick (or
  /// explicitly); same install-before-serving contract as
  /// set_telemetry.
  void set_watchdog(obs::SloWatchdog* watchdog) { watchdog_ = watchdog; }

 private:
  struct Entry {
    std::unique_ptr<Tenant> tenant;
    obs::MetricsRegistry::Counter requests;
    obs::MetricsRegistry::Histogram request_us;
    /// hashes[e] = content hash published for epoch e (mutated under
    /// the service mutex; 0 = never published).
    std::vector<std::uint64_t> hashes;
  };

  Entry* find(const std::string& name) TMWIA_EXCLUDES(mu_);
  void record_publish(Entry& entry, const CacheVersion& version) TMWIA_EXCLUDES(mu_);
  void observe(Entry& entry, const Response& r);
  std::shared_ptr<const CacheVersion> refine_entry(Entry& entry) TMWIA_EXCLUDES(refine_mu_);
  Response add_tenant_request(const Request& req);
  void refiner_loop(std::uint64_t max_epochs);

  /// Guards the tenant table and every Entry::hashes ledger.
  mutable support::Mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> tenants_ TMWIA_GUARDED_BY(mu_);

  /// Serializes every refinement epoch across tenants (global recorder
  /// slot + nested-parallel_for prohibition).
  support::Mutex refine_mu_;
  std::uint64_t epochs_run_ TMWIA_GUARDED_BY(refine_mu_) = 0;

  obs::MetricsRegistry::Counter requests_;
  obs::MetricsRegistry::Counter degraded_responses_;
  obs::MetricsRegistry::Histogram request_us_;
  obs::MetricsRegistry::Histogram staleness_;

  /// Pre-interned profile zones for the request hot path (the ZoneId
  /// ProfileZone constructor takes no lock).
  obs::Profiler::ZoneId zone_recommend_;
  obs::Profiler::ZoneId zone_estimate_;
  obs::Profiler::ZoneId zone_stats_;

  obs::TelemetryExporter* telemetry_ = nullptr;  ///< non-owning, see set_telemetry
  obs::SloWatchdog* watchdog_ = nullptr;         ///< non-owning, see set_watchdog

  std::thread refiner_;
  std::atomic<bool> stop_refiner_{false};
};

}  // namespace tmwia::serve
