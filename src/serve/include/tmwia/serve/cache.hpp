// serve::CacheVersion / serve::AnswerCache — the read side of the
// recommendation service.
//
// A CacheVersion is an immutable snapshot of everything the request
// path needs to answer recommend/estimate for one tenant: the
// per-player w(p) estimates, the Coalesce candidate set the last
// refinement epoch produced, and precomputed per-player recommendation
// toplists (unprobed objects the estimate predicts liked, ranked by
// candidate support). Refinement builds the next version off to the
// side and publishes it by swapping one shared_ptr under a mutex held
// only for that swap; a reader copies the head pointer and then works
// exclusively off that immutable object — the owner-write/
// merge-on-read discipline of src/obs applied to the answer path, so a
// read can never observe a half-swapped cache and never contends with
// refinement for more than a pointer copy.
//
// Every version carries an FNV-1a content hash over (epoch, estimates,
// candidates, toplists). The service records hash-per-epoch at publish
// time; tests and the e17 load harness re-check each response's
// (epoch, hash) pair against that ledger, so a torn or mixed-version
// answer would be caught by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/trivector.hpp"
#include "tmwia/matrix/ids.hpp"
#include "tmwia/support/thread_annotations.hpp"

namespace tmwia::serve {

struct CacheVersion {
  std::uint64_t epoch = 0;  ///< refinement epochs folded into this view
  /// w(p) estimate per player (coordinates in object order).
  std::vector<bits::BitVector> estimates;
  /// Coalesce candidate set of the producing epoch (community centers
  /// over {0,1,?}; empty before the first epoch).
  std::vector<bits::TriVector> candidates;
  /// Ranked recommendations per player: unprobed predicted-liked
  /// objects, best first.
  std::vector<std::vector<matrix::ObjectId>> toplists;
  std::uint64_t content_hash = 0;

  /// FNV-1a over every field except content_hash itself.
  [[nodiscard]] std::uint64_t compute_hash() const;
};

/// Assemble (and hash) a version. Toplists rank each player's objects o
/// with estimate bit 1 and probed bit 0 — things the player is
/// predicted to like but has never tried — by how many candidates
/// support o (known-1 entries), object id as the deterministic
/// tie-break, truncated to `toplist_cap` entries.
std::shared_ptr<const CacheVersion> build_cache_version(
    std::uint64_t epoch, std::vector<bits::BitVector> estimates,
    const std::vector<bits::BitVector>& probed, std::vector<bits::TriVector> candidates,
    std::size_t toplist_cap);

/// The one-writer/many-reader published-version cell. publish() is the
/// refiner's epoch boundary; current() is the whole synchronization
/// story of the request path.
///
/// The head is a mutex-guarded shared_ptr rather than
/// std::atomic<std::shared_ptr>: libstdc++ 12's _Sp_atomic releases its
/// embedded lock bit in load() with a relaxed fetch_sub, so a reader's
/// critical section has no release edge to the next writer's lock and
/// TSan (correctly, per the formal model) reports the plain _M_ptr
/// accesses as a race. The guarded swap has identical semantics and the
/// lock is held only for a pointer copy.
class AnswerCache {
 public:
  void publish(std::shared_ptr<const CacheVersion> v) {
    support::MutexLock lock(mu_);
    head_ = std::move(v);
  }

  /// The latest published version (never null once the tenant exists —
  /// tenants publish an empty epoch-0 version at construction).
  [[nodiscard]] std::shared_ptr<const CacheVersion> current() const {
    support::MutexLock lock(mu_);
    return head_;
  }

 private:
  mutable support::Mutex mu_;
  std::shared_ptr<const CacheVersion> head_ TMWIA_GUARDED_BY(mu_);
};

}  // namespace tmwia::serve
