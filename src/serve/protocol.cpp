#include "tmwia/serve/protocol.hpp"

#include <algorithm>
#include <span>
#include <sstream>
#include <stdexcept>

#include "tmwia/io/flat_json.hpp"

namespace tmwia::serve {
namespace {

/// Declarative per-op field tables (the FlagTable discipline): the op
/// accepts exactly these fields, "op" included.
struct OpSpec {
  std::string_view op;
  std::span<const std::string_view> fields;
};

constexpr std::string_view kAddTenantFields[] = {
    "op",   "tenant", "in",    "kind",   "n",      "m",          "radius",  "alpha",
    "seed", "algo",   "faults", "record", "toplist_cap", "sabotage"};
constexpr std::string_view kRefineFields[] = {"op", "tenant", "epochs"};
constexpr std::string_view kRecommendFields[] = {"op", "tenant", "player", "k"};
constexpr std::string_view kEstimateFields[] = {"op", "tenant", "player"};
constexpr std::string_view kStatsFields[] = {"op", "tenant"};
constexpr std::string_view kPathFields[] = {"op", "tenant", "path"};

constexpr OpSpec kOps[] = {
    {"add_tenant", kAddTenantFields}, {"refine", kRefineFields},
    {"recommend", kRecommendFields},  {"estimate", kEstimateFields},
    {"stats", kStatsFields},          {"snapshot", kPathFields},
    {"restore", kPathFields},
};

const OpSpec& op_spec(const std::string& op) {
  for (const auto& spec : kOps) {
    if (spec.op == op) return spec;
  }
  throw std::invalid_argument("serve: unknown op '" + op + "'");
}

std::string require_string(const io::FlatJson& j, const char* key, const std::string& op) {
  if (!j.has(key)) {
    throw std::invalid_argument("serve: op '" + op + "' requires field '" + key + "'");
  }
  return j.get_string(key, "");
}

}  // namespace

Request parse_request(std::string_view line) {
  const auto j = io::FlatJson::parse(line);
  Request req;
  req.op = j.get_string("op", "");
  if (req.op.empty()) throw std::invalid_argument("serve: request has no \"op\" field");
  const auto& spec = op_spec(req.op);
  for (const auto& key : j.keys()) {
    if (std::find(spec.fields.begin(), spec.fields.end(), key) == spec.fields.end()) {
      throw std::invalid_argument("serve: op '" + req.op + "' does not accept field '" +
                                  key + "'");
    }
  }

  req.tenant = require_string(j, "tenant", req.op);
  if (req.op == "add_tenant") {
    req.in = j.get_string("in", "");
    req.kind = j.get_string("kind", req.kind);
    req.n = static_cast<std::size_t>(j.get_u64("n", 0));
    req.m = static_cast<std::size_t>(j.get_u64("m", 0));
    req.radius = static_cast<std::size_t>(j.get_u64("radius", 0));
    req.alpha = j.get_double("alpha", req.alpha);
    req.seed = j.get_u64("seed", req.seed);
    req.algo = j.get_string("algo", req.algo);
    req.faults = j.get_string("faults", "");
    req.record = j.get_string("record", "");
    req.toplist_cap = static_cast<std::size_t>(j.get_u64("toplist_cap", req.toplist_cap));
    req.sabotage = j.get_bool("sabotage", false);
    if (req.in.empty() && (req.n == 0 || req.m == 0)) {
      throw std::invalid_argument(
          "serve: add_tenant needs either \"in\" or nonzero \"n\" and \"m\"");
    }
  } else if (req.op == "refine") {
    req.epochs = j.get_u64("epochs", req.epochs);
    if (req.epochs == 0) throw std::invalid_argument("serve: refine needs epochs >= 1");
  } else if (req.op == "recommend" || req.op == "estimate") {
    if (!j.has("player")) {
      throw std::invalid_argument("serve: op '" + req.op + "' requires field 'player'");
    }
    req.player = static_cast<std::uint32_t>(j.get_u64("player", 0));
    if (req.op == "recommend") req.k = static_cast<std::size_t>(j.get_u64("k", req.k));
  } else if (req.op == "snapshot" || req.op == "restore") {
    req.path = require_string(j, "path", req.op);
  }
  return req;
}

std::string hash_to_hex(std::uint64_t h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x0000000000000000";
  for (int i = 0; i < 16; ++i) out[17 - i] = kDigits[(h >> (4 * i)) & 0xf];
  return out;
}

std::string Response::to_json() const {
  std::ostringstream out;
  out << "{\"op\":\"" << io::json_escape(op) << "\",\"tenant\":\"" << io::json_escape(tenant)
      << "\",\"ok\":" << (ok ? "true" : "false");
  if (!ok) out << ",\"error\":\"" << io::json_escape(error) << "\"";
  if (has_view) {
    out << ",\"epoch\":" << epoch << ",\"hash\":\"" << hash_to_hex(cache_hash)
        << "\",\"degraded\":" << (degraded ? "true" : "false")
        << ",\"staleness\":" << staleness;
  }
  if (has_items) {
    out << ",\"items\":[";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out << ',';
      out << items[i];
    }
    out << ']';
  }
  if (has_estimate) out << ",\"estimate\":\"" << estimate << "\"";
  if (!path.empty()) out << ",\"path\":\"" << io::json_escape(path) << "\"";
  for (const auto& [key, value] : stats) {
    out << ",\"" << io::json_escape(key) << "\":" << value;
  }
  out << ",\"latency_us\":" << latency_us << "}";
  return out.str();
}

}  // namespace tmwia::serve
