#include "tmwia/serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "tmwia/io/serialize.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/obs/latency.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::serve {

RecommendationService::RecommendationService() {
  auto& reg = obs::MetricsRegistry::global();
  requests_ = reg.counter("serve.requests");
  degraded_responses_ = reg.counter("serve.degraded_responses");
  request_us_ = reg.histogram("serve.request_us", obs::MetricsRegistry::pow2_bounds(20));
  staleness_ = reg.histogram("serve.staleness_epochs", obs::MetricsRegistry::pow2_bounds(8));
  auto& prof = obs::Profiler::global();
  zone_recommend_ = prof.intern(obs::Profiler::kRoot, "serve.recommend");
  zone_estimate_ = prof.intern(obs::Profiler::kRoot, "serve.estimate");
  zone_stats_ = prof.intern(obs::Profiler::kRoot, "serve.stats");
}

RecommendationService::~RecommendationService() { stop_refiner(); }

Tenant& RecommendationService::add_tenant(TenantConfig cfg, matrix::Instance inst) {
  const std::string name = cfg.name;
  if (name.empty()) throw std::invalid_argument("serve: tenant name must be non-empty");
  {
    support::MutexLock lock(mu_);
    if (tenants_.find(name) != tenants_.end()) {
      throw std::invalid_argument("serve: duplicate tenant '" + name + "'");
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->tenant = std::make_unique<Tenant>(std::move(cfg), std::move(inst));
  auto& reg = obs::MetricsRegistry::global();
  // tmwia-lint: allow(metric-name-registry) per-tenant series: "serve.<tenant>.*"
  entry->requests = reg.counter("serve." + name + ".requests");
  entry->request_us =
      // tmwia-lint: allow(metric-name-registry) per-tenant series: "serve.<tenant>.*"
      reg.histogram("serve." + name + ".request_us", obs::MetricsRegistry::pow2_bounds(20));
  // The constructor's epoch-0 publish predates the hook; record it by
  // hand — the tenant is not in the map yet, so no reader saw it.
  record_publish(*entry, *entry->tenant->cache().current());
  // Every later publish (refine, snapshot restore) enters the ledger
  // through this hook *before* the version becomes reader-visible;
  // recording after the fact would leave a window where a response
  // carries an epoch whose published_hash() is still 0.
  Entry* raw = entry.get();
  raw->tenant->set_publish_hook(
      [this, raw](const CacheVersion& v) { record_publish(*raw, v); });

  support::MutexLock lock(mu_);
  auto [it, inserted] = tenants_.emplace(name, std::move(entry));
  if (!inserted) throw std::invalid_argument("serve: duplicate tenant '" + name + "'");
  return *it->second->tenant;
}

std::vector<std::string> RecommendationService::tenant_names() const {
  support::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, entry] : tenants_) names.push_back(name);
  return names;
}

Tenant* RecommendationService::tenant(const std::string& name) {
  Entry* e = find(name);
  return e != nullptr ? e->tenant.get() : nullptr;
}

RecommendationService::Entry* RecommendationService::find(const std::string& name) {
  obs::profile_cost(obs::Cost::kLocks, 1);
  support::MutexLock lock(mu_);
  const auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.get() : nullptr;
}

void RecommendationService::record_publish(Entry& entry, const CacheVersion& version) {
  obs::profile_cost(obs::Cost::kLocks, 1);
  support::MutexLock lock(mu_);
  if (entry.hashes.size() <= version.epoch) entry.hashes.resize(version.epoch + 1, 0);
  entry.hashes[version.epoch] = version.content_hash;
}

std::uint64_t RecommendationService::published_hash(const std::string& tenant,
                                                    std::uint64_t epoch) const {
  support::MutexLock lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  const auto& hashes = it->second->hashes;
  return epoch < hashes.size() ? hashes[epoch] : 0;
}

bool RecommendationService::any_degraded() const {
  support::MutexLock lock(mu_);
  for (const auto& [name, entry] : tenants_) {
    if (entry->tenant->degraded()) return true;
  }
  return false;
}

void RecommendationService::observe(Entry& entry, const Response& r) {
  requests_.inc();
  entry.requests.inc();
  request_us_.observe(r.latency_us);
  entry.request_us.observe(r.latency_us);
  if (r.has_view) {
    staleness_.observe(r.staleness);
    if (r.degraded) degraded_responses_.inc();
    if (watchdog_ != nullptr) watchdog_->observe_request(r.latency_us, r.staleness, r.degraded);
  }
  if (telemetry_ != nullptr) {
    telemetry_->observe_request(r.tenant, r.op, r.latency_us, r.staleness, r.degraded);
  }
}

Response RecommendationService::recommend(const std::string& tenant, std::uint32_t player,
                                          std::size_t k) {
  obs::ProfileZone zone(zone_recommend_);
  obs::WallTimer timer;
  Response r;
  r.op = "recommend";
  r.tenant = tenant;
  Entry* e = find(tenant);
  if (e == nullptr) {
    r.ok = false;
    r.error = "unknown tenant";
    r.latency_us = timer.elapsed_us();
    return r;
  }
  // One acquire load; the whole answer comes from this one immutable
  // version — a torn or mixed-epoch read is impossible by construction.
  const auto v = e->tenant->cache().current();
  if (player >= v->toplists.size()) {
    r.ok = false;
    r.error = "player out of range";
  } else {
    r.has_view = true;
    r.epoch = v->epoch;
    r.cache_hash = v->content_hash;
    r.degraded = e->tenant->degraded();
    const auto started = e->tenant->epochs_started();
    r.staleness = started > v->epoch ? started - v->epoch : 0;
    r.has_items = true;
    const auto& top = v->toplists[player];
    r.items.assign(top.begin(), top.begin() + static_cast<std::ptrdiff_t>(
                                                  std::min(k, top.size())));
  }
  r.latency_us = timer.elapsed_us();
  observe(*e, r);
  return r;
}

Response RecommendationService::estimate(const std::string& tenant, std::uint32_t player) {
  obs::ProfileZone zone(zone_estimate_);
  obs::WallTimer timer;
  Response r;
  r.op = "estimate";
  r.tenant = tenant;
  Entry* e = find(tenant);
  if (e == nullptr) {
    r.ok = false;
    r.error = "unknown tenant";
    r.latency_us = timer.elapsed_us();
    return r;
  }
  const auto v = e->tenant->cache().current();
  if (player >= v->estimates.size()) {
    r.ok = false;
    r.error = "player out of range";
  } else {
    r.has_view = true;
    r.epoch = v->epoch;
    r.cache_hash = v->content_hash;
    r.degraded = e->tenant->degraded();
    const auto started = e->tenant->epochs_started();
    r.staleness = started > v->epoch ? started - v->epoch : 0;
    r.has_estimate = true;
    const auto& est = v->estimates[player];
    r.estimate.reserve(est.size());
    for (std::size_t o = 0; o < est.size(); ++o) r.estimate.push_back(est.get(o) ? '1' : '0');
  }
  r.latency_us = timer.elapsed_us();
  observe(*e, r);
  return r;
}

Response RecommendationService::stats(const std::string& tenant) {
  obs::ProfileZone zone(zone_stats_);
  obs::WallTimer timer;
  Response r;
  r.op = "stats";
  r.tenant = tenant;
  Entry* e = find(tenant);
  if (e == nullptr) {
    r.ok = false;
    r.error = "unknown tenant";
    r.latency_us = timer.elapsed_us();
    return r;
  }
  const auto& t = *e->tenant;
  r.stats = {{"players", t.players()},
             {"objects", t.objects()},
             {"epochs_started", t.epochs_started()},
             {"epochs_published", t.epochs_published()},
             {"total_probes", t.total_probes()},
             {"rounds", t.rounds()},
             {"degraded", t.degraded() ? 1u : 0u}};
  r.latency_us = timer.elapsed_us();
  observe(*e, r);
  return r;
}

std::shared_ptr<const CacheVersion> RecommendationService::refine(const std::string& tenant) {
  Entry* e = find(tenant);
  if (e == nullptr) throw std::invalid_argument("serve: unknown tenant '" + tenant + "'");
  return refine_entry(*e);
}

std::shared_ptr<const CacheVersion> RecommendationService::refine_entry(Entry& entry) {
  // tmwia-lint: allow(metric-name-registry) per-tenant zone: "tenant:<name>"
  obs::ProfileZone zone("tenant:" + entry.tenant->name());
  obs::profile_cost(obs::Cost::kLocks, 1);
  support::MutexLock serial(refine_mu_);
  ++epochs_run_;
  // The publish hook installed at add_tenant records (epoch, hash)
  // before the version is visible; nothing to record here.
  return entry.tenant->refine_epoch();
}

Response RecommendationService::add_tenant_request(const Request& req) {
  TenantConfig cfg;
  cfg.name = req.tenant;
  cfg.alpha = req.alpha;
  cfg.seed = req.seed;
  cfg.algo = req.algo;
  cfg.fault_spec = req.faults;
  cfg.record_path = req.record;
  cfg.toplist_cap = req.toplist_cap;
  cfg.sabotage_refine = req.sabotage;

  matrix::Instance inst;
  if (!req.in.empty()) {
    inst = io::load_instance_file(req.in);
  } else {
    rng::Rng gen = rng::Rng(req.seed).split(0x6e57, 0);
    if (req.kind == "planted") {
      inst = matrix::planted_community(req.n, req.m, {req.alpha, req.radius}, gen);
    } else if (req.kind == "uniform") {
      inst = matrix::uniform_random(req.n, req.m, gen);
    } else {
      throw std::invalid_argument("serve: unknown instance kind '" + req.kind + "'");
    }
  }

  Tenant& t = add_tenant(std::move(cfg), std::move(inst));
  const auto v = t.cache().current();
  Response r;
  r.op = req.op;
  r.tenant = req.tenant;
  r.has_view = true;
  r.epoch = v->epoch;
  r.cache_hash = v->content_hash;
  r.stats = {{"players", t.players()}, {"objects", t.objects()}};
  return r;
}

Response RecommendationService::handle(const Request& req) {
  obs::WallTimer timer;
  try {
    if (req.op == "recommend") return recommend(req.tenant, req.player, req.k);
    if (req.op == "estimate") return estimate(req.tenant, req.player);
    if (req.op == "stats") return stats(req.tenant);
    if (req.op == "add_tenant") {
      auto r = add_tenant_request(req);
      r.latency_us = timer.elapsed_us();
      return r;
    }
    if (req.op == "refine") {
      Response r;
      r.op = req.op;
      r.tenant = req.tenant;
      std::shared_ptr<const CacheVersion> v;
      for (std::uint64_t i = 0; i < req.epochs; ++i) v = refine(req.tenant);
      Entry* e = find(req.tenant);
      r.has_view = true;
      r.epoch = v->epoch;
      r.cache_hash = v->content_hash;
      r.degraded = e->tenant->degraded();
      const auto started = e->tenant->epochs_started();
      r.staleness = started > v->epoch ? started - v->epoch : 0;
      r.latency_us = timer.elapsed_us();
      return r;
    }
    if (req.op == "snapshot" || req.op == "restore") {
      Response r;
      r.op = req.op;
      r.tenant = req.tenant;
      r.path = req.path;
      Entry* e = find(req.tenant);
      if (e == nullptr) throw std::invalid_argument("serve: unknown tenant '" + req.tenant + "'");
      if (req.op == "snapshot") {
        support::MutexLock serial(refine_mu_);
        e->tenant->save_snapshot(req.path);
      } else {
        support::MutexLock serial(refine_mu_);
        e->tenant->restore_snapshot(req.path);
        const auto v = e->tenant->cache().current();
        r.has_view = true;
        r.epoch = v->epoch;
        r.cache_hash = v->content_hash;
      }
      r.latency_us = timer.elapsed_us();
      return r;
    }
    throw std::invalid_argument("serve: unknown op '" + req.op + "'");
  } catch (const std::exception& ex) {
    Response r;
    r.op = req.op;
    r.tenant = req.tenant;
    r.ok = false;
    r.error = ex.what();
    r.latency_us = timer.elapsed_us();
    return r;
  }
}

void RecommendationService::start_refiner(std::uint64_t max_epochs_per_tenant) {
  if (refiner_.joinable()) {
    throw std::logic_error("serve: background refiner is already running");
  }
  stop_refiner_.store(false, std::memory_order_release);
  // A dedicated thread, never a pool task: refinement epochs drive
  // engine::parallel_for, which pool tasks must not nest.
  refiner_ = std::thread([this, max_epochs_per_tenant] { refiner_loop(max_epochs_per_tenant); });
}

void RecommendationService::stop_refiner() {
  stop_refiner_.store(true, std::memory_order_release);
  if (refiner_.joinable()) refiner_.join();
}

void RecommendationService::refiner_loop(std::uint64_t max_epochs) {
  while (!stop_refiner_.load(std::memory_order_acquire)) {
    bool progressed = false;
    for (const auto& name : tenant_names()) {
      if (stop_refiner_.load(std::memory_order_acquire)) return;
      Entry* e = find(name);
      if (e == nullptr) continue;
      if (max_epochs != 0 && e->tenant->epochs_started() >= max_epochs) continue;
      refine_entry(*e);
      progressed = true;
    }
    if (!progressed) return;  // every tenant reached its epoch cap
  }
}

}  // namespace tmwia::serve
