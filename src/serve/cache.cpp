#include "tmwia/serve/cache.hpp"

#include <algorithm>

namespace tmwia::serve {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix_bits(std::uint64_t& h, const bits::BitVector& v) {
  mix(h, v.size());
  for (const auto w : v.words()) mix(h, w);
}

}  // namespace

std::uint64_t CacheVersion::compute_hash() const {
  std::uint64_t h = kFnvOffset;
  mix(h, epoch);
  mix(h, estimates.size());
  for (const auto& e : estimates) mix_bits(h, e);
  mix(h, candidates.size());
  for (const auto& c : candidates) {
    mix_bits(h, c.known_plane());
    mix_bits(h, c.value_plane());
  }
  mix(h, toplists.size());
  for (const auto& t : toplists) {
    mix(h, t.size());
    for (const auto o : t) mix(h, o);
  }
  return h;
}

std::shared_ptr<const CacheVersion> build_cache_version(
    std::uint64_t epoch, std::vector<bits::BitVector> estimates,
    const std::vector<bits::BitVector>& probed, std::vector<bits::TriVector> candidates,
    std::size_t toplist_cap) {
  auto v = std::make_shared<CacheVersion>();
  v->epoch = epoch;
  v->estimates = std::move(estimates);
  v->candidates = std::move(candidates);
  v->toplists.resize(v->estimates.size());

  // Candidate support per object: how many candidates carry a known 1
  // there. Computed once per version, shared by every player's ranking.
  std::vector<std::uint32_t> support;
  if (!v->estimates.empty()) support.assign(v->estimates[0].size(), 0);
  for (const auto& c : v->candidates) {
    const auto ones = (c.value_plane() & c.known_plane()).one_positions();
    for (const auto o : ones) ++support[o];
  }

  for (std::size_t p = 0; p < v->estimates.size(); ++p) {
    // Predicted-liked and never probed: estimate & ~probed, as a mask.
    bits::BitVector unseen = v->estimates[p];
    if (p < probed.size()) {
      bits::BitVector seen = probed[p];
      for (std::size_t w = 0; w < seen.words().size(); ++w) {
        unseen.set_word(w, unseen.words()[w] & ~seen.words()[w]);
      }
    }
    auto picks = unseen.one_positions();
    if (picks.empty()) {
      // Everything predicted-liked has been probed already (a fully
      // refined small instance); fall back to all predicted-liked so a
      // converged tenant still answers with its best-supported objects.
      picks = v->estimates[p].one_positions();
    }
    std::stable_sort(picks.begin(), picks.end(), [&](std::uint32_t a, std::uint32_t b) {
      return support[a] > support[b];  // stable sort keeps id order within a tie
    });
    if (picks.size() > toplist_cap) picks.resize(toplist_cap);
    v->toplists[p].assign(picks.begin(), picks.end());
  }

  v->content_hash = v->compute_hash();
  return v;
}

}  // namespace tmwia::serve
