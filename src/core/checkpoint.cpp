#include "tmwia/core/checkpoint.hpp"

#include <algorithm>

namespace tmwia::core {
namespace {

using io::BinReader;
using io::BinWriter;

// Section names inside the io::Checkpoint container.
constexpr const char* kSecMeta = "meta";
constexpr const char* kSecTower = "tower";
constexpr const char* kSecReport = "report";
constexpr const char* kSecOracle = "oracle";
constexpr const char* kSecBoard = "board";
constexpr const char* kSecInjector = "injector";
constexpr const char* kSecMetrics = "metrics";
constexpr const char* kSecHarness = "harness";

void write_u64_vec(BinWriter& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (const auto x : v) w.u64(x);
}

std::vector<std::uint64_t> read_u64_vec(BinReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u64());
  return v;
}

void write_size_vec(BinWriter& w, const std::vector<std::size_t>& v) {
  w.u64(v.size());
  for (const auto x : v) w.u64(x);
}

std::vector<std::size_t> read_size_vec(BinReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::size_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(static_cast<std::size_t>(r.u64()));
  return v;
}

void write_u8_vec(BinWriter& w, const std::vector<std::uint8_t>& v) {
  w.u64(v.size());
  for (const auto x : v) w.u8(x);
}

std::vector<std::uint8_t> read_u8_vec(BinReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::uint8_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u8());
  return v;
}

void write_bitvec_vec(BinWriter& w, const std::vector<bits::BitVector>& v) {
  w.u64(v.size());
  for (const auto& x : v) w.bitvec(x);
}

std::vector<bits::BitVector> read_bitvec_vec(BinReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<bits::BitVector> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.bitvec());
  return v;
}

}  // namespace

std::string RunCheckpoint::harness_value(const std::string& key) const {
  for (const auto& [k, v] : harness) {
    if (k == key) return v;
  }
  return {};
}

void write_snapshot(BinWriter& w, const obs::Snapshot& snap) {
  w.u64(snap.counters.size());
  for (const auto& [name, v] : snap.counters) {
    w.str(name);
    w.u64(v);
  }
  w.u64(snap.gauges.size());
  for (const auto& [name, v] : snap.gauges) {
    w.str(name);
    w.i64(v);
  }
  w.u64(snap.histograms.size());
  for (const auto& [name, h] : snap.histograms) {
    w.str(name);
    write_u64_vec(w, h.bounds);
    write_u64_vec(w, h.buckets);
    w.u64(h.sum);
    w.u64(h.count);
  }
}

obs::Snapshot read_snapshot(BinReader& r) {
  obs::Snapshot snap;
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    std::string name = r.str();
    snap.counters.emplace(std::move(name), r.u64());
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    std::string name = r.str();
    snap.gauges.emplace(std::move(name), r.i64());
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    std::string name = r.str();
    obs::HistogramData h;
    h.bounds = read_u64_vec(r);
    h.buckets = read_u64_vec(r);
    h.sum = r.u64();
    h.count = r.u64();
    snap.histograms.emplace(std::move(name), std::move(h));
  }
  return snap;
}

void write_run_report(BinWriter& w, const RunReport& report) {
  w.u8(static_cast<std::uint8_t>(report.algo));
  write_bitvec_vec(w, report.outputs);
  w.u64(report.rounds);
  w.u64(report.total_probes);
  w.u8(static_cast<std::uint8_t>(report.branch));
  write_size_vec(w, report.chosen_d);
  write_size_vec(w, report.guesses);
  w.u64(report.phases.size());
  for (const auto& ph : report.phases) {
    w.f64(ph.alpha);
    w.u64(ph.rounds);
    w.u64(ph.total_probes);
  }
  w.u64(report.timeline.size());
  for (const auto& cp : report.timeline) {
    w.str(cp.label);
    w.u64(cp.rounds);
    w.u64(cp.total_probes);
    w.f64(cp.max_disc);
    w.f64(cp.mean_disc);
  }
  write_snapshot(w, report.metrics);
  w.u64(report.degraded.quarantined.size());
  for (const auto p : report.degraded.quarantined) w.u64(p);
  w.u64(report.degraded.unmet_phases.size());
  for (const auto& ph : report.degraded.unmet_phases) w.str(ph);
}

RunReport read_run_report(BinReader& r) {
  RunReport report;
  report.algo = static_cast<RunReport::Algo>(r.u8());
  report.outputs = read_bitvec_vec(r);
  report.rounds = r.u64();
  report.total_probes = r.u64();
  report.branch = static_cast<Branch>(r.u8());
  report.chosen_d = read_size_vec(r);
  report.guesses = read_size_vec(r);
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    AnytimePhase ph;
    ph.alpha = r.f64();
    ph.rounds = r.u64();
    ph.total_probes = r.u64();
    report.phases.push_back(ph);
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    PhaseCheckpoint cp;
    cp.label = r.str();
    cp.rounds = r.u64();
    cp.total_probes = r.u64();
    cp.max_disc = r.f64();
    cp.mean_disc = r.f64();
    report.timeline.push_back(std::move(cp));
  }
  report.metrics = read_snapshot(r);
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    report.degraded.quarantined.push_back(static_cast<PlayerId>(r.u64()));
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    report.degraded.unmet_phases.push_back(r.str());
  }
  return report;
}

std::string encode_run_checkpoint(const RunCheckpoint& ckpt) {
  io::Checkpoint cp;
  {
    BinWriter w;
    w.str(ckpt.algo);
    w.f64(ckpt.alpha);
    w.u64(ckpt.players);
    w.u64(ckpt.objects);
    w.u64(ckpt.seq);
    w.u64(ckpt.cum_rounds);
    w.u64(ckpt.recorder_clock);
    cp.set(kSecMeta, w.take());
  }
  {
    BinWriter w;
    w.u64(ckpt.next_guess);
    w.u64(ckpt.versions.size());
    for (const auto& v : ckpt.versions) write_bitvec_vec(w, v);
    write_u64_vec(w, ckpt.before);
    w.u64(ckpt.probes_before);
    for (const auto s : ckpt.rng_state) w.u64(s);
    cp.set(kSecTower, w.take());
  }
  {
    BinWriter w;
    write_run_report(w, ckpt.partial);
    cp.set(kSecReport, w.take());
  }
  {
    BinWriter w;
    write_u64_vec(w, ckpt.oracle.invocations);
    write_u64_vec(w, ckpt.oracle.charged);
    write_bitvec_vec(w, ckpt.oracle.probed);
    write_bitvec_vec(w, ckpt.oracle.values);
    cp.set(kSecOracle, w.take());
  }
  {
    BinWriter w;
    w.u64(ckpt.board.size());
    for (const auto& ch : ckpt.board) {
      w.str(ch.channel);
      w.u64(ch.posts.size());
      for (const auto& [p, v] : ch.posts) {
        w.u64(p);
        w.bitvec(v);
      }
    }
    cp.set(kSecBoard, w.take());
  }
  if (ckpt.has_injector) {
    BinWriter w;
    write_u64_vec(w, ckpt.injector.attempts);
    write_u64_vec(w, ckpt.injector.post_seq);
    write_u8_vec(w, ckpt.injector.down);
    write_u8_vec(w, ckpt.injector.degraded);
    write_u8_vec(w, ckpt.injector.orphaned);
    write_u8_vec(w, ckpt.injector.was_crashed);
    write_u8_vec(w, ckpt.injector.was_recovered);
    w.u64(ckpt.injector.probe_failures);
    w.u64(ckpt.injector.retries);
    w.u64(ckpt.injector.fallback_reads);
    w.u64(ckpt.injector.posts_dropped);
    w.u64(ckpt.injector.posts_delayed);
    cp.set(kSecInjector, w.take());
  }
  if (ckpt.metrics_enabled) {
    BinWriter w;
    write_snapshot(w, ckpt.metrics);
    cp.set(kSecMetrics, w.take());
  }
  {
    BinWriter w;
    auto harness = ckpt.harness;
    std::sort(harness.begin(), harness.end());
    w.u64(harness.size());
    for (const auto& [k, v] : harness) {
      w.str(k);
      w.str(v);
    }
    cp.set(kSecHarness, w.take());
  }
  return cp.encode();
}

RunCheckpoint decode_run_checkpoint(std::string_view bytes) {
  const io::Checkpoint cp = io::Checkpoint::decode(bytes);
  RunCheckpoint ckpt;
  {
    BinReader r(cp.require(kSecMeta), "checkpoint meta");
    ckpt.algo = r.str();
    ckpt.alpha = r.f64();
    ckpt.players = r.u64();
    ckpt.objects = r.u64();
    ckpt.seq = r.u64();
    ckpt.cum_rounds = r.u64();
    ckpt.recorder_clock = r.u64();
  }
  {
    BinReader r(cp.require(kSecTower), "checkpoint tower");
    ckpt.next_guess = static_cast<std::size_t>(r.u64());
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
      ckpt.versions.push_back(read_bitvec_vec(r));
    }
    ckpt.before = read_u64_vec(r);
    ckpt.probes_before = r.u64();
    for (auto& s : ckpt.rng_state) s = r.u64();
  }
  {
    BinReader r(cp.require(kSecReport), "checkpoint report");
    ckpt.partial = read_run_report(r);
  }
  {
    BinReader r(cp.require(kSecOracle), "checkpoint oracle");
    ckpt.oracle.invocations = read_u64_vec(r);
    ckpt.oracle.charged = read_u64_vec(r);
    ckpt.oracle.probed = read_bitvec_vec(r);
    ckpt.oracle.values = read_bitvec_vec(r);
  }
  {
    BinReader r(cp.require(kSecBoard), "checkpoint board");
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
      billboard::Billboard::ChannelDump ch;
      ch.channel = r.str();
      for (std::uint64_t k = 0, np = r.u64(); k < np; ++k) {
        const auto p = static_cast<matrix::PlayerId>(r.u64());
        ch.posts.emplace_back(p, r.bitvec());
      }
      ckpt.board.push_back(std::move(ch));
    }
  }
  if (cp.has(kSecInjector)) {
    ckpt.has_injector = true;
    BinReader r(cp.require(kSecInjector), "checkpoint injector");
    ckpt.injector.attempts = read_u64_vec(r);
    ckpt.injector.post_seq = read_u64_vec(r);
    ckpt.injector.down = read_u8_vec(r);
    ckpt.injector.degraded = read_u8_vec(r);
    ckpt.injector.orphaned = read_u8_vec(r);
    ckpt.injector.was_crashed = read_u8_vec(r);
    ckpt.injector.was_recovered = read_u8_vec(r);
    ckpt.injector.probe_failures = r.u64();
    ckpt.injector.retries = r.u64();
    ckpt.injector.fallback_reads = r.u64();
    ckpt.injector.posts_dropped = r.u64();
    ckpt.injector.posts_delayed = r.u64();
  }
  if (cp.has(kSecMetrics)) {
    ckpt.metrics_enabled = true;
    BinReader r(cp.require(kSecMetrics), "checkpoint metrics");
    ckpt.metrics = read_snapshot(r);
  }
  {
    BinReader r(cp.require(kSecHarness), "checkpoint harness");
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
      std::string k = r.str();
      std::string v = r.str();
      ckpt.harness.emplace_back(std::move(k), std::move(v));
    }
  }
  return ckpt;
}

void save_run_checkpoint(const std::string& path, const RunCheckpoint& ckpt) {
  io::atomic_write_file(path, encode_run_checkpoint(ckpt));
}

RunCheckpoint load_run_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw io::CheckpointError("checkpoint: cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) throw io::CheckpointError("checkpoint: read error on " + path);
  try {
    return decode_run_checkpoint(bytes);
  } catch (const io::CheckpointError& e) {
    throw io::CheckpointError(std::string(e.what()) + " [" + path + "]");
  }
}

}  // namespace tmwia::core
