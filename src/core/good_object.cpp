#include "tmwia/core/good_object.hpp"

#include <algorithm>

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/rng/partition.hpp"

namespace tmwia::core {

GoodObjectResult good_object(billboard::ProbeOracle& oracle, const GoodObjectParams& params,
                             rng::Rng rng) {
  const std::size_t n = oracle.players();
  const std::size_t m = oracle.objects();
  const std::size_t max_rounds = params.max_rounds != 0 ? params.max_rounds : 4 * m;

  GoodObjectResult res;
  res.found.assign(n, std::nullopt);
  const auto probes_before = oracle.total_invocations();

  // The billboard's recommendation list: distinct objects someone
  // marked good, in posting order. Sampling uniformly from it is the
  // "exploit" arm.
  std::vector<ObjectId> recommendations;
  bits::BitVector recommended(m);

  // Per-player probe history so "explore" draws fresh objects. A
  // shuffled private permutation gives uniform-without-replacement
  // exploration in O(1) per draw.
  std::vector<std::vector<ObjectId>> explore_order(n);
  std::vector<std::size_t> explore_pos(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    auto& order = explore_order[p];
    order.resize(m);
    for (std::size_t o = 0; o < m; ++o) order[o] = static_cast<ObjectId>(o);
    rng::Rng prng = rng.split(0x60D, p);
    rng::shuffle(order, prng);
  }

  std::vector<PlayerId> unsatisfied;
  for (std::size_t p = 0; p < n; ++p) unsatisfied.push_back(static_cast<PlayerId>(p));

  std::size_t round = 0;
  while (!unsatisfied.empty() && round < max_rounds) {
    ++round;
    // Recommendations posted this round become visible next round
    // (billboard semantics: everyone reads, then everyone writes).
    std::vector<ObjectId> new_recs;
    std::vector<PlayerId> still;
    still.reserve(unsatisfied.size());

    for (PlayerId p : unsatisfied) {
      rng::Rng prng = rng.split(round, p);
      ObjectId target;
      const bool explore =
          recommendations.empty() || prng.uniform01() < params.explore_prob;
      if (explore) {
        if (explore_pos[p] >= m) {
          continue;  // probed everything, likes nothing
        }
        target = explore_order[p][explore_pos[p]++];
      } else {
        target = recommendations[prng.uniform(recommendations.size())];
      }

      if (oracle.probe(p, target)) {
        res.found[p] = target;
        if (!recommended.get(target)) {
          recommended.set(target, true);
          new_recs.push_back(target);
        }
      } else {
        still.push_back(p);
      }
    }
    for (ObjectId o : new_recs) recommendations.push_back(o);
    unsatisfied.swap(still);

    // Players whose exploration is exhausted and who cannot be helped
    // by recommendations would loop forever; drop them once they have
    // probed every object.
    unsatisfied.erase(std::remove_if(unsatisfied.begin(), unsatisfied.end(),
                                     [&](PlayerId p) { return explore_pos[p] >= m; }),
                      unsatisfied.end());
  }

  res.rounds = round;
  res.total_probes = oracle.total_invocations() - probes_before;
  res.unsatisfied = unsatisfied.size();
  return res;
}

}  // namespace tmwia::core
