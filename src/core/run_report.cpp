#include "tmwia/core/find_preferences.hpp"

#include <cstdio>

#include "tmwia/bits/kernels.hpp"

namespace tmwia::core {
namespace {

const char* algo_name(RunReport::Algo a) {
  switch (a) {
    case RunReport::Algo::kFixedD: return "fixed_d";
    case RunReport::Algo::kUnknownD: return "unknown_d";
    case RunReport::Algo::kAnytime: return "anytime";
    case RunReport::Algo::kSupervised: return "supervised";
    case RunReport::Algo::kServe: return "serve";
  }
  return "?";
}

const char* branch_json_name(Branch b) {
  switch (b) {
    case Branch::kZeroRadius: return "zero";
    case Branch::kSmallRadius: return "small";
    case Branch::kLargeRadius: return "large";
  }
  return "?";
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_f64(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string RunReport::to_json() const {
  std::string out = "{\"algo\":\"";
  out += algo_name(algo);
  out += "\",\"players\":";
  out += std::to_string(outputs.size());
  out += ",\"rounds\":";
  out += std::to_string(rounds);
  out += ",\"total_probes\":";
  out += std::to_string(total_probes);
  // The resolved (never kAuto) distance-kernel backend the run used.
  // Provenance only: backends compute identical integers, so parity
  // tooling diffing reports across backends strips this one field.
  out += ",\"kernel\":\"";
  out += bits::kernels::backend_name(bits::kernels::active_backend());
  out.push_back('"');
  switch (algo) {
    case Algo::kFixedD:
      out += ",\"branch\":\"";
      out += branch_json_name(branch);
      out.push_back('"');
      break;
    case Algo::kUnknownD: {
      out += ",\"guesses\":[";
      for (std::size_t i = 0; i < guesses.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += std::to_string(guesses[i]);
      }
      out += "],\"chosen_d\":[";
      for (std::size_t i = 0; i < chosen_d.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += std::to_string(chosen_d[i]);
      }
      out.push_back(']');
      break;
    }
    case Algo::kAnytime: {
      out += ",\"phases\":[";
      for (std::size_t i = 0; i < phases.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += "{\"alpha\":";
        append_f64(out, phases[i].alpha);
        out += ",\"rounds\":";
        out += std::to_string(phases[i].rounds);
        out += ",\"total_probes\":";
        out += std::to_string(phases[i].total_probes);
        out.push_back('}');
      }
      out.push_back(']');
      break;
    }
    case Algo::kSupervised:
      break;  // phase detail lives in the timeline; degraded below
    case Algo::kServe:
      break;  // serve detail lives in the profile/slo sections below
  }
  out += ",\"timeline\":[";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const auto& cp = timeline[i];
    if (i != 0) out.push_back(',');
    out += "{\"label\":";
    append_json_string(out, cp.label);
    out += ",\"rounds\":";
    out += std::to_string(cp.rounds);
    out += ",\"total_probes\":";
    out += std::to_string(cp.total_probes);
    if (cp.max_disc >= 0.0) {
      out += ",\"max_disc\":";
      append_f64(out, cp.max_disc);
      out += ",\"mean_disc\":";
      append_f64(out, cp.mean_disc);
    }
    out.push_back('}');
  }
  out.push_back(']');
  if (!degraded.empty()) {
    out += ",\"degraded\":{\"quarantined\":[";
    for (std::size_t i = 0; i < degraded.quarantined.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += std::to_string(degraded.quarantined[i]);
    }
    out += "],\"unmet_phases\":[";
    for (std::size_t i = 0; i < degraded.unmet_phases.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_json_string(out, degraded.unmet_phases[i]);
    }
    out += "]}";
  }
  if (!profile_json.empty()) {
    out += ",\"profile\":";
    out += profile_json;
  }
  if (!slo_json.empty()) {
    out += ",\"slo\":";
    out += slo_json;
  }
  out.push_back('}');
  return out;
}

}  // namespace tmwia::core
