#include "tmwia/core/small_radius.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/rng/partition.hpp"

namespace tmwia::core {

std::size_t small_radius_parts(std::size_t D, const Params& params) {
  if (D == 0) return 1;
  const double s = params.sr_s_mult * std::pow(static_cast<double>(D), 1.5);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(s)));
}

SmallRadiusResult small_radius(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                               const std::vector<PlayerId>& players,
                               const std::vector<std::uint32_t>& objects, double alpha,
                               std::size_t D, const Params& params, rng::Rng rng,
                               std::size_t n_total) {
  if (players.empty()) return {};
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("small_radius: alpha must be in (0, 1]");
  }

  SmallRadiusResult res;
  const std::size_t m = objects.size();
  const std::size_t K =
      params.sr_K != 0
          ? params.sr_K
          : static_cast<std::size_t>(
                std::ceil(std::log2(static_cast<double>(std::max<std::size_t>(n_total, 4)))));
  // More parts than objects only creates empty parts.
  const std::size_t s = std::min(small_radius_parts(D, params), std::max<std::size_t>(1, m));
  res.parts = s;
  res.iterations = K;

  const double alpha_zr = alpha / params.sr_vote_div;

  // Degradation: crashed/degraded players are excluded from votes and
  // skipped when probing; quorum thresholds are taken over survivors.
  auto* injector = oracle.fault_injector();
  const auto failed = [injector](PlayerId p) {
    return injector != nullptr && injector->is_failed(p);
  };

  // u[t][i] = player i's stitched candidate from iteration t.
  std::vector<std::vector<bits::BitVector>> stitched(
      K, std::vector<bits::BitVector>(players.size(), bits::BitVector(m)));

  for (std::size_t t = 0; t < K; ++t) {
    // Step 1a: random partition of object *positions* into s parts
    // (shared coins — everyone sees the same partition).
    rng::Rng part_rng = rng.split(t, 0xA11);
    const auto partition = rng::random_partition(m, s, part_rng);

    for (std::size_t i = 0; i < s; ++i) {
      const auto& positions = partition.parts[i];
      if (positions.empty()) continue;
      std::vector<std::uint32_t> part_objects;
      part_objects.reserve(positions.size());
      for (std::uint32_t pos : positions) part_objects.push_back(objects[pos]);

      // Step 1b: Zero Radius on this part with frequency alpha/5.
      const std::string prefix = "sr/" + std::to_string(t) + "/" + std::to_string(i);
      const auto zr_out = zero_radius_bits(oracle, board, players, part_objects, alpha_zr,
                                           params, rng.split(t, 0xB0B, i), prefix);

      // U_i: vectors output by at least alpha/5 of the *surviving*
      // players (quorum over survivors; identical to the paper's
      // threshold when nobody failed).
      std::vector<bits::BitVector> votable;
      votable.reserve(players.size());
      for (std::size_t pi = 0; pi < players.size(); ++pi) {
        if (!failed(players[pi])) votable.push_back(zr_out[pi]);
      }
      const auto min_votes = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(
                 alpha * static_cast<double>(votable.size()) / params.sr_vote_div)));
      const auto voted = billboard::tally(votable, static_cast<std::uint32_t>(min_votes));
      std::vector<bits::BitVector> candidates;
      candidates.reserve(voted.size());
      for (const auto& vv : voted) candidates.push_back(vv.vec);
      // Per-part community size; serial drain point for the recorder.
      if (auto* rec = obs::recorder()) {
        rec->note("sr.part", votable.size(), candidates.size());
      }

      // Every player scatters through the same position set: build the
      // part's mask once and use the word-parallel deposit, unless the
      // part is so sparse that per-coordinate writes touch fewer words.
      bits::BitVector pos_mask;
      const bool use_mask = positions.size() >= bits::BitVector::word_count(m) / 2;
      if (use_mask) {
        pos_mask = bits::BitVector(m);
        for (std::uint32_t pos : positions) pos_mask.set(pos, true);
      }

      // Step 1c: each player adopts the closest popular vector within
      // distance D (falling back to its own Zero Radius output when no
      // vector met the popularity bar — that player is not typical in
      // this part and its pick is corrected by step 2 anyway). Failed
      // players stop probing; their stitched rows keep the Zero Radius
      // best effort.
      engine::parallel_for(0, players.size(), [&](std::size_t pi) {
        const PlayerId p = players[pi];
        const bits::BitVector* chosen = &zr_out[pi];
        if (!candidates.empty() && !failed(p)) {
          if (candidates.size() == 1) {
            // A quorum vote usually leaves one popular vector; Select
            // over a singleton probes nothing and picks it — skip the
            // call (identical output and probe count).
            chosen = &candidates[0];
          } else {
            const auto sel = select_closest(candidates, D, [&](std::uint32_t j) {
              return oracle.probe_resilient(p, part_objects[j]);
            });
            chosen = &candidates[sel.index];
          }
        }
        if (use_mask) {
          stitched[t][pi].scatter_masked(*chosen, pos_mask);
        } else {
          stitched[t][pi].scatter(*chosen, positions);
        }
      });
    }
  }

  // Step 2: every player picks the best of its K stitched candidates
  // with Select bound 5D.
  const auto final_bound = static_cast<std::size_t>(
      std::ceil(params.sr_final_mult * static_cast<double>(D)));
  res.outputs.assign(players.size(), bits::BitVector(m));
  engine::parallel_for(0, players.size(), [&](std::size_t pi) {
    const PlayerId p = players[pi];
    if (failed(p)) {
      // Can't probe to compare iterations: keep the first iteration's
      // best effort rather than an empty row.
      res.outputs[pi] = stitched[0][pi];
      return;
    }
    std::vector<bits::BitVector> candidates;
    candidates.reserve(K);
    // stitched is dead after this pass; moving the rows saves K
    // heap-backed copies per player.
    for (std::size_t t = 0; t < K; ++t) candidates.push_back(std::move(stitched[t][pi]));
    const auto sel = select_closest(candidates, final_bound, [&](std::uint32_t j) {
      return oracle.probe_resilient(p, objects[j]);
    });
    res.outputs[pi] = std::move(candidates[sel.index]);
  });

  return res;
}

}  // namespace tmwia::core
