#include "tmwia/core/budget.hpp"

#include <algorithm>
#include <cmath>

#include "tmwia/core/small_radius.hpp"
#include "tmwia/core/zero_radius.hpp"

namespace tmwia::core {
namespace {

double log2n(std::size_t n) {
  return std::log2(static_cast<double>(std::max<std::size_t>(n, 4)));
}

double effective_K(std::size_t n, const Params& params) {
  return params.sr_K != 0 ? static_cast<double>(params.sr_K) : std::ceil(log2n(n));
}

}  // namespace

double estimated_zero_radius_rounds(double alpha, std::size_t n, std::size_t m,
                                    const Params& params) {
  // Leaf probes: a leaf has at most the threshold's worth of objects on
  // the player's path (halving from m, capped at m itself), plus one
  // Select(<= 2/(vote_frac*alpha) candidates, D = 0) per level: each
  // probe there eliminates at least one candidate.
  const double leaf = std::min<double>(
      static_cast<double>(m),
      2.0 * static_cast<double>(zero_radius_leaf_threshold(n, alpha, params)));
  const double candidates_per_level = 1.0 / (params.zr_vote_frac * alpha);
  return leaf + log2n(n) * candidates_per_level;
}

double estimated_small_radius_rounds(double alpha, std::size_t D, std::size_t n,
                                     std::size_t m, const Params& params) {
  const double K = effective_K(n, params);
  const double s = static_cast<double>(
      std::min(small_radius_parts(D, params), std::max<std::size_t>(1, m)));
  // Per iteration: s Zero Radius runs at alpha/5 over m/s objects each
  // (their leaves are capped by the part size), plus s Selects with
  // bound D over <= 5/alpha candidates, plus the final Select.
  const double part = static_cast<double>(m) / s;
  const double zr_leaf = std::min(
      part, 2.0 * static_cast<double>(zero_radius_leaf_threshold(
                      n, alpha / params.sr_vote_div, params)));
  const double per_part =
      zr_leaf + log2n(n) * params.sr_vote_div / (params.zr_vote_frac * alpha);
  const double select_cost =
      (params.sr_vote_div / alpha) * static_cast<double>(D + 1);
  const double final_select =
      K * (params.sr_final_mult * static_cast<double>(D) + 1.0);
  return K * s * (per_part + select_cost) + final_select;
}

double estimated_large_radius_rounds(double alpha, std::size_t D, std::size_t n,
                                     std::size_t m, const Params& params) {
  const double ln = log2n(n);
  const double L = std::max(
      1.0, std::ceil(params.lr_parts_c * static_cast<double>(D) / std::max(1.0, ln)));
  const double lambda =
      std::min<double>(static_cast<double>(D), std::ceil(params.lr_lambda_mult * ln));
  // Step 2: players join `copies` groups, each group runs Small Radius
  // over ~m/L objects with alpha/2 and bound lambda.
  const double copies = std::max(
      1.0, std::ceil(params.lr_players_mult * ln / alpha * L / static_cast<double>(n)));
  const double group_m = static_cast<double>(m) / L;
  const double step2 =
      copies * estimated_small_radius_rounds(
                   alpha / 2.0, static_cast<std::size_t>(lambda), n,
                   static_cast<std::size_t>(std::max(1.0, group_m)), params);
  // Step 4: a Zero Radius over L virtual objects whose probes cost
  // |B| * (select bound + 1) primitive probes each.
  const double coal_D = params.lr_coalesce_mult * std::max(1.0, lambda);
  const double virtual_probe =
      (1.0 / alpha) * (params.lr_select_mult * coal_D + 1.0);
  const double step4 =
      estimated_zero_radius_rounds(alpha, n, static_cast<std::size_t>(L), params) *
      virtual_probe;
  return step2 + step4;
}

double estimated_unknown_d_rounds(double alpha, std::size_t n, std::size_t m,
                                  const Params& params) {
  const double ln = log2n(n);
  const auto small_cutoff =
      static_cast<std::size_t>(std::ceil(params.lr_lambda_mult * ln));

  double total = estimated_zero_radius_rounds(alpha, n, m, params);  // D = 0 guess
  for (std::size_t d = 1; d < m; d *= 2) {
    if (d <= small_cutoff) {
      total += estimated_small_radius_rounds(alpha, d, n, m, params);
    } else {
      total += estimated_large_radius_rounds(alpha, d, n, m, params);
    }
  }
  // The final RSelect over the O(log m) candidates.
  const double guesses = std::floor(std::log2(static_cast<double>(std::max<std::size_t>(
                             m, 2)))) +
                         1.0;
  total += guesses * (guesses - 1.0) / 2.0 * std::ceil(params.rs_c * log2n(n));
  return total;
}

std::optional<double> smallest_alpha_for_budget(std::uint64_t round_budget, std::size_t n,
                                                std::size_t m, const Params& params) {
  std::optional<double> best;
  for (double alpha = 1.0; alpha * static_cast<double>(n) >= 1.0; alpha /= 2.0) {
    if (estimated_unknown_d_rounds(alpha, n, m, params) <=
        static_cast<double>(round_budget)) {
      best = alpha;  // keep halving: smaller alpha = more inclusive
    } else {
      break;  // cost is monotone increasing as alpha shrinks
    }
  }
  return best;
}

}  // namespace tmwia::core
