#include "tmwia/core/select.hpp"

#include <limits>
#include <stdexcept>

#include "tmwia/obs/metrics.hpp"

namespace tmwia::core {
namespace {

// Select runs inside parallel player code, so it reports through
// sharded counters only (summation commutes; see obs/metrics.hpp).
struct SelectMetrics {
  obs::MetricsRegistry::Counter calls =
      obs::MetricsRegistry::global().counter("core.select.calls");
  obs::MetricsRegistry::Counter probes =
      obs::MetricsRegistry::global().counter("core.select.probes");
  obs::MetricsRegistry::Histogram candidates = obs::MetricsRegistry::global().histogram(
      "core.select.candidates", obs::MetricsRegistry::pow2_bounds(20));
};

const SelectMetrics& select_metrics() {
  static const SelectMetrics m;
  return m;
}

}  // namespace

SelectResult select_closest(const std::vector<bits::TriVector>& candidates, std::size_t D,
                            const ProbeFn& probe) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_closest: empty candidate set");
  }
  const std::size_t k = candidates.size();
  const auto& metrics = select_metrics();
  metrics.calls.inc();
  metrics.candidates.observe(k);
  const std::size_t m = candidates[0].size();
  for (const auto& c : candidates) {
    if (c.size() != m) throw std::invalid_argument("select_closest: ragged candidates");
  }

  SelectResult res;
  std::vector<bool> alive(k, true);
  std::vector<std::size_t> disagreements(k, 0);

  // X(V) only shrinks as vectors are removed, so a monotone cursor over
  // coordinates visits every distinguishing coordinate exactly once.
  auto distinguishes = [&](std::size_t j) {
    bool saw0 = false;
    bool saw1 = false;
    for (std::size_t i = 0; i < k; ++i) {
      if (!alive[i]) continue;
      switch (candidates[i].get(j)) {
        case bits::Tri::kZero:
          saw0 = true;
          break;
        case bits::Tri::kOne:
          saw1 = true;
          break;
        case bits::Tri::kUnknown:
          break;
      }
      if (saw0 && saw1) return true;
    }
    return false;
  };

  std::size_t alive_count = k;
  for (std::size_t j = 0; j < m && alive_count > 1; ++j) {
    if (!distinguishes(j)) continue;
    const bool bit = probe(static_cast<std::uint32_t>(j));
    ++res.probes;
    for (std::size_t i = 0; i < k; ++i) {
      if (!alive[i]) continue;
      const bits::Tri t = candidates[i].get(j);
      if (t == bits::Tri::kUnknown) continue;
      if ((t == bits::Tri::kOne) != bit) {
        if (++disagreements[i] > D) {
          alive[i] = false;
          --alive_count;
        }
      }
    }
  }

  // Step 2: fewest observed disagreements wins; ties break to the
  // lexicographically first vector. Elimination always leaves at least
  // one survivor (see SelectResult doc), and survivors have strictly
  // fewer observed disagreements than eliminated candidates, so
  // minimizing over everyone is equivalent to minimizing over the
  // survivors.
  std::size_t best_i = 0;
  for (std::size_t i = 1; i < k; ++i) {
    if (disagreements[i] < disagreements[best_i] ||
        (disagreements[i] == disagreements[best_i] &&
         candidates[i].lex_compare(candidates[best_i]) < 0)) {
      best_i = i;
    }
  }
  res.index = best_i;
  res.observed_disagreements = disagreements[best_i];
  metrics.probes.add(res.probes);
  return res;
}

SelectResult select_closest(const std::vector<bits::BitVector>& candidates, std::size_t D,
                            const ProbeFn& probe) {
  std::vector<bits::TriVector> tri;
  tri.reserve(candidates.size());
  for (const auto& c : candidates) tri.push_back(bits::TriVector::from_bits(c));
  return select_closest(tri, D, probe);
}

}  // namespace tmwia::core
