#include "tmwia/core/select.hpp"

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "tmwia/bits/kernels.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/profile.hpp"

namespace tmwia::core {
namespace {

// Select runs inside parallel player code, so it reports through
// sharded counters only (summation commutes; see obs/metrics.hpp).
struct SelectMetrics {
  obs::MetricsRegistry::Counter calls =
      obs::MetricsRegistry::global().counter("core.select.calls");
  obs::MetricsRegistry::Counter probes =
      obs::MetricsRegistry::global().counter("core.select.probes");
  obs::MetricsRegistry::Histogram candidates = obs::MetricsRegistry::global().histogram(
      "core.select.candidates", obs::MetricsRegistry::pow2_bounds(20));
};

const SelectMetrics& select_metrics() {
  static const SelectMetrics m;
  return m;
}

// Both overloads share one engine. The candidate set is abstracted as
// two word-planes per candidate: value words and known words (known ==
// nullptr means fully known, the BitVector case). The probe order is
// identical to the historical per-coordinate scan: a monotone cursor
// visits coordinates ascending and probes exactly those that
// distinguish among the currently-alive candidates — but instead of an
// O(k) scan per coordinate, alive candidates are aggregated into two
// word-parallel masks (any0 = some alive candidate asserts 0, any1 =
// some alive candidate asserts 1) whose AND marks every distinguishing
// coordinate of the current alive set at once. The masks only change
// when a candidate is eliminated (at most k-1 times), so rebuilds are
// O(k * words) in total, versus O(m * k) single-bit reads before.
struct CandidateView {
  const std::uint64_t* value;
  const std::uint64_t* known;  // nullptr = all coordinates known
};

// Select runs millions of times per experiment on small candidate
// sets; per-call heap buffers would dominate it. Each thread keeps one
// scratch set that is re-sized (capacity retained) per call. Probe
// callbacks never re-enter Select (the only nested-Select shape —
// Large Radius virtual probes — bottoms out in plain oracle probes),
// which makes a single buffer per thread safe.
struct SelectScratch {
  std::vector<CandidateView> views;
  std::vector<bool> alive;
  std::vector<std::size_t> disagreements;
  std::vector<std::uint64_t> any0;
  std::vector<std::uint64_t> any1;
};

SelectScratch& select_scratch() {
  thread_local SelectScratch s;
  return s;
}

template <typename LexCmp>
SelectResult select_engine(const std::vector<CandidateView>& cand, std::size_t m,
                           std::size_t nw, std::size_t D, const ProbeFn& probe,
                           const LexCmp& lex_less) {
  const std::size_t k = cand.size();
  SelectResult res;
  auto& scratch = select_scratch();
  auto& alive = scratch.alive;
  auto& disagreements = scratch.disagreements;
  auto& any0 = scratch.any0;
  auto& any1 = scratch.any1;
  alive.assign(k, true);
  disagreements.assign(k, 0);
  any0.resize(nw);
  any1.resize(nw);
  const auto rebuild = [&] {
    std::fill(any0.begin(), any0.end(), 0);
    std::fill(any1.begin(), any1.end(), 0);
    for (std::size_t i = 0; i < k; ++i) {
      if (!alive[i]) continue;
      const auto& c = cand[i];
      if (c.known == nullptr) {
        for (std::size_t w = 0; w < nw; ++w) {
          any0[w] |= ~c.value[w];
          any1[w] |= c.value[w];
        }
      } else {
        for (std::size_t w = 0; w < nw; ++w) {
          any0[w] |= c.known[w] & ~c.value[w];
          any1[w] |= c.known[w] & c.value[w];
        }
      }
    }
    // For fully-known candidates ~value spills ones into tail bits
    // beyond m; mask them so the cursor never visits a phantom
    // coordinate.
    const std::size_t rem = m % 64;
    if (rem != 0 && nw > 0) {
      const std::uint64_t tail = (std::uint64_t{1} << rem) - 1;
      any0[nw - 1] &= tail;
      any1[nw - 1] &= tail;
    }
  };
  rebuild();

  std::size_t alive_count = k;
  for (std::size_t w = 0; w < nw && alive_count > 1; ++w) {
    std::uint64_t dmask = any0[w] & any1[w];
    while (dmask != 0 && alive_count > 1) {
      const int bit_pos = std::countr_zero(dmask);
      const std::size_t j = w * 64 + static_cast<std::size_t>(bit_pos);
      const bool bit = probe(static_cast<std::uint32_t>(j));
      ++res.probes;
      const std::uint64_t jbit = std::uint64_t{1} << bit_pos;
      bool eliminated = false;
      for (std::size_t i = 0; i < k; ++i) {
        if (!alive[i]) continue;
        const auto& c = cand[i];
        if (c.known != nullptr && (c.known[w] & jbit) == 0) continue;
        if (((c.value[w] & jbit) != 0) != bit) {
          if (++disagreements[i] > D) {
            alive[i] = false;
            --alive_count;
            eliminated = true;
          }
        }
      }
      // Coordinates at or below j are done; eliminations shrink the
      // distinguishing set, so refresh the mask before moving on.
      const std::uint64_t done =
          bit_pos == 63 ? ~std::uint64_t{0} : ((jbit << 1) - 1);
      if (eliminated) rebuild();
      dmask = any0[w] & any1[w] & ~done;
    }
  }

  // Step 2: fewest observed disagreements wins; ties break to the
  // lexicographically first vector. Elimination always leaves at least
  // one survivor (see SelectResult doc), and survivors have strictly
  // fewer observed disagreements than eliminated candidates, so
  // minimizing over everyone is equivalent to minimizing over the
  // survivors.
  std::size_t best_i = 0;
  for (std::size_t i = 1; i < k; ++i) {
    if (disagreements[i] < disagreements[best_i] ||
        (disagreements[i] == disagreements[best_i] && lex_less(i, best_i) < 0)) {
      best_i = i;
    }
  }
  res.index = best_i;
  res.observed_disagreements = disagreements[best_i];
  return res;
}

// Adoption steps call Select millions of times on one- or two-element
// candidate sets (a quorum vote usually leaves a single popular
// vector). These shapes skip the engine: k == 1 probes nothing by
// definition, and for k == 2 the distinguishing mask is just a ^ b
// word-by-word (tail bits cancel by the storage invariant), each probe
// disagrees with exactly one candidate, and the first elimination ends
// the scan — byte-for-byte the same probe sequence and result the
// engine produces.
SelectResult select_pair(const bits::BitVector& a, const bits::BitVector& b,
                         std::size_t D, const ProbeFn& probe) {
  SelectResult res;
  const std::uint64_t* aw = a.words().data();
  const std::uint64_t* bw = b.words().data();
  const std::size_t nw = a.words().size();
  std::size_t da = 0;
  std::size_t db = 0;
  for (std::size_t w = 0; w < nw; ++w) {
    std::uint64_t dmask = aw[w] ^ bw[w];
    while (dmask != 0) {
      const int bit_pos = std::countr_zero(dmask);
      dmask &= dmask - 1;
      const bool bit =
          probe(static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(bit_pos)));
      ++res.probes;
      if (((aw[w] >> bit_pos) & 1u) == static_cast<std::uint64_t>(bit)) {
        if (++db > D) {
          res.index = 0;
          res.observed_disagreements = da;
          return res;
        }
      } else {
        if (++da > D) {
          res.index = 1;
          res.observed_disagreements = db;
          return res;
        }
      }
    }
  }
  if (db < da || (db == da && b.lex_compare(a) < 0)) {
    res.index = 1;
    res.observed_disagreements = db;
  } else {
    res.index = 0;
    res.observed_disagreements = da;
  }
  return res;
}

}  // namespace

SelectResult select_closest(const std::vector<bits::TriVector>& candidates, std::size_t D,
                            const ProbeFn& probe) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_closest: empty candidate set");
  }
  const std::size_t k = candidates.size();
  const auto& metrics = select_metrics();
  metrics.calls.inc();
  metrics.candidates.observe(k);
  const std::size_t m = candidates[0].size();
  for (const auto& c : candidates) {
    if (c.size() != m) throw std::invalid_argument("select_closest: ragged candidates");
  }
  if (k == 1) return {};  // no distinguishing coordinates, no probes

  auto& views = select_scratch().views;
  views.clear();
  views.reserve(k);
  for (const auto& c : candidates) {
    views.push_back({c.value_words().data(), c.known_words().data()});
  }
  auto res = select_engine(
      views, m, candidates[0].value_words().size(), D, probe,
      [&](std::size_t a, std::size_t b) {
        return candidates[a].lex_compare(candidates[b]);
      });
  metrics.probes.add(res.probes);
  obs::profile_cost(obs::Cost::kProbes, res.probes);
  return res;
}

SelectResult select_closest(const std::vector<bits::BitVector>& candidates, std::size_t D,
                            const ProbeFn& probe) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_closest: empty candidate set");
  }
  const std::size_t k = candidates.size();
  const auto& metrics = select_metrics();
  metrics.calls.inc();
  metrics.candidates.observe(k);
  const std::size_t m = candidates[0].size();
  for (const auto& c : candidates) {
    if (c.size() != m) throw std::invalid_argument("select_closest: ragged candidates");
  }
  if (k == 1) return {};  // no distinguishing coordinates, no probes
  if (k == 2) {
    auto res = select_pair(candidates[0], candidates[1], D, probe);
    metrics.probes.add(res.probes);
    obs::profile_cost(obs::Cost::kProbes, res.probes);
    return res;
  }

  auto& views = select_scratch().views;
  views.clear();
  views.reserve(k);
  for (const auto& c : candidates) {
    views.push_back({c.words().data(), nullptr});
  }
  auto res = select_engine(views, m, candidates[0].words().size(), D, probe,
                           [&](std::size_t a, std::size_t b) {
                             return candidates[a].lex_compare(candidates[b]);
                           });
  metrics.probes.add(res.probes);
  obs::profile_cost(obs::Cost::kProbes, res.probes);
  return res;
}

}  // namespace tmwia::core
