#include "tmwia/core/bit_space.hpp"

namespace tmwia::core {

std::vector<bits::BitVector> zero_radius_bits(billboard::ProbeOracle& oracle,
                                              billboard::Billboard* board,
                                              const std::vector<PlayerId>& players,
                                              const std::vector<std::uint32_t>& objects,
                                              double alpha, const Params& params,
                                              rng::Rng rng, std::string channel_prefix) {
  BitSpace space(oracle, board, std::move(channel_prefix));
  // BitSpace declares Row = bits::BitVector, so the recursion already
  // produced packed rows — return them as-is.
  return zero_radius(space, players, objects, alpha, params, std::move(rng), players.size());
}

}  // namespace tmwia::core
