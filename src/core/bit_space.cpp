#include "tmwia/core/bit_space.hpp"

namespace tmwia::core {

std::vector<bits::BitVector> zero_radius_bits(billboard::ProbeOracle& oracle,
                                              billboard::Billboard* board,
                                              const std::vector<PlayerId>& players,
                                              const std::vector<std::uint32_t>& objects,
                                              double alpha, const Params& params,
                                              rng::Rng rng, std::string channel_prefix) {
  BitSpace space(oracle, board, std::move(channel_prefix));
  const auto raw =
      zero_radius(space, players, objects, alpha, params, std::move(rng), players.size());
  std::vector<bits::BitVector> out;
  out.reserve(raw.size());
  for (const auto& row : raw) {
    bits::BitVector v(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] != 0) v.set(j, true);
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace tmwia::core
