// Umbrella header: the public API of the tmwia library.
//
// Typical use:
//
//   tmwia::matrix::Instance inst = tmwia::matrix::planted_community(...);
//   tmwia::Session session(inst.matrix);
//   auto report = session.alpha(0.25).seed(seed).run();
//   // report.outputs[p] estimates player p's hidden preference row.
//
// Session wraps the oracle/billboard wiring; the pieces stay public
// (billboard::ProbeOracle, core::find_preferences_unknown_d, ...) for
// callers that need manual control.
//
// tmwia-lint: allow-file(matrix-read-in-strategy) umbrella header:
// aggregates the whole public API, including the harness-side matrix.
#pragma once

#include "tmwia/bits/bitvector.hpp"
#include "tmwia/bits/hamming.hpp"
#include "tmwia/bits/kernels.hpp"
#include "tmwia/bits/rank_select.hpp"
#include "tmwia/bits/trivector.hpp"
#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/billboard/protocol_auditor.hpp"
#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/billboard/strategies.hpp"
#include "tmwia/core/bit_space.hpp"
#include "tmwia/core/budget.hpp"
#include "tmwia/core/coalesce.hpp"
#include "tmwia/core/find_preferences.hpp"
#include "tmwia/core/good_object.hpp"
#include "tmwia/core/large_radius.hpp"
#include "tmwia/core/normalize.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/core/rselect.hpp"
#include "tmwia/core/select.hpp"
#include "tmwia/core/session.hpp"
#include "tmwia/core/small_radius.hpp"
#include "tmwia/core/zero_radius.hpp"
#include "tmwia/core/zero_radius_strategy.hpp"
#include "tmwia/matrix/generators.hpp"
#include "tmwia/matrix/preference_matrix.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/obs/trace.hpp"
#include "tmwia/rng/rng.hpp"
