// The "one good recommendation" problem of Awerbuch, Patt-Shamir,
// Peleg and Tuttle [4] (SODA'05), which this paper generalizes: instead
// of reconstructing the whole preference vector, each player only needs
// to find *some* object it likes. [4] shows simple combinatorial
// algorithms achieve O(m + n log |P|) total probes for any player set P
// sharing a commonly-liked object, with no assumptions on preferences.
//
// We implement the explore/exploit billboard scheme at the heart of
// those algorithms: an unsatisfied player flips a coin each round —
// explore a uniformly random unprobed object, or sample a random
// recommendation (an object some player already marked good) from the
// billboard. One success posts the object; exploitation then spreads it
// through the community in logarithmic time.
//
// This serves as the Fig.-1-adjacent comparator of experiment E12: the
// "single good object" task is exponentially cheaper than full
// reconstruction, which is the gap between [4] and Theorem 1.1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

using matrix::ObjectId;
using matrix::PlayerId;

struct GoodObjectResult {
  /// The liked object each player found (nullopt: none within budget).
  std::vector<std::optional<ObjectId>> found;
  /// Rounds executed (each unsatisfied player probes once per round).
  std::size_t rounds = 0;
  /// Total probes across all players.
  std::uint64_t total_probes = 0;
  /// Players still unsatisfied at the end.
  std::size_t unsatisfied = 0;
};

struct GoodObjectParams {
  /// Probability of exploring a fresh object (vs sampling a posted
  /// recommendation). [4]'s analysis uses a fair coin.
  double explore_prob = 0.5;
  /// Safety cap on rounds; 0 means 4 * m (every player could almost
  /// have probed everything by then).
  std::size_t max_rounds = 0;
};

/// Run the explore/exploit scheme for all players of the oracle.
/// Players that like nothing at all can never be satisfied and simply
/// exhaust their probes; everyone else terminates w.h.p. well before
/// the cap.
GoodObjectResult good_object(billboard::ProbeOracle& oracle, const GoodObjectParams& params,
                             rng::Rng rng);

}  // namespace tmwia::core
