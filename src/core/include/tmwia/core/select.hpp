// Algorithm Select (Fig. 3): the Choose Closest problem with a known
// distance bound.
//
//   Input: candidate vectors V (possibly containing ? entries), a
//   distance bound D such that some candidate is within D of the
//   player's hidden vector, and the ability to Probe coordinates of
//   that hidden vector.
//   Output: the lexicographically first closest candidate, using at
//   most |V| * (D + 1) probes (Theorem 3.2).
//
// Candidates are TriVectors because Large Radius runs Select over
// Coalesce outputs, which contain "don't care" entries; distances are
// d-tilde (? coordinates never distinguish). The probe side is a
// callback so the same implementation serves primitive objects (probe
// the oracle) and Large Radius's virtual objects.
//
// Per the paper's remark, Select ignores any probes made before its
// execution: it tracks its own probed set and *re-invokes* Probe even
// for coordinates the player probed earlier (the oracle charges
// invocations; see ProbeOracle).
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "tmwia/bits/trivector.hpp"

namespace tmwia::core {

/// Probe callback: coordinate index -> the player's hidden bit.
///
/// A non-owning view of the caller's callable (a function_ref): Select
/// and RSelect run millions of times per experiment, and an owning
/// std::function here would heap-allocate per call for any capture
/// over two words (exactly the oracle+player+objects closures every
/// caller passes). The view is only valid while the referenced
/// callable lives — which holds for the universal pattern of passing a
/// lambda to a single select/rselect invocation. Do not store one.
class ProbeFn {
 public:
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, ProbeFn> &&
             std::is_invocable_r_v<bool, F&, std::uint32_t>)
  // NOLINTNEXTLINE(google-explicit-constructor) bind call-site lambdas implicitly
  ProbeFn(F&& f)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, std::uint32_t j) -> bool {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(j);
        }) {}

  bool operator()(std::uint32_t j) const { return call_(obj_, j); }

 private:
  void* obj_;
  bool (*call_)(void*, std::uint32_t);
};

struct SelectResult {
  /// Index into the candidate list of the chosen vector.
  std::size_t index = 0;
  /// Number of Probe invocations made by this Select execution.
  std::size_t probes = 0;
  /// Disagreements observed between the chosen candidate and the
  /// probed coordinates (a lower bound on the true distance). Note
  /// that at least one candidate always survives elimination — at any
  /// distinguishing coordinate the probed bit matches some alive
  /// candidate — so when the D-precondition is violated the output is
  /// simply the best effort; correctness guarantees need the
  /// precondition (Theorem 3.2).
  std::size_t observed_disagreements = 0;
};

/// Run Select on `candidates` with distance bound `D`.
/// Precondition: candidates non-empty.
SelectResult select_closest(const std::vector<bits::TriVector>& candidates, std::size_t D,
                            const ProbeFn& probe);

/// Convenience overload for fully-known candidates.
SelectResult select_closest(const std::vector<bits::BitVector>& candidates, std::size_t D,
                            const ProbeFn& probe);

}  // namespace tmwia::core
