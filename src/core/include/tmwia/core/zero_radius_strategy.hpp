// ZeroRadiusStrategy: Algorithm Zero Radius (Fig. 2) as a *genuinely
// distributed* per-player state machine under the synchronous
// RoundScheduler — each player independently derives the shared
// recursion tree from the common coins, probes its own leaf, publishes
// its vectors on the billboard, awaits its sibling half's posts, and
// adopts by vote + Select with bound 0, exactly as the paper describes
// a player executing the algorithm.
//
// The centralized engine in zero_radius.hpp is the fast simulation; it
// shares the tree derivation (zero_radius_node_split) and the vote
// semantics with this class, and the test suite checks the two produce
// BIT-IDENTICAL outputs and probe counts from the same seed — the
// simulation-faithfulness argument for every experiment built on the
// centralized path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tmwia/billboard/round_scheduler.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/core/zero_radius.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

class ZeroRadiusStrategy final : public billboard::PlayerStrategy {
 public:
  /// `self` must appear in `players`. `shared_rng` is the common-coins
  /// stream (same value for every player and for the centralized run
  /// being compared against). `channel_prefix` namespaces the billboard
  /// channels of this execution.
  ZeroRadiusStrategy(PlayerId self, std::vector<PlayerId> players,
                     std::vector<std::uint32_t> objects, double alpha, const Params& params,
                     const rng::Rng& shared_rng, std::string channel_prefix = "dzr");

  std::optional<billboard::ObjectId> next_probe(const billboard::RoundView& view) override;
  void on_result(billboard::ObjectId o, bool value) override;
  std::vector<billboard::PendingPost> posts() override;
  [[nodiscard]] bool done() const override { return state_ == State::kDone; }

  /// The player's output for the full object list (valid once done()).
  [[nodiscard]] bits::BitVector output() const;

 private:
  /// One recursion node on the player's root-to-leaf path.
  struct Frame {
    std::vector<std::uint32_t> objects;          ///< node's global object ids
    std::vector<std::uint32_t> sibling_objects;  ///< sibling child's global ids
    std::uint64_t own_child_tag = 0;
    std::uint64_t sibling_child_tag = 0;
    std::size_t sibling_player_count = 0;
    std::size_t min_votes = 1;
  };

  enum class State : std::uint8_t { kLeafProbe, kPostChild, kAwait, kSelect, kDone };

  [[nodiscard]] std::string channel(std::uint64_t tag) const {
    return prefix_ + "/" + std::to_string(tag);
  }
  void begin_level();  // set up Await for frames_[level_]

  PlayerId self_;
  double alpha_;
  std::string prefix_;

  // Root-to-leaf path; frames_[0] is the root. The leaf's objects are
  // leaf_objects_.
  std::vector<Frame> frames_;
  std::vector<std::uint32_t> leaf_objects_;
  std::uint64_t leaf_tag_ = 1;

  // Accumulated estimate over the global object space.
  bits::BitVector values_;
  std::vector<std::uint32_t> root_objects_;

  State state_ = State::kLeafProbe;
  std::size_t leaf_pos_ = 0;
  std::size_t level_ = 0;  // index into frames_ counting from the leaf upward
  std::uint64_t pending_post_tag_ = 0;
  bool have_pending_post_ = false;

  // Select-with-bound-0 working state for the current level.
  std::vector<bits::BitVector> candidates_;  // over sibling_objects order
  std::vector<bool> alive_;
  std::vector<std::size_t> mismatches_;
  std::size_t select_cursor_ = 0;
  std::optional<std::size_t> probing_candidate_coord_;
};

/// A Byzantine wrapper for the distributed execution: runs the inner
/// ZeroRadiusStrategy honestly (probes, awaits, adopts) but swaps every
/// billboard post for the projection of a forged vector — the
/// coordinated fake-candidate attack of bench e14, now at the protocol
/// level. Honest peers defend themselves with Select's probing.
class ForgingZeroRadiusStrategy final : public billboard::PlayerStrategy {
 public:
  ForgingZeroRadiusStrategy(ZeroRadiusStrategy inner, bits::BitVector forged)
      : inner_(std::move(inner)), forged_(std::move(forged)) {}

  std::optional<billboard::ObjectId> next_probe(const billboard::RoundView& view) override {
    return inner_.next_probe(view);
  }
  void on_result(billboard::ObjectId o, bool value) override { inner_.on_result(o, value); }
  std::vector<billboard::PendingPost> posts() override {
    auto out = inner_.posts();
    for (auto& post : out) {
      // Same channel, same length, forged content: the lie must still
      // look like a vector over the node's object set to count as a
      // vote there.
      bits::BitVector lie(post.vec.size());
      for (std::size_t j = 0; j < post.vec.size(); ++j) {
        // Forge per position using the forged vector cyclically; the
        // coalition posts identical vectors, which is all that matters
        // for crossing the popularity threshold.
        lie.set(j, forged_.get(j % forged_.size()));
      }
      post.vec = std::move(lie);
    }
    return out;
  }
  [[nodiscard]] bool done() const override { return inner_.done(); }

  [[nodiscard]] bits::BitVector output() const { return inner_.output(); }

 private:
  ZeroRadiusStrategy inner_;
  bits::BitVector forged_;
};

/// Convenience driver: run the distributed Zero Radius for all players
/// of the oracle under a RoundScheduler; returns per-player outputs and
/// the schedule stats.
struct DistributedZeroRadiusResult {
  std::vector<bits::BitVector> outputs;
  billboard::ScheduleResult schedule;
};

DistributedZeroRadiusResult zero_radius_distributed(billboard::ProbeOracle& oracle,
                                                    double alpha, const Params& params,
                                                    const rng::Rng& shared_rng,
                                                    std::size_t max_rounds = 0);

}  // namespace tmwia::core
