// BitSpace: the primitive object space — values are the 0/1 grades of
// the hidden preference matrix, probed through ProbeOracle and mirrored
// onto the shared Billboard.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/core/zero_radius.hpp"

namespace tmwia::core {

/// Adapter satisfying the Zero Radius Space concept over primitive
/// objects.
class BitSpace {
 public:
  using Value = std::uint8_t;     // 0/1 grade
  using Row = bits::BitVector;    // packed rows: Zero Radius runs word-parallel

  /// `channel_prefix` namespaces the billboard channels of this run so
  /// that nested/parallel Zero Radius executions do not collide.
  BitSpace(billboard::ProbeOracle& oracle, billboard::Billboard* board = nullptr,
           std::string channel_prefix = "zr")
      : oracle_(&oracle), board_(board), prefix_(std::move(channel_prefix)) {}

  Value probe(PlayerId p, std::uint32_t object) {
    return oracle_->probe_resilient(p, object) ? Value{1} : Value{0};
  }

  /// Batched leaf probe: fill the low objects.size() bits of `out` with
  /// p's probes of `objects`, in order. Equivalent to probe() per
  /// object (same cost ledgers, noise stream and recorder events) but
  /// amortizes the oracle's per-call bookkeeping.
  void probe_row(PlayerId p, std::span<const std::uint32_t> objects, bits::BitVector& out) {
    oracle_->probe_block(p, objects, out);
  }

  /// Mirror a player's published value vector to the billboard (posted
  /// as a packed BitVector on the given channel). Under an attached
  /// fault injector individual publications may be lost; the vote paths
  /// consult post_lost with the same channel so they agree.
  void publish(std::string_view channel, PlayerId p, const bits::BitVector& values) {
    if (auto* inj = oracle_->fault_injector();
        inj != nullptr && inj->post_lost(p, post_tag(channel))) {
      inj->note_post_dropped();
      return;
    }
    if (board_ == nullptr) return;
    board_->post(prefix_ + "/" + std::string(channel), p, values);
  }

  /// Batched mirror: players[i] publishes rows[i] on `channel`, in
  /// index order. Without a fault injector this resolves the channel
  /// name and takes the board lock once for the whole node (Zero
  /// Radius posts every node's outputs); with one it falls back to the
  /// per-player path so crash/post-loss bookkeeping is untouched.
  void publish_rows(std::string_view channel, std::span<const PlayerId> players,
                    std::span<const bits::BitVector> rows) {
    if (oracle_->fault_injector() == nullptr) {
      if (board_ == nullptr) return;
      board_->post_many(prefix_ + "/" + std::string(channel), players, rows);
      return;
    }
    for (std::size_t i = 0; i < players.size(); ++i) {
      if (is_failed(players[i])) continue;
      publish(channel, players[i], rows[i]);
    }
  }

  // Degradation hooks of the Zero Radius Space concept (all no-ops
  // without an attached fault injector).
  [[nodiscard]] bool is_failed(PlayerId p) const {
    auto* inj = oracle_->fault_injector();
    return inj != nullptr && inj->is_failed(p);
  }
  [[nodiscard]] bool post_lost(PlayerId p, std::string_view channel) const {
    auto* inj = oracle_->fault_injector();
    return inj != nullptr && inj->post_lost(p, post_tag(channel));
  }
  /// Orphan adoption (a fault-recovery deviation from the paper's
  /// vote) is only licensed when faults are actually being injected.
  [[nodiscard]] bool faults_active() const { return oracle_->fault_injector() != nullptr; }
  void note_orphan(PlayerId p) {
    if (auto* inj = oracle_->fault_injector(); inj != nullptr) inj->note_orphan(p);
  }

  [[nodiscard]] billboard::ProbeOracle& oracle() { return *oracle_; }

  /// Mark players as Byzantine: from now on, whatever they *publish*
  /// into a vote (Zero Radius step 4) is replaced by the projection of
  /// `forged` onto the vote's object set — the coordinated fake-
  /// candidate attack (all liars push the same vector, the strongest
  /// way to cross the popularity threshold). Their probe results and
  /// own outputs are untouched: in the model, probe results posted on
  /// the billboard are ground truth; only derived claims can lie.
  void set_byzantine(std::vector<PlayerId> liars, bits::BitVector forged) {
    byzantine_ = std::move(liars);
    std::sort(byzantine_.begin(), byzantine_.end());
    forged_ = std::move(forged);
  }

  /// Whether corrupt_posts would currently rewrite anything — lets the
  /// vote path skip copying the posts when nobody lies.
  [[nodiscard]] bool corrupts_posts() const { return !byzantine_.empty(); }

  /// Zero Radius voting hook (see zero_radius.hpp).
  void corrupt_posts(const std::vector<PlayerId>& posters,
                     std::span<const std::uint32_t> object_ids,
                     std::vector<bits::BitVector>& posts) {
    if (byzantine_.empty()) return;
    // tmwia-lint: allow(per-bit-loop) indexed gather onto the vote's object ids; runs only for byzantine liars
    for (std::size_t i = 0; i < posters.size(); ++i) {
      if (!std::binary_search(byzantine_.begin(), byzantine_.end(), posters[i])) continue;
      // tmwia-lint: allow(per-bit-loop) see above: projection of the forged vector is a per-object gather
      for (std::size_t j = 0; j < object_ids.size(); ++j) {
        posts[i].set(j, forged_.get(object_ids[j]));
      }
    }
  }

 private:
  /// One post identity per (prefix, channel, player): the same tag is
  /// derived by the publishing path and the vote paths.
  [[nodiscard]] std::uint64_t post_tag(std::string_view channel) const {
    return faults::FaultInjector::channel_tag(prefix_ + "/" + std::string(channel));
  }

  billboard::ProbeOracle* oracle_;
  billboard::Billboard* board_;
  std::string prefix_;
  std::vector<PlayerId> byzantine_;
  bits::BitVector forged_;
};

/// Zero Radius over primitive objects, returning packed BitVectors
/// aligned with `objects` (row i belongs to players[i]).
std::vector<bits::BitVector> zero_radius_bits(billboard::ProbeOracle& oracle,
                                              billboard::Billboard* board,
                                              const std::vector<PlayerId>& players,
                                              const std::vector<std::uint32_t>& objects,
                                              double alpha, const Params& params,
                                              rng::Rng rng, std::string channel_prefix = "zr");

}  // namespace tmwia::core
