// The main algorithm (Fig. 1) and the Section 6 extensions.
//
//  * find_preferences            — known (alpha, D): dispatch to
//    Zero/Small/Large Radius by the size of D.
//  * find_preferences_unknown_d  — known alpha, unknown D: run the main
//    algorithm with guesses D = 0, 1, 2, 4, ..., m and let each player
//    pick among the O(log m) resulting candidates with RSelect
//    (Section 6.1). Costs a log factor, loses a constant in quality —
//    this is the algorithm of Theorem 1.1.
//  * anytime                     — unknown alpha too: phase j reruns
//    the unknown-D algorithm with alpha = 2^-j; at any stopping point
//    the output quality is close to the best achievable for the probes
//    spent so far ("anytime algorithm", Section 6).
#pragma once

#include <cstdint>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/bits/bitvector.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

using matrix::PlayerId;

/// Which branch of Fig. 1 ran.
enum class Branch : std::uint8_t { kZeroRadius, kSmallRadius, kLargeRadius };

struct FindPreferencesResult {
  /// Output vector per player (aligned with `players`, coordinates in
  /// `objects` order).
  std::vector<bits::BitVector> outputs;
  Branch branch = Branch::kZeroRadius;
  /// Lockstep rounds this call consumed: max over players of probe
  /// invocations during the call.
  std::uint64_t rounds = 0;
  /// Total probe invocations across players during the call.
  std::uint64_t total_probes = 0;
};

/// Fig. 1: main algorithm for known alpha and D over all players and
/// all objects of the oracle's matrix.
FindPreferencesResult find_preferences(billboard::ProbeOracle& oracle,
                                       billboard::Billboard* board, double alpha,
                                       std::size_t D, const Params& params, rng::Rng rng);

struct UnknownDResult {
  std::vector<bits::BitVector> outputs;
  /// The D guess whose candidate each player adopted.
  std::vector<std::size_t> chosen_d;
  std::uint64_t rounds = 0;
  std::uint64_t total_probes = 0;
  /// The guesses that were run (0, 1, 2, 4, ...).
  std::vector<std::size_t> guesses;
};

/// Section 6: known alpha, unknown D (the Theorem 1.1 algorithm).
UnknownDResult find_preferences_unknown_d(billboard::ProbeOracle& oracle,
                                          billboard::Billboard* board, double alpha,
                                          const Params& params, rng::Rng rng);

struct AnytimePhase {
  double alpha = 1.0;
  std::uint64_t rounds = 0;          ///< cumulative rounds after this phase
  std::uint64_t total_probes = 0;    ///< cumulative probes after this phase
};

struct AnytimeResult {
  std::vector<bits::BitVector> outputs;
  std::vector<AnytimePhase> phases;
};

/// Section 6: unknown alpha and D. Runs phases alpha = 1/2, 1/4, ...
/// until the per-player round budget is exhausted; after each phase,
/// each player keeps the better of (previous output, new output) via
/// RSelect. The returned phase log gives quality checkpoints for the
/// anytime claim (experiment E10).
AnytimeResult anytime(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                      std::uint64_t round_budget, const Params& params, rng::Rng rng);

}  // namespace tmwia::core
