// The main algorithm (Fig. 1) and the Section 6 extensions.
//
//  * find_preferences            — known (alpha, D): dispatch to
//    Zero/Small/Large Radius by the size of D.
//  * find_preferences_unknown_d  — known alpha, unknown D: run the main
//    algorithm with guesses D = 0, 1, 2, 4, ..., m and let each player
//    pick among the O(log m) resulting candidates with RSelect
//    (Section 6.1). Costs a log factor, loses a constant in quality —
//    this is the algorithm of Theorem 1.1.
//  * anytime                     — unknown alpha too: phase j reruns
//    the unknown-D algorithm with alpha = 2^-j; at any stopping point
//    the output quality is close to the best achievable for the probes
//    spent so far ("anytime algorithm", Section 6).
//
// All three return a RunReport — one result type for the whole tower
// (outputs + cost accounting + the variant-specific detail for the
// algorithm that ran + an optional metrics snapshot).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tmwia/billboard/billboard.hpp"
#include "tmwia/billboard/probe_oracle.hpp"
#include "tmwia/bits/bitvector.hpp"
#include "tmwia/core/params.hpp"
#include "tmwia/obs/metrics.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

using matrix::PlayerId;

/// Which branch of Fig. 1 ran.
enum class Branch : std::uint8_t { kZeroRadius, kSmallRadius, kLargeRadius };

/// One phase of the anytime algorithm (cumulative checkpoints).
struct AnytimePhase {
  double alpha = 1.0;
  std::uint64_t rounds = 0;        ///< cumulative rounds after this phase
  std::uint64_t total_probes = 0;  ///< cumulative probes after this phase
};

/// One entry of the run timeline: a phase boundary of the algorithm
/// tower with cumulative cost and — when a FlightRecorder with an
/// output evaluator was installed — output quality at that point.
/// Discrepancies are -1 when unknown (no recorder/evaluator): the
/// library never sees the planted matrix itself.
struct PhaseCheckpoint {
  std::string label;               ///< e.g. "fp:zero", "guess:d=4", "phase:2"
  std::uint64_t rounds = 0;        ///< cumulative rounds at the checkpoint
  std::uint64_t total_probes = 0;  ///< cumulative probes at the checkpoint
  double max_disc = -1.0;          ///< max Hamming distance to truth
  double mean_disc = -1.0;         ///< mean Hamming distance to truth
};

/// Degradation record of a supervised run: what the run gave up on
/// instead of aborting. Empty for a healthy run (and then omitted from
/// the report JSON).
struct DegradedInfo {
  std::vector<PlayerId> quarantined;     ///< strategies benched for good
  std::vector<std::string> unmet_phases; ///< phases that blew their round deadline
  [[nodiscard]] bool empty() const { return quarantined.empty() && unmet_phases.empty(); }
  bool operator==(const DegradedInfo&) const = default;
};

/// Unified result of every core entry point. The common fields
/// (outputs, rounds, total_probes) are always filled; the rest depends
/// on `algo`:
///  * kFixedD   — `branch` says which Fig. 1 branch ran;
///  * kUnknownD — `guesses` lists the D guesses that were run and
///    `chosen_d[i]` the guess player i adopted;
///  * kAnytime  — `phases` holds the per-phase cost/quality
///    checkpoints (rounds/total_probes mirror the last entry).
/// `metrics` is a snapshot of the global MetricsRegistry taken at the
/// end of the call when the registry is enabled (empty otherwise).
struct RunReport {
  enum class Algo : std::uint8_t { kFixedD, kUnknownD, kAnytime, kSupervised, kServe };

  Algo algo = Algo::kFixedD;
  /// Output vector per player (aligned with player ids, coordinates in
  /// object order).
  std::vector<bits::BitVector> outputs;
  /// Lockstep rounds this call consumed: max over players of probe
  /// invocations during the call.
  std::uint64_t rounds = 0;
  /// Total probe invocations across players during the call.
  std::uint64_t total_probes = 0;

  Branch branch = Branch::kZeroRadius;  ///< kFixedD only
  std::vector<std::size_t> chosen_d;    ///< kUnknownD: guess adopted per player
  std::vector<std::size_t> guesses;     ///< kUnknownD: guesses run (0, 1, 2, 4, ...)
  std::vector<AnytimePhase> phases;     ///< kAnytime: cumulative checkpoints

  /// Per-phase timeline of the run (every entry point fills it; the
  /// disc fields need an installed FlightRecorder evaluator).
  std::vector<PhaseCheckpoint> timeline;

  obs::Snapshot metrics;  ///< global-registry snapshot when enabled

  /// What a supervised run quarantined or left unmet (empty unless an
  /// engine::Supervisor degraded the run instead of aborting it).
  DegradedInfo degraded;

  /// Cost-attribution tree (obs::ProfileReport::to_json) captured at
  /// the end of the run when the global Profiler is enabled; empty
  /// otherwise. Pre-rendered JSON, spliced verbatim into to_json().
  std::string profile_json;
  /// SLO verdict (obs::SloReport::to_json) when a serve session ran
  /// under a watchdog; empty otherwise.
  std::string slo_json;

  /// One-line JSON object with the scalar results, the timeline, the
  /// variant detail (chosen_d/guesses/phases), and — when non-empty —
  /// the degraded, profile and slo sections. Outputs and the metrics
  /// snapshot are *not* embedded — they have their own sinks.
  [[nodiscard]] std::string to_json() const;
};

/// Pre-RunReport result names, kept one release so downstream code
/// compiles (RunReport is a superset of each).
using FindPreferencesResult [[deprecated("use core::RunReport")]] = RunReport;
using UnknownDResult [[deprecated("use core::RunReport")]] = RunReport;
using AnytimeResult [[deprecated("use core::RunReport")]] = RunReport;

/// Fig. 1: main algorithm for known alpha and D over all players and
/// all objects of the oracle's matrix.
RunReport find_preferences(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                           double alpha, std::size_t D, const Params& params, rng::Rng rng);

/// Section 6: known alpha, unknown D (the Theorem 1.1 algorithm).
RunReport find_preferences_unknown_d(billboard::ProbeOracle& oracle,
                                     billboard::Billboard* board, double alpha,
                                     const Params& params, rng::Rng rng);

/// Orphan adoption (Section 6.1 RSelect over surviving outputs):
/// players flagged orphaned on the oracle's fault injector — by vote
/// quorum loss or by supervisor quarantine — re-select among the
/// most-supported surviving outputs; their own (possibly partial)
/// output competes too. `outputs[i]` belongs to `players[i]`. No-op
/// without an attached injector. Also called internally at the tail of
/// every find_preferences run.
void rescue_orphans(billboard::ProbeOracle& oracle, std::vector<bits::BitVector>& outputs,
                    const std::vector<PlayerId>& players, const Params& params,
                    const rng::Rng& rng);

/// The anytime keep-better merge (Section 6), exposed for incremental
/// refinement loops (the serve layer re-runs the unknown-D tower per
/// epoch and folds each result in through this): every live player runs
/// a 2-candidate RSelect between its current output and the challenger
/// and keeps the winner; players failed on the oracle's injector keep
/// their current output. Probes are charged through the oracle as
/// usual. `phase` tags the per-player RNG splits, so distinct phases
/// (or epochs) draw independent sample coordinates; `challenger[i]` may
/// be moved from.
void keep_better_outputs(billboard::ProbeOracle& oracle,
                         std::vector<bits::BitVector>& current,
                         std::vector<bits::BitVector>& challenger, std::uint64_t phase,
                         const Params& params, const rng::Rng& rng);

/// Section 6: unknown alpha and D. Runs phases alpha = 1/2, 1/4, ...
/// until the per-player round budget is exhausted; after each phase,
/// each player keeps the better of (previous output, new output) via
/// RSelect. The returned phase log gives quality checkpoints for the
/// anytime claim (experiment E10).
RunReport anytime(billboard::ProbeOracle& oracle, billboard::Billboard* board,
                  std::uint64_t round_budget, const Params& params, rng::Rng rng);

}  // namespace tmwia::core
