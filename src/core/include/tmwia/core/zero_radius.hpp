// Algorithm Zero Radius (Fig. 2): preference reconstruction for
// communities that agree *exactly*.
//
// Recursive halving: split players and objects in half; each player
// half reconstructs its own object half recursively, then adopts the
// other half's result by voting + Select with distance bound 0. Leaf
// instances (min(|P|, |O|) below the 8c·ln(n)/alpha threshold) probe
// everything. Theorem 3.1: with >= alpha*n players sharing one vector,
// all of them output it w.h.p. within O(log n / alpha) probes each.
//
// The implementation is generic over the *value space* because Large
// Radius (step 4) reruns Zero Radius where an "object" is a whole
// object group O_l and its "value" is one of the O(1/alpha) Coalesce
// candidates for that group: probing such a virtual object means
// running Select over the candidates on the group's primitive objects.
//
// Space concept:
//   typename Space::Value           — regular + totally ordered
//   Value probe(PlayerId, uint32_t) — probe object by *space index*,
//                                     charging the player's cost
//   (optional) void publish(std::string_view channel, PlayerId,
//                           std::span<const Value>)
//                                   — mirror posts to a billboard
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tmwia/core/params.hpp"
#include "tmwia/engine/thread_pool.hpp"
#include "tmwia/matrix/ids.hpp"
#include "tmwia/obs/flight_recorder.hpp"
#include "tmwia/rng/partition.hpp"
#include "tmwia/rng/rng.hpp"

namespace tmwia::core {

using matrix::PlayerId;

/// Leaf threshold of Fig. 2 step 1: min(|P|, |O|) below this probes
/// everything.
inline std::size_t zero_radius_leaf_threshold(std::size_t n_total, double alpha,
                                              const Params& params) {
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n_total, 3)));
  const double t = params.zr_leaf_c * ln_n / alpha;
  return std::max(params.zr_min_leaf, static_cast<std::size_t>(std::ceil(t)));
}

/// The shared-coin halving of one recursion node (Fig. 2 step 2),
/// returned as position lists into the node's player/object lists. Both
/// the centralized engine below and the distributed per-player strategy
/// (zero_radius_strategy.hpp) derive the identical tree from the same
/// root rng, which is what makes their outputs bit-for-bit comparable.
struct ZeroRadiusSplit {
  std::vector<std::uint32_t> p1, p2;  ///< player positions per half
  std::vector<std::uint32_t> o1, o2;  ///< object positions per half
};

inline ZeroRadiusSplit zero_radius_node_split(std::size_t n_players, std::size_t n_objects,
                                              const rng::Rng& rng, std::uint64_t node_tag) {
  auto index_list = [](std::size_t n) {
    std::vector<std::uint32_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint32_t>(i);
    return v;
  };
  rng::Rng split_rng = rng.split(node_tag, 0x5eed);
  ZeroRadiusSplit s;
  std::tie(s.p1, s.p2) = rng::random_half_split(index_list(n_players), split_rng);
  std::tie(s.o1, s.o2) = rng::random_half_split(index_list(n_objects), split_rng);
  return s;
}

namespace detail {

// Optional degradation hooks of the Space concept (see faults/). A
// space that tracks fault state exposes:
//   bool is_failed(PlayerId)                 — player crashed/degraded;
//                                              skip its probes, exclude
//                                              it from votes
//   bool post_lost(PlayerId, string_view)    — this player's post on
//                                              this channel was lost
//   void note_orphan(PlayerId)               — player lost its quorum
// Spaces without the hooks (tests, plain adapters) behave exactly as
// before — the helpers compile to constants.

template <typename Space>
bool space_is_failed(Space& space, PlayerId p) {
  if constexpr (requires { { space.is_failed(p) } -> std::convertible_to<bool>; }) {
    return space.is_failed(p);
  } else {
    (void)space;
    (void)p;
    return false;
  }
}

template <typename Space>
bool space_post_lost(Space& space, PlayerId p, std::string_view channel) {
  if constexpr (requires { { space.post_lost(p, channel) } -> std::convertible_to<bool>; }) {
    return space.post_lost(p, channel);
  } else {
    (void)space;
    (void)p;
    (void)channel;
    return false;
  }
}

template <typename Space>
bool space_faults_active(Space& space) {
  if constexpr (requires { { space.faults_active() } -> std::convertible_to<bool>; }) {
    return space.faults_active();
  } else {
    (void)space;
    return false;
  }
}

template <typename Space>
void space_note_orphan(Space& space, PlayerId p) {
  if constexpr (requires { space.note_orphan(p); }) {
    space.note_orphan(p);
  } else {
    (void)space;
    (void)p;
  }
}

/// Select with distance bound 0 over generic value-vectors: probe
/// distinguishing positions in order, drop candidates on their first
/// mismatch. Returns the surviving candidate's index (ties and the
/// all-eliminated fallback resolve to fewest mismatches, then
/// lexicographic order).
template <typename Space>
std::size_t select_zero(Space& space, PlayerId p,
                        const std::vector<std::vector<typename Space::Value>>& cands,
                        std::span<const std::uint32_t> object_ids) {
  const std::size_t k = cands.size();
  if (k == 1) return 0;
  std::vector<bool> alive(k, true);
  std::vector<std::size_t> mismatches(k, 0);
  std::size_t alive_count = k;

  for (std::size_t j = 0; j < object_ids.size() && alive_count > 1; ++j) {
    bool differs = false;
    std::size_t first_alive = k;
    for (std::size_t i = 0; i < k && !differs; ++i) {
      if (!alive[i]) continue;
      if (first_alive == k) {
        first_alive = i;
      } else if (!(cands[i][j] == cands[first_alive][j])) {
        differs = true;
      }
    }
    if (!differs) continue;
    const auto val = space.probe(p, object_ids[j]);
    for (std::size_t i = 0; i < k; ++i) {
      if (alive[i] && !(cands[i][j] == val)) {
        ++mismatches[i];
        alive[i] = false;
        --alive_count;
      }
    }
  }

  std::size_t best = 0;
  bool best_alive = alive[0];
  for (std::size_t i = 1; i < k; ++i) {
    const bool better_liveness = alive[i] && !best_alive;
    const bool same_liveness = alive[i] == best_alive;
    if (better_liveness ||
        (same_liveness && (mismatches[i] < mismatches[best] ||
                           (mismatches[i] == mismatches[best] && cands[i] < cands[best])))) {
      best = i;
      best_alive = alive[i];
    }
  }
  return best;
}

/// Group equal value-vectors and return those with >= min_votes
/// occurrences, sorted lexicographically (deterministic candidates).
template <typename Value>
std::vector<std::vector<Value>> popular_vectors(
    const std::vector<std::vector<Value>>& posts, std::size_t min_votes) {
  std::map<std::vector<Value>, std::size_t> counts;
  for (const auto& v : posts) ++counts[v];
  std::vector<std::vector<Value>> out;
  for (const auto& [vec, c] : counts) {
    if (c >= min_votes) out.push_back(vec);
  }
  return out;
}

/// The orphan-adoption candidate list: the `limit` most-supported
/// distinct vectors of `posts` (ties broken lexicographically). Used
/// when a vote loses quorum and the adopters fall back to whatever the
/// survivors published.
template <typename Value>
std::vector<std::vector<Value>> top_vectors(const std::vector<std::vector<Value>>& posts,
                                            std::size_t limit) {
  std::map<std::vector<Value>, std::size_t> counts;
  for (const auto& v : posts) ++counts[v];
  std::vector<std::pair<std::size_t, const std::vector<Value>*>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [vec, c] : counts) ranked.emplace_back(c, &vec);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return *a.second < *b.second;
            });
  if (ranked.size() > limit) ranked.resize(limit);
  std::vector<std::vector<Value>> out;
  out.reserve(ranked.size());
  for (const auto& [c, vec] : ranked) out.push_back(*vec);
  return out;
}

template <typename Space>
struct ZeroRadiusRun {
  Space& space;
  double alpha;
  const Params& params;
  std::size_t n_total;
  std::size_t threshold;

  using Value = typename Space::Value;
  using Outputs = std::vector<std::vector<Value>>;  // per player, per object

  Outputs run(const std::vector<PlayerId>& players, const std::vector<std::uint32_t>& objects,
              rng::Rng rng, std::uint64_t node_tag) {
    Outputs out(players.size(), std::vector<Value>(objects.size()));
    if (players.empty() || objects.empty()) return out;

    if (std::min(players.size(), objects.size()) < threshold) {
      // Step 1: leaf — every player probes every object. Crashed /
      // degraded players sit the leaf out (their rows stay default and
      // they are excluded from votes higher up).
      engine::parallel_for(0, players.size(), [&](std::size_t i) {
        if (space_is_failed(space, players[i])) return;
        for (std::size_t j = 0; j < objects.size(); ++j) {
          out[i][j] = space.probe(players[i], objects[j]);
        }
      });
      publish_all(players, out, node_tag);
      return out;
    }

    // Step 2: random halving of players and objects (shared coins).
    const auto split = zero_radius_node_split(players.size(), objects.size(), rng, node_tag);
    const auto& p1_idx = split.p1;
    const auto& p2_idx = split.p2;
    const auto& o1_idx = split.o1;
    const auto& o2_idx = split.o2;

    const auto p1 = gather(players, p1_idx);
    const auto p2 = gather(players, p2_idx);
    const auto o1 = gather(objects, o1_idx);
    const auto o2 = gather(objects, o2_idx);

    // Step 3: both halves recurse on their own corner.
    Outputs r1 = run(p1, o1, rng, node_tag * 2 + 1);
    Outputs r2 = run(p2, o2, rng, node_tag * 2 + 2);

    // Step 4: cross-adoption via voting + Select with bound 0. The
    // posting half published its outputs under its child tag, which is
    // what the post-loss filter keys on.
    adopt(p1, o2, r2, p2, out, p1_idx, o2_idx, node_tag * 2 + 2);
    adopt(p2, o1, r1, p1, out, p2_idx, o1_idx, node_tag * 2 + 1);

    // Own-half results copy straight through.
    scatter_outputs(r1, p1_idx, o1_idx, out);
    scatter_outputs(r2, p2_idx, o2_idx, out);

    publish_all(players, out, node_tag);
    return out;
  }

 private:
  static std::vector<std::uint32_t> index_list(std::size_t n) {
    std::vector<std::uint32_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint32_t>(i);
    return v;
  }

  template <typename T>
  static std::vector<T> gather(const std::vector<T>& src,
                               const std::vector<std::uint32_t>& idx) {
    std::vector<T> out;
    out.reserve(idx.size());
    for (std::uint32_t i : idx) out.push_back(src[i]);
    return out;
  }

  /// Players `adopters` (positions `adopter_pos` in the parent lists)
  /// adopt the other half's outputs `posts` for objects `object_ids`
  /// (positions `obj_pos` in the parent object list). `poster_tag` is
  /// the recursion tag the posting half published under (the post-loss
  /// filter keys on it).
  void adopt(const std::vector<PlayerId>& adopters, const std::vector<std::uint32_t>& object_ids,
             const Outputs& posts, const std::vector<PlayerId>& posters, Outputs& out,
             const std::vector<std::uint32_t>& adopter_pos,
             const std::vector<std::uint32_t>& obj_pos, std::uint64_t poster_tag) {
    // Byzantine hook: the space may rewrite what individual posters
    // *publish* for voting (dishonest eBay users, per the paper's
    // intro) — their own outputs are untouched, only their influence
    // on the vote is. Probing-based Select then defends the adopters:
    // a forged popular vector is eliminated the first time it disagrees
    // with the adopter's own truth on a distinguishing coordinate.
    Outputs votable = posts;
    if constexpr (requires(Space& s, const std::vector<PlayerId>& ps,
                           std::span<const std::uint32_t> objs, Outputs& posted) {
                    s.corrupt_posts(ps, objs, posted);
                  }) {
      space.corrupt_posts(posters, std::span(object_ids), votable);
    }

    // Degradation: crashed/degraded posters and lost posts never made
    // it to the billboard — the vote and its quorum threshold are taken
    // over the survivors only. With no faults this keeps every post and
    // the paper's threshold exactly.
    const std::string poster_channel = "zr/" + std::to_string(poster_tag);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < posters.size(); ++i) {
      if (space_is_failed(space, posters[i]) ||
          space_post_lost(space, posters[i], poster_channel)) {
        continue;
      }
      if (kept != i) votable[kept] = std::move(votable[i]);
      ++kept;
    }
    votable.resize(kept);

    const auto min_votes = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(params.zr_vote_frac * alpha * static_cast<double>(kept))));
    std::vector<std::vector<Value>> candidates = popular_vectors(votable, min_votes);

    // Orphan adoption: the committee lost its quorum (mass crash or
    // post loss). Rather than leave the adopters with garbage, fall
    // back to the surviving posts themselves, most-supported first —
    // probing-based Select still rejects anything that disagrees with
    // the adopter's own truth.
    //
    // Strictly gated on an ACTIVE fault injector: in a fault-free run a
    // below-quorum vote means the community is smaller than this
    // phase's alpha, and the paper's model (Fig. 2 step 4) adopts
    // nothing. Falling back here anyway would let a phase resolve
    // communities below its alpha scale — a silent protocol deviation
    // (it broke E10's anytime blindness verdict) and a divergence from
    // the distributed ZeroRadiusStrategy, which has no such fallback.
    bool orphan_fallback = false;
    if (candidates.empty() && !votable.empty() && space_faults_active(space)) {
      candidates = top_vectors(votable, params.ft_orphan_candidates);
      orphan_fallback = true;
    }
    // Community-size record per adoption vote — also a serial drain
    // point for the recorder's staged per-player probe events, keeping
    // staged memory bounded by one recursion node's worth of probes.
    if (auto* rec = obs::recorder()) {
      rec->note("zr.adopt", kept, candidates.size());
    }
    if (candidates.empty()) {
      // No surviving post at all: adopters keep defaults for this half.
      for (const PlayerId a : adopters) {
        if (!space_is_failed(space, a)) space_note_orphan(space, a);
      }
      return;
    }

    engine::parallel_for(0, adopters.size(), [&](std::size_t i) {
      if (space_is_failed(space, adopters[i])) return;
      if (orphan_fallback) space_note_orphan(space, adopters[i]);
      const std::size_t choice =
          candidates.size() == 1
              ? 0
              : select_zero(space, adopters[i], candidates, std::span(object_ids));
      auto& row = out[adopter_pos[i]];
      for (std::size_t j = 0; j < obj_pos.size(); ++j) {
        row[obj_pos[j]] = candidates[choice][j];
      }
    });
  }

  static void scatter_outputs(const Outputs& part, const std::vector<std::uint32_t>& player_pos,
                              const std::vector<std::uint32_t>& obj_pos, Outputs& out) {
    for (std::size_t i = 0; i < player_pos.size(); ++i) {
      auto& row = out[player_pos[i]];
      for (std::size_t j = 0; j < obj_pos.size(); ++j) {
        row[obj_pos[j]] = part[i][j];
      }
    }
  }

  void publish_all(const std::vector<PlayerId>& players, const Outputs& out,
                   std::uint64_t node_tag) {
    if constexpr (requires(Space& s, PlayerId p, std::span<const Value> v) {
                    s.publish(std::string_view{}, p, v);
                  }) {
      const std::string channel = "zr/" + std::to_string(node_tag);
      for (std::size_t i = 0; i < players.size(); ++i) {
        if (space_is_failed(space, players[i])) continue;  // nothing to post
        space.publish(channel, players[i], std::span<const Value>(out[i]));
      }
    }
  }
};

}  // namespace detail

/// Run Zero Radius over `players` and `objects` in `space`.
/// Returns per-player value vectors aligned with `objects` (row i
/// belongs to players[i]). `rng` carries the shared coins; `n_total`
/// is the system size entering the leaf threshold and is normally
/// players.size() of the top-level call.
template <typename Space>
std::vector<std::vector<typename Space::Value>> zero_radius(
    Space& space, const std::vector<PlayerId>& players,
    const std::vector<std::uint32_t>& objects, double alpha, const Params& params,
    rng::Rng rng, std::size_t n_total) {
  detail::ZeroRadiusRun<Space> run{space, alpha, params, n_total,
                                   zero_radius_leaf_threshold(n_total, alpha, params)};
  return run.run(players, objects, std::move(rng), 1);
}

}  // namespace tmwia::core
